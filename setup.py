"""Legacy setup shim.

The primary metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (offline machines).
"""

from setuptools import setup

setup()
