"""Fault study: what robustness machinery buys a failing fleet.

Serves gpt2 (decode lengths varying 1..4 tokens) through a three-replica
Platform A fleet and injects faults three ways:

* a **crash** takes one replica down mid-run — per-request timeouts detect
  the lost work and retries re-route it to the survivors;
* the same crash with **admission control** — arrivals that would queue
  behind the outage are shed up front, trading completions for goodput and
  a far better tail for the requests actually admitted;
* **stragglers** slow ~15% of dispatches 2-6x — hedged dispatch races a
  duplicate on a second replica and the first completion wins.

Everything is deterministic: the trace, the fault schedule, and the policy
draws all flow from explicit seeds.

Run with ``PYTHONPATH=src python examples/fault_study.py``.
"""

from __future__ import annotations

import numpy as np

from repro.serving import ClusterConfig, ClusterRouter, make_trace
from repro.viz.ascii import render_table

MODEL = "gpt2"
PLATFORMS = ("A", "A", "A")
NUM_REQUESTS = 48
DEADLINE_S = 0.1
SEED = 0

#: (label, scheduler, load, config overrides) — the three studies above,
#: each with its healthy or unprotected counterpart.
SCENARIOS = (
    ("healthy", "continuous", 1.0, {}),
    ("crash + retries", "continuous", 1.0,
     dict(fault_profile="crash", timeout_s=0.02, timeout_cap_s=0.32)),
    ("crash, no shedding", "fifo", 1.0,
     dict(fault_profile="crash", timeout_s=0.02, timeout_cap_s=0.32)),
    ("crash + shedding", "fifo", 1.0,
     dict(fault_profile="crash", timeout_s=0.02, timeout_cap_s=0.32,
          shed_queue_s=0.02)),
    ("stragglers, no hedging", "continuous", 0.5,
     dict(fault_profile="straggler")),
    ("stragglers + hedging", "continuous", 0.5,
     dict(fault_profile="straggler", hedge_after_s=0.02)),
)


def run_scenario(label: str, scheduler: str, load: float, overrides: dict):
    router = ClusterRouter(
        ClusterConfig(
            model=MODEL,
            platforms=PLATFORMS,
            scheduler=scheduler,
            policy="least-loaded",
            max_batch=4,
            fault_seed=3,
            deadline_s=DEADLINE_S,
            **overrides,
        )
    )
    rate = load * router.fleet_capacity_rps()
    trace = make_trace(
        "poisson",
        rate,
        NUM_REQUESTS,
        rng=np.random.default_rng(SEED),
        decode_steps=(1, 4),
    )
    result = router.run(trace, offered_rate_rps=rate)
    return {
        "scenario": label,
        "scheduler": scheduler,
        "load": load,
        "goodput_pct": round(100 * result.goodput, 1),
        "p99_ms": round(result.p99_s * 1e3, 1),
        "shed": result.num_shed,
        "retries": result.num_retries,
        "hedge_wins": result.num_hedge_wins,
        "recovery_ms": round(result.time_to_recovery_s * 1e3, 1),
    }, result


def main() -> None:
    capacity = ClusterRouter(
        ClusterConfig(model=MODEL, platforms=PLATFORMS)
    ).fleet_capacity_rps()
    print(
        f"{MODEL} on a {len(PLATFORMS)}-replica platform-A fleet:"
        f" fleet capacity {capacity:.1f} rps,"
        f" goodput deadline {DEADLINE_S * 1e3:.0f} ms\n"
    )

    rows, results = [], {}
    for label, scheduler, load, overrides in SCENARIOS:
        row, result = run_scenario(label, scheduler, load, overrides)
        rows.append(row)
        results[label] = row
    print(render_table(rows))

    no_shed, shed = results["crash, no shedding"], results["crash + shedding"]
    print(
        f"\nshedding {shed['shed']} requests under the crash lifts goodput"
        f" {no_shed['goodput_pct']:.1f}% -> {shed['goodput_pct']:.1f}% and cuts"
        f" p99-of-admitted {no_shed['p99_ms']:.1f} -> {shed['p99_ms']:.1f} ms:"
        " degrading gracefully beats queueing behind a dead replica."
    )
    no_hedge, hedge = results["stragglers, no hedging"], results["stragglers + hedging"]
    print(
        f"hedging wins {hedge['hedge_wins']} races against stragglers and cuts"
        f" p99 {no_hedge['p99_ms']:.1f} -> {hedge['p99_ms']:.1f} ms — duplicates"
        " only help while the fleet has capacity headroom."
    )


if __name__ == "__main__":
    main()
