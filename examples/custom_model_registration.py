"""Extending the benchmark with a custom model (paper Section III-B).

Run:  python examples/custom_model_registration.py

Builds a small custom transformer from the operator library, registers it
in the model registry next to the 17 presets, profiles it through two
deployment flows, and finally *executes it numerically* on synthetic
tokenized text to show the graphs are real programs, not just cost stubs.
"""

import numpy as np

from repro import profile_graph, register_model
from repro.data import SyntheticWikitext
from repro.flows import get_flow
from repro.hardware import PLATFORM_B
from repro.ir import Graph, TensorSpec
from repro.ir.dtype import DType
from repro import ops
from repro.models import ModelEntry, TaskDomain, build_model
from repro.models.common import pre_norm_encoder_layer
from repro.runtime import run_graph
from repro.viz.ascii import render_table

VOCAB = 1000
DIM = 64
LAYERS = 2
HEADS = 4


def build_tiny_lm(config: object = None, batch_size: int = 1, seq_len: int = 16) -> Graph:
    """A 2-layer pre-LN transformer LM over a 1000-token vocabulary."""
    g = Graph("tiny-lm")
    ids = g.input(TensorSpec((batch_size, seq_len), DType.I64), "input_ids")
    h = g.call(ops.Embedding(VOCAB, DIM), ids, name="embed")
    pos = g.call(ops.Constant((1, seq_len, DIM), name="pos"), name="pos_embed")
    h = g.call(ops.Add(), h, pos, name="add_pos")
    for i in range(LAYERS):
        h = pre_norm_encoder_layer(g, h, DIM, HEADS, 4 * DIM, DType.F32, f"layer{i}")
    h = g.call(ops.LayerNorm(DIM), h, name="final_ln")
    logits = g.call(ops.Linear(DIM, VOCAB, bias=False), h, name="lm_head")
    g.set_outputs(logits)
    return g


def main() -> None:
    register_model(
        ModelEntry(
            name="tiny-lm",
            domain=TaskDomain.NLP,
            builder=build_tiny_lm,
            config=None,
            dataset="wikitext",
            paper_params="0.1M",
        ),
        replace=True,
    )

    # profile it like any preset model
    graph = build_model("tiny-lm", batch_size=2)
    rows = []
    for flow_name in ("pytorch", "tensorrt"):
        profile = profile_graph(
            graph, get_flow(flow_name), PLATFORM_B, use_gpu=True, model_name="tiny-lm"
        )
        rows.append(
            {
                "flow": flow_name,
                "latency_us": round(profile.total_latency_ms * 1e3, 1),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                "kernels": profile.num_kernels,
            }
        )
    print(render_table(rows))

    # and execute it for real on synthetic text
    data = SyntheticWikitext(vocab_size=VOCAB, seed=7)
    token_ids = data.batch(batch_size=2, seq_len=16)
    (logits,) = run_graph(graph, {"input_ids": token_ids}, seed=7)
    print(f"\nexecuted tiny-lm on synthetic text: logits shape {logits.shape}")
    next_tokens = np.argmax(logits[:, -1, :], axis=-1)
    print(f"greedy next-token predictions: {next_tokens.tolist()}")


if __name__ == "__main__":
    main()
