"""Register a custom N-device platform and profile a model on it.

The hardware layer is a registry, like flows and models: a platform is an
ordered set of :class:`~repro.hardware.DeviceSpec` devices (at most one per
:class:`~repro.hardware.DeviceKind`) plus a directed link table.  This
example builds a hypothetical next-gen edge SoC — a big-core CPU, a 40-TOPS
NPU, and an integrated GPU behind one LPDDR5X pool — registers it, and
profiles a model under both the plain PyTorch flow and the GEMM-only
``npu-offload`` flow to show the non-GEMM horizon on it.

Run with ``PYTHONPATH=src python examples/custom_platform.py``.
"""

from repro.flows import get_flow
from repro.hardware import (
    DeviceKind,
    DeviceSpec,
    Link,
    Platform,
    get_platform,
    register_device,
    register_platform,
)
from repro.models import build_model
from repro.profiler import profile_graph

# -- three devices of a hypothetical 2026 edge SoC --------------------------

BIG_CPU = DeviceSpec(
    name="hypo-big-cpu",
    kind=DeviceKind.CPU,
    gemm_flops_f32=1.6e12,
    gemm_flops_f16=1.6e12,
    gemm_flops_i8=6.4e12,
    vector_flops=0.5e12,
    mem_bandwidth=136e9,  # LPDDR5X-8533, 2 channels, shared
    kernel_launch_s=0.0,
    idle_power_w=6.0,
    peak_power_w=45.0,
    gemm_saturation_flops=50e6,
)

BIG_NPU = DeviceSpec(
    name="hypo-40tops-npu",
    kind=DeviceKind.NPU,
    gemm_flops_f32=20e12,  # bf16-cast path
    gemm_flops_f16=20e12,
    gemm_flops_i8=40e12,
    vector_flops=0.4e12,
    mem_bandwidth=60e9,
    kernel_launch_s=20e-6,
    idle_power_w=0.5,
    peak_power_w=12.0,
    gemm_saturation_flops=200e6,
)

SMALL_IGPU = DeviceSpec(
    name="hypo-igpu",
    kind=DeviceKind.GPU,
    gemm_flops_f32=6.0e12,
    gemm_flops_f16=12.0e12,
    gemm_flops_i8=24.0e12,
    vector_flops=3.0e12,
    mem_bandwidth=136e9,
    kernel_launch_s=5e-6,
    idle_power_w=1.5,
    peak_power_w=35.0,
    gemm_saturation_flops=250e6,
)

# replace=True keeps re-runs in one process (e.g. the test suite) idempotent
for spec in (BIG_CPU, BIG_NPU, SMALL_IGPU):
    register_device(spec, replace=True)

HYPO_SOC = Platform(
    platform_id="hypo-soc",
    description="Hypothetical edge SoC: big CPU + 40-TOPS NPU + iGPU",
    devices=(BIG_CPU, BIG_NPU, SMALL_IGPU),
    links={
        # same-die CPU<->iGPU copies through the shared memory controller
        (DeviceKind.CPU, DeviceKind.GPU): Link(bandwidth=70e9, latency_s=2e-6),
        # fabric DMA to the NPU tiles; reads back are faster than writes in
        (DeviceKind.CPU, DeviceKind.NPU): Link(bandwidth=40e9, latency_s=15e-6),
        (DeviceKind.NPU, DeviceKind.CPU): Link(bandwidth=50e9, latency_s=12e-6),
    },
)
register_platform(HYPO_SOC, replace=True)


def main() -> None:
    platform = get_platform("hypo-soc")  # registered like any built-in
    print(f"platform {platform.platform_id}: {platform.description}")
    for spec in platform.devices:
        print(f"  {spec.kind.value:>4}: {spec.name}")
    one_mb = 1024 * 1024
    print(
        "  1 MiB cpu->npu over the fabric DMA:"
        f" {platform.transfer_time(DeviceKind.CPU, DeviceKind.NPU, one_mb) * 1e6:.1f} us"
        f" (back: {platform.transfer_time(DeviceKind.NPU, DeviceKind.CPU, one_mb) * 1e6:.1f} us)"
    )

    graph = build_model("vit-b", batch_size=1)
    cpu = profile_graph(graph, get_flow("pytorch"), platform.cpu_only(), use_gpu=False)
    gpu = profile_graph(graph, get_flow("pytorch"), platform, use_gpu=DeviceKind.GPU)
    npu = profile_graph(graph, get_flow("npu-offload"), platform, use_gpu=DeviceKind.NPU)
    print("\nvit-b non-GEMM share on the hypothetical SoC:")
    for label, profile in (("cpu only", cpu), ("igpu", gpu), ("npu offload", npu)):
        print(
            f"  {label:>11}: {profile.total_latency_ms:7.2f} ms,"
            f" non-GEMM {profile.non_gemm_share:.1%}"
        )
    print(
        "\nthe narrower the accelerated fraction, the wider the non-GEMM"
        " horizon — the paper's thesis, on hardware you just invented."
    )


if __name__ == "__main__":
    main()
