"""Quickstart: profile one model and read the GEMM/non-GEMM split.

Run:  python examples/quickstart.py

Profiles GPT-2 on the data-center platform (EPYC 7763 + A100 model) with
and without GPU acceleration — the paper's Fig. 1 experiment in ten lines —
then prints the operator-group breakdown and the slowest kernels.
"""

from repro import build_model, profile_graph
from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.viz.ascii import render_stacked_bar, render_table


def main() -> None:
    graph = build_model("gpt2", batch_size=1)
    flow = get_flow("pytorch")

    print(f"model: {graph.name}, {len(graph.compute_nodes())} operators,"
          f" {graph.param_count() / 1e6:.1f}M parameters\n")

    for use_gpu in (False, True):
        platform = PLATFORM_A if use_gpu else PLATFORM_A.cpu_only()
        profile = profile_graph(graph, flow, platform, use_gpu=use_gpu, model_name="gpt2")
        device = "CPU+GPU" if use_gpu else "CPU only"
        shares = {g.value: s for g, s in profile.share_by_group().items()}
        print(render_stacked_bar(
            f"gpt2 [{device}]", shares, total_label=f"{profile.total_latency_ms:7.2f} ms"
        ))
    print()

    # detailed look at the accelerated profile
    profile = profile_graph(graph, flow, PLATFORM_A, use_gpu=True, model_name="gpt2")
    print(f"non-GEMM share with GPU: {profile.non_gemm_share:.1%}")
    group, share = profile.dominant_non_gemm_group()
    print(f"dominant non-GEMM group: {group.value} ({share:.1%} of total)\n")

    rows = [
        {
            "kernel": r.name,
            "group": r.group.value,
            "latency_us": round(r.latency_s * 1e6, 1),
            "bound": r.bound,
        }
        for r in profile.top_operators(8, non_gemm_only=True)
    ]
    print("slowest non-GEMM kernels:")
    print(render_table(rows))


if __name__ == "__main__":
    main()
