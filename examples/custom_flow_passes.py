"""Assemble a custom deployment flow from lowering passes.

The lowering stack is a pass pipeline (``repro.flows.passes``): a flow is an
ordered list of named passes plus tuning knobs.  This example builds a
what-if serving stack — a compiled flow that *offloads tiny kernels to the
CPU* to keep the accelerator queue free, paying PCIe transfers for each —
out of one custom pass and the stock passes, registers it, and compares it
against plain TorchInductor.

Run with ``PYTHONPATH=src python examples/custom_flow_passes.py``.
"""

from repro.flows import DeploymentFlow, TorchInductorFlow, get_flow, register_flow
from repro.flows.passes import (
    FusionPass,
    KernelConstructionPass,
    LoweringPass,
    MetadataElisionPass,
    PassManager,
    PlacementPass,
    SyncInsertionPass,
    TransferInsertionPass,
    UniformPlacement,
)
from repro.hardware import PLATFORM_A, DeviceKind
from repro.models import build_model
from repro.profiler import profile_graph


class SmallKernelOffloadPass(LoweringPass):
    """Re-place sub-threshold standalone kernels onto the host.

    A refinement pass: it runs after kernel construction and flips small
    non-fused, non-metadata kernels to CPU-fallback.  The stock
    TransferInsertionPass downstream then charges the PCIe round trips, so
    the custom pass itself stays ~10 lines of policy.
    """

    name = "small-kernel-offload"

    def __init__(self, max_bytes: int):
        self.max_bytes = max_bytes

    def describe(self) -> str:  # folded into pipeline_signature()
        return f"max_bytes={self.max_bytes}"

    def run(self, state) -> None:
        if not state.use_gpu:
            return  # nothing to offload on a CPU-only run
        offloaded = 0
        for draft in state.drafts:
            if draft.fused or draft.fallback:
                continue
            node = state.graph.nodes[draft.node_ids[0]]
            if node.op.is_metadata_only or node.op.forces_sync:
                continue
            if draft.cost.total_bytes <= self.max_bytes:
                draft.device = DeviceKind.CPU
                draft.fallback = True
                offloaded += 1
                if state.record_provenance:
                    draft.tag(f"offloaded[<= {self.max_bytes}B]")
        state.note(self.name, offloaded=offloaded)


class EdgeOffloadFlow(DeploymentFlow):
    """Inductor-style compilation + small-kernel host offload."""

    name = "edge-offload"
    dispatch_profile = "compiled"
    fusion = TorchInductorFlow.fusion
    gemm_saturation_scale = TorchInductorFlow.gemm_saturation_scale
    uniform_placement = False  # the custom pass re-places per kernel

    def build_pipeline(self) -> PassManager:
        return PassManager(
            (
                FusionPass(self.fusion),
                PlacementPass(UniformPlacement()),
                KernelConstructionPass(collapse=True),
                SmallKernelOffloadPass(max_bytes=512 * 1024),  # the custom pass
                TransferInsertionPass(),  # stock pass prices the offloads
                SyncInsertionPass(),
                MetadataElisionPass(),
            )
        )


# replace=True keeps re-runs in one process (e.g. the test suite) idempotent
register_flow(EdgeOffloadFlow, replace=True)


def main() -> None:
    graph = build_model("swin-t", batch_size=1)

    custom = get_flow("edge-offload")  # registered like any built-in flow
    plan = custom.lower(graph, use_gpu=True, record_provenance=True)
    trace = {entry["pass"]: entry for entry in plan.notes["passes"]}
    offloaded = trace["small-kernel-offload"]["offloaded"]
    print(f"custom pass pipeline: {' -> '.join(custom.pipeline.pass_names())}")
    print(f"pipeline signature:   {custom.pipeline_signature()}")
    print(f"offloaded kernels:    {offloaded} of {plan.num_kernels}")

    baseline = profile_graph(graph, TorchInductorFlow(), PLATFORM_A, use_gpu=True)
    offload = profile_graph(graph, custom, PLATFORM_A, use_gpu=True)
    print(
        f"swin-t on A:          torchinductor {baseline.total_latency_ms:.2f} ms"
        f" -> edge-offload {offload.total_latency_ms:.2f} ms"
        " (PCIe prices every offload)"
    )


if __name__ == "__main__":
    main()
