"""Operator-fusion study on detection/segmentation models (Fig. 8 / Table V).

Run:  python examples/detection_fusion_study.py

Compares eager PyTorch, TorchInductor, and TensorRT on DETR and SegFormer,
reproducing the paper's headline fusion finding: DETR's FrozenBatchNorm
kernels all fold into convolutions under TensorRT (a >10x non-GEMM
speedup), while SegFormer's norms only fuse with other non-GEMM operators
and improve far less.
"""

from repro import build_model, profile_graph
from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.viz.ascii import render_table


def main() -> None:
    rows = []
    speedups: dict[str, float] = {}
    for model in ("detr", "segformer", "swin-b"):
        graph = build_model(model, batch_size=1)
        eager_ng_ms = None
        for flow_name in ("pytorch", "torchinductor", "tensorrt"):
            profile = profile_graph(
                graph, get_flow(flow_name), PLATFORM_A, use_gpu=True, model_name=model
            )
            ng_ms = profile.non_gemm_latency_s * 1e3
            if flow_name == "pytorch":
                eager_ng_ms = ng_ms
            rows.append(
                {
                    "model": model,
                    "flow": flow_name,
                    "latency_ms": round(profile.total_latency_ms, 2),
                    "non_gemm_ms": round(ng_ms, 2),
                    "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                    "fusion_rate_pct": round(100 * profile.non_gemm_fusion_rate, 1),
                }
            )
            if flow_name == "tensorrt" and eager_ng_ms:
                speedups[model] = eager_ng_ms / max(ng_ms, 1e-9)
    print(render_table(rows))
    print()
    for model, speedup in speedups.items():
        print(f"{model}: TensorRT non-GEMM speedup over eager = {speedup:.1f}x")
    print(
        "\nDETR's speedup dwarfs SegFormer's at a similar fusion rate because its\n"
        "batch norms fuse INTO the GEMM kernels (CONV+BN+ReLU), exactly as the\n"
        "paper's Table V analysis explains."
    )


if __name__ == "__main__":
    main()
