"""Deployment-flow study on language models (the paper's Fig. 7 scenario).

Run:  python examples/llm_deployment_flows.py

Profiles GPT2-XL and Llama-2 7B under all four deployment flows on the
data-center platform and shows how the choice of serving stack moves both
the total latency and the *identity* of the non-GEMM bottleneck — including
ONNX Runtime's CPU-fallback blowup of the Memory group on GPT-2.
"""

from repro import build_model, profile_graph
from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.ops import OpCategory
from repro.viz.ascii import render_table

FLOWS = ("pytorch", "torchinductor", "onnxruntime", "tensorrt")
MODELS = ("gpt2-xl", "llama2-7b")


def main() -> None:
    rows = []
    for model in MODELS:
        graph = build_model(model, batch_size=1)
        for flow_name in FLOWS:
            profile = profile_graph(
                graph, get_flow(flow_name), PLATFORM_A, use_gpu=True, model_name=model
            )
            shares = profile.share_by_group()
            group, share = profile.dominant_non_gemm_group()
            rows.append(
                {
                    "model": model,
                    "flow": flow_name,
                    "latency_ms": round(profile.total_latency_ms, 2),
                    "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                    "memory_pct": round(100 * shares.get(OpCategory.MEMORY, 0.0), 1),
                    "dominant_non_gemm": f"{group.value} ({share:.0%})",
                    "kernels": profile.num_kernels,
                }
            )
    print(render_table(rows))
    print(
        "\nTakeaways (match the paper's Section IV-B):\n"
        " * ONNX Runtime cuts GPT2-XL's activation overhead but its CPU fallback\n"
        "   inflates the Memory group -- the dominant non-GEMM operator changes\n"
        "   with the deployment flow.\n"
        " * Llama-2's export is clean, so ORT simply accelerates it.\n"
        " * Even TensorRT leaves a measurable non-GEMM share behind."
    )


if __name__ == "__main__":
    main()
