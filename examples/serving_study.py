"""Serving study: what batching discipline buys under rising load.

Serves gpt2 (decode lengths varying 1..4 tokens) on Platform A's A100 at
three offered loads — half, one, and four times single-stream capacity —
under no batching, dynamic batching, and continuous (iteration-level)
batching, all through the deterministic discrete-event engine.

Run with ``PYTHONPATH=src python examples/serving_study.py``.
"""

from __future__ import annotations

import numpy as np

from repro.serving import ServingConfig, ServingEngine, make_trace
from repro.viz.ascii import render_table

MODEL = "gpt2"
PLATFORM = "A"
LOADS = (0.5, 1.0, 4.0)
SCHEDULERS = ("fifo", "dynamic", "continuous")
NUM_REQUESTS = 32
SEED = 0


def main() -> None:
    base_s = ServingEngine(ServingConfig(model=MODEL, platform=PLATFORM)).base_latency_s()
    print(
        f"{MODEL} on platform {PLATFORM}: batch-1 latency {base_s * 1e3:.2f} ms"
        f" -> single-stream capacity {1.0 / base_s:.1f} rps\n"
    )

    rows = []
    p99_by_scheduler: dict[str, dict[float, float]] = {}
    for scheduler in SCHEDULERS:
        for load in LOADS:
            engine = ServingEngine(
                ServingConfig(
                    model=MODEL,
                    platform=PLATFORM,
                    scheduler=scheduler,
                    max_batch=4,
                )
            )
            rate = load / engine.base_latency_s()
            trace = make_trace(
                "poisson",
                rate,
                NUM_REQUESTS,
                rng=np.random.default_rng(SEED),
                decode_steps=(1, 4),
            )
            result = engine.run(trace, offered_rate_rps=rate)
            p99_by_scheduler.setdefault(scheduler, {})[load] = result.p99_s
            rows.append(
                {
                    "scheduler": scheduler,
                    "load": load,
                    "offered_rps": round(rate, 1),
                    "served_rps": round(result.throughput_rps, 1),
                    "p50_ms": round(result.p50_s * 1e3, 2),
                    "p99_ms": round(result.p99_s * 1e3, 2),
                    "mean_batch": round(result.mean_batch_size, 2),
                    "non_gemm_busy_pct": round(100 * result.non_gemm_busy_share, 1),
                }
            )
    print(render_table(rows))

    top = max(LOADS)
    fifo_p99 = p99_by_scheduler["fifo"][top]
    continuous_p99 = p99_by_scheduler["continuous"][top]
    print(
        f"\nat load {top:g}x, continuous batching cuts p99 from"
        f" {fifo_p99 * 1e3:.1f} ms to {continuous_p99 * 1e3:.1f} ms"
        f" ({fifo_p99 / continuous_p99:.1f}x) versus no batching"
    )
    print(
        "non-GEMM work stays roughly half of all busy time at every load:"
        " batching feeds the GEMMs, the non-GEMM horizon remains."
    )


if __name__ == "__main__":
    main()
