"""LLM.int8() quantization study (the paper's Fig. 9 scenario).

Run:  python examples/quantization_seqlen_study.py

Quantizes Llama-3 8B with the LLM.int8() graph pass and profiles FP16 vs
INT8 across sequence lengths.  Shows the paper's counterintuitive result:
quantization makes the *GEMMs* faster but the *end-to-end profile* becomes
dominated by the injected Q/DQ and scaling operators.
"""

from repro import build_model, profile_graph, quantize_llm_int8
from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.ops import OpCategory
from repro.viz.ascii import render_table


def main() -> None:
    flow = get_flow("pytorch")
    rows = []
    for seq in (512, 2048, 8192):
        graph = build_model("llama3-8b", batch_size=1, seq_len=seq)
        quantized = quantize_llm_int8(graph)
        for precision, g in (("fp16", graph), ("int8", quantized.graph)):
            profile = profile_graph(g, flow, PLATFORM_A, use_gpu=True, model_name=f"llama3-{precision}")
            shares = profile.share_by_group()
            rows.append(
                {
                    "seq_len": seq,
                    "precision": precision,
                    "latency_ms": round(profile.total_latency_ms, 1),
                    "gemm_ms": round(profile.gemm_latency_s * 1e3, 1),
                    "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                    "qdq_pct": round(100 * shares.get(OpCategory.QDQ, 0.0), 1),
                    "elementwise_pct": round(100 * shares.get(OpCategory.ELEMENTWISE, 0.0), 1),
                }
            )
    print(render_table(rows))
    stats = quantize_llm_int8(build_model("llama3-8b", batch_size=1, seq_len=512)).stats
    print(
        f"\nquantization pass: {stats.linears_quantized} linears -> int8,"
        f" {stats.ops_added} operators added"
        f" ({stats.qdq_ops_added} Q/DQ, {stats.elementwise_ops_added} element-wise)"
    )
    print(
        "\nGEMM latency drops after quantization, but the added dequant/requant\n"
        "work makes non-GEMM operators the dominant cost -- the paper's Fig. 9."
    )


if __name__ == "__main__":
    main()
