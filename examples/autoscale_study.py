"""Autoscale study: paying for replicas only while the load is there.

Serves gpt2 (decode lengths varying 1..4 tokens) through a Platform A
fleet with an 8-replica ceiling under a bursty arrival trace whose demand
is four times one replica's capacity, and compares what each provisioning
strategy pays:

* **static fleets** of 2, 4, and 8 replicas — every machine is online (and
  billed) for the whole run, however little of it the tail needed;
* the three **feedback controllers** starting from a single replica —
  ``target-utilization`` and ``step`` scale on busy fraction,
  ``goodput`` scales on the windowed p99 against the 100 ms deadline.

The punchline mirrors the ``ext5`` experiment: the SLO-feedback controller
discovers the static knee online — a tail within a few percent of the
4-replica fleet at roughly half the replica-seconds — while utilization
controllers, blind to latency slack, buy the whole ceiling.

Everything is deterministic: the trace, the controller decisions, and the
policy draws all flow from explicit seeds.

Run with ``PYTHONPATH=src python examples/autoscale_study.py``.
"""

from __future__ import annotations

import numpy as np

from repro.serving import (
    AutoscaleConfig,
    ClusterConfig,
    ClusterRouter,
    make_trace,
)
from repro.viz.ascii import render_table

MODEL = "gpt2"
CEILING = 8
DEMAND = 4.0  # x one replica's capacity; the same trace for every scenario
NUM_REQUESTS = 30_000
DEADLINE_S = 0.1
SEED = 0

STATIC_FLEETS = (2, 4, 8)
CONTROLLERS = ("target-utilization", "goodput", "step")


def run_fleet(replicas: int, autoscale: AutoscaleConfig | None):
    router = ClusterRouter(
        ClusterConfig(
            model=MODEL,
            platforms=("A",) * replicas,
            scheduler="continuous",
            policy="least-loaded",
            max_batch=8,
            deadline_s=DEADLINE_S,
            record_requests=4096,
            autoscale=autoscale,
        )
    )
    rate = DEMAND * router.fleet_capacity_rps() / replicas
    trace = make_trace(
        "bursty",
        rate,
        NUM_REQUESTS,
        rng=np.random.default_rng(SEED),
        decode_steps=(1, 4),
    )
    return router.run(trace, offered_rate_rps=rate)


def main() -> None:
    single = ClusterRouter(
        ClusterConfig(model=MODEL, platforms=("A",))
    ).fleet_capacity_rps()
    print(
        f"{MODEL} on platform A: {single:.1f} rps single-replica capacity;"
        f" bursty demand {DEMAND:g}x that, deadline {DEADLINE_S * 1e3:.0f} ms\n"
    )

    rows = []
    results = {}
    for replicas in STATIC_FLEETS:
        results[f"static-{replicas}"] = run_fleet(replicas, None)
    for controller in CONTROLLERS:
        results[controller] = run_fleet(
            CEILING,
            AutoscaleConfig(
                controller=controller,
                min_replicas=1,
                max_replicas=CEILING,
                interval_s=0.1,
                provision_delay_s=0.1,
            ),
        )
    for label, result in results.items():
        ups = sum(1 for e in result.scale_events if e.action == "up")
        downs = sum(1 for e in result.scale_events if e.action == "down")
        rows.append(
            {
                "config": label,
                "goodput_pct": round(100 * result.goodput, 1),
                "p99_ms": round(result.p99_s * 1e3, 2),
                "mean_replicas": round(result.mean_replicas, 2),
                "replica_seconds": round(result.replica_seconds, 1),
                "scale_up/down": f"{ups}/{downs}",
            }
        )
    print(render_table(rows))

    static4 = results["static-4"]
    goodput = results["goodput"]
    savings = 100 * (1 - goodput.replica_seconds / static4.replica_seconds)
    print(
        f"\nthe goodput controller found the knee online: p99"
        f" {goodput.p99_s * 1e3:.1f} ms vs the static-4 fleet's"
        f" {static4.p99_s * 1e3:.1f} ms at {savings:.0f}% fewer"
        f" replica-seconds — utilization controllers can't see latency"
        f" slack, so they hold the ceiling"
    )

    print("\ngoodput controller audit log (first 10 events):")
    for event in goodput.scale_events[:10]:
        print(
            f"  t={event.time_s:7.3f}s {event.action:<8}"
            f" replica={event.replica} serving={event.serving}"
            f"  ({event.reason})"
        )


if __name__ == "__main__":
    main()
