"""Smoke tests: every example script runs end to end and prints sane output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    sys.path.insert(0, str(EXAMPLES))
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.path.remove(str(EXAMPLES))
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "non-GEMM share with GPU" in out
    assert "dominant non-GEMM group: Activation" in out


def test_detection_fusion_study(capsys):
    out = _run_example("detection_fusion_study.py", capsys)
    assert "detr" in out and "tensorrt" in out
    assert "non-GEMM speedup over eager" in out


def test_custom_model_registration(capsys):
    out = _run_example("custom_model_registration.py", capsys)
    assert "logits shape (2, 16, 1000)" in out
    assert "greedy next-token predictions" in out


def test_custom_flow_passes(capsys):
    import re

    out = _run_example("custom_flow_passes.py", capsys)
    assert "small-kernel-offload" in out
    assert "pipeline signature:" in out
    offloaded = re.search(r"offloaded kernels:\s+(\d+) of", out)
    assert offloaded and int(offloaded.group(1)) > 0


def test_serving_study(capsys):
    out = _run_example("serving_study.py", capsys)
    assert "single-stream capacity" in out
    assert "continuous" in out and "p99_ms" in out
    assert "continuous batching cuts p99" in out


def test_custom_platform(capsys):
    out = _run_example("custom_platform.py", capsys)
    assert "hypo-soc" in out
    assert "npu: hypo-40tops-npu" in out
    assert "npu offload" in out and "non-GEMM" in out


@pytest.mark.slow
def test_llm_deployment_flows(capsys):
    out = _run_example("llm_deployment_flows.py", capsys)
    assert "onnxruntime" in out and "llama2-7b" in out


@pytest.mark.slow
def test_quantization_seqlen_study(capsys):
    out = _run_example("quantization_seqlen_study.py", capsys)
    assert "int8" in out and "quantization pass" in out

def test_fault_study(capsys):
    out = _run_example("fault_study.py", capsys)
    assert "fleet capacity" in out
    assert "crash + shedding" in out and "stragglers + hedging" in out
    assert "degrading gracefully beats queueing behind a dead replica" in out
    assert "duplicates" in out and "capacity headroom" in out


def test_autoscale_study(capsys):
    out = _run_example("autoscale_study.py", capsys)
    assert "single-replica capacity" in out
    assert "static-4" in out and "goodput" in out and "replica_seconds" in out
    assert "found the knee online" in out
    assert "audit log" in out and "provisioned after" in out
