"""Unit tests for the IR: dtypes, tensor specs, graph construction."""

import pytest

from repro import ops
from repro.errors import GraphError, ShapeError
from repro.ir import DType, Graph, TensorSpec, broadcast_shapes, normalize_axis


class TestDType:
    def test_itemsizes(self):
        assert DType.F32.itemsize == 4
        assert DType.F16.itemsize == 2
        assert DType.BF16.itemsize == 2
        assert DType.I8.itemsize == 1
        assert DType.I64.itemsize == 8
        assert DType.BOOL.itemsize == 1

    def test_float_and_int_predicates(self):
        assert DType.F16.is_floating and not DType.F16.is_integer
        assert DType.I32.is_integer and not DType.I32.is_floating
        assert not DType.BOOL.is_floating and not DType.BOOL.is_integer

    def test_bf16_executes_as_float32(self):
        import numpy as np

        assert DType.BF16.to_numpy() == np.dtype(np.float32)
        assert DType.BF16.itemsize == 2  # cost accounting keeps 2 bytes


class TestTensorSpec:
    def test_numel_and_nbytes(self):
        spec = TensorSpec((2, 3, 4), DType.F16)
        assert spec.numel == 24
        assert spec.nbytes == 48
        assert spec.rank == 3

    def test_scalar_spec(self):
        spec = TensorSpec((), DType.I64)
        assert spec.numel == 1
        assert spec.nbytes == 8

    def test_rejects_negative_dims(self):
        with pytest.raises(ShapeError):
            TensorSpec((2, -3))

    def test_with_shape_and_dtype(self):
        spec = TensorSpec((4, 4))
        assert spec.with_shape((2, 8)).shape == (2, 8)
        assert spec.with_dtype(DType.I8).dtype == DType.I8
        assert spec.with_dtype(DType.I8).shape == (4, 4)

    def test_str_format(self):
        assert str(TensorSpec((1, 8, 64), DType.F32)) == "1x8x64:f32"


class TestBroadcast:
    def test_equal_shapes(self):
        assert broadcast_shapes((2, 3), (2, 3)) == (2, 3)

    def test_singleton_expansion(self):
        assert broadcast_shapes((2, 1, 4), (1, 3, 4)) == (2, 3, 4)

    def test_rank_padding(self):
        assert broadcast_shapes((4,), (2, 3, 4)) == (2, 3, 4)

    def test_incompatible(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((2, 3), (2, 4))

    def test_normalize_axis(self):
        assert normalize_axis(-1, 3) == 2
        assert normalize_axis(0, 3) == 0
        with pytest.raises(ShapeError):
            normalize_axis(3, 3)


class TestGraph:
    def test_build_and_validate(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        y = g.call(ops.Linear(4, 8), x)
        g.set_outputs(y)
        g.validate()
        assert len(g) == 2
        assert len(g.compute_nodes()) == 1

    def test_requires_outputs(self):
        g = Graph("t")
        g.input(TensorSpec((1, 4)), "x")
        with pytest.raises(GraphError):
            g.validate()

    def test_unique_names_within_scope(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        a = g.call(ops.ReLU(), x, name="act")
        b = g.call(ops.ReLU(), a, name="act")
        names = [n.name for n in g.compute_nodes()]
        assert names == ["act", "act_2"]

    def test_scopes_produce_qualified_names(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        with g.scope("enc"):
            with g.scope("layer0"):
                y = g.call(ops.ReLU(), x)
        assert g.nodes[y.node_id].qualified_name == "enc.layer0/relu"

    def test_multi_output_values(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 6)), "x")
        a, b, c = g.call(ops.Split(3, dim=1), x)
        assert a.spec.shape == (1, 2)
        assert (a.port, b.port, c.port) == (0, 1, 2)
        g.set_outputs(a, b, c)
        g.validate()

    def test_rejects_foreign_values(self):
        g1 = Graph("a")
        x1 = g1.input(TensorSpec((1, 4)), "x")
        g2 = Graph("b")
        g2.input(TensorSpec((2, 2)), "y")
        with pytest.raises(GraphError):
            g2.call(ops.ReLU(), x1)

    def test_stats_counts_categories_and_params(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        y = g.call(ops.Linear(4, 8), x)
        y = g.call(ops.ReLU(), y)
        g.set_outputs(y)
        stats = g.stats()
        assert stats.gemm_op_count == 1
        assert stats.non_gemm_op_count == 1
        assert stats.num_params == 4 * 8 + 8

    def test_consumers_map(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        a = g.call(ops.ReLU(), x)
        b = g.call(ops.Add(), a, x)
        g.set_outputs(b)
        uses = g.consumers()
        assert uses[(x.node_id, 0)] == [a.node_id, b.node_id]
        assert uses[(a.node_id, 0)] == [b.node_id]

    def test_str_rendering(self):
        g = Graph("t")
        x = g.input(TensorSpec((1, 4)), "x")
        g.set_outputs(g.call(ops.ReLU(), x))
        text = str(g)
        assert "graph t" in text and "relu" in text
