"""Tests for the core bench API: config, orchestration, reports, taxonomy."""

import pytest

from repro.core import (
    BenchConfig,
    NonGemmReport,
    PerformanceReport,
    WorkloadReport,
    run_bench,
    traits_for,
)
from repro.errors import ConfigError
from repro.models import build_model


class TestBenchConfig:
    def test_defaults_valid(self):
        config = BenchConfig()
        assert config.platform == "A"

    def test_rejects_empty_models(self):
        with pytest.raises(ConfigError):
            BenchConfig(models=())

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            BenchConfig(batch_sizes=(0,))

    def test_overrides(self):
        config = BenchConfig(overrides={"gpt2": {"seq_len": 4}})
        assert config.override_for("gpt2") == {"seq_len": 4}
        assert config.override_for("bert") == {}


class TestRunBench:
    @pytest.fixture(scope="class")
    def results(self):
        config = BenchConfig(
            models=("gpt2", "vit-b"),
            batch_sizes=(1,),
            flow="pytorch",
            platform="A",
            iterations=2,
        )
        return run_bench(config)

    def test_one_profile_per_point(self, results):
        assert len(results.profiles) == 2
        assert results.profile_for("gpt2", 1).model == "gpt2"
        with pytest.raises(KeyError):
            results.profile_for("gpt2", 99)

    def test_summary_rows_complete(self, results):
        rows = results.summary_rows()
        assert {r["model"] for r in rows} == {"gpt2", "vit-b"}
        for row in rows:
            assert row["gemm_pct"] + row["non_gemm_pct"] == pytest.approx(100, abs=0.1)
            assert row["latency_ms"] > 0

    def test_reports_attached(self, results):
        reports = results.reports[("gpt2", 1)]
        assert isinstance(reports.performance, PerformanceReport)
        assert isinstance(reports.workload, WorkloadReport)
        assert isinstance(reports.non_gemm, NonGemmReport)

    def test_cpu_only_config(self):
        config = BenchConfig(models=("gpt2",), batch_sizes=(1,), use_gpu=False, iterations=1)
        results = run_bench(config)
        assert not results.profiles[0].use_gpu

    def test_seq_override_changes_graph(self):
        config = BenchConfig(
            models=("gpt2",), batch_sizes=(1,), iterations=1,
            overrides={"gpt2": {"seq_len": 4}},
        )
        results = run_bench(config)
        small = results.profiles[0].total_latency_s
        base = run_bench(
            BenchConfig(models=("gpt2",), batch_sizes=(1,), iterations=1)
        ).profiles[0].total_latency_s
        assert small < base


class TestReports:
    @pytest.fixture(scope="class")
    def point(self):
        config = BenchConfig(models=("gpt2",), batch_sizes=(1,), iterations=2)
        results = run_bench(config)
        return results.reports[("gpt2", 1)]

    def test_breakdown_shares_sum(self, point):
        rows = point.performance.breakdown_rows()
        assert sum(r["share_pct"] for r in rows) == pytest.approx(100, abs=0.5)

    def test_top_operator_rows(self, point):
        rows = point.performance.top_operator_rows(5)
        assert len(rows) == 5
        assert rows[0]["latency_us"] >= rows[-1]["latency_us"]

    def test_workload_summary(self, point):
        row = point.workload.summary_row()
        assert row["ops"] == row["gemm_ops"] + row["non_gemm_ops"]
        assert row["params"] > 1e8

    def test_workload_shapes_limited(self, point):
        assert len(point.workload.shape_rows(limit=5)) == 5

    def test_non_gemm_variants(self, point):
        rows = point.non_gemm.variant_rows()
        assert any("gelu" in str(r["variant"]) for r in rows)
        assert all(r["count"] > 0 for r in rows)

    def test_taxonomy_rows_have_traits(self, point):
        rows = point.non_gemm.taxonomy_rows()
        gelu = next(r for r in rows if r["operator"] == "gelu")
        assert gelu["non_linearity"] is True
        softmax = next(r for r in rows if r["operator"] == "softmax")
        assert softmax["reduction"] is True and softmax["dynamicity"] is True

    def test_dominant_row(self, point):
        row = point.non_gemm.dominant_row()
        assert row is not None and row["dominant_group"] != "GEMM-based"

    def test_detr_reports_two_bn_variants(self):
        graph = build_model("detr")
        report = NonGemmReport(graph)
        rows = report.variant_rows()
        norm_variants = [r for r in rows if r["group"] == "Normalization"]
        assert len(norm_variants) >= 2  # frozen BN + LayerNorm (paper's observation)


class TestTraits:
    def test_known_traits(self):
        assert traits_for("nms").dynamic
        assert traits_for("layer_norm").reduction
        assert traits_for("relu").non_linear

    def test_unknown_kind_defaults_conservative(self):
        t = traits_for("alien_op")
        assert not t.single_operation
