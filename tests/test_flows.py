"""Unit tests for deployment flows, fusion, and execution plans."""

import pytest

from repro import ops
from repro.errors import RegistryError
from repro.flows import (
    ExecutionPlan,
    FusionConfig,
    ONNXRuntimeFlow,
    PyTorchEagerFlow,
    TensorRTFlow,
    TorchInductorFlow,
    fuse_graph,
    get_flow,
    group_cost,
)
from repro.hardware import DeviceKind
from repro.ir import DType, Graph, TensorSpec
from repro.ops.base import OpCategory


def conv_bn_relu_graph() -> Graph:
    g = Graph("cbr")
    x = g.input(TensorSpec((1, 3, 8, 8)), "x")
    h = g.call(ops.Conv2d(3, 8, 3, padding=1, bias=False), x)
    h = g.call(ops.FrozenBatchNorm2d(8, precomputed=False), h)
    h = g.call(ops.ReLU(), h)
    g.set_outputs(h)
    return g


def pointwise_chain_graph() -> Graph:
    g = Graph("chain")
    x = g.input(TensorSpec((4, 16)), "x")
    h = g.call(ops.Add(), x, x)
    h = g.call(ops.MulScalar(2.0), h)
    h = g.call(ops.ReLU(), h)
    g.set_outputs(h)
    return g


class TestFlowRegistry:
    def test_aliases(self):
        assert isinstance(get_flow("pt"), PyTorchEagerFlow)
        assert isinstance(get_flow("trt"), TensorRTFlow)
        assert isinstance(get_flow("ort"), ONNXRuntimeFlow)
        assert isinstance(get_flow("inductor"), TorchInductorFlow)

    def test_unknown_flow(self):
        with pytest.raises(RegistryError):
            get_flow("tvm")


class TestFusionEngine:
    def test_no_fusion_config_yields_singletons(self):
        result = fuse_graph(pointwise_chain_graph(), FusionConfig())
        assert all(len(group) == 1 for group in result.groups)

    def test_pointwise_chain_fuses(self):
        result = fuse_graph(
            pointwise_chain_graph(), FusionConfig(pointwise_chains=True)
        )
        assert any(len(group) == 3 for group in result.groups)

    def test_gemm_epilogue_absorbs_bn_relu(self):
        config = FusionConfig(gemm_epilogue=True, epilogue_norms=True)
        result = fuse_graph(conv_bn_relu_graph(), config)
        fused = result.fused_groups
        assert len(fused) == 1 and len(fused[0]) == 3

    def test_epilogue_without_norms_stops_at_bn(self):
        config = FusionConfig(gemm_epilogue=True, epilogue_norms=False)
        result = fuse_graph(conv_bn_relu_graph(), config)
        assert all(len(group) == 1 for group in result.groups)

    def test_multi_consumer_blocks_fusion(self):
        g = Graph("fork")
        x = g.input(TensorSpec((4, 4)), "x")
        a = g.call(ops.ReLU(), x)
        b = g.call(ops.Sigmoid(), a)
        c = g.call(ops.Tanh(), a)  # a has two consumers
        g.set_outputs(g.call(ops.Add(), b, c))
        result = fuse_graph(g, FusionConfig(pointwise_chains=True, max_chain=8))
        for group in result.fused_groups:
            assert a.node_id not in group or len(group) == 1

    def test_graph_output_never_fused_past(self):
        g = Graph("out")
        x = g.input(TensorSpec((4, 4)), "x")
        a = g.call(ops.ReLU(), x)
        b = g.call(ops.Sigmoid(), a)
        g.set_outputs(a, b)  # a is both an output and b's input
        result = fuse_graph(g, FusionConfig(pointwise_chains=True))
        for group in result.fused_groups:
            assert group != (a.node_id, b.node_id)

    def test_groups_are_disjoint_and_cover(self, tiny_transformer_graph):
        for config in (
            FusionConfig(),
            FusionConfig(pointwise_chains=True, chain_norms=True),
            FusionConfig(gemm_epilogue=True, epilogue_norms=True, pointwise_chains=True),
        ):
            result = fuse_graph(tiny_transformer_graph, config)
            seen = [n for g_ in result.groups for n in g_]
            expected = [n.node_id for n in tiny_transformer_graph.compute_nodes()]
            assert sorted(seen) == sorted(expected)


class TestFusionBoundaries:
    """Edge cases of the fuser: exact limits, breaks, QDQ at group edges."""

    @staticmethod
    def _linear_chain(num_pointwise: int) -> Graph:
        g = Graph("epi")
        h = g.call(ops.Linear(16, 16), g.input(TensorSpec((4, 16)), "x"))
        for _ in range(num_pointwise):
            h = g.call(ops.ReLU(), h)
        g.set_outputs(h)
        return g

    def test_epilogue_exactly_at_limit_fuses_completely(self):
        config = FusionConfig(gemm_epilogue=True, max_epilogue=3)
        result = fuse_graph(self._linear_chain(3), config)
        assert [len(group) for group in result.groups] == [4]  # GEMM + 3

    def test_epilogue_one_past_limit_leaves_a_singleton(self):
        config = FusionConfig(gemm_epilogue=True, max_epilogue=3)
        result = fuse_graph(self._linear_chain(4), config)
        assert [len(group) for group in result.groups] == [4, 1]

    @staticmethod
    def _pointwise_chain(length: int) -> Graph:
        g = Graph("chain")
        h = g.input(TensorSpec((4, 16)), "x")
        for _ in range(length):
            h = g.call(ops.ReLU(), h)
        g.set_outputs(h)
        return g

    def test_chain_exactly_at_limit_fuses_completely(self):
        config = FusionConfig(pointwise_chains=True, max_chain=3)
        result = fuse_graph(self._pointwise_chain(3), config)
        assert [len(group) for group in result.groups] == [3]

    def test_chain_one_past_limit_starts_a_new_group(self):
        config = FusionConfig(pointwise_chains=True, max_chain=3)
        result = fuse_graph(self._pointwise_chain(4), config)
        assert [len(group) for group in result.groups] == [3, 1]

    def test_chain_breaks_after_multi_consumer_node(self):
        g = Graph("fork")
        x = g.input(TensorSpec((4, 4)), "x")
        a = g.call(ops.ReLU(), x)
        b = g.call(ops.Sigmoid(), a)  # two consumers below
        g.set_outputs(g.call(ops.Add(), g.call(ops.Tanh(), b), g.call(ops.Sigmoid(), b)))
        result = fuse_graph(g, FusionConfig(pointwise_chains=True, max_chain=8))
        # the fork node itself joins the chain; growth stops right after it
        assert (a.node_id, b.node_id) in result.groups

    def test_quantize_fuses_as_epilogue_edge(self):
        g = Graph("qdq-epilogue")
        h = g.call(ops.Linear(16, 16), g.input(TensorSpec((4, 16)), "x"))
        h = g.call(ops.ReLU(), h)
        q, scales = g.call(ops.Quantize(), h)
        g.set_outputs(q, scales)
        result = fuse_graph(g, FusionConfig(gemm_epilogue=True, max_epilogue=3))
        # Quantize (QDQ) rides the epilogue; its two outputs end the chain
        assert [len(group) for group in result.groups] == [3]

    def test_dequantize_starts_a_chain(self):
        g = Graph("qdq-chain")
        acc = g.input(TensorSpec((4, 16), DType.I32), "acc")
        scales = g.input(TensorSpec((4, 1)), "scales")
        h = g.call(ops.Dequantize(DType.F32), acc, scales)
        g.set_outputs(g.call(ops.ReLU(), h))
        result = fuse_graph(g, FusionConfig(pointwise_chains=True))
        assert any(len(group) == 2 for group in result.groups)

    def test_dequantize_fuses_behind_int8_gemm(self):
        g = Graph("int8-epilogue")
        x = g.input(TensorSpec((4, 16), DType.I8), "x")
        scales = g.input(TensorSpec((4, 1)), "scales")
        acc = g.call(ops.Int8Linear(16, 16), x)
        g.set_outputs(g.call(ops.Dequantize(DType.F16), acc, scales))
        result = fuse_graph(g, FusionConfig(gemm_epilogue=True))
        assert result.fused_groups == [(acc.node_id, g.outputs[0].node_id)]


class TestGroupCost:
    def test_fusion_saves_intermediate_traffic(self):
        g = pointwise_chain_graph()
        node_ids = tuple(n.node_id for n in g.compute_nodes())
        fused = group_cost(g, node_ids)
        separate = [
            n.op.cost([v.spec for v in n.inputs], list(n.outputs)) for n in g.compute_nodes()
        ]
        assert fused.flops == sum(c.flops for c in separate)
        assert fused.total_bytes < sum(c.total_bytes for c in separate)

    def test_external_inputs_counted_once(self):
        g = Graph("dual")
        x = g.input(TensorSpec((4, 4)), "x")
        a = g.call(ops.Add(), x, x)  # same external value twice
        b = g.call(ops.ReLU(), a)
        g.set_outputs(b)
        cost = group_cost(g, (a.node_id, b.node_id))
        assert cost.bytes_read == x.spec.nbytes  # x read once
        assert cost.bytes_written == b.spec.nbytes


class TestPlans:
    def test_eager_plan_one_kernel_per_op(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=True)
        assert plan.num_kernels == len(tiny_transformer_graph.compute_nodes())
        plan.validate()

    def test_plan_validate_catches_duplicates(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=True)
        plan.kernels.append(plan.kernels[0])
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            plan.validate()

    def test_eager_composites_multi_launch(self):
        g = Graph("comp")
        x = g.input(TensorSpec((2, 8)), "x")
        g.set_outputs(g.call(ops.GELU(composite=True), x))
        eager = PyTorchEagerFlow().lower(g, use_gpu=True)
        assert eager.kernels[0].launch_count == 8
        compiled = TorchInductorFlow().lower(g, use_gpu=True)
        assert compiled.kernels[0].launch_count == 1

    def test_fused_kernel_category_gemm_wins(self):
        plan = TensorRTFlow().lower(conv_bn_relu_graph(), use_gpu=True)
        fused = [k for k in plan.kernels if k.fused]
        assert len(fused) == 1
        assert fused[0].category is OpCategory.GEMM

    def test_cpu_lowering_places_on_cpu(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=False)
        assert all(k.device is DeviceKind.CPU for k in plan.kernels)

    def test_ort_fallback_has_transfers(self):
        g = Graph("split")
        x = g.input(TensorSpec((2, 12)), "x")
        a, b, c = g.call(ops.Split(3, dim=1), x)
        g.set_outputs(g.call(ops.Concat(1), a, b, c))
        plan = ONNXRuntimeFlow().lower(g, use_gpu=True)
        split_kernels = [k for k in plan.kernels if "split" in k.op_kinds]
        assert split_kernels[0].device is DeviceKind.CPU
        assert split_kernels[0].transfer_bytes_in > 0
        assert split_kernels[0].transfer_bytes_out > 0

    def test_ort_fallback_disabled_on_cpu_run(self):
        g = Graph("split")
        x = g.input(TensorSpec((2, 12)), "x")
        a, b, c = g.call(ops.Split(3, dim=1), x)
        g.set_outputs(g.call(ops.Concat(1), a, b, c))
        plan = ONNXRuntimeFlow().lower(g, use_gpu=False)
        assert all(k.transfer_bytes_in == 0 for k in plan.kernels)

    def test_fusion_rate_metric(self):
        plan = TensorRTFlow().lower(conv_bn_relu_graph(), use_gpu=True)
        assert plan.non_gemm_fusion_rate() == 1.0  # bn+relu both fused
        eager = PyTorchEagerFlow().lower(conv_bn_relu_graph(), use_gpu=True)
        assert eager.non_gemm_fusion_rate() == 0.0

    def test_flow_gemm_knobs_propagate(self, tiny_transformer_graph):
        plan = TensorRTFlow().lower(tiny_transformer_graph, use_gpu=True)
        assert plan.gemm_peak_scale_f32 == 8.0
        assert plan.gemm_saturation_scale == 0.15
