"""Persistent artifact store tests: correctness under every failure mode.

The product invariant is that the disk tier can make runs faster but never
different: outputs must be byte-identical with the store cold, warm,
disabled, or corrupted, across processes, schema versions, and code
fingerprints.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.models import build_model
from repro.profiler import profile_graph
from repro.profiler.profiler import profile_graph as profile_graph_direct
from repro.sweep.cache import GraphRef, PlanCache
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ArtifactStore, LazyKernelList, plan_from_payload, plan_payload

MODEL = "segformer"
REPO_ROOT = Path(__file__).resolve().parent.parent


def make_store(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


def profile_with(cache: PlanCache, model: str = MODEL, seed: int = 3):
    graph = cache.graph_ref(model, batch_size=1)
    flow = get_flow("pytorch")
    plan = cache.plan(flow, graph, use_gpu=True)
    memory = cache.memory(graph)
    return plan, memory


class TestRoundTrip:
    def test_plan_served_from_disk_is_equivalent(self, tmp_path):
        store = make_store(tmp_path)
        writer = PlanCache(store=store)
        plan, memory = profile_with(writer)

        reader = PlanCache(store=make_store(tmp_path))
        loaded_plan, loaded_memory = profile_with(reader)
        assert reader.stats.disk_hits.get("plan") == 1
        assert reader.stats.disk_hits.get("memory") == 1
        assert reader.stats.misses == {}
        assert loaded_memory == memory
        assert loaded_plan.content_hash() == plan.content_hash()
        # lazily-decoded kernels reconstruct the exact PlannedKernel list
        assert isinstance(loaded_plan.kernels, LazyKernelList)
        assert loaded_plan.kernels == plan.kernels
        assert loaded_plan.covered_node_count() == plan.covered_node_count()
        loaded_plan.validate()

    def test_simulation_identical_with_and_without_store(self, tmp_path):
        import numpy as np

        from repro.runtime.simulator import simulate

        flow = get_flow("pytorch")
        graph = build_model(MODEL, batch_size=1)
        direct = simulate(flow.lower(graph, use_gpu=True), PLATFORM_A)

        profile_with(PlanCache(store=make_store(tmp_path)))
        reader = PlanCache(store=make_store(tmp_path))
        loaded_plan = reader.plan(flow, reader.graph_ref(MODEL, batch_size=1), True)
        loaded = simulate(loaded_plan, PLATFORM_A)
        assert loaded.total_latency_s == direct.total_latency_s
        assert loaded.gpu_energy_j == direct.gpu_energy_j
        assert np.array_equal(loaded.latencies, direct.latencies)

    def test_transform_round_trip_keeps_stats_and_hash(self, tmp_path):
        writer = PlanCache(store=make_store(tmp_path))
        parent = writer.graph_ref("gpt2", batch_size=1)
        first = writer.transform("llm-int8", parent)

        reader = PlanCache(store=make_store(tmp_path))
        loaded = reader.transform("llm-int8", reader.graph_ref("gpt2", batch_size=1))
        assert reader.stats.disk_hits.get("transform") == 1
        assert loaded.stats == first.stats
        # the lazy graph ref names the same derived content hash without
        # re-running the transform...
        assert isinstance(loaded.graph, GraphRef)
        assert loaded.graph.content_hash() == first.graph.content_hash()
        # ...and materializes to the same structure if actually walked
        assert len(loaded.graph.materialize()) == len(first.graph.materialize())


class TestCorruption:
    def corrupt(self, store: ArtifactStore, mutate) -> int:
        entries = list(store.directory.glob("*.pkl"))
        for path in entries:
            mutate(path)
        return len(entries)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.write_bytes(p.read_bytes()[: len(p.read_bytes()) // 2]),
            lambda p: p.write_bytes(b"not a pickle"),
            lambda p: p.write_bytes(b""),
            lambda p: p.write_bytes(pickle.dumps(("wrong", "key"))),
        ],
        ids=["truncated", "garbage", "empty", "wrong-shape"],
    )
    def test_corrupt_entries_recompute_not_crash(self, tmp_path, mutate):
        store = make_store(tmp_path)
        plan, memory = profile_with(PlanCache(store=store))
        assert self.corrupt(store, mutate) > 0

        reader = PlanCache(store=make_store(tmp_path))
        loaded_plan, loaded_memory = profile_with(reader)
        assert reader.stats.disk_hits == {}
        assert reader.stats.misses.get("plan") == 1
        assert loaded_memory == memory
        assert loaded_plan.kernels == plan.kernels

    def test_unreadable_entries_are_removed(self, tmp_path):
        store = make_store(tmp_path)
        profile_with(PlanCache(store=store))
        self.corrupt(store, lambda p: p.write_bytes(b"junk"))
        profile_with(PlanCache(store=make_store(tmp_path)))
        # the poisoned files were dropped and replaced by fresh writes
        for path in store.directory.glob("*.pkl"):
            assert path.read_bytes() != b"junk"


class TestInvalidation:
    def test_schema_version_mismatch_misses(self, tmp_path):
        old = make_store(tmp_path, schema_version=1)
        profile_with(PlanCache(store=old))

        bumped = make_store(tmp_path, schema_version=2)
        reader = PlanCache(store=bumped)
        profile_with(reader)
        assert reader.stats.disk_hits == {}
        assert reader.stats.misses.get("plan") == 1

    def test_code_fingerprint_mismatch_misses(self, tmp_path):
        current = make_store(tmp_path)
        profile_with(PlanCache(store=current))

        other_code = make_store(tmp_path, fingerprint="deadbeef")
        reader = PlanCache(store=other_code)
        profile_with(reader)
        assert reader.stats.disk_hits == {}
        assert reader.stats.misses.get("plan") == 1


class TestEviction:
    def test_size_cap_evicts_oldest(self, tmp_path):
        store = make_store(tmp_path, max_bytes=4096)
        blob = b"x" * 1200
        for index in range(8):  # sequential puts: mtimes strictly ordered
            store.put(("blob", index), blob)
        info = store.info()
        assert info.total_bytes <= 4096
        assert info.entries < 8
        # the most recent entries survived, the oldest were evicted
        assert store.get(("blob", 7)) == blob
        assert store.get(("blob", 0)) is None

    def test_oversized_value_is_not_stored(self, tmp_path):
        store = make_store(tmp_path, max_bytes=64)
        store.put(("blob", 0), b"y" * 4096)
        assert store.info().entries == 0


class TestSharedStore:
    def test_two_processes_share_one_directory(self, tmp_path):
        store_dir = tmp_path / "store"
        script = (
            "from repro.sweep.cache import PlanCache\n"
            "from repro.sweep.store import ArtifactStore\n"
            "from repro.flows import get_flow\n"
            f"cache = PlanCache(store=ArtifactStore({str(store_dir)!r}))\n"
            f"ref = cache.graph_ref({MODEL!r}, batch_size=1)\n"
            "cache.plan(get_flow('pytorch'), ref, use_gpu=True)\n"
            "cache.memory(ref)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=env, cwd=REPO_ROOT
        )
        reader = PlanCache(store=ArtifactStore(store_dir))
        profile_with(reader)
        assert reader.stats.disk_hits.get("plan") == 1
        assert reader.stats.misses == {}


class TestLazyGraphs:
    def test_warm_store_never_builds_the_graph(self, tmp_path, monkeypatch):
        flow = get_flow("pytorch")
        writer = PlanCache(store=make_store(tmp_path))
        profile_with(writer)

        from repro.models import registry

        def forbidden(name, batch_size=1, **overrides):
            raise AssertionError("graph was built despite a warm store")

        reader = PlanCache(store=make_store(tmp_path))
        ref = reader.graph_ref(MODEL, batch_size=1)
        monkeypatch.setattr(registry, "build_model", forbidden)
        monkeypatch.setattr("repro.sweep.cache.build_model", forbidden)
        profile = profile_graph_with_cache(reader, ref, flow)
        assert profile.num_graph_ops > 0
        assert profile.peak_memory_bytes > 0

    def test_graph_ref_hash_matches_built_graph(self):
        cache = PlanCache()
        ref = cache.graph_ref(MODEL, batch_size=1)
        assert isinstance(ref, GraphRef)
        lazy_hash = ref.content_hash()
        built = cache.graph(MODEL, batch_size=1)
        assert built.content_hash() == lazy_hash
        assert ref.materialize() is built
        # once the LRU holds the build, the ref shortcut returns it directly
        assert cache.graph_ref(MODEL, batch_size=1) is built


def profile_graph_with_cache(cache: PlanCache, graph, flow):
    """profile_graph but routed through an isolated cache instance."""
    import repro.profiler.profiler as profiler_module

    original_lower = profiler_module.cached_lower
    original_memory = profiler_module.cached_profile_memory
    profiler_module.cached_lower = cache.plan
    profiler_module.cached_profile_memory = cache.memory
    try:
        return profile_graph_direct(
            graph, flow, PLATFORM_A, use_gpu=True, iterations=2, seed=1,
            model_name=MODEL,
        )
    finally:
        profiler_module.cached_lower = original_lower
        profiler_module.cached_profile_memory = original_memory


class TestExternalCode:
    """Out-of-tree lowering code must invalidate its store entries on edit."""

    FLOW_SOURCE = (
        "from repro.flows.base import DeploymentFlow\n"
        "class ExtFlow(DeploymentFlow):\n"
        "    name = 'ext-flow'\n"
        "    dispatch_profile = 'pytorch-eager'\n"
    )

    def test_in_tree_flows_contribute_nothing(self):
        from repro.sweep.store import external_fingerprint

        flow = get_flow("pytorch")
        assert PlanCache._flow_identity(flow) == ""
        from repro.models import get_model

        assert external_fingerprint(get_model(MODEL).builder) == ""

    def test_edited_external_flow_changes_identity(self, tmp_path, monkeypatch):
        import importlib

        module_dir = tmp_path / "ext"
        module_dir.mkdir()
        module_file = module_dir / "ext_flow_mod.py"
        module_file.write_text(self.FLOW_SOURCE)
        monkeypatch.syspath_prepend(str(module_dir))
        import ext_flow_mod  # noqa: F401  (dynamic test module)

        first = PlanCache._flow_identity(ext_flow_mod.ExtFlow())
        assert first != ""

        module_file.write_text(self.FLOW_SOURCE + "# behavior edited\n")
        os.utime(module_file, (os.path.getmtime(module_file) + 2,) * 2)
        importlib.reload(ext_flow_mod)
        second = PlanCache._flow_identity(ext_flow_mod.ExtFlow())
        assert second != "" and second != first


class TestDetach:
    def test_detach_materializes_records_and_drops_backrefs(self):
        graph = build_model(MODEL, batch_size=1)
        profile = profile_graph(
            graph, get_flow("pytorch"), PLATFORM_A, use_gpu=True, iterations=2, seed=4
        )
        reference = profile_graph(
            graph, get_flow("pytorch"), PLATFORM_A, use_gpu=True, iterations=2, seed=4
        )
        detached = profile.detach()
        assert detached is profile
        assert profile._plan is None
        assert profile._kernel_latency_s is None
        assert profile._gemm_mask is None
        assert profile._group_pos is None
        # aggregates fall back to record-order loops, bit-identically
        assert profile.records == reference.records
        assert profile.latency_by_group() == reference.latency_by_group()
        assert profile.non_gemm_latency_s == reference.non_gemm_latency_s

    def test_detached_profile_pickles_small(self):
        graph = build_model(MODEL, batch_size=1)
        profile = profile_graph(
            graph, get_flow("pytorch"), PLATFORM_A, use_gpu=True, iterations=2, seed=4
        )
        attached = len(pickle.dumps(profile))
        detached = len(pickle.dumps(profile.detach()))
        assert detached < attached


class TestServingCosts:
    """The batch-indexed ``"serving"`` artifact kind (BatchCost entries)."""

    def _compute(self, cache: PlanCache, counter: list):
        from repro.runtime.simulator import simulate
        from repro.serving.cost import batch_cost_from_simulation

        flow = get_flow("pytorch")
        graph = cache.graph_ref(MODEL, batch_size=1)

        def compute(plan):
            counter.append(1)
            return batch_cost_from_simulation(simulate(plan, PLATFORM_A), 1)

        return cache.serving_cost(flow, graph, "gpu", PLATFORM_A, compute)

    def test_round_trip_skips_compute_and_graph_build(self, tmp_path, monkeypatch):
        calls: list = []
        writer = PlanCache(store=make_store(tmp_path))
        written = self._compute(writer, calls)
        assert calls == [1] and written.total_s > 0.0

        from repro.models import registry

        def forbidden(name, batch_size=1, **overrides):
            raise AssertionError("graph was built despite a warm serving store")

        monkeypatch.setattr(registry, "build_model", forbidden)
        monkeypatch.setattr("repro.sweep.cache.build_model", forbidden)
        reader = PlanCache(store=make_store(tmp_path))
        restored = self._compute(reader, calls)
        assert calls == [1]  # served from disk, never recomputed
        assert restored == written
        assert pickle.loads(pickle.dumps(restored)) == written

    def test_platform_signature_invalidates(self, tmp_path):
        from repro.hardware.platform import Platform

        calls: list = []
        cache = PlanCache(store=make_store(tmp_path))
        self._compute(cache, calls)
        # a same-id platform with different numbers must miss, not alias
        twin = Platform(
            platform_id=PLATFORM_A.platform_id,
            description=PLATFORM_A.description,
            cpu=PLATFORM_A.cpu,
            gpu=PLATFORM_A.gpu,
            pcie_bandwidth=PLATFORM_A.pcie_bandwidth / 2,
        )
        assert twin.content_signature() != PLATFORM_A.content_signature()
        flow = get_flow("pytorch")
        graph = cache.graph_ref(MODEL, batch_size=1)
        fresh = PlanCache(store=make_store(tmp_path))
        sentinel = object()
        result = fresh.serving_cost(flow, graph, "gpu", twin, lambda plan: sentinel)
        assert result is sentinel  # recomputed, not served from the store

    def test_serving_result_pickles_lean(self):
        import numpy as np

        from repro.serving import ServingConfig, ServingEngine, make_trace

        engine = ServingEngine(ServingConfig(model=MODEL, platform="A"))
        rate = 1.0 / engine.base_latency_s()
        trace = make_trace("poisson", rate, 6, np.random.default_rng(0))
        result = engine.run(trace)
        blob = pickle.dumps(result)
        # plan-free by construction: no ExecutionPlan/Graph backrefs ride
        # along (the serving analogue of ProfileResult.detach()).
        assert b"ExecutionPlan" not in blob and b"PlannedKernel" not in blob
        restored = pickle.loads(blob)
        assert restored.records == result.records
        assert restored.busy_s == result.busy_s


class TestPayloads:
    def test_plan_payload_round_trips_exactly(self):
        graph = build_model("swin-t", batch_size=1)
        for flow_name in ("pytorch", "tensorrt", "onnxruntime"):
            plan = get_flow(flow_name).lower(graph, use_gpu=True)
            restored = plan_from_payload(
                pickle.loads(pickle.dumps(plan_payload(plan))), graph
            )
            assert list(restored.kernels) == plan.kernels
            assert restored.content_hash() == plan.content_hash()
            assert restored.non_gemm_fusion_rate() == plan.non_gemm_fusion_rate()

    def test_sweep_result_reports_disk_hits(self, tmp_path, monkeypatch):
        from repro.sweep import cache as cache_module
        from repro.sweep.runner import SweepRunner

        spec = SweepSpec(models=(MODEL,), batch_sizes=(1,), iterations=2)
        monkeypatch.setattr(
            cache_module, "PLAN_CACHE", PlanCache(store=make_store(tmp_path))
        )
        monkeypatch.setattr(
            "repro.sweep.runner.PLAN_CACHE", cache_module.PLAN_CACHE
        )
        first = SweepRunner().run(spec)
        assert first.cache_info["misses"].get("plan") == 1
        assert "disk_hits" in first.cache_info

        fresh = PlanCache(store=make_store(tmp_path))
        monkeypatch.setattr(cache_module, "PLAN_CACHE", fresh)
        monkeypatch.setattr("repro.sweep.runner.PLAN_CACHE", fresh)
        second = SweepRunner().run(spec)
        assert second.cache_info["disk_hits"].get("plan") == 1
        assert second.cache_info["misses"].get("plan") is None
