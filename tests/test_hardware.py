"""Unit tests for the hardware layer: devices, platforms, roofline, energy."""

import pytest

from repro.errors import RegistryError
from repro.hardware import (
    A100,
    EPYC_7763,
    PLATFORM_A,
    PLATFORM_B,
    DeviceKind,
    EnergyAccumulator,
    dispatch_profile,
    estimate_kernel,
    gemm_saturation,
    get_device,
    get_platform,
)
from repro.ir.dtype import DType
from repro.ops.base import OpCategory, OpCost


class TestDevices:
    def test_presets_lookup(self):
        assert get_device("nvidia-a100-80gb") is A100
        with pytest.raises(RegistryError):
            get_device("tpu-v9")

    def test_gemm_peak_by_dtype(self):
        assert A100.gemm_peak(DType.I8) == 624e12  # paper Table III
        assert A100.gemm_peak(DType.F16) == 312e12
        assert A100.gemm_peak(DType.F32) < A100.gemm_peak(DType.F16)

    def test_cpu_has_no_launch_overhead(self):
        assert EPYC_7763.kernel_launch_s == 0.0
        assert not EPYC_7763.is_gpu


class TestPlatforms:
    def test_paper_platforms(self):
        assert PLATFORM_A.cpu.name == "amd-epyc-7763"
        assert PLATFORM_A.gpu.name == "nvidia-a100-80gb"
        assert PLATFORM_B.gpu.name == "nvidia-rtx-4090"
        assert get_platform("a") is PLATFORM_A

    def test_cpu_only_variant(self):
        cpu_only = PLATFORM_A.cpu_only()
        assert not cpu_only.has_gpu
        assert cpu_only.accelerator is PLATFORM_A.cpu
        with pytest.raises(RegistryError):
            cpu_only.device(DeviceKind.GPU)

    def test_transfer_time_scales_with_bytes(self):
        small = PLATFORM_A.transfer_time(1024)
        large = PLATFORM_A.transfer_time(1024 * 1024 * 100)
        assert large > small > 0


class TestRoofline:
    def test_compute_bound_gemm(self):
        cost = OpCost(flops=10**12, bytes_read=10**6, bytes_written=10**6)
        est = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=5e-6)
        assert est.bound == "compute"
        assert est.compute_s > est.memory_s

    def test_memory_bound_elementwise(self):
        cost = OpCost(flops=10**6, bytes_read=10**9, bytes_written=10**9)
        est = estimate_kernel(A100, OpCategory.ELEMENTWISE, cost, DType.F32, dispatch_s=5e-6)
        assert est.bound == "memory"

    def test_dispatch_bound_small_kernel(self):
        cost = OpCost(flops=100, bytes_read=100, bytes_written=100)
        est = estimate_kernel(A100, OpCategory.ELEMENTWISE, cost, DType.F32, dispatch_s=20e-6)
        assert est.bound == "dispatch"
        assert est.total_s == pytest.approx(20e-6)

    def test_metadata_only_costs_dispatch(self):
        est = estimate_kernel(
            A100, OpCategory.MEMORY, OpCost(), DType.F32, dispatch_s=4e-6, metadata_only=True
        )
        assert est.total_s == pytest.approx(4e-6)
        assert est.device_s == 0.0

    def test_launch_count_multiplies_overheads(self):
        cost = OpCost(flops=1000, bytes_read=1000, bytes_written=1000)
        one = estimate_kernel(A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=5e-6)
        six = estimate_kernel(
            A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=5e-6, launch_count=6
        )
        assert six.total_s == pytest.approx(6 * one.total_s, rel=0.2)

    def test_custom_kernel_penalty_slows(self):
        cost = OpCost(flops=10**7, bytes_read=10**8, bytes_written=10**8)
        normal = estimate_kernel(A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=1e-6)
        custom = estimate_kernel(
            A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=1e-6, is_custom=True
        )
        assert custom.total_s > normal.total_s

    def test_cpu_adds_dispatch_serially(self):
        cost = OpCost(flops=10**9, bytes_read=10**7, bytes_written=10**7)
        est = estimate_kernel(EPYC_7763, OpCategory.GEMM, cost, DType.F32, dispatch_s=5e-6)
        assert est.total_s > max(est.compute_s, est.memory_s)  # includes dispatch

    def test_int8_faster_than_f16_gemm(self):
        cost = OpCost(flops=10**11, bytes_read=10**7, bytes_written=10**7)
        f16 = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        i8 = estimate_kernel(A100, OpCategory.GEMM, cost, DType.I8, dispatch_s=1e-6)
        assert i8.total_s < f16.total_s

    def test_tf32_scale_applies_to_f32_only(self):
        cost = OpCost(flops=10**11, bytes_read=10**6, bytes_written=10**6)
        base = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F32, dispatch_s=1e-6)
        tf32 = estimate_kernel(
            A100, OpCategory.GEMM, cost, DType.F32, dispatch_s=1e-6, gemm_peak_scale_f32=8.0
        )
        f16 = estimate_kernel(
            A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6, gemm_peak_scale_f32=8.0
        )
        f16_base = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        assert tf32.compute_s < base.compute_s
        assert f16.compute_s == pytest.approx(f16_base.compute_s)


class TestSaturation:
    def test_half_efficiency_at_saturation_point(self):
        assert gemm_saturation(100, 100) == pytest.approx(0.5)

    def test_large_problems_approach_one(self):
        assert gemm_saturation(10**12, 800e6) > 0.999

    def test_zero_saturation_disables(self):
        assert gemm_saturation(10, 0) == 1.0

    def test_small_gemm_runs_below_peak(self):
        small = OpCost(flops=10**7, bytes_read=10**4, bytes_written=10**4)
        big = OpCost(flops=10**12, bytes_read=10**4, bytes_written=10**4)
        est_small = estimate_kernel(A100, OpCategory.GEMM, small, DType.F16, dispatch_s=0.0)
        est_big = estimate_kernel(A100, OpCategory.GEMM, big, DType.F16, dispatch_s=0.0)
        rate_small = small.flops / est_small.compute_s
        rate_big = big.flops / est_big.compute_s
        assert rate_small < rate_big / 10


class TestDispatchProfiles:
    def test_eager_slower_than_engine(self):
        eager = dispatch_profile("eager")
        engine = dispatch_profile("engine")
        assert eager.gpu_kernel > engine.gpu_kernel

    def test_metadata_cheaper_than_kernel(self):
        for name in ("eager", "compiled", "engine", "ort"):
            profile = dispatch_profile(name)
            assert profile.gpu_metadata < profile.gpu_kernel
            assert profile.cpu_metadata < profile.cpu_kernel

    def test_unknown_profile(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            dispatch_profile("jit")


class TestEnergy:
    def test_energy_grows_with_utilization(self):
        cost_hot = OpCost(flops=10**12, bytes_read=10**6, bytes_written=10**6)
        est_hot = estimate_kernel(A100, OpCategory.GEMM, cost_hot, DType.F16, dispatch_s=0.0)
        acc = EnergyAccumulator(A100)
        acc.add_kernel(est_hot)
        hot_j = acc.total_j(est_hot.total_s)
        idle_j = A100.idle_power_w * est_hot.total_s
        assert hot_j > idle_j

    def test_idle_floor(self):
        acc = EnergyAccumulator(A100)
        assert acc.total_j(1.0) == pytest.approx(A100.idle_power_w)
