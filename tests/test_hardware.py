"""Unit tests for the hardware layer: devices, platforms, roofline, energy."""

import numpy as np
import pytest

from repro.errors import RegistryError
from repro.hardware import (
    A100,
    EPYC_7763,
    PLATFORM_A,
    PLATFORM_B,
    PLATFORM_C,
    RYZEN_7940HS,
    XDNA_NPU,
    DeviceKind,
    EnergyAccumulator,
    Link,
    Platform,
    as_device_kind,
    dispatch_profile,
    efficiency_for,
    efficiency_for_kind,
    estimate_kernel,
    gemm_saturation,
    get_device,
    get_platform,
    list_platforms,
    register_device,
    register_platform,
)
from repro.ir.dtype import DType
from repro.ops.base import OpCategory, OpCost


class TestDevices:
    def test_presets_lookup(self):
        assert get_device("nvidia-a100-80gb") is A100
        with pytest.raises(RegistryError):
            get_device("tpu-v9")

    def test_gemm_peak_by_dtype(self):
        assert A100.gemm_peak(DType.I8) == 624e12  # paper Table III
        assert A100.gemm_peak(DType.F16) == 312e12
        assert A100.gemm_peak(DType.F32) < A100.gemm_peak(DType.F16)

    def test_cpu_has_no_launch_overhead(self):
        assert EPYC_7763.kernel_launch_s == 0.0
        assert not EPYC_7763.is_gpu


class TestPlatforms:
    def test_paper_platforms(self):
        assert PLATFORM_A.cpu.name == "amd-epyc-7763"
        assert PLATFORM_A.gpu.name == "nvidia-a100-80gb"
        assert PLATFORM_B.gpu.name == "nvidia-rtx-4090"
        assert get_platform("a") is PLATFORM_A

    def test_cpu_only_variant(self):
        cpu_only = PLATFORM_A.cpu_only()
        assert not cpu_only.has_gpu
        assert cpu_only.accelerator is PLATFORM_A.cpu
        with pytest.raises(RegistryError):
            cpu_only.device(DeviceKind.GPU)

    def test_transfer_time_scales_with_bytes(self):
        small = PLATFORM_A.transfer_time(1024)
        large = PLATFORM_A.transfer_time(1024 * 1024 * 100)
        assert large > small > 0


class TestDeviceKinds:
    def test_as_device_kind_accepts_legacy_booleans(self):
        assert as_device_kind(True) is DeviceKind.GPU
        assert as_device_kind(False) is DeviceKind.CPU

    def test_as_device_kind_accepts_strings_and_kinds(self):
        assert as_device_kind("npu") is DeviceKind.NPU
        assert as_device_kind("GPU") is DeviceKind.GPU
        assert as_device_kind(DeviceKind.CPU) is DeviceKind.CPU
        with pytest.raises(RegistryError, match="tpu"):
            as_device_kind("tpu")

    def test_async_dispatch_per_kind(self):
        assert A100.async_dispatch and XDNA_NPU.async_dispatch
        assert not EPYC_7763.async_dispatch

    def test_npu_efficiency_table(self):
        gemm = efficiency_for_kind(OpCategory.GEMM, DeviceKind.NPU)
        misc = efficiency_for_kind(OpCategory.MISC, DeviceKind.NPU)
        assert gemm.compute > 3 * misc.compute  # matrix engine, not much else
        # CPU/GPU kind lookups read the exact historical tables
        for category in OpCategory:
            assert efficiency_for_kind(category, DeviceKind.GPU) == efficiency_for(
                category, is_gpu=True
            )
            assert efficiency_for_kind(category, DeviceKind.CPU) == efficiency_for(
                category, is_gpu=False
            )

    def test_dispatch_for_npu_defaults_to_gpu_overheads(self):
        profile = dispatch_profile("ort")
        assert profile.dispatch_for(DeviceKind.NPU, False) == profile.gpu_kernel
        assert profile.dispatch_for(DeviceKind.GPU, True) == profile.gpu_metadata
        assert profile.dispatch_for(DeviceKind.CPU, False) == profile.cpu_kernel

    def test_register_device_rejects_duplicates(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_device(A100)


class TestPlatformC:
    def test_three_devices_one_per_kind(self):
        assert len(PLATFORM_C.devices) == 3
        assert PLATFORM_C.kinds == {DeviceKind.CPU, DeviceKind.GPU, DeviceKind.NPU}
        assert PLATFORM_C.cpu is RYZEN_7940HS
        assert PLATFORM_C.npu is XDNA_NPU
        assert PLATFORM_C.device(DeviceKind.NPU).kind is DeviceKind.NPU

    def test_registered_and_listed(self):
        assert get_platform("c") is PLATFORM_C
        assert PLATFORM_C in list_platforms()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(RegistryError, match="two cpu devices"):
            Platform("dup", "two hosts", devices=(EPYC_7763, RYZEN_7940HS))

    def test_platform_requires_host_cpu(self):
        with pytest.raises(RegistryError, match="no host CPU"):
            Platform("headless", "gpu only", devices=(A100,))

    def test_mixed_constructor_forms_rejected(self):
        with pytest.raises(RegistryError, match="mixes"):
            Platform("mixed", "both forms", cpu=EPYC_7763, devices=(XDNA_NPU,))

    def test_links_are_read_only(self):
        with pytest.raises(TypeError):
            PLATFORM_C.links[(DeviceKind.CPU, DeviceKind.NPU)] = Link(1e9, 1e-6)

    def test_platform_pickles_round_trip(self):
        import pickle

        clone = pickle.loads(pickle.dumps(PLATFORM_C))
        assert clone.platform_id == "C"
        assert clone.kinds == PLATFORM_C.kinds
        one_mb = 1024 * 1024
        assert clone.transfer_time(
            DeviceKind.CPU, DeviceKind.NPU, one_mb
        ) == PLATFORM_C.transfer_time(DeviceKind.CPU, DeviceKind.NPU, one_mb)


class TestTransferLinks:
    def test_same_device_transfer_is_free(self):
        for kind in DeviceKind:
            assert PLATFORM_C.transfer_time(kind, kind, 10**9) == 0.0
        assert PLATFORM_C.link(DeviceKind.CPU, DeviceKind.CPU) is None

    def test_asymmetric_npu_links(self):
        one_mb = 1024 * 1024
        down = PLATFORM_C.transfer_time(DeviceKind.CPU, DeviceKind.NPU, one_mb)
        back = PLATFORM_C.transfer_time(DeviceKind.NPU, DeviceKind.CPU, one_mb)
        assert down != back
        assert down == pytest.approx(25e-6 + one_mb / 25e9)
        assert back == pytest.approx(20e-6 + one_mb / 30e9)

    def test_reverse_entry_serves_undeclared_direction(self):
        # only (gpu, npu) is declared; the reverse reads the same link
        forward = PLATFORM_C.link(DeviceKind.GPU, DeviceKind.NPU)
        assert PLATFORM_C.link(DeviceKind.NPU, DeviceKind.GPU) is forward

    def test_undeclared_pair_falls_back_to_host_link(self):
        # A/B declare no links: every pair prices as the historical PCIe hop
        nbytes = 4096
        assert PLATFORM_A.transfer_time(
            DeviceKind.GPU, DeviceKind.CPU, nbytes
        ) == PLATFORM_A.transfer_time(nbytes)

    def test_link_time_formula(self):
        link = Link(bandwidth=10e9, latency_s=5e-6)
        assert link.time(10**9) == pytest.approx(5e-6 + 0.1)


class TestPlatformRegistry:
    def test_lowercase_registered_id_is_reachable(self):
        edge = Platform("edge-soc-test", "lowercase id", cpu=RYZEN_7940HS)
        register_platform(edge, replace=True)
        assert get_platform("edge-soc-test") is edge
        assert get_platform("EDGE-SOC-TEST") is edge

    def test_reserved_cpu_suffix_rejected(self):
        with pytest.raises(RegistryError, match="reserved"):
            register_platform(Platform("X-cpu", "derived id", cpu=EPYC_7763))

    def test_cpu_only_ids_resolve_through_registry(self):
        derived = get_platform("A-cpu")
        assert derived.platform_id == "A-cpu"
        assert not derived.has_gpu
        assert derived is PLATFORM_A.cpu_only()
        with pytest.raises(RegistryError, match="unknown platform"):
            get_platform("Z-cpu")

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_platform(Platform("A", "twin", cpu=EPYC_7763))


class TestDeviceEnergy:
    def _energy(self, device, mask, utilization, device_s, wall_s):
        from repro.runtime.simulator import _device_energy

        return _device_energy(
            device,
            np.asarray(mask, dtype=bool),
            np.asarray(utilization, dtype=np.float64),
            np.asarray(device_s, dtype=np.float64),
            wall_s,
        )

    def test_idle_floor_with_no_kernels(self):
        assert self._energy(A100, [], [], [], 2.0) == pytest.approx(
            A100.idle_power_w * 2.0
        )

    def test_zero_utilization_draws_idle_only(self):
        joules = self._energy(A100, [True], [0.0], [1e-3], 1e-3)
        assert joules == pytest.approx(A100.idle_power_w * 1e-3)

    def test_metadata_only_kernels_add_no_dynamic_power(self):
        # metadata-only kernels have device_s == 0, so the mask is irrelevant
        joules = self._energy(A100, [True, True], [0.0, 1.0], [0.0, 0.0], 1e-3)
        assert joules == pytest.approx(A100.idle_power_w * 1e-3)

    def test_idle_dynamic_split(self):
        wall, busy = 2e-3, 1e-3
        joules = self._energy(A100, [True], [1.0], [busy], wall)
        expected = A100.idle_power_w * wall + (
            A100.peak_power_w - A100.idle_power_w
        ) * busy
        assert joules == pytest.approx(expected)

    def test_other_devices_kernels_masked_out(self):
        joules = self._energy(A100, [False], [1.0], [1e-3], 1e-3)
        assert joules == pytest.approx(A100.idle_power_w * 1e-3)

    def test_matches_accumulator(self):
        cost = OpCost(flops=10**11, bytes_read=10**7, bytes_written=10**7)
        est = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        acc = EnergyAccumulator(A100)
        acc.add_kernel(est)
        vectorized = self._energy(
            A100, [True], [est.utilization], [est.device_s], est.total_s
        )
        assert vectorized == acc.total_j(est.total_s)


class TestMissingDeviceError:
    def test_vectorized_error_names_kernels_and_kind(self):
        from repro.flows import get_flow
        from repro.models import build_model
        from repro.runtime.simulator import simulate

        plan = get_flow("npu-offload").lower(
            build_model("swin-t", batch_size=1), use_gpu=DeviceKind.NPU
        )
        with pytest.raises(RegistryError, match="has no NPU") as excinfo:
            simulate(plan, PLATFORM_A)
        message = str(excinfo.value)
        assert "npu-offload" in message
        # at least one offending kernel is named
        npu_kernels = [k.name for k in plan.kernels if k.device is DeviceKind.NPU]
        assert any(name in message for name in npu_kernels[:5])


class TestRoofline:
    def test_compute_bound_gemm(self):
        cost = OpCost(flops=10**12, bytes_read=10**6, bytes_written=10**6)
        est = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=5e-6)
        assert est.bound == "compute"
        assert est.compute_s > est.memory_s

    def test_memory_bound_elementwise(self):
        cost = OpCost(flops=10**6, bytes_read=10**9, bytes_written=10**9)
        est = estimate_kernel(A100, OpCategory.ELEMENTWISE, cost, DType.F32, dispatch_s=5e-6)
        assert est.bound == "memory"

    def test_dispatch_bound_small_kernel(self):
        cost = OpCost(flops=100, bytes_read=100, bytes_written=100)
        est = estimate_kernel(A100, OpCategory.ELEMENTWISE, cost, DType.F32, dispatch_s=20e-6)
        assert est.bound == "dispatch"
        assert est.total_s == pytest.approx(20e-6)

    def test_metadata_only_costs_dispatch(self):
        est = estimate_kernel(
            A100, OpCategory.MEMORY, OpCost(), DType.F32, dispatch_s=4e-6, metadata_only=True
        )
        assert est.total_s == pytest.approx(4e-6)
        assert est.device_s == 0.0

    def test_launch_count_multiplies_overheads(self):
        cost = OpCost(flops=1000, bytes_read=1000, bytes_written=1000)
        one = estimate_kernel(A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=5e-6)
        six = estimate_kernel(
            A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=5e-6, launch_count=6
        )
        assert six.total_s == pytest.approx(6 * one.total_s, rel=0.2)

    def test_custom_kernel_penalty_slows(self):
        cost = OpCost(flops=10**7, bytes_read=10**8, bytes_written=10**8)
        normal = estimate_kernel(A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=1e-6)
        custom = estimate_kernel(
            A100, OpCategory.NORMALIZATION, cost, DType.F32, dispatch_s=1e-6, is_custom=True
        )
        assert custom.total_s > normal.total_s

    def test_cpu_adds_dispatch_serially(self):
        cost = OpCost(flops=10**9, bytes_read=10**7, bytes_written=10**7)
        est = estimate_kernel(EPYC_7763, OpCategory.GEMM, cost, DType.F32, dispatch_s=5e-6)
        assert est.total_s > max(est.compute_s, est.memory_s)  # includes dispatch

    def test_int8_faster_than_f16_gemm(self):
        cost = OpCost(flops=10**11, bytes_read=10**7, bytes_written=10**7)
        f16 = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        i8 = estimate_kernel(A100, OpCategory.GEMM, cost, DType.I8, dispatch_s=1e-6)
        assert i8.total_s < f16.total_s

    def test_tf32_scale_applies_to_f32_only(self):
        cost = OpCost(flops=10**11, bytes_read=10**6, bytes_written=10**6)
        base = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F32, dispatch_s=1e-6)
        tf32 = estimate_kernel(
            A100, OpCategory.GEMM, cost, DType.F32, dispatch_s=1e-6, gemm_peak_scale_f32=8.0
        )
        f16 = estimate_kernel(
            A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6, gemm_peak_scale_f32=8.0
        )
        f16_base = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        assert tf32.compute_s < base.compute_s
        assert f16.compute_s == pytest.approx(f16_base.compute_s)


class TestSaturation:
    def test_half_efficiency_at_saturation_point(self):
        assert gemm_saturation(100, 100) == pytest.approx(0.5)

    def test_large_problems_approach_one(self):
        assert gemm_saturation(10**12, 800e6) > 0.999

    def test_zero_saturation_disables(self):
        assert gemm_saturation(10, 0) == 1.0

    def test_small_gemm_runs_below_peak(self):
        small = OpCost(flops=10**7, bytes_read=10**4, bytes_written=10**4)
        big = OpCost(flops=10**12, bytes_read=10**4, bytes_written=10**4)
        est_small = estimate_kernel(A100, OpCategory.GEMM, small, DType.F16, dispatch_s=0.0)
        est_big = estimate_kernel(A100, OpCategory.GEMM, big, DType.F16, dispatch_s=0.0)
        rate_small = small.flops / est_small.compute_s
        rate_big = big.flops / est_big.compute_s
        assert rate_small < rate_big / 10


class TestDispatchProfiles:
    def test_eager_slower_than_engine(self):
        eager = dispatch_profile("eager")
        engine = dispatch_profile("engine")
        assert eager.gpu_kernel > engine.gpu_kernel

    def test_metadata_cheaper_than_kernel(self):
        for name in ("eager", "compiled", "engine", "ort"):
            profile = dispatch_profile(name)
            assert profile.gpu_metadata < profile.gpu_kernel
            assert profile.cpu_metadata < profile.cpu_kernel

    def test_unknown_profile(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            dispatch_profile("jit")


class TestEnergy:
    def test_energy_grows_with_utilization(self):
        cost_hot = OpCost(flops=10**12, bytes_read=10**6, bytes_written=10**6)
        est_hot = estimate_kernel(A100, OpCategory.GEMM, cost_hot, DType.F16, dispatch_s=0.0)
        acc = EnergyAccumulator(A100)
        acc.add_kernel(est_hot)
        hot_j = acc.total_j(est_hot.total_s)
        idle_j = A100.idle_power_w * est_hot.total_s
        assert hot_j > idle_j

    def test_idle_floor(self):
        acc = EnergyAccumulator(A100)
        assert acc.total_j(1.0) == pytest.approx(A100.idle_power_w)
