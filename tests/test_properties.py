"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.errors import ShapeError
from repro.flows import FusionConfig, PyTorchEagerFlow, TensorRTFlow, fuse_graph, group_cost
from repro.hardware import A100, EPYC_7763, estimate_kernel
from repro.ir import DType, Graph, TensorSpec, broadcast_shapes
from repro.ops.base import OpCategory, OpCost
from repro.runtime import run_graph
from tests.conftest import run_op

dims = st.integers(min_value=1, max_value=8)
shapes = st.lists(dims, min_size=1, max_size=4).map(tuple)


class TestShapeProperties:
    @given(shapes)
    def test_numel_is_product(self, shape):
        spec = TensorSpec(shape)
        assert spec.numel == int(np.prod(shape))
        assert spec.nbytes == spec.numel * 4

    @given(shapes, shapes)
    def test_broadcast_matches_numpy(self, a, b):
        try:
            expected = np.broadcast_shapes(a, b)
        except ValueError:
            with pytest.raises(ShapeError):
                broadcast_shapes(a, b)
            return
        assert broadcast_shapes(a, b) == tuple(expected)

    @given(shapes, shapes)
    def test_broadcast_commutes(self, a, b):
        try:
            left = broadcast_shapes(a, b)
        except ShapeError:
            return
        assert left == broadcast_shapes(b, a)

    @given(shapes)
    def test_reshape_flatten_roundtrip(self, shape):
        spec = TensorSpec(shape)
        flat = ops.Reshape((-1,)).infer_spec([spec])[0]
        assert flat.numel == spec.numel
        back = ops.Reshape(shape).infer_spec([flat])[0]
        assert back.shape == spec.shape


class TestSoftmaxProperties:
    @given(
        st.integers(2, 6),
        st.integers(2, 10),
        st.floats(0.1, 50.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_softmax_is_distribution(self, rows, cols, scale, seed):
        x = (np.random.default_rng(seed).normal(size=(rows, cols)) * scale).astype(np.float32)
        y = run_op(ops.Softmax(-1), x)
        assert np.all(y >= 0)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-4)

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_softmax_preserves_argmax(self, cols, seed):
        x = np.random.default_rng(seed).normal(size=(3, cols)).astype(np.float32)
        y = run_op(ops.Softmax(-1), x)
        np.testing.assert_array_equal(np.argmax(x, -1), np.argmax(y, -1))


class TestNMSProperties:
    @given(st.integers(1, 40), st.floats(0.1, 0.9), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_nms_invariants(self, n, iou_thr, seed):
        gen = np.random.default_rng(seed)
        centers = gen.uniform(10, 90, size=(n, 2))
        sizes = gen.uniform(2, 30, size=(n, 2))
        boxes = np.concatenate([centers - sizes / 2, centers + sizes / 2], axis=1).astype(np.float32)
        scores = gen.uniform(0.01, 1.0, size=n).astype(np.float32)
        op = ops.NMS(iou_threshold=iou_thr, score_threshold=0.0, max_outputs=n)
        kept, count = op.run([boxes, scores], {})
        k = int(count)
        assert 1 <= k <= n
        # every kept box is one of the inputs
        for i in range(k):
            assert any(np.array_equal(kept[i], b) for b in boxes)
        # no two survivors overlap beyond the threshold
        from repro.ops.roi import _iou_one_to_many

        for i in range(k):
            for j in range(i + 1, k):
                iou = _iou_one_to_many(kept[i], kept[j : j + 1])[0]
                assert iou <= iou_thr + 1e-6

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_highest_score_always_kept(self, n, seed):
        gen = np.random.default_rng(seed)
        boxes = np.concatenate(
            [gen.uniform(0, 50, (n, 2)), gen.uniform(60, 100, (n, 2))], axis=1
        ).astype(np.float32)
        scores = gen.uniform(0.1, 1.0, size=n).astype(np.float32)
        op = ops.NMS(iou_threshold=0.5, score_threshold=0.0, max_outputs=n)
        kept, count = op.run([boxes, scores], {})
        best = boxes[int(np.argmax(scores))]
        assert any(np.array_equal(kept[i], best) for i in range(int(count)))


class TestQuantizationProperties:
    @given(st.integers(1, 8), st.integers(4, 64), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_roundtrip_error_bound(self, rows, cols, seed):
        x = np.random.default_rng(seed).normal(0, 2.0, size=(rows, cols)).astype(np.float32)
        q, scale = ops.Quantize().run([x], {})
        recon = q.astype(np.float32) * scale.astype(np.float32)
        # absmax rowwise quantization error is bounded by half a step
        step = np.abs(x).max(axis=-1, keepdims=True) / 127.0
        assert np.all(np.abs(recon - x) <= step * 0.5 + 1e-5)

    @given(st.integers(1, 6), st.integers(2, 32), st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_quantized_values_in_range(self, rows, cols, seed):
        x = (np.random.default_rng(seed).normal(size=(rows, cols)) * 100).astype(np.float32)
        q, _ = ops.Quantize().run([x], {})
        assert q.dtype == np.int8
        assert np.all((q >= -127) & (q <= 127))


class TestFusionProperties:
    @st.composite
    def chain_graphs(draw):
        """Random single-chain graphs of pointwise ops."""
        length = draw(st.integers(1, 8))
        pool = [ops.ReLU, ops.Sigmoid, ops.Tanh, ops.Abs, lambda: ops.MulScalar(2.0)]
        g = Graph("chain")
        x = g.input(TensorSpec((2, 8)), "x")
        h = x
        for i in range(length):
            op_factory = pool[draw(st.integers(0, len(pool) - 1))]
            h = g.call(op_factory(), h)
        g.set_outputs(h)
        return g

    @given(chain_graphs())
    @settings(max_examples=30, deadline=None)
    def test_fusion_covers_all_nodes_disjointly(self, graph):
        for config in (FusionConfig(), FusionConfig(pointwise_chains=True, max_chain=4)):
            result = fuse_graph(graph, config)
            flat = [n for group in result.groups for n in group]
            assert sorted(flat) == sorted(n.node_id for n in graph.compute_nodes())
            assert len(flat) == len(set(flat))

    @given(chain_graphs())
    @settings(max_examples=30, deadline=None)
    def test_fused_plan_never_more_kernels(self, graph):
        eager = PyTorchEagerFlow().lower(graph, use_gpu=True)
        fused = TensorRTFlow().lower(graph, use_gpu=True)
        assert fused.num_kernels <= eager.num_kernels

    @given(chain_graphs())
    @settings(max_examples=30, deadline=None)
    def test_group_cost_conserves_flops(self, graph):
        node_ids = tuple(n.node_id for n in graph.compute_nodes())
        fused = group_cost(graph, node_ids)
        total = sum(
            n.op.cost([v.spec for v in n.inputs], list(n.outputs)).flops
            for n in graph.compute_nodes()
        )
        assert fused.flops == total

    @given(chain_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_executor_deterministic(self, graph, seed):
        x = np.random.default_rng(seed).normal(size=(2, 8)).astype(np.float32)
        a = run_graph(graph, {"x": x}, seed=0)[0]
        b = run_graph(graph, {"x": x}, seed=0)[0]
        np.testing.assert_array_equal(a, b)


class TestCostModelProperties:
    @given(
        st.integers(1, 10**12),
        st.integers(1, 10**10),
        st.sampled_from([OpCategory.GEMM, OpCategory.ELEMENTWISE, OpCategory.NORMALIZATION]),
    )
    @settings(max_examples=50)
    def test_latency_positive_and_monotone(self, flops, nbytes, category):
        cost = OpCost(flops=flops, bytes_read=nbytes, bytes_written=nbytes)
        bigger = OpCost(flops=flops * 2, bytes_read=nbytes * 2, bytes_written=nbytes * 2)
        for device in (A100, EPYC_7763):
            small_est = estimate_kernel(device, category, cost, DType.F32, dispatch_s=1e-6)
            big_est = estimate_kernel(device, category, bigger, DType.F32, dispatch_s=1e-6)
            assert small_est.total_s > 0
            assert big_est.total_s >= small_est.total_s

    @given(st.integers(1, 10**10))
    @settings(max_examples=30)
    def test_gpu_total_at_least_host_and_device(self, flops):
        cost = OpCost(flops=flops, bytes_read=1000, bytes_written=1000)
        est = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=5e-6)
        assert est.total_s >= est.host_s - 1e-12
        assert est.total_s >= est.device_s - 1e-12

    @given(st.integers(0, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_utilization_bounded(self, scale, seed):
        gen = np.random.default_rng(seed)
        cost = OpCost(
            flops=int(gen.integers(1, 10**9)) * (scale + 1),
            bytes_read=int(gen.integers(1, 10**8)),
            bytes_written=int(gen.integers(1, 10**8)),
        )
        est = estimate_kernel(A100, OpCategory.GEMM, cost, DType.F16, dispatch_s=1e-6)
        assert 0.0 <= est.utilization <= 1.0


class TestGraphProperties:
    @given(st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_node_ids_sequential_and_topological(self, n_ops):
        g = Graph("p")
        x = g.input(TensorSpec((2, 4)), "x")
        values = [x]
        gen = np.random.default_rng(n_ops)
        for _ in range(n_ops):
            a = values[int(gen.integers(0, len(values)))]
            b = values[int(gen.integers(0, len(values)))]
            values.append(g.call(ops.Add(), a, b))
        g.set_outputs(values[-1])
        g.validate()
        for node in g.nodes:
            for value in node.inputs:
                assert value.node_id < node.node_id
