"""Unit tests for GEMM operators: numerics, shapes, and cost accounting."""

import numpy as np
import pytest

from repro import ops
from repro.errors import ShapeError
from repro.ir import TensorSpec
from tests.conftest import make_weights, run_op


class TestLinear:
    def test_matches_reference(self, rng):
        op = ops.Linear(16, 8)
        w = make_weights(op)
        x = rng.normal(size=(4, 16)).astype(np.float32)
        y = run_op(op, x, weights=w)
        np.testing.assert_allclose(y, x @ w["weight"].T + w["bias"], rtol=1e-5)

    def test_batched_input(self, rng):
        op = ops.Linear(16, 8, bias=False)
        w = make_weights(op)
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        y = run_op(op, x, weights=w)
        assert y.shape == (2, 5, 8)

    def test_rejects_wrong_feature_dim(self):
        with pytest.raises(ShapeError):
            ops.Linear(16, 8).infer_spec([TensorSpec((4, 12))])

    def test_flop_count(self):
        op = ops.Linear(16, 8, bias=True)
        spec = TensorSpec((4, 16))
        (out,) = op.infer_spec([spec])
        cost = op.cost([spec], [out])
        assert cost.flops == 2 * 4 * 16 * 8 + 4 * 8
        assert cost.bytes_read == spec.nbytes + op.weight_bytes()

    def test_param_count(self):
        assert ops.Linear(16, 8).param_count() == 16 * 8 + 8
        assert ops.Linear(16, 8, bias=False).param_count() == 16 * 8


class TestConv1DGPT:
    def test_transposed_weight_semantics(self, rng):
        op = ops.Conv1DGPT(8, 12)
        w = make_weights(op)
        assert w["weight"].shape == (8, 12)  # (in, out) — GPT-2 layout
        x = rng.normal(size=(1, 3, 8)).astype(np.float32)
        y = run_op(op, x, weights=w)
        np.testing.assert_allclose(y, x @ w["weight"] + w["bias"], rtol=1e-5)

    def test_kind_is_distinct(self):
        assert ops.Conv1DGPT(8, 8).kind == "conv1d"
        assert ops.Linear(8, 8).kind == "linear"


class TestConv2d:
    def test_output_shape(self):
        op = ops.Conv2d(3, 16, 3, stride=2, padding=1)
        (out,) = op.infer_spec([TensorSpec((1, 3, 8, 8))])
        assert out.shape == (1, 16, 4, 4)

    def test_identity_kernel(self, rng):
        """A 1x1 conv with identity-ish weights equals a per-pixel linear map."""
        op = ops.Conv2d(4, 4, 1, bias=False)
        w = {"weight": np.eye(4, dtype=np.float32).reshape(4, 4, 1, 1)}
        x = rng.normal(size=(1, 4, 5, 5)).astype(np.float32)
        y = run_op(op, x, weights=w)
        np.testing.assert_allclose(y, x, rtol=1e-6)

    def test_matches_naive_convolution(self, rng):
        op = ops.Conv2d(2, 3, 3, stride=1, padding=1)
        w = make_weights(op)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        y = run_op(op, x, weights=w)
        ref = _naive_conv(x, w["weight"], stride=1, padding=1) + w["bias"][None, :, None, None]
        np.testing.assert_allclose(y, ref, rtol=1e-4, atol=1e-5)

    def test_grouped_conv_shapes_and_params(self):
        op = ops.Conv2d(8, 8, 3, padding=1, groups=8, bias=False)  # depthwise
        (out,) = op.infer_spec([TensorSpec((1, 8, 4, 4))])
        assert out.shape == (1, 8, 4, 4)
        assert op.param_count() == 8 * 1 * 3 * 3

    def test_grouped_conv_executes(self, rng):
        op = ops.Conv2d(4, 4, 3, padding=1, groups=2)
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        y = run_op(op, x, weights=make_weights(op))
        assert y.shape == (2, 4, 5, 5)

    def test_rejects_bad_groups(self):
        with pytest.raises(ShapeError):
            ops.Conv2d(3, 8, 3, groups=2)

    def test_flops_scale_with_output(self):
        op = ops.Conv2d(3, 16, 3, padding=1)
        small = TensorSpec((1, 3, 8, 8))
        large = TensorSpec((1, 3, 16, 16))
        cost_s = op.cost([small], op.infer_spec([small]))
        cost_l = op.cost([large], op.infer_spec([large]))
        assert cost_l.flops == 4 * cost_s.flops


class TestBMM:
    def test_batched_matmul(self, rng):
        a = rng.normal(size=(3, 4, 5)).astype(np.float32)
        b = rng.normal(size=(3, 5, 6)).astype(np.float32)
        y = run_op(ops.BMM(), a, b)
        np.testing.assert_allclose(y, a @ b, rtol=1e-5)

    def test_broadcast_batch_dims(self):
        op = ops.BMM()
        (out,) = op.infer_spec([TensorSpec((1, 8, 4, 5)), TensorSpec((1, 8, 5, 7))])
        assert out.shape == (1, 8, 4, 7)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            ops.BMM().infer_spec([TensorSpec((2, 4, 5)), TensorSpec((2, 6, 7))])

    def test_flops(self):
        op = ops.BMM()
        a, b = TensorSpec((2, 4, 8)), TensorSpec((2, 8, 3))
        cost = op.cost([a, b], op.infer_spec([a, b]))
        assert cost.flops == 2 * (2 * 4 * 3) * 8

    def test_matmul_alias(self):
        assert ops.MatMul().kind == "matmul"
        assert ops.MatMul().category == ops.OpCategory.GEMM


def _naive_conv(x, weight, stride, padding):
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (w + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, ho, wo), dtype=np.float32)
    for b in range(n):
        for o in range(oc):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, o, i, j] = np.sum(patch * weight[o])
    return out
