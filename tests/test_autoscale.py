"""Autoscaling tests: controllers, elastic lifecycle, and the static rails.

The load-bearing contract is the **pinned-fleet rail**: an autoscaled
cluster whose controller can never act (``min_replicas == max_replicas``)
must reproduce the plain static :class:`~repro.serving.cluster.ClusterRouter`
**bit-identically** for every registered scheduler and admission policy —
scale evaluations ride the event heap at a priority that never perturbs
launch arithmetic.  On top of that rail: autoscaled configs always fall
back from the columnar kernels to the reference loop, elastic lifecycle
accounting (timeline, audit log, replica-seconds, active spans) is
deterministic across process pools, and draining composes with crash
windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    AutoscaleConfig,
    AutoscaleObservation,
    Autoscaler,
    ClusterConfig,
    ClusterRouter,
    autoscaler_entries,
    get_autoscaler,
    list_autoscalers,
    make_trace,
    register_autoscaler,
    trace_entries,
)
from repro.serving import columnar_cluster
from repro.serving.autoscale import _AUTOSCALERS
from repro.serving.columnar_cluster import fast_path_fallback_reason

POLICIES = ("round-robin", "least-loaded", "power-of-two-choices")
SCHEDULERS = ("fifo", "static", "dynamic", "continuous")
CONTROLLERS = ("target-utilization", "goodput", "step")

MODEL = "gpt2"


def run_cluster(
    *,
    num_requests=400,
    load=1.5,
    seed=0,
    trace_kind="poisson",
    decode_steps=(1, 4),
    **overrides,
):
    config = ClusterConfig(model=MODEL, **overrides)
    router = ClusterRouter(config)
    rate = load * router.fleet_capacity_rps()
    trace = make_trace(
        trace_kind,
        rate,
        num_requests,
        rng=np.random.default_rng(seed),
        decode_steps=decode_steps,
    )
    return router.run(trace, offered_rate_rps=rate)


def elastic_auto(**overrides) -> AutoscaleConfig:
    overrides.setdefault("controller", "goodput")
    overrides.setdefault("min_replicas", 1)
    overrides.setdefault("max_replicas", 4)
    overrides.setdefault("interval_s", 0.05)
    overrides.setdefault("provision_delay_s", 0.05)
    overrides.setdefault("slo_s", 0.08)
    return AutoscaleConfig(**overrides)


def observation(**overrides) -> AutoscaleObservation:
    base = dict(
        start_s=0.0,
        end_s=0.1,
        active_replicas=2,
        arrivals=10,
        arrival_steps=20,
        completions=10,
        latencies_s=(0.01, 0.02, 0.03),
        busy_s=0.12,
        queue_depth=0,
        unit_latency_s=0.01,
    )
    base.update(overrides)
    return AutoscaleObservation(**base)


# -- registry and config validation -----------------------------------------


class TestRegistry:
    def test_builtins_listed(self):
        assert list_autoscalers() == ["goodput", "step", "target-utilization"]
        assert all(desc for _, desc in autoscaler_entries())

    def test_get_returns_fresh_instances(self):
        a, b = get_autoscaler("step"), get_autoscaler("step")
        assert a is not b

    def test_unknown_controller_rejected(self):
        with pytest.raises(ServingError, match="unknown autoscaler"):
            get_autoscaler("mystery")
        with pytest.raises(ServingError, match="unknown autoscaler"):
            ClusterRouter(
                ClusterConfig(
                    model=MODEL,
                    platforms=("A", "A"),
                    policy="round-robin",
                    autoscale=AutoscaleConfig(controller="mystery", max_replicas=2),
                )
            )

    def test_custom_controller_registration(self):
        class PinnedAutoscaler(Autoscaler):
            name = "pinned-test"
            description = "always wants three replicas"

            def desired_replicas(self, obs):
                return 3

        try:
            register_autoscaler(PinnedAutoscaler)
            assert "pinned-test" in list_autoscalers()
            with pytest.raises(ServingError, match="already registered"):
                register_autoscaler(PinnedAutoscaler)
            register_autoscaler(PinnedAutoscaler, replace=True)
        finally:
            _AUTOSCALERS.pop("pinned-test", None)

    def test_nameless_controller_rejected(self):
        class Nameless(Autoscaler):
            pass

        with pytest.raises(ServingError, match="declares no name"):
            register_autoscaler(Nameless)

    def test_trace_entries_mirror_fault_entries(self):
        rows = trace_entries()
        assert [name for name, _ in rows] == ["bursty", "closed-loop", "poisson"]
        assert all(desc for _, desc in rows)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(min_replicas=0),
            dict(min_replicas=4, max_replicas=2),
            dict(initial_replicas=9),
            dict(interval_s=0.0),
            dict(provision_delay_s=-1.0),
            dict(cooldown_s=-0.1),
            dict(target_utilization=0.0),
            dict(target_utilization=1.5),
            dict(deadband=-0.1),
            dict(up_threshold=0.2, down_threshold=0.4),
            dict(slo_s=0.0),
            dict(slo_margin=0.0),
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ServingError):
            AutoscaleConfig(controller="step", **overrides)

    def test_start_replicas(self):
        assert AutoscaleConfig(controller="step", min_replicas=2).start_replicas == 2
        assert (
            AutoscaleConfig(
                controller="step", min_replicas=2, max_replicas=8, initial_replicas=5
            ).start_replicas
            == 5
        )

    def test_ceiling_must_match_fleet(self):
        with pytest.raises(ServingError, match="max_replicas"):
            ClusterConfig(
                model=MODEL,
                platforms=("A", "A"),
                policy="round-robin",
                autoscale=AutoscaleConfig(controller="step", max_replicas=4),
            )

    def test_goodput_needs_slo(self):
        auto = AutoscaleConfig(controller="goodput", max_replicas=2)
        with pytest.raises(ServingError, match="SLO"):
            run_cluster(platforms=("A", "A"), policy="round-robin", autoscale=auto)


# -- controller decision laws ------------------------------------------------


class TestControllerLaws:
    def controller(self, name, **overrides):
        scaler = get_autoscaler(name)
        scaler.reset(AutoscaleConfig(controller=name, slo_s=0.1, **overrides))
        return scaler

    def test_target_utilization_proportional(self):
        scaler = self.controller("target-utilization", target_utilization=0.5)
        # busy 0.12s over 0.1s x 2 replicas = 60% — inside the deadband.
        assert scaler.desired_replicas(observation()) == 2
        # 90% busy at set-point 50% wants ceil(2 * 0.9 / 0.5) = 4.
        assert scaler.desired_replicas(observation(busy_s=0.18)) == 4
        # idle window wants zero; the router clamps to the floor.
        assert scaler.desired_replicas(observation(busy_s=0.0)) == 0

    def test_step_hysteresis(self):
        scaler = self.controller("step")
        assert scaler.desired_replicas(observation(busy_s=0.19)) == 3
        assert scaler.desired_replicas(observation(busy_s=0.01)) == 1
        assert scaler.desired_replicas(observation(busy_s=0.12)) == 2

    def test_goodput_tracks_slo(self):
        scaler = self.controller("goodput")
        # p99 30 ms under margin 50 ms with shallow queue: give one back.
        assert scaler.desired_replicas(observation()) == 1
        # p99 over the SLO: step up proportionally to the overshoot
        # (50% over -> ceil(2 * 0.5) = 1 extra; 2x over caps at doubling).
        assert scaler.desired_replicas(observation(latencies_s=(0.15,))) == 3
        assert scaler.desired_replicas(observation(latencies_s=(0.25,))) == 4
        # inside the hysteresis band: hold.
        assert scaler.desired_replicas(observation(latencies_s=(0.07,))) == 2
        # nothing completed but work queued: saturated cold start, step up.
        assert (
            scaler.desired_replicas(
                observation(completions=0, latencies_s=(), queue_depth=5)
            )
            == 3
        )
        # nothing completed, nothing queued: hold.
        assert (
            scaler.desired_replicas(
                observation(completions=0, latencies_s=(), queue_depth=0)
            )
            == 2
        )


# -- the pinned-fleet rail ---------------------------------------------------


class TestPinnedFleetRail:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_pinned_controller_matches_static_router(self, scheduler, policy):
        """min == max: evaluations run, actions never fire, results match
        the plain router bit-for-bit (dataclass equality, every field)."""
        common = dict(
            scheduler=scheduler,
            policy=policy,
            platforms=("A", "A"),
            backend="reference",
        )
        static = run_cluster(**common)
        for controller in CONTROLLERS:
            auto = AutoscaleConfig(
                controller=controller,
                min_replicas=2,
                max_replicas=2,
                slo_s=0.1,
            )
            pinned = run_cluster(autoscale=auto, **common)
            assert pinned == static, (scheduler, policy, controller)

    def test_pinned_fast_config_matches_reference(self):
        auto = AutoscaleConfig(
            controller="step", min_replicas=2, max_replicas=2
        )
        fast = run_cluster(
            autoscale=auto, platforms=("A", "A"), policy="least-loaded",
            backend="fast",
        )
        reference = run_cluster(
            autoscale=auto, platforms=("A", "A"), policy="least-loaded",
            backend="reference",
        )
        assert fast == reference
        # the fallback is explicit: elastic lifecycle needs the event loop.
        assert fast.backend_used == "reference"
        assert "autoscale" in fast.fast_path_fallback_reason


class TestColumnarFallback:
    def test_fallback_reason_set(self):
        config = ClusterConfig(
            model=MODEL,
            platforms=("A", "A"),
            policy="round-robin",
            autoscale=AutoscaleConfig(controller="step", max_replicas=2),
        )
        from repro.serving.cluster import get_policy
        from repro.serving.scheduler import get_scheduler

        reason = fast_path_fallback_reason(
            config, get_policy("round-robin"), get_scheduler("fifo")
        )
        assert "autoscale" in reason

    def test_columnar_kernels_never_run(self, monkeypatch):
        """An autoscaled config must not enter either fast entry point."""

        def raiser(*args, **kwargs):
            raise AssertionError("columnar kernel entered for autoscaled config")

        monkeypatch.setattr(columnar_cluster, "run_fast_cluster", raiser)
        monkeypatch.setattr(columnar_cluster, "run_fast_faulted", raiser)
        result = run_cluster(
            platforms=("A", "A"),
            policy="round-robin",
            backend="fast",
            autoscale=elastic_auto(max_replicas=2),
        )
        assert result.backend_used == "reference"


# -- elastic lifecycle -------------------------------------------------------


class TestElasticLifecycle:
    def elastic_run(self, **overrides):
        overrides.setdefault("platforms", ("A",) * 4)
        overrides.setdefault("policy", "least-loaded")
        overrides.setdefault("scheduler", "continuous")
        overrides.setdefault("load", 3.0)
        overrides.setdefault("num_requests", 600)
        overrides.setdefault("autoscale", elastic_auto())
        return run_cluster(**overrides)

    def test_scales_up_under_overload(self):
        result = self.elastic_run()
        ups = [e for e in result.scale_events if e.action == "up"]
        onlines = [e for e in result.scale_events if e.action == "online"]
        assert ups and onlines
        # every provision decision comes online exactly provision_delay later.
        for up in ups:
            online = next(e for e in onlines if e.replica == up.replica)
            assert online.time_s == pytest.approx(up.time_s + 0.05)
        # the timeline starts at the floor and reaches beyond it.
        assert result.replica_timeline[0] == (0.0, 1)
        assert max(count for _, count in result.replica_timeline) > 1
        # the bill sits strictly between the floor and the ceiling.
        assert (
            result.makespan_s
            < result.replica_seconds
            < 4 * result.makespan_s
        )
        assert 1.0 < result.mean_replicas < 4.0

    def test_all_work_completes(self):
        result = self.elastic_run()
        assert len(result.completed()) == 600
        assert result.num_failed == result.num_shed == 0

    def test_drain_finishes_inflight_work(self):
        """Scale-downs drain: requests admitted before the decision finish,
        and the drained replica admits nothing afterwards."""
        result = self.elastic_run(
            num_requests=900,
            record_requests=None,
            load=1.0,
            trace_kind="bursty",
            autoscale=elastic_auto(
                interval_s=0.1, provision_delay_s=0.1, slo_s=0.1
            ),
        )
        downs = [e for e in result.scale_events if e.action == "down"]
        drains = [e for e in result.scale_events if e.action == "drained"]
        assert downs and drains
        assert len(result.completed()) == 900
        for down in downs:
            drained = min(
                e.time_s for e in drains
                if e.replica == down.replica and e.time_s >= down.time_s
            )
            for record in result.records:
                if record.replica == down.replica:
                    assert (
                        record.arrival_s <= down.time_s
                        or record.end_s <= down.time_s
                        or record.end_s > drained
                    )

    def test_active_spans_bound_busy_time(self):
        result = self.elastic_run()
        assert len(result.replica_active_s) == 4
        for replica, active in zip(result.replicas, result.replica_active_s):
            busy = max(replica.busy_s.values(), default=0.0)
            assert busy <= active + 1e-9
        for util in result.active_utilization():
            for share in util.values():
                assert 0.0 <= share <= 1.0 + 1e-9

    def test_drain_composes_with_crash_windows(self):
        result = self.elastic_run(
            fault_profile="crash",
            timeout_s=0.02,
            timeout_cap_s=0.32,
            num_requests=800,
        )
        assert result.scale_events
        assert (
            len(result.completed()) + result.num_failed + result.num_shed == 800
        )
        # lifecycle accounting stays coherent under faults.
        assert result.replica_seconds > 0.0
        assert result.mean_replicas <= 4.0

    def test_initial_replicas_override(self):
        result = self.elastic_run(
            autoscale=elastic_auto(initial_replicas=3), load=0.5
        )
        assert result.replica_timeline[0] == (0.0, 3)

    def test_partial_fleet_without_actions_bills_the_floor(self):
        """A controller that never acts on a partial fleet pays for the
        replicas it held online, not the provisioned ceiling."""
        result = self.elastic_run(load=0.3, num_requests=200)
        if not result.scale_events:
            assert result.mean_replicas == pytest.approx(1.0)

    def test_deadline_feeds_goodput_slo(self):
        # no explicit slo_s: the cluster deadline is the SLO.
        result = self.elastic_run(
            autoscale=elastic_auto(slo_s=None), deadline_s=0.08
        )
        assert len(result.completed()) == 600


# -- determinism across process pools ---------------------------------------


class TestPoolDeterminism:
    def test_parallel_matches_serial(self):
        from repro.sweep.runner import SweepRunner
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            name="autoscale-pool",
            models=(MODEL,),
            loads=(0.375, 0.5),
            policies=("least-loaded",),
            autoscalers=("goodput",),
            scheduler="continuous",
            num_requests=400,
            decode_steps=(1, 4),
            num_replicas=4,
            deadline_s=0.1,
            autoscale_interval_s=0.05,
            autoscale_provision_s=0.05,
            record_requests=256,
        )
        serial = SweepRunner(workers=0).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        assert len(serial.records) == 2
        for a, b in zip(serial.records, parallel.records):
            assert a.point == b.point
            assert a.serving == b.serving
            assert a.serving.scale_events == b.serving.scale_events
