"""Columnar fast backend and streaming metrics tests.

The load-bearing suite is the fast-vs-reference bit-identity battery: for
every registered scheduler on every registered platform, the columnar
kernels must reproduce the scalar reference event loop's result **exactly**
— full dataclass equality, covering every float accumulation, queue-depth
sample, and record — both for the single engine and for the cluster router
(including faults, retries, and hedging, where the fast backend's chunked
arrival cursor must preserve the reference heap's event order).

Alongside it: bit-identity of the vectorized trace generators against the
historical per-request scalar loops, and accuracy bounds of the streaming
quantile estimator on adversarial samples.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import ServingError
from repro.hardware import list_platforms
from repro.serving import (
    ClusterConfig,
    ClusterRouter,
    FIFOScheduler,
    RequestTrace,
    ServingConfig,
    ServingEngine,
    StreamingQuantile,
    cap_serving_result,
    kernel_for,
    list_schedulers,
    make_trace,
    nearest_rank,
    register_scheduler,
)
from repro.serving.scheduler import BatchScheduler, Dispatch
from repro.sweep.cache import PLAN_CACHE
from repro.sweep.spec import SweepSpec

MODEL = "vit-b"

#: one upper-edge grid step of the streaming quantile estimator.
GRID_STEP = 10.0 ** (1.0 / 256.0) - 1.0


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def engine_pair(backend_kwargs=None, **kwargs):
    base = dict(model=MODEL, **kwargs)
    extra = backend_kwargs or {}
    fast = ServingEngine(
        ServingConfig(**base, backend="fast", **extra), cache=PLAN_CACHE
    )
    ref = ServingEngine(
        ServingConfig(**base, backend="reference", **extra), cache=PLAN_CACHE
    )
    return fast, ref


# -- fast vs reference: the bit-identity battery ------------------------------


class TestEngineBitIdentity:
    @pytest.mark.parametrize("scheduler", list_schedulers())
    @pytest.mark.parametrize(
        "platform", [p.platform_id for p in list_platforms()]
    )
    def test_every_scheduler_every_platform(self, scheduler, platform):
        fast, ref = engine_pair(
            platform=platform, scheduler=scheduler, max_batch=4
        )
        for seed, (load, kind) in enumerate(
            [(0.4, "poisson"), (1.5, "bursty"), (0.8, "closed-loop")]
        ):
            rate = load / fast.base_latency_s()
            trace = make_trace(kind, rate, 48, rng(seed), decode_steps=(1, 4))
            assert fast.run(trace, offered_rate_rps=rate) == ref.run(
                trace, offered_rate_rps=rate
            )

    def test_single_request_and_empty_trace(self):
        fast, ref = engine_pair(scheduler="fifo")
        single = RequestTrace(
            "single", arrival_s=np.array([0.0]), decode_steps=np.array([1])
        )
        assert fast.run(single) == ref.run(single)
        empty = RequestTrace("empty", ())
        assert fast.run(empty) == ref.run(empty)

    def test_capped_results_identical(self):
        fast, ref = engine_pair(
            scheduler="dynamic", backend_kwargs=dict(record_requests=16)
        )
        rate = 0.9 / fast.base_latency_s()
        trace = make_trace("poisson", rate, 150, rng(3), decode_steps=(1, 6))
        capped_fast = fast.run(trace, offered_rate_rps=rate)
        capped_ref = ref.run(trace, offered_rate_rps=rate)
        assert capped_fast == capped_ref
        assert capped_fast.record_cap == 16
        assert len(capped_fast.records) == 16
        assert capped_fast.num_requests_served == 150
        assert capped_fast.queue_depth_timeline == ()

    def test_capped_equals_capping_the_full_run(self):
        fast, ref = engine_pair(
            scheduler="continuous", backend_kwargs=dict(record_requests=12)
        )
        rate = 1.1 / fast.base_latency_s()
        trace = make_trace("bursty", rate, 120, rng(9), decode_steps=(1, 5))
        streamed = fast.run(trace, offered_rate_rps=rate)
        full = ref.run(
            trace.name
            and make_trace("bursty", rate, 120, rng(9), decode_steps=(1, 5)),
            offered_rate_rps=rate,
        )
        # the reference wrapper applied the cap too; recompute from a truly
        # full run to pin the pure-function contract.
        plain = ServingEngine(
            ServingConfig(model=MODEL, scheduler="continuous", backend="reference"),
            cache=PLAN_CACHE,
        ).run(make_trace("bursty", rate, 120, rng(9), decode_steps=(1, 5)),
              offered_rate_rps=rate)
        assert streamed == full == cap_serving_result(plain, 12)

    def test_streaming_percentiles_close_to_exact(self):
        fast, _ = engine_pair(
            scheduler="dynamic", backend_kwargs=dict(record_requests=8)
        )
        full_engine = ServingEngine(
            ServingConfig(model=MODEL, scheduler="dynamic"), cache=PLAN_CACHE
        )
        rate = 1.0 / fast.base_latency_s()
        trace = make_trace("poisson", rate, 200, rng(4), decode_steps=(1, 3))
        streamed = fast.run(trace, offered_rate_rps=rate)
        exact = full_engine.run(trace, offered_rate_rps=rate)
        for q in ("p50_s", "p95_s", "p99_s"):
            assert getattr(streamed, q) == pytest.approx(
                getattr(exact, q), rel=GRID_STEP
            )
        assert streamed.mean_latency_s == pytest.approx(exact.mean_latency_s)
        assert streamed.max_queue_depth == exact.max_queue_depth
        assert streamed.mean_queue_depth == pytest.approx(exact.mean_queue_depth)


class TestClusterBitIdentity:
    SCENARIOS = {
        "plain": dict(platforms=("A", "A"), policy="round-robin"),
        "faulty-heterogeneous": dict(
            platforms=("A", "B"),
            policy="least-loaded",
            fault_profile="crash",
            timeout_s=0.5,
            hedge_after_s=0.3,
            shed_queue_s=2.0,
            deadline_s=1.0,
        ),
        "accel-loss-p2c": dict(
            platforms=("A", "A", "C"),
            policy="power-of-two-choices",
            fault_profile="accel-loss",
            timeout_s=0.4,
        ),
        "straggler": dict(
            platforms=("A", "B"), policy="round-robin", fault_profile="straggler"
        ),
    }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("scheduler", ["fifo", "continuous"])
    def test_fast_matches_reference(self, scenario, scheduler):
        base = dict(
            model=MODEL, scheduler=scheduler, max_batch=4, **self.SCENARIOS[scenario]
        )
        fast = ClusterRouter(ClusterConfig(**base, backend="fast"), cache=PLAN_CACHE)
        ref = ClusterRouter(
            ClusterConfig(**base, backend="reference"), cache=PLAN_CACHE
        )
        rate = 0.8 * fast.fleet_capacity_rps()
        trace = make_trace("poisson", rate, 64, rng(11), decode_steps=(1, 4))
        assert fast.run(trace, offered_rate_rps=rate) == ref.run(
            trace, offered_rate_rps=rate
        )

    @pytest.mark.parametrize("scheduler", list_schedulers())
    def test_single_replica_no_fault_matches_engine(self, scheduler):
        cluster = ClusterRouter(
            ClusterConfig(
                model=MODEL,
                platforms=("A",),
                scheduler=scheduler,
                policy="round-robin",
                backend="fast",
            ),
            cache=PLAN_CACHE,
        )
        engine = ServingEngine(
            ServingConfig(model=MODEL, scheduler=scheduler, backend="fast"),
            cache=PLAN_CACHE,
        )
        rate = 0.7 / engine.base_latency_s()
        trace = make_trace("poisson", rate, 40, rng(2), decode_steps=(1, 4))
        clustered = cluster.run(trace, offered_rate_rps=rate)
        single = engine.run(trace, offered_rate_rps=rate)
        assert clustered.replicas[0] == single

    def test_capped_cluster_identical(self):
        base = dict(
            model=MODEL, platforms=("A", "A"), scheduler="dynamic", timeout_s=0.5
        )
        fast = ClusterRouter(
            ClusterConfig(**base, backend="fast", record_requests=12),
            cache=PLAN_CACHE,
        )
        ref = ClusterRouter(
            ClusterConfig(**base, backend="reference", record_requests=12),
            cache=PLAN_CACHE,
        )
        rate = 0.9 * fast.fleet_capacity_rps()
        trace = make_trace("bursty", rate, 120, rng(5), decode_steps=(1, 4))
        capped = fast.run(trace, offered_rate_rps=rate)
        assert capped == ref.run(trace, offered_rate_rps=rate)
        assert capped.record_cap == 12
        assert len(capped.records) == 12
        assert capped.num_requests_total == 120
        assert all(r.record_cap == 12 for r in capped.replicas)


# -- custom schedulers fall back to the reference loop ------------------------


class _LIFOScheduler(BatchScheduler):
    """Last-in-first-out: a custom scheduler with no columnar kernel."""

    name = "lifo-columnar-test"
    description = "serve the newest queued request first (test-only)"

    def next_dispatch(self, now, arrivals_pending):
        if not self._queue:
            return None
        request = self._queue.pop()
        return Dispatch(
            members=(request.request_id,),
            size=1,
            iterations=request.decode_steps,
            completes=(request.request_id,),
            barrier=True,
        )


class _InheritingFIFO(FIFOScheduler):
    """Subclasses FIFO but changes the decision sequence: the inherited
    ``columnar_kernel = "fifo"`` declaration must NOT be honored."""

    name = "fifo-reversed-columnar-test"
    description = "fifo subclass that serves the newest request (test-only)"

    def next_dispatch(self, now, arrivals_pending):
        if not self._queue:
            return None
        request = self._queue.pop()
        return Dispatch(
            members=(request.request_id,),
            size=1,
            iterations=request.decode_steps,
            completes=(request.request_id,),
            barrier=True,
        )


class TestCustomSchedulerFallback:
    def test_kernel_opt_in_is_declare_it_yourself(self):
        assert kernel_for(FIFOScheduler()) is not None
        assert kernel_for(_LIFOScheduler()) is None
        # inherited declarations are ignored: the subclass changed the
        # decision sequence the fifo kernel hard-codes.
        assert kernel_for(_InheritingFIFO()) is None

    @pytest.mark.parametrize(
        "scheduler_cls", [_LIFOScheduler, _InheritingFIFO]
    )
    def test_fast_backend_still_correct_via_fallback(self, scheduler_cls):
        from repro.serving.scheduler import _SCHEDULERS

        register_scheduler(scheduler_cls, replace=True)
        try:
            fast, ref = engine_pair(scheduler=scheduler_cls.name)
            rate = 0.8 / fast.base_latency_s()
            trace = make_trace("poisson", rate, 30, rng(6), decode_steps=(1, 3))
            fast_result = fast.run(trace, offered_rate_rps=rate)
            assert fast_result == ref.run(trace, offered_rate_rps=rate)
            # LIFO under load genuinely reorders service, so the fallback ran
            # the real scheduler, not the fifo kernel.
            assert fast_result.num_dispatches == 30
        finally:
            _SCHEDULERS.pop(scheduler_cls.name, None)


# -- trace vectorization: bit-identical to the historical scalar loops --------


def _scalar_decode_steps(decode_steps, count, generator):
    if isinstance(decode_steps, int):
        return [decode_steps] * count
    lo, hi = decode_steps
    return [int(v) for v in generator.integers(lo, hi + 1, size=count)]


class TestTraceVectorization:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_poisson_matches_scalar(self, seed):
        trace = make_trace("poisson", 120.0, 257, rng(seed), decode_steps=(1, 9))
        generator = rng(seed)
        gaps = generator.exponential(1.0 / 120.0, size=257)
        arrivals = np.cumsum(gaps) - gaps[0]
        steps = _scalar_decode_steps((1, 9), 257, generator)
        assert np.array_equal(trace.arrival_column(), arrivals)
        assert trace.decode_column().tolist() == steps

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bursty_matches_scalar(self, seed):
        trace = make_trace("bursty", 80.0, 130, rng(seed), decode_steps=(2, 5))
        generator = rng(seed)
        interval = 4 / 80.0
        arrivals = []
        for i in range(130):
            burst = i // 4
            jitter = (
                float(generator.exponential(interval / 100.0)) if i % 4 else 0.0
            )
            arrivals.append(burst * interval + jitter)
        arrivals.sort()
        steps = _scalar_decode_steps((2, 5), 130, generator)
        assert trace.arrival_column().tolist() == arrivals
        assert trace.decode_column().tolist() == steps

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_closed_loop_matches_scalar(self, seed):
        trace = make_trace("closed-loop", 64.0, 99, rng(seed), decode_steps=3)
        generator = rng(seed)
        cycle = 4 / 64.0
        arrivals = []
        for i in range(99):
            client = i % 4
            round_index = i // 4
            jitter = (
                float(generator.exponential(cycle / 20.0)) if round_index else 0.0
            )
            arrivals.append(client * cycle / 4 + round_index * cycle + jitter)
        arrivals.sort()
        assert trace.arrival_column().tolist() == arrivals
        assert trace.decode_column().tolist() == [3] * 99


# -- streaming quantile accuracy ----------------------------------------------


class TestStreamingQuantile:
    QUANTILES = (0.50, 0.95, 0.99)

    def check(self, samples: np.ndarray):
        estimator = StreamingQuantile()
        estimator.add(samples)
        exact_sorted = sorted(float(v) for v in samples)
        for q in self.QUANTILES:
            exact = nearest_rank(exact_sorted, q)
            estimate = estimator.quantile(q)
            # never undershoots, overshoots by less than one grid step.
            assert exact <= estimate <= exact * (1.0 + GRID_STEP)

    def test_bimodal(self):
        generator = rng(42)
        fast = generator.exponential(2e-3, size=5000)
        slow = 0.5 + generator.exponential(5e-2, size=300)
        self.check(np.concatenate([fast, slow]))

    def test_heavy_tail(self):
        generator = rng(43)
        self.check(1e-3 * (1.0 + generator.pareto(1.3, size=8000)))

    def test_constant_is_exact(self):
        estimator = StreamingQuantile()
        estimator.add(np.full(1000, 0.0123456789))
        for q in self.QUANTILES:
            assert estimator.quantile(q) == 0.0123456789

    def test_outside_grid_clamps_to_observed(self):
        estimator = StreamingQuantile()
        estimator.add(np.array([1e-9, 5e4, 5e4, 5e4]))
        assert estimator.quantile(0.01) == 1e-9
        assert estimator.quantile(0.99) == 5e4

    def test_incremental_batches_match_one_shot(self):
        generator = rng(44)
        samples = generator.exponential(1e-2, size=3000)
        one_shot = StreamingQuantile()
        one_shot.add(samples)
        chunked = StreamingQuantile()
        for chunk in np.array_split(samples, 17):
            chunked.add(chunk)
        for q in self.QUANTILES:
            assert chunked.quantile(q) == one_shot.quantile(q)


# -- knob validation and plumbing ---------------------------------------------


class TestKnobs:
    def test_engine_rejects_bad_knobs(self):
        with pytest.raises(ServingError, match="backend"):
            ServingConfig(model=MODEL, backend="warp")
        with pytest.raises(ServingError, match="record_requests"):
            ServingConfig(model=MODEL, record_requests=0)
        with pytest.raises(ServingError, match="backend"):
            ClusterConfig(model=MODEL, backend="warp")
        with pytest.raises(ServingError, match="record_requests"):
            ClusterConfig(model=MODEL, record_requests=-1)

    def test_sweep_spec_carries_backend_knobs(self):
        spec = SweepSpec(
            models=(MODEL,),
            loads=(0.5,),
            backend="reference",
            record_requests=64,
        )
        point = spec.points()[0]
        assert point.backend == "reference"
        assert point.record_requests == 64


class TestCLI:
    def test_serve_flags_and_backend_column(self, capsys):
        assert (
            cli_main(
                [
                    "serve", MODEL, "--num-requests", "24",
                    "--backend", "reference", "--record-requests", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend" in out
        assert "reference" in out
        assert "24" in out  # num served, not the 8 sampled records

    def test_serve_requests_alias(self, capsys):
        assert cli_main(["serve", MODEL, "--requests", "16"]) == 0
        # the backend column reports the backend that actually served the
        # run (backend_used), not the requested knob.
        assert "columnar" in capsys.readouterr().out

    def test_cluster_flags(self, capsys):
        assert (
            cli_main(
                [
                    "cluster", MODEL, "--num-requests", "16",
                    "--backend", "fast", "--record-requests", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend" in out
        assert "columnar" in out
