"""Unit tests for the profiler and aggregation layer."""

import pytest

from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.ops.base import OpCategory
from repro.profiler import (
    average_share,
    breakdown,
    dominant_group_table,
    profile_graph,
    report_group,
)


@pytest.fixture
def profile(tiny_transformer_graph):
    return profile_graph(
        tiny_transformer_graph, get_flow("pytorch"), PLATFORM_A, use_gpu=True, iterations=7
    )


class TestProfileResult:
    def test_shares_sum_to_one(self, profile):
        assert sum(profile.share_by_group().values()) == pytest.approx(1.0)

    def test_gemm_plus_non_gemm_is_total(self, profile):
        assert profile.gemm_latency_s + profile.non_gemm_latency_s == pytest.approx(
            profile.total_latency_s
        )

    def test_records_cover_all_kernels(self, profile, tiny_transformer_graph):
        assert profile.num_kernels == len(profile.records)
        assert profile.num_graph_ops == len(tiny_transformer_graph.compute_nodes())

    def test_jitter_is_deterministic(self, tiny_transformer_graph):
        a = profile_graph(tiny_transformer_graph, get_flow("pytorch"), PLATFORM_A, seed=5)
        b = profile_graph(tiny_transformer_graph, get_flow("pytorch"), PLATFORM_A, seed=5)
        assert a.total_latency_s == b.total_latency_s

    def test_jitter_variance_reported(self, profile):
        assert profile.total_latency_std_s > 0
        assert any(r.latency_std_s > 0 for r in profile.records)

    def test_dominant_non_gemm_group(self, profile):
        group, share = profile.dominant_non_gemm_group()
        assert group is not OpCategory.GEMM
        assert 0 < share < 1

    def test_top_operators_sorted(self, profile):
        top = profile.top_operators(5)
        latencies = [r.latency_s for r in top]
        assert latencies == sorted(latencies, reverse=True)

    def test_cpu_only_falls_back(self, tiny_transformer_graph):
        result = profile_graph(
            tiny_transformer_graph,
            get_flow("pytorch"),
            PLATFORM_A.cpu_only(),
            use_gpu=True,  # requested but unavailable
        )
        assert not result.use_gpu

    def test_describe_mentions_model_and_share(self, profile):
        text = profile.describe()
        assert "tiny" in text and "non-GEMM" in text


class TestAggregation:
    def test_breakdown_orders_groups(self, profile):
        b = breakdown(profile)
        assert b.gemm_pct + b.non_gemm_pct == pytest.approx(100.0)
        assert list(b.shares)  # non-empty, figure order

    def test_average_share(self, profile):
        avg = average_share([profile, profile])
        assert avg == pytest.approx(profile.non_gemm_share)
        norm = average_share([profile], OpCategory.NORMALIZATION)
        assert 0 <= norm <= 1

    def test_dominant_group_table(self, profile):
        rows = dominant_group_table({"tiny": [profile, profile]})
        assert len(rows) == 1
        model, group, share = rows[0]
        assert model == "tiny" and group is not OpCategory.GEMM

    def test_report_group_folds_misc_like(self):
        assert report_group(OpCategory.POOLING) is OpCategory.MISC
        assert report_group(OpCategory.REDUCTION) is OpCategory.MISC
        assert report_group(OpCategory.MEMORY) is OpCategory.MEMORY
