"""Pass-pipeline tests.

Covers three layers:

* the **equivalence suite** — every registered flow, over every registered
  model, on both device classes, must produce exactly the plan the
  pre-refactor monolithic planner (:func:`repro.flows.reference_lower`)
  produced, kernel-for-kernel;
* unit tests for the individual passes and the pass manager;
* the cache contract: plans are keyed by pipeline signature, not flow name.
"""

from __future__ import annotations

import pytest

from repro import ops
from repro.errors import PlanError, RegistryError
from repro.flows import (
    FusionConfig,
    ONNXRuntimeFlow,
    ORTCpuEpFlow,
    TensorRTFlow,
    get_flow,
    list_flows,
    reference_lower,
    register_flow,
)
from repro.flows import _FLOWS, _INSTANCES
from repro.flows.passes import (
    CompositeExpansionPass,
    FusionPass,
    KernelConstructionPass,
    MetadataElisionPass,
    PassManager,
    PerOpFallbackPlacement,
    PlacementPass,
    SyncInsertionPass,
    TransferInsertionPass,
    UniformPlacement,
)
from repro.hardware import DeviceKind
from repro.ir import Graph, TensorSpec
from repro.models import build_model, list_models
from repro.sweep.cache import PlanCache

ALL_FLOWS = tuple(list_flows())
ALL_MODELS = tuple(entry.name for entry in list_models())


@pytest.fixture(scope="module")
def model_graphs():
    """Every registered model, built once for the whole module."""
    return {name: build_model(name, batch_size=1) for name in ALL_MODELS}


def chain_graph(*op_list, spec=(4, 16)):
    g = Graph("chain")
    value = g.input(TensorSpec(spec), "x")
    for op in op_list:
        value = g.call(op, value)
    g.set_outputs(value)
    return g


def _standard_pipeline(policy, fusion=None, **placement_kwargs):
    return PassManager(
        (
            FusionPass(fusion or FusionConfig(pointwise_chains=True)),
            PlacementPass(policy, **placement_kwargs),
            KernelConstructionPass(collapse=True),
            TransferInsertionPass(),
            SyncInsertionPass(),
            MetadataElisionPass(),
        )
    )


class TestEquivalenceWithReferencePlanner:
    """The pass pipeline reproduces the pre-refactor planner exactly."""

    @pytest.mark.parametrize("flow_name", ALL_FLOWS)
    def test_kernel_for_kernel_all_models_both_devices(self, flow_name, model_graphs):
        flow = get_flow(flow_name)
        for model, graph in model_graphs.items():
            for use_gpu in (True, False):
                actual = flow.lower(graph, use_gpu=use_gpu)
                expected = reference_lower(flow, graph, use_gpu=use_gpu)
                # PlannedKernel is a NamedTuple: == compares every field of
                # every kernel, in order.
                assert actual.kernels == expected.kernels, (model, use_gpu)
                assert actual.flow == expected.flow
                assert actual.dispatch_profile == expected.dispatch_profile
                assert actual.gemm_peak_scale_f32 == expected.gemm_peak_scale_f32
                assert actual.gemm_saturation_scale == expected.gemm_saturation_scale
                assert actual.content_hash() == expected.content_hash()


class TestDerivePlanProperty:
    """derive_plan(lower(g, gpu), cpu) == lower(g, cpu), field for field."""

    def test_every_uniform_flow_every_model(self, model_graphs):
        uniform = [name for name in ALL_FLOWS if get_flow(name).uniform_placement]
        assert uniform  # the property must actually cover something
        for flow_name in uniform:
            flow = get_flow(flow_name)
            for model, graph in model_graphs.items():
                gpu = flow.lower(graph, use_gpu=True)
                cpu = flow.lower(graph, use_gpu=False)
                for derived, direct in (
                    (flow.derive_plan(gpu, use_gpu=False), cpu),
                    (flow.derive_plan(cpu, use_gpu=True), gpu),
                ):
                    assert derived.kernels == direct.kernels, (flow_name, model)
                    assert derived.flow == direct.flow
                    assert derived.dispatch_profile == direct.dispatch_profile
                    assert derived.gemm_peak_scale_f32 == direct.gemm_peak_scale_f32
                    assert derived.gemm_saturation_scale == direct.gemm_saturation_scale
                    assert derived.content_hash() == direct.content_hash()

    def test_per_op_flows_refuse_derivation(self, model_graphs):
        for flow_name in ("onnxruntime", "ort-cpu-ep"):
            flow = get_flow(flow_name)
            assert not flow.supports_derivation()
            plan = flow.lower(model_graphs["gpt2"], use_gpu=True)
            with pytest.raises(PlanError):
                flow.derive_plan(plan, use_gpu=False)

    def test_knob_only_per_op_policy_opts_out_of_derivation(self):
        # a custom flow that overrides only placement_policy() but forgets to
        # flip uniform_placement must not be served sibling-derived plans
        # (derivation would drop every CPU-fallback kernel's transfers)
        from repro.flows import TorchInductorFlow

        class ForgetfulFlow(TorchInductorFlow):
            def placement_policy(self):
                return PerOpFallbackPlacement(frozenset({"split", "where"}))

        flow = ForgetfulFlow()
        assert flow.uniform_placement  # the forgotten declaration
        assert not flow.supports_derivation()
        cache = PlanCache()
        graph = build_model("gpt2", batch_size=1)
        cache.plan(flow, graph, use_gpu=False)
        derived = cache.plan(flow, graph, use_gpu=True)
        assert derived.kernels == flow.lower(graph, use_gpu=True).kernels
        assert any(k.transfer_bytes_in > 0 for k in derived.kernels)

    def test_custom_refinement_pass_opts_out_of_derivation(self):
        from repro.flows import TorchInductorFlow
        from repro.flows.passes import LoweringPass

        class DeviceTaxPass(LoweringPass):
            """A device-sensitive refinement derive_plan knows nothing about."""

            name = "device-tax"

            def run(self, state):
                for draft in state.drafts:
                    if draft.device is DeviceKind.GPU:
                        draft.launch_count += 1

        class TaxedFlow(TorchInductorFlow):
            def build_pipeline(self):
                base = super().build_pipeline()
                return type(base)(base.passes + (DeviceTaxPass(),))

        flow = TaxedFlow()
        assert flow.uniform_placement and not flow.supports_derivation()
        graph = build_model("segformer", batch_size=1)
        source = flow.lower(graph, use_gpu=True)
        with pytest.raises(PlanError, match="custom refinement"):
            flow.derive_plan(source, use_gpu=False)
        # the cache must not take the sibling-derivation shortcut either
        cache = PlanCache()
        cache.plan(flow, graph, use_gpu=True)
        derived = cache.plan(flow, graph, use_gpu=False)
        assert derived.kernels == flow.lower(graph, use_gpu=False).kernels


class TestPlacementPass:
    def test_uniform_policy_never_resolves_per_node(self):
        class CountingUniform(UniformPlacement):
            def __init__(self):
                self.calls = 0

            def device_for(self, node, use_gpu):
                self.calls += 1
                return super().device_for(node, use_gpu)

        policy = CountingUniform()
        graph = chain_graph(ops.ReLU(), ops.Sigmoid(), ops.Tanh())
        manager = PassManager(
            (FusionPass(FusionConfig(pointwise_chains=True)), PlacementPass(policy))
        )
        state = manager.run(graph, use_gpu=True)
        # the device is resolved once per lowering, not per node or group
        assert policy.calls == 0
        assert all(d is DeviceKind.GPU for d in state.devices)
        assert len(state.devices) == len(state.groups)

    def test_per_op_span_aborts_without_split(self):
        policy = PerOpFallbackPlacement(frozenset({"sigmoid"}))
        graph = chain_graph(ops.ReLU(), ops.Sigmoid(), ops.Tanh())
        manager = PassManager(
            (FusionPass(FusionConfig(pointwise_chains=True)), PlacementPass(policy))
        )
        with pytest.raises(PlanError, match="spans devices"):
            manager.run(graph, use_gpu=True)

    def test_per_op_span_splits_into_runs(self):
        policy = PerOpFallbackPlacement(frozenset({"sigmoid"}))
        graph = chain_graph(ops.ReLU(), ops.Sigmoid(), ops.Tanh())
        pipeline = _standard_pipeline(
            policy, FusionConfig(pointwise_chains=True), split_mixed_groups=True
        )
        state = pipeline.run(graph, use_gpu=True)
        devices = [d.device for d in state.drafts]
        assert devices == [DeviceKind.GPU, DeviceKind.CPU, DeviceKind.GPU]
        # the split singleton is a real fallback kernel: PCIe both ways
        fallback = state.drafts[1]
        assert fallback.transfer_bytes_in > 0 and fallback.transfer_bytes_out > 0
        # off GPU, everything lands on CPU and nothing transfers
        cpu_state = pipeline.run(graph, use_gpu=False)
        assert [d.device for d in cpu_state.drafts] == [DeviceKind.CPU]
        assert cpu_state.drafts[0].transfer_bytes_in == 0

    def test_split_cpu_runs_become_fallback_singletons(self):
        # two adjacent fallback-kind ops in a fused chain must not surface
        # as a fused CPU kernel with free transfers: the host provider runs
        # them one by one, each paying PCIe
        policy = PerOpFallbackPlacement(frozenset({"sigmoid"}))
        graph = chain_graph(ops.ReLU(), ops.Sigmoid(), ops.Sigmoid(), ops.Tanh())
        pipeline = _standard_pipeline(
            policy, FusionConfig(pointwise_chains=True), split_mixed_groups=True
        )
        state = pipeline.run(graph, use_gpu=True)
        devices = [d.device for d in state.drafts]
        assert devices == [
            DeviceKind.GPU,
            DeviceKind.CPU,
            DeviceKind.CPU,
            DeviceKind.GPU,
        ]
        for draft in state.drafts:
            if draft.device is DeviceKind.CPU:
                assert draft.fallback and not draft.fused
                assert draft.transfer_bytes_in > 0 and draft.transfer_bytes_out > 0
                assert draft.cost.flops == 0

    def test_policy_signatures_cover_config(self):
        a = PerOpFallbackPlacement(frozenset({"split", "where"}))
        b = PerOpFallbackPlacement(frozenset({"split"}))
        assert a.signature() != b.signature()
        assert UniformPlacement().signature() == UniformPlacement().signature()


class TestRefinementPasses:
    def test_composite_expansion_scales_launches_and_traffic(self):
        graph = chain_graph(ops.GELU(composite=True), spec=(2, 8))
        manager = PassManager(
            (
                FusionPass(FusionConfig()),
                PlacementPass(UniformPlacement()),
                KernelConstructionPass(collapse=False),
                CompositeExpansionPass(),
            )
        )
        state = manager.run(graph, use_gpu=True)
        (draft,) = state.drafts
        op = graph.nodes[draft.node_ids[0]].op
        assert draft.launch_count == op.eager_kernels > 1
        base = graph.node_costs()[draft.node_ids[0]]
        assert draft.cost.bytes_read == base.bytes_read * op.traffic_passes

    def test_transfer_insertion_zeroes_flops(self):
        g = Graph("split")
        x = g.input(TensorSpec((2, 12)), "x")
        a, b, c = g.call(ops.Split(3, dim=1), x)
        g.set_outputs(g.call(ops.Concat(1), a, b, c))
        state = ONNXRuntimeFlow().pipeline.run(g, use_gpu=True)
        split_draft = next(d for d in state.drafts if d.op_kinds == ("split",))
        assert split_draft.fallback
        assert split_draft.cost.flops == 0
        assert split_draft.transfer_bytes_in == x.spec.nbytes
        assert split_draft.transfer_bytes_out == sum(
            s.nbytes for s in g.nodes[split_draft.node_ids[0]].outputs
        )

    def test_sync_insertion_gpu_only(self):
        graph = chain_graph(ops.Nonzero(max_outputs=8), spec=(4, 4))
        flow = get_flow("pytorch")
        gpu = flow.lower(graph, use_gpu=True)
        cpu = flow.lower(graph, use_gpu=False)
        assert gpu.kernels[0].transfer_bytes_out > 0  # device->host round trip
        assert cpu.kernels[0].transfer_bytes_out == 0

    def test_metadata_elision_spares_synced_kernels(self):
        graph = chain_graph(ops.Reshape((16, 4)), spec=(4, 16))
        manager = PassManager(
            (
                FusionPass(FusionConfig()),
                PlacementPass(UniformPlacement()),
                KernelConstructionPass(collapse=True),
            )
        )
        state = manager.run(graph, use_gpu=True)
        # a sync forced this shape-op's data to materialize: no elision
        state.drafts[0].transfer_bytes_out = 64
        MetadataElisionPass().run(state)
        assert not state.drafts[0].metadata_only
        # without the sync it is elided
        clean = manager.run(graph, use_gpu=True)
        MetadataElisionPass().run(clean)
        assert clean.drafts[0].metadata_only


class TestPipelineSignature:
    def test_stable_across_instances(self):
        assert get_flow("tensorrt").pipeline_signature() == get_flow(
            "tensorrt"
        ).pipeline_signature()

    def test_distinct_across_flows(self):
        signatures = {get_flow(name).pipeline_signature() for name in ALL_FLOWS}
        assert len(signatures) == len(ALL_FLOWS)

    def test_knob_change_changes_signature_despite_same_name(self):
        class WiderTRT(TensorRTFlow):
            fusion = FusionConfig(
                gemm_epilogue=True,
                max_epilogue=8,
                pointwise_chains=True,
                epilogue_norms=True,
                max_chain=6,
            )

        assert WiderTRT.name == TensorRTFlow.name
        assert WiderTRT().pipeline_signature() != TensorRTFlow().pipeline_signature()

    def test_manager_signature_is_order_sensitive(self):
        sync, elide = SyncInsertionPass(), MetadataElisionPass()
        fuse = FusionPass(FusionConfig())
        assert (
            PassManager((fuse, sync, elide)).signature()
            != PassManager((fuse, elide, sync)).signature()
        )

    def test_cache_discriminates_same_named_flow_variants(self):
        class WiderTRT(TensorRTFlow):
            fusion = FusionConfig(
                gemm_epilogue=True,
                max_epilogue=8,
                pointwise_chains=True,
                epilogue_norms=True,
                max_chain=6,
            )

        cache = PlanCache()
        graph = build_model("swin-t", batch_size=1)
        base_plan = cache.plan(TensorRTFlow(), graph, use_gpu=True)
        variant_plan = cache.plan(WiderTRT(), graph, use_gpu=True)
        # same flow name, different knobs: the signature key keeps them apart
        assert variant_plan is not base_plan
        assert cache.stats.misses.get("plan") == 2
        # and the true hit still hits
        assert cache.plan(TensorRTFlow(), graph, use_gpu=True) is base_plan


class TestProvenance:
    def test_lower_records_pass_trace_on_request(self):
        flow = get_flow("tensorrt")
        graph = build_model("swin-t", batch_size=1)
        plain = flow.lower(graph, use_gpu=True)
        assert "passes" not in plain.notes  # hot path stays allocation-free
        traced = flow.lower(graph, use_gpu=True, record_provenance=True)
        assert traced.kernels == plain.kernels
        pass_names = [entry["pass"] for entry in traced.notes["passes"]]
        assert pass_names == list(flow.pipeline.pass_names())
        provenance = traced.notes["kernel_provenance"]
        assert len(provenance) == traced.num_kernels
        fused_tags = [
            tags for kernel, tags in zip(traced.kernels, provenance) if kernel.fused
        ]
        assert fused_tags and all(
            any(tag.startswith("fused[") for tag in tags) for tags in fused_tags
        )


class TestFlowRegistry:
    def test_register_flow_rejects_duplicates(self):
        with pytest.raises(RegistryError):
            register_flow(TensorRTFlow)

    def test_register_flow_rejects_alias_collisions(self):
        class Impostor(TensorRTFlow):
            name = "eager"  # a built-in alias of the pytorch flow

        with pytest.raises(RegistryError, match="alias"):
            register_flow(Impostor)

    def test_register_custom_flow_roundtrip(self):
        class ToyFlow(TensorRTFlow):
            name = "toy-trt"

        try:
            register_flow(ToyFlow)
            assert isinstance(get_flow("toy-trt"), ToyFlow)
            assert "toy-trt" in list_flows()
        finally:
            _FLOWS.pop("toy-trt", None)
            _INSTANCES.pop("toy-trt", None)

    def test_get_flow_shares_instances(self):
        # flows are stateless: the registry memoizes one instance per name so
        # per-point lookups do not rebuild the pipeline or its signature
        assert get_flow("tensorrt") is get_flow("trt")


class TestORTCpuEpFlow:
    def test_combines_fallback_with_inductor_fusion(self, model_graphs):
        from repro.flows import TorchInductorFlow

        assert ORTCpuEpFlow.fusion == TorchInductorFlow.fusion
        # gpt2's Split/Expand/Where attention exercises the CPU-EP fallback
        plan = ORTCpuEpFlow().lower(model_graphs["gpt2"], use_gpu=True)
        ort_plan = ONNXRuntimeFlow().lower(model_graphs["gpt2"], use_gpu=True)
        fallback = {k.node_ids for k in plan.kernels if k.transfer_bytes_in > 0}
        ort_fallback = {
            k.node_ids for k in ort_plan.kernels if k.transfer_bytes_in > 0
        }
        assert fallback  # the CPU-EP story survives the fuser swap
        assert fallback == ort_fallback
        # faster-rcnn has pointwise chains longer than ORT's max_chain=4:
        # the inductor-style fuser turns them into fewer kernels
        rcnn = model_graphs["faster-rcnn"]
        assert (
            ORTCpuEpFlow().lower(rcnn, use_gpu=True).num_kernels
            < ONNXRuntimeFlow().lower(rcnn, use_gpu=True).num_kernels
        )

    def test_available_from_sweep_cli(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--models",
                    "segformer",
                    "--flows",
                    "ort-cpu-ep",
                    "--iterations",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ort-cpu-ep" in out and "1 points" in out


class TestInspectCli:
    def test_inspect_dumps_pipeline_and_provenance(self, capsys):
        from repro.cli import main

        assert main(["inspect", "swin-t", "--flow", "tensorrt", "--kernels", "5"]) == 0
        out = capsys.readouterr().out
        assert "pass pipeline:" in out
        assert "fusion" in out and "metadata-elision" in out
        assert "pipeline signature:" in out
        assert "top 5 kernels by traffic:" in out
