"""Integration tests for the figure/table experiment harnesses.

Each harness runs on a reduced configuration (fewer models / batch sizes)
to stay fast, and the assertions check the paper's qualitative claims.
"""

import pytest

from repro.analysis import (
    run_fig1,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table4,
    run_table5,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(iterations=2)

    def test_four_bars(self, result):
        assert len(result.rows) == 4

    def test_gpu_raises_non_gemm_share(self, result):
        by_key = {(r["model"], r["device"]): r for r in result.rows}
        for model in ("gpt2-xl", "swin-b"):
            cpu = by_key[(model, "CPU")]["non_gemm_pct"]
            gpu = by_key[(model, "CPU+GPU")]["non_gemm_pct"]
            assert gpu > cpu  # the paper's motivational observation

    def test_cpu_is_gemm_dominated(self, result):
        for row in result.rows:
            if row["device"] == "CPU":
                assert row["gemm_pct"] > 50

    def test_render_and_save(self, result, tmp_path):
        text = result.render()
        assert "fig1" in text and "legend" in text
        assert result.save(tmp_path).exists()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(models=("gpt2", "segformer"), batch_sizes=(1, 8), iterations=1)

    def test_energy_positive(self, result):
        assert all(r["gpu_energy_j"] > 0 for r in result.rows)

    def test_batch8_costs_more_energy(self, result):
        by_key = {(r["model"], r["batch"]): r["gpu_energy_j"] for r in result.rows}
        assert by_key[("gpt2", 8)] > by_key[("gpt2", 1)]
        assert by_key[("segformer", 8)] > by_key[("segformer", 1)]


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(
            platform_ids=("A",), models=("vit-b", "gpt2"), batch_sizes=(1,), iterations=1
        )

    def test_grid_complete(self, result):
        assert len(result.rows) == 4  # 2 models x {cpu, gpu}

    def test_shares_sum_to_100(self, result):
        group_cols = [c for c in result.rows[0] if c.endswith("_pct") and c != "non_gemm_pct"]
        for row in result.rows:
            assert sum(row[c] for c in group_cols) == pytest.approx(100, abs=1.0)

    def test_average_note_present(self, result):
        assert any("average non-GEMM share" in n for n in result.notes)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(iterations=1)

    def test_ort_inflates_gpt2_memory_share(self, result):
        rows = {(r["flow"], r["model"]): r for r in result.rows}
        assert (
            rows[("onnxruntime", "gpt2-xl")]["memory_pct"]
            > rows[("pytorch", "gpt2-xl")]["memory_pct"] * 2
        )

    def test_ort_speeds_up_llama(self, result):
        rows = {(r["flow"], r["model"]): r for r in result.rows}
        assert (
            rows[("onnxruntime", "llama2-7b")]["latency_ms"]
            < rows[("pytorch", "llama2-7b")]["latency_ms"]
        )


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(models=("swin-t", "detr"), batch_sizes=(1,), iterations=1)

    def test_all_flows_present(self, result):
        flows = {r["flow"] for r in result.rows}
        assert flows == {"pytorch", "torchinductor", "tensorrt"}

    def test_fusion_reduces_latency(self, result):
        rows = {(r["model"], r["flow"]): r for r in result.rows}
        for model in ("swin-t", "detr"):
            assert rows[(model, "tensorrt")]["latency_ms"] < rows[(model, "pytorch")]["latency_ms"]
            assert (
                rows[(model, "torchinductor")]["latency_ms"]
                < rows[(model, "pytorch")]["latency_ms"]
            )

    def test_fusion_does_not_eliminate_non_gemm_on_swin(self, result):
        rows = {(r["model"], r["flow"]): r for r in result.rows}
        assert rows[("swin-t", "tensorrt")]["non_gemm_pct"] > 15  # paper: ~39-43%

    def test_detr_fusion_exceptionally_effective(self, result):
        rows = {(r["model"], r["flow"]): r for r in result.rows}
        assert rows[("detr", "tensorrt")]["non_gemm_pct"] < rows[("swin-t", "tensorrt")]["non_gemm_pct"]


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(seq_lengths=(512, 2048), iterations=1)

    def test_rows_per_precision(self, result):
        assert len(result.rows) == 4

    def test_quantization_flips_profile_to_non_gemm(self, result):
        rows = {(r["seq_len"], r["precision"]): r for r in result.rows}
        for seq in (512, 2048):
            assert rows[(seq, "int8")]["non_gemm_pct"] > rows[(seq, "fp16")]["non_gemm_pct"] + 15

    def test_int8_gemm_faster(self, result):
        rows = {(r["seq_len"], r["precision"]): r for r in result.rows}
        for seq in (512, 2048):
            assert rows[(seq, "int8")]["gemm_ms"] < rows[(seq, "fp16")]["gemm_ms"]

    def test_qdq_group_appears_only_in_int8(self, result):
        rows = {(r["seq_len"], r["precision"]): r for r in result.rows}
        assert rows[(512, "int8")]["q/dq_pct"] > 0
        assert rows[(512, "fp16")]["q/dq_pct"] == 0

    def test_elementwise_share_grows_from_512_to_8192(self):
        """The paper's endpoint claim: element-wise share rises with sequence
        length under int8 (31.8% -> 63.8% in the paper; smaller here)."""
        result = run_fig9(seq_lengths=(512, 8192), iterations=1)
        rows = {(r["seq_len"], r["precision"]): r for r in result.rows}
        assert (
            rows[(8192, "int8")]["element_wise_arithmetic_pct"]
            > rows[(512, "int8")]["element_wise_arithmetic_pct"]
        )


class TestTables:
    def test_table1_covers_paper_operators(self):
        result = run_table1(models=("detr", "gpt2-xl", "llama2-7b", "segformer"))
        operators = {r["operator"] for r in result.rows}
        for expected in ("gelu", "layer_norm", "rms_norm", "softmax", "neg", "interpolate",
                         "frozen_batch_norm2d", "split", "view"):
            assert expected in operators

    def test_table1_shapes_recorded(self):
        result = run_table1(models=("gpt2-xl",))
        gelu = next(r for r in result.rows if r["operator"] == "gelu")
        assert gelu["example_input_shape"] == [1, 8, 6400]  # Table I's captured shape

    def test_table4_small(self):
        result = run_table4(models=("vit-b", "swin-t"), batch_sizes=(1,), iterations=1)
        rows = {r["model"]: r for r in result.rows}
        assert rows["vit-b"]["operator_group"] == "Normalization"
        assert rows["swin-t"]["operator_group"] == "Memory"

    def test_table5_small(self):
        result = run_table5(models=("detr", "segformer"), batch_sizes=(1,), iterations=1)
        rows = {r["model"]: r for r in result.rows}
        # DETR's CONV+BN+ReLU fusion gives a much larger non-GEMM speedup
        assert rows["detr"]["non_gemm_speedup"] > 2 * rows["segformer"]["non_gemm_speedup"]
        for row in result.rows:
            assert row["non_gemm_after_ms"] < row["non_gemm_before_ms"]
