"""Tests for the LLM.int8() quantization pass."""

import numpy as np

from repro import ops
from repro.ir import DType, Graph, TensorSpec
from repro.models import build_model, configs
from repro.models.llama import build_llama
from repro.ops.base import OpCategory
from repro.quant import quantize_llm_int8
from repro.runtime import run_graph


def linear_stack(dim: int = 64, layers: int = 3, dtype: DType = DType.F16) -> Graph:
    g = Graph("stack")
    x = g.input(TensorSpec((1, 4, dim), dtype), "x")
    h = x
    for i in range(layers):
        h = g.call(ops.Linear(dim, dim, bias=(i == 0), dtype=dtype), h, name=f"fc{i}")
        h = g.call(ops.SiLU(), h, name=f"act{i}")
    g.set_outputs(h)
    return g


class TestPassMechanics:
    def test_quantizes_large_linears(self):
        result = quantize_llm_int8(linear_stack(), min_features=32)
        assert result.stats.linears_quantized == 3
        kinds = result.graph.stats().op_counts
        assert kinds.get("int8_linear", 0) == 3
        assert kinds.get("linear", 0) == 3  # the fp16 outlier paths
        assert kinds.get("quantize", 0) == 3
        assert kinds.get("dequantize", 0) == 3

    def test_small_linears_kept_fp(self):
        result = quantize_llm_int8(linear_stack(dim=64), min_features=128)
        assert result.stats.linears_quantized == 0
        assert result.stats.linears_kept_fp == 3

    def test_adds_ops(self):
        result = quantize_llm_int8(linear_stack(), min_features=32)
        assert result.stats.ops_added > 0
        assert result.stats.ops_after == len(result.graph.compute_nodes())
        assert result.stats.qdq_ops_added == 6

    def test_output_specs_preserved(self):
        graph = linear_stack()
        result = quantize_llm_int8(graph, min_features=32)
        assert [v.spec.shape for v in result.graph.outputs] == [
            v.spec.shape for v in graph.outputs
        ]

    def test_original_graph_untouched(self):
        graph = linear_stack()
        before = len(graph.compute_nodes())
        quantize_llm_int8(graph, min_features=32)
        assert len(graph.compute_nodes()) == before

    def test_rewritten_graph_validates_and_runs(self, rng):
        graph = linear_stack(dim=32)
        result = quantize_llm_int8(graph, min_features=16)
        result.graph.validate()
        x = rng.normal(size=(1, 4, 32)).astype(np.float16)
        (out,) = run_graph(result.graph, {"x": x})
        assert out.shape == (1, 4, 32)
        assert np.all(np.isfinite(out.astype(np.float32)))

    def test_qdq_ops_report_in_qdq_group(self):
        result = quantize_llm_int8(linear_stack(), min_features=32)
        categories = {n.op.category for n in result.graph.compute_nodes()}
        assert OpCategory.QDQ in categories


class TestOnLlama:
    def test_quantizes_llama_linears(self):
        graph = build_model("llama3-8b", seq_len=16)
        result = quantize_llm_int8(graph)
        # 7 projections per layer x 32 layers + lm_head
        assert result.stats.linears_quantized == 7 * 32 + 1
        assert result.stats.ops_added > 1000  # paper: thousands of extra ops

    def test_int8_weights_smaller_in_bytes(self):
        config = configs.LlamaConfig(
            name="llama-test", layers=2, dim=64, heads=4, kv_heads=4,
            ffn_dim=128, vocab=256, seq_len=4, dtype=DType.F16,
        )
        graph = build_llama(config)
        result = quantize_llm_int8(graph, min_features=64)
        bytes_before = sum(n.op.weight_bytes() for n in graph.nodes)
        bytes_after = sum(n.op.weight_bytes() for n in result.graph.nodes)
        assert bytes_after < bytes_before  # i8 storage beats f16 despite extra outlier weights

    def test_gemm_share_of_ops_drops(self):
        graph = build_model("llama3-8b", seq_len=16)
        result = quantize_llm_int8(graph)
        before = graph.stats()
        after = result.graph.stats()
        ratio_before = before.gemm_op_count / before.num_nodes
        ratio_after = after.gemm_op_count / after.num_nodes
        assert ratio_after < ratio_before
