"""Unit tests for normalization operators."""

import numpy as np
import pytest

from repro import ops
from repro.errors import ShapeError
from repro.ir import TensorSpec
from tests.conftest import make_weights, run_op


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        op = ops.LayerNorm(16)
        w = {"weight": np.ones(16, np.float32), "bias": np.zeros(16, np.float32)}
        x = rng.normal(2.0, 3.0, size=(4, 16)).astype(np.float32)
        y = run_op(op, x, weights=w)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_apply(self, rng):
        op = ops.LayerNorm(8)
        w = {"weight": np.full(8, 2.0, np.float32), "bias": np.full(8, 1.0, np.float32)}
        x = rng.normal(size=(2, 8)).astype(np.float32)
        y = run_op(op, x, weights=w)
        assert abs(float(y.mean()) - 1.0) < 0.2  # scaled zero-mean + bias

    def test_multi_dim_normalized_shape(self, rng):
        op = ops.LayerNorm((4, 8))
        x = rng.normal(size=(2, 4, 8)).astype(np.float32)
        y = run_op(op, x, weights=make_weights(op))
        assert y.shape == (2, 4, 8)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.LayerNorm(16).infer_spec([TensorSpec((4, 8))])

    def test_two_eager_kernels(self):
        assert ops.LayerNorm(16).eager_kernels == 2


class TestRMSNorm:
    def test_unit_rms(self, rng):
        op = ops.RMSNorm(32)
        w = {"weight": np.ones(32, np.float32)}
        x = rng.normal(0, 5.0, size=(3, 32)).astype(np.float32)
        y = run_op(op, x, weights=w)
        rms = np.sqrt(np.mean(np.square(y), axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_no_mean_subtraction(self):
        """RMSNorm of a constant vector keeps its sign (unlike LayerNorm)."""
        op = ops.RMSNorm(4)
        w = {"weight": np.ones(4, np.float32)}
        x = np.full((1, 4), 3.0, np.float32)
        y = run_op(op, x, weights=w)
        assert np.all(y > 0.9)

    def test_hf_composite_kernel_count(self):
        op = ops.RMSNorm(4)
        assert op.eager_kernels == 8
        assert op.traffic_passes == 4
        assert op.is_custom_kernel


class TestBatchNorm2d:
    def test_inference_uses_running_stats(self, rng):
        op = ops.BatchNorm2d(3)
        w = {
            "weight": np.ones(3, np.float32),
            "bias": np.zeros(3, np.float32),
            "running_mean": np.array([1.0, 2.0, 3.0], np.float32),
            "running_var": np.ones(3, np.float32),
        }
        x = np.stack([np.full((4, 4), m, np.float32) for m in (1.0, 2.0, 3.0)])[None]
        y = run_op(op, x, weights=w)
        np.testing.assert_allclose(y, 0.0, atol=1e-2)

    def test_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            ops.BatchNorm2d(3).infer_spec([TensorSpec((1, 3, 8))])


class TestFrozenBatchNorm2d:
    def test_precomputed_variant_kernels(self):
        op = ops.FrozenBatchNorm2d(64, precomputed=True)
        assert op.eager_kernels == 2
        assert not op.is_custom_kernel

    def test_detr_variant_kernels(self):
        op = ops.FrozenBatchNorm2d(64, precomputed=False)
        assert op.eager_kernels == 7
        assert op.is_custom_kernel
        assert "per-forward" in op.describe()

    def test_numerics_match_batchnorm(self, rng):
        w = make_weights(ops.BatchNorm2d(4))
        x = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        y_bn = run_op(ops.BatchNorm2d(4), x, weights=w)
        y_fbn = run_op(ops.FrozenBatchNorm2d(4), x, weights=w)
        np.testing.assert_allclose(y_bn, y_fbn, rtol=1e-5)


class TestGroupNorm:
    def test_per_group_statistics(self, rng):
        op = ops.GroupNorm(2, 8)
        w = {"weight": np.ones(8, np.float32), "bias": np.zeros(8, np.float32)}
        x = rng.normal(3.0, 2.0, size=(2, 8, 4, 4)).astype(np.float32)
        y = run_op(op, x, weights=w)
        grouped = y.reshape(2, 2, 4, 4, 4)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-4)

    def test_channels_must_divide(self):
        with pytest.raises(ShapeError):
            ops.GroupNorm(3, 8)


def test_norm_cost_includes_weights():
    op = ops.LayerNorm(64)
    spec = TensorSpec((2, 10, 64))
    cost = op.cost([spec], list(op.infer_spec([spec])))
    assert cost.bytes_read == spec.nbytes + op.weight_bytes()
    assert cost.flops == spec.numel * op.FLOPS_PER_ELEMENT
