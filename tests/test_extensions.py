"""Tests for the extension surface: CNN baselines and trace export."""

import json

import numpy as np
import pytest

from repro.flows import get_flow
from repro.hardware import PLATFORM_A
from repro.models import build_model, get_model
from repro.models.cnn import (
    MobileNetV2Config,
    ResNetConfig,
    build_mobilenet_v2,
    build_resnet50,
)
from repro.ops.base import OpCategory
from repro.profiler import export_chrome_trace, profile_graph, trace_events
from repro.runtime import run_graph


class TestResNet50:
    def test_registered_as_extension(self):
        entry = get_model("resnet50")
        assert entry.paper_params == "25.6M"

    def test_parameter_count(self):
        graph = build_model("resnet50")
        assert graph.param_count() / 1e6 == pytest.approx(25.6, rel=0.02)

    def test_profile_is_gemm_dominated_on_gpu(self):
        graph = build_model("resnet50")
        profile = profile_graph(graph, get_flow("pytorch"), PLATFORM_A, use_gpu=True)
        group, _ = profile.dominant_non_gemm_group()
        # a classic CNN's non-GEMM profile is BN/ReLU dominated
        assert group in (OpCategory.NORMALIZATION, OpCategory.ACTIVATION)

    def test_small_config_executes(self, rng):
        config = ResNetConfig(name="r50-test", image_size=64, num_classes=10)
        graph = build_resnet50(config, batch_size=1)
        (logits,) = run_graph(graph, {"pixels": rng.normal(size=(1, 3, 64, 64)).astype(np.float32)})
        assert logits.shape == (1, 10)


class TestMobileNetV2:
    def test_parameter_count(self):
        graph = build_model("mobilenet-v2")
        assert graph.param_count() / 1e6 == pytest.approx(3.5, rel=0.05)

    def test_depthwise_convs_present(self):
        graph = build_model("mobilenet-v2")
        dw = [
            n for n in graph.compute_nodes()
            if n.op.kind == "conv2d" and getattr(n.op, "groups", 1) > 1
        ]
        assert len(dw) == 17  # one per inverted residual block

    def test_small_config_executes(self, rng):
        config = MobileNetV2Config(name="mbv2-test", image_size=64, width_mult=0.25, num_classes=7)
        graph = build_mobilenet_v2(config, batch_size=2)
        (logits,) = run_graph(graph, {"pixels": rng.normal(size=(2, 3, 64, 64)).astype(np.float32)})
        assert logits.shape == (2, 7)

    def test_residuals_only_on_matching_shapes(self):
        graph = build_model("mobilenet-v2")
        adds = [n for n in graph.compute_nodes() if n.op.kind == "add"]
        assert len(adds) == 10  # blocks with stride 1 and equal channels


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_graph(build_model("gpt2"), get_flow("pytorch"), PLATFORM_A, use_gpu=True)

    def test_events_cover_all_kernels(self, profile):
        events = trace_events(profile)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(profile.records)

    def test_events_are_contiguous_timeline(self, profile):
        complete = [e for e in trace_events(profile) if e["ph"] == "X"]
        cursor = 0.0
        for event in complete:
            assert event["ts"] == pytest.approx(cursor, abs=0.01)
            cursor += event["dur"]
        assert cursor == pytest.approx(profile.total_latency_ms * 1e3, rel=0.01)

    def test_export_roundtrips_as_json(self, profile, tmp_path):
        path = export_chrome_trace(profile, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["otherData"]["model"] == "gpt2"
        assert payload["traceEvents"]
        groups = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "GEMM-based" in groups and "Activation" in groups
