"""Unit tests for memory operators (views and materializing copies)."""

import numpy as np
import pytest

from repro import ops
from repro.errors import ShapeError
from repro.ir import TensorSpec
from tests.conftest import run_op


class TestReshapeView:
    def test_reshape_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        y = run_op(ops.Reshape((6, 4)), x)
        z = run_op(ops.Reshape((2, 3, 4)), y)
        np.testing.assert_array_equal(x, z)

    def test_wildcard_dimension(self):
        (out,) = ops.Reshape((2, -1)).infer_spec([TensorSpec((2, 3, 4))])
        assert out.shape == (2, 12)

    def test_two_wildcards_rejected(self):
        with pytest.raises(ShapeError):
            ops.Reshape((-1, -1))

    def test_numel_mismatch(self):
        with pytest.raises(ShapeError):
            ops.Reshape((5, 5)).infer_spec([TensorSpec((2, 3))])

    def test_views_are_metadata_only(self):
        for op in (ops.Reshape((4,)), ops.View((4,)), ops.Permute((0,)), ops.Squeeze(0)):
            assert op.is_metadata_only

    def test_view_kind_distinct_from_reshape(self):
        assert ops.View((4,)).kind == "view"


class TestPermuteTranspose:
    def test_permute(self, rng):
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        y = run_op(ops.Permute((2, 0, 1)), x)
        np.testing.assert_array_equal(y, np.transpose(x, (2, 0, 1)))

    def test_permute_validates(self):
        with pytest.raises(ShapeError):
            ops.Permute((0, 0, 1))

    def test_transpose_negative_dims(self, rng):
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        y = run_op(ops.Transpose(-2, -1), x)
        assert y.shape == (2, 4, 3)


class TestContiguous:
    def test_identity_semantics_real_kernel(self, rng):
        x = rng.normal(size=(3, 3)).astype(np.float32)
        y = run_op(ops.Contiguous(), x)
        np.testing.assert_array_equal(x, y)
        assert not ops.Contiguous().is_metadata_only

    def test_cost_is_copy(self):
        spec = TensorSpec((8, 8))
        op = ops.Contiguous()
        cost = op.cost([spec], list(op.infer_spec([spec])))
        assert cost.bytes_read == spec.nbytes
        assert cost.bytes_written == spec.nbytes


class TestSplitConcat:
    def test_split_then_concat_roundtrip(self, rng):
        x = rng.normal(size=(2, 9)).astype(np.float32)
        parts = run_op(ops.Split(3, dim=1), x)
        y = run_op(ops.Concat(1), *parts)
        np.testing.assert_array_equal(x, y)

    def test_split_requires_divisibility(self):
        with pytest.raises(ShapeError):
            ops.Split(4, dim=1).infer_spec([TensorSpec((2, 9))])

    def test_concat_shape_checks(self):
        with pytest.raises(ShapeError):
            ops.Concat(0).infer_spec([TensorSpec((2, 3)), TensorSpec((2, 4))])

    def test_concat_is_materializing(self):
        assert not ops.Concat(0).is_metadata_only
        assert ops.Split(2, 0).is_metadata_only  # torch split returns views


class TestExpandSqueeze:
    def test_expand_broadcasts(self, rng):
        x = rng.normal(size=(1, 1, 4)).astype(np.float32)
        y = run_op(ops.Expand((2, 3, 4)), x)
        assert y.shape == (2, 3, 4)
        np.testing.assert_array_equal(y[0, 0], y[1, 2])

    def test_expand_minus_one_keeps(self):
        (out,) = ops.Expand((2, -1, 4)).infer_spec([TensorSpec((1, 3, 4))])
        assert out.shape == (2, 3, 4)

    def test_expand_rejects_non_singleton(self):
        with pytest.raises(ShapeError):
            ops.Expand((2, 5)).infer_spec([TensorSpec((1, 3))])

    def test_squeeze_unsqueeze_roundtrip(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        y = run_op(ops.Unsqueeze(1), x)
        assert y.shape == (2, 1, 3)
        z = run_op(ops.Squeeze(1), y)
        np.testing.assert_array_equal(x, z)

    def test_squeeze_requires_singleton(self):
        with pytest.raises(ShapeError):
            ops.Squeeze(0).infer_spec([TensorSpec((2, 3))])


class TestSliceRollPad:
    def test_slice(self, rng):
        x = rng.normal(size=(4, 10)).astype(np.float32)
        y = run_op(ops.Slice(1, 2, 7), x)
        np.testing.assert_array_equal(y, x[:, 2:7])

    def test_slice_bounds(self):
        with pytest.raises(ShapeError):
            ops.Slice(1, 2, 20).infer_spec([TensorSpec((4, 10))])

    def test_roll_is_cyclic(self, rng):
        x = rng.normal(size=(1, 6, 6, 2)).astype(np.float32)
        y = run_op(ops.Roll((-2, -2), (1, 2)), x)
        z = run_op(ops.Roll((2, 2), (1, 2)), y)
        np.testing.assert_array_equal(x, z)

    def test_pad_shape_and_zeros(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        y = run_op(ops.Pad(((0, 1), (2, 0))), x)
        assert y.shape == (3, 5)
        assert np.all(y[2] == 0) and np.all(y[:, :2] == 0)
