"""Unit tests for element-wise arithmetic operators."""

import numpy as np
import pytest

from repro import ops
from repro.ir import TensorSpec
from tests.conftest import run_op


@pytest.mark.parametrize(
    "op,fn",
    [
        (ops.Add(), np.add),
        (ops.Sub(), np.subtract),
        (ops.Mul(), np.multiply),
        (ops.Div(), np.divide),
        (ops.Maximum(), np.maximum),
    ],
    ids=lambda v: getattr(v, "kind", getattr(v, "__name__", "fn")),
)
def test_binary_ops_match_numpy(op, fn, rng):
    a = rng.normal(size=(3, 4)).astype(np.float32)
    b = rng.normal(size=(3, 4)).astype(np.float32) + 2.0
    np.testing.assert_allclose(run_op(op, a, b), fn(a, b), rtol=1e-6)


def test_binary_broadcasting(rng):
    a = rng.normal(size=(2, 1, 4)).astype(np.float32)
    b = rng.normal(size=(3, 1)).astype(np.float32)
    y = run_op(ops.Add(), a, b)
    assert y.shape == (2, 3, 4)


@pytest.mark.parametrize(
    "op,fn",
    [
        (ops.Neg(), np.negative),
        (ops.Abs(), np.abs),
        (ops.Exp(), np.exp),
    ],
    ids=lambda v: getattr(v, "kind", "fn"),
)
def test_unary_ops(op, fn, rng):
    x = rng.normal(size=(5,)).astype(np.float32)
    np.testing.assert_allclose(run_op(op, x), fn(x), rtol=1e-6)


def test_sqrt_rsqrt(rng):
    x = np.abs(rng.normal(size=(5,))).astype(np.float32) + 0.1
    np.testing.assert_allclose(run_op(ops.Sqrt(), x), np.sqrt(x), rtol=1e-6)
    np.testing.assert_allclose(run_op(ops.Rsqrt(), x), 1 / np.sqrt(x), rtol=1e-5)


def test_scalar_ops(rng):
    x = rng.normal(size=(4, 4)).astype(np.float32)
    np.testing.assert_allclose(run_op(ops.AddScalar(2.5), x), x + 2.5, rtol=1e-6)
    np.testing.assert_allclose(run_op(ops.MulScalar(-3.0), x), x * -3.0, rtol=1e-6)
    np.testing.assert_allclose(run_op(ops.DivScalar(8.0), x), x / 8.0, rtol=1e-6)
    np.testing.assert_allclose(run_op(ops.PowScalar(2.0), np.abs(x)), np.abs(x) ** 2, rtol=1e-5)


def test_binary_cost_counts_both_inputs():
    op = ops.Add()
    a, b = TensorSpec((4, 4)), TensorSpec((4, 4))
    cost = op.cost([a, b], list(op.infer_spec([a, b])))
    assert cost.bytes_read == a.nbytes + b.nbytes
    assert cost.bytes_written == a.nbytes
    assert cost.flops == 16


def test_div_is_costlier_than_add():
    assert ops.Div.FLOPS_PER_ELEMENT > ops.Add.FLOPS_PER_ELEMENT


def test_elementwise_category():
    for op in (ops.Add(), ops.Neg(), ops.DivScalar(2.0)):
        assert op.category is ops.OpCategory.ELEMENTWISE
