"""Tests for the model zoo: registry, shapes, parameter counts, op mixes."""

import numpy as np
import pytest

from repro import ops
from repro.errors import RegistryError
from repro.models import (
    PAPER_MODELS,
    ModelEntry,
    TaskDomain,
    build_model,
    configs,
    get_model,
    list_models,
    register_model,
)
from repro.models.bert import build_bert
from repro.models.gpt2 import build_gpt2
from repro.models.llama import build_llama
from repro.models.segformer import build_segformer
from repro.models.swin import build_swin
from repro.models.vit import build_vit
from repro.runtime import run_graph

#: published parameter counts (millions) and acceptable relative tolerance
PARAM_TARGETS = {
    "vit-b": (86.6, 0.05),
    "vit-l": (304.3, 0.05),
    "vit-h": (632.0, 0.05),
    "swin-t": (28.3, 0.06),
    "swin-s": (49.6, 0.06),
    "swin-b": (87.8, 0.06),
    "detr": (41.3, 0.10),
    "segformer": (3.7, 0.15),
    "gpt2": (163.0, 0.05),  # incl. untied lm_head (124M tied)
    "gpt2-xl": (1638.0, 0.05),
    "llama2-7b": (6738.0, 0.02),
    "bert": (109.5, 0.05),
    "mixtral-8x7b": (46703.0, 0.02),
}


class TestRegistry:
    def test_all_17_paper_models_registered(self):
        assert len(PAPER_MODELS) == 17
        for name in PAPER_MODELS:
            assert get_model(name).name == name

    def test_domains(self):
        assert get_model("vit-b").domain is TaskDomain.IMAGE_CLASSIFICATION
        assert get_model("detr").domain is TaskDomain.OBJECT_DETECTION
        assert get_model("segformer").domain is TaskDomain.IMAGE_SEGMENTATION
        assert get_model("llama2-7b").domain is TaskDomain.NLP

    def test_domain_filter(self):
        ic = {e.name for e in list_models(TaskDomain.IMAGE_CLASSIFICATION)}
        # the six paper IC models plus the two CNN extension baselines
        assert {"vit-b", "vit-l", "vit-h", "swin-t", "swin-s", "swin-b"} <= ic
        assert {"resnet50", "mobilenet-v2"} <= ic

    def test_unknown_model(self):
        with pytest.raises(RegistryError):
            get_model("resnet-9000")

    def test_duplicate_registration_rejected(self):
        entry = get_model("gpt2")
        with pytest.raises(RegistryError):
            register_model(entry)
        register_model(entry, replace=True)  # explicit replace allowed

    def test_custom_registration(self):
        def build(config, batch_size=1):
            from repro.ir import Graph, TensorSpec

            g = Graph("unit-model")
            x = g.input(TensorSpec((batch_size, 4)), "x")
            g.set_outputs(g.call(ops.Linear(4, 2), x))
            return g

        register_model(
            ModelEntry("unit-model", TaskDomain.NLP, build, None, "wikitext", "tiny"),
            replace=True,
        )
        graph = build_model("unit-model", batch_size=3)
        assert graph.outputs[0].spec.shape == (3, 2)


@pytest.mark.parametrize("name,target", sorted(PARAM_TARGETS.items()))
def test_parameter_counts_match_published(name, target):
    millions, tolerance = target
    graph = build_model(name, batch_size=1)
    actual = graph.param_count() / 1e6
    assert actual == pytest.approx(millions, rel=tolerance), f"{name}: {actual:.1f}M"


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_every_model_builds_and_validates(name):
    graph = build_model(name, batch_size=1)
    graph.validate()
    stats = graph.stats()
    assert stats.gemm_op_count > 0
    assert stats.non_gemm_op_count > stats.gemm_op_count  # non-GEMM ops outnumber GEMMs


@pytest.mark.parametrize("name", ["vit-b", "swin-t", "gpt2", "bert", "detr"])
def test_batch_size_scales_input(name):
    graph = build_model(name, batch_size=4)
    assert graph.input_nodes[0].outputs[0].shape[0] == 4


class TestOperatorSignatures:
    """Each architecture must carry its paper-documented operator signature."""

    def test_swin_has_window_copies_and_rolls(self):
        graph = build_model("swin-t")
        kinds = graph.stats().op_counts
        assert kinds.get("contiguous", 0) >= 24  # partition/reverse copies
        assert kinds.get("roll", 0) >= 8  # shifted windows

    def test_vit_memory_ops_are_views(self):
        graph = build_model("vit-b")
        kinds = graph.stats().op_counts
        assert kinds.get("contiguous", 0) == 0  # ViT never materializes copies
        assert kinds.get("permute", 0) > 0

    def test_detr_uses_per_forward_frozen_bn(self):
        graph = build_model("detr")
        fbns = [n.op for n in graph.compute_nodes() if n.op.kind == "frozen_batch_norm2d"]
        assert len(fbns) == 53  # ResNet-50 norm count
        assert all(not op.precomputed for op in fbns)

    def test_rcnn_uses_precomputed_frozen_bn_and_nms(self):
        graph = build_model("faster-rcnn")
        kinds = graph.stats().op_counts
        fbns = [n.op for n in graph.compute_nodes() if n.op.kind == "frozen_batch_norm2d"]
        assert all(op.precomputed for op in fbns)
        assert kinds.get("nms", 0) >= 2  # RPN + detection
        assert kinds.get("roi_align", 0) == 1

    def test_mask_rcnn_extends_faster_rcnn(self):
        frcnn = build_model("faster-rcnn").stats().op_counts
        mrcnn = build_model("mask-rcnn").stats().op_counts
        assert mrcnn.get("roi_align", 0) == 2
        assert mrcnn.get("conv2d", 0) > frcnn.get("conv2d", 0)

    def test_gpt2_signature(self):
        graph = build_model("gpt2")
        kinds = graph.stats().op_counts
        assert kinds.get("conv1d", 0) == 4 * 12  # HF Conv1D projections
        assert kinds.get("split", 0) == 12
        assert kinds.get("where", 0) == 12  # causal mask
        gelus = [n.op for n in graph.compute_nodes() if n.op.kind == "gelu"]
        assert all(op.eager_kernels > 1 for op in gelus)  # NewGELU composite

    def test_llama_signature(self):
        graph = build_model("llama2-7b")
        kinds = graph.stats().op_counts
        assert kinds.get("rms_norm", 0) == 2 * 32 + 1
        assert kinds.get("silu", 0) == 32
        assert kinds.get("neg", 0) == 2 * 32  # rotate_half on q and k

    def test_llama3_gqa_expands_kv(self):
        graph = build_model("llama3-8b", seq_len=16)
        kinds = graph.stats().op_counts
        assert kinds.get("expand", 0) >= 2 * 32  # repeat_kv memory ops

    def test_mixtral_routing_ops(self):
        graph = build_model("mixtral-8x7b")
        kinds = graph.stats().op_counts
        assert kinds.get("topk", 0) == 32
        assert kinds.get("nonzero", 0) == 32 * 8
        assert kinds.get("index_add", 0) == 32 * 8

    def test_segformer_has_batchnorm_decode_head(self):
        graph = build_model("segformer")
        kinds = graph.stats().op_counts
        assert kinds.get("batch_norm2d", 0) == 1
        assert kinds.get("interpolate", 0) >= 3

    def test_maskformer_inherits_swin_memory_ops(self):
        graph = build_model("maskformer")
        kinds = graph.stats().op_counts
        assert kinds.get("contiguous", 0) > 40
        assert kinds.get("group_norm", 0) > 0

    def test_bert_embeddings_and_pooler(self):
        graph = build_model("bert")
        kinds = graph.stats().op_counts
        assert kinds.get("embedding", 0) == 3  # word/pos/type
        assert kinds.get("tanh", 0) == 1
        assert kinds.get("layer_norm", 0) == 2 * 12 + 1


class TestSmallConfigExecution:
    """Scaled-down configs execute numerically end to end."""

    def test_tiny_vit_executes(self, rng):
        config = configs.ViTConfig(name="vit-test", image_size=32, patch_size=8, dim=32, depth=2, heads=2)
        graph = build_vit(config, batch_size=2)
        (logits,) = run_graph(graph, {"pixels": rng.normal(size=(2, 3, 32, 32)).astype(np.float32)})
        assert logits.shape == (2, 1000)
        assert np.all(np.isfinite(logits))

    def test_tiny_swin_executes(self, rng):
        config = configs.SwinConfig(
            name="swin-test", image_size=32, patch_size=4, window=4,
            embed_dim=16, depths=(2, 2), heads=(2, 4),
        )
        graph = build_swin(config, batch_size=1)
        (logits,) = run_graph(graph, {"pixels": rng.normal(size=(1, 3, 32, 32)).astype(np.float32)})
        assert logits.shape == (1, 1000)

    def test_tiny_gpt2_executes(self, rng):
        config = configs.GPT2Config(name="gpt2-test", layers=2, dim=32, heads=2, vocab=100, seq_len=6)
        graph = build_gpt2(config, batch_size=2)
        ids = rng.integers(0, 100, size=(2, 6)).astype(np.int64)
        pos = np.tile(np.arange(6, dtype=np.int64), (2, 1))
        (logits,) = run_graph(graph, {"input_ids": ids, "position_ids": pos})
        assert logits.shape == (2, 6, 100)

    def test_tiny_llama_executes(self, rng):
        config = configs.LlamaConfig(
            name="llama-test", layers=2, dim=32, heads=4, kv_heads=2,
            ffn_dim=64, vocab=120, seq_len=5,
        )
        graph = build_llama(config, batch_size=1)
        ids = rng.integers(0, 120, size=(1, 5)).astype(np.int64)
        (logits,) = run_graph(graph, {"input_ids": ids})
        assert logits.shape == (1, 5, 120)
        assert np.all(np.isfinite(logits.astype(np.float32)))

    def test_tiny_bert_executes(self, rng):
        config = configs.BertConfig(name="bert-test", layers=2, dim=32, heads=2, ffn_dim=64, vocab=80, seq_len=8)
        graph = build_bert(config, batch_size=2)
        ids = rng.integers(0, 80, size=(2, 8)).astype(np.int64)
        pos = np.tile(np.arange(8, dtype=np.int64), (2, 1))
        types = np.zeros((2, 8), dtype=np.int64)
        hidden, pooled = run_graph(
            graph, {"input_ids": ids, "position_ids": pos, "token_type_ids": types}
        )
        assert hidden.shape == (2, 8, 32)
        assert pooled.shape == (2, 32)

    def test_tiny_segformer_executes(self, rng):
        config = configs.SegFormerConfig(
            name="seg-test", image_size=64, embed_dims=(8, 16, 24, 32),
            depths=(1, 1, 1, 1), heads=(1, 2, 3, 4), sr_ratios=(4, 2, 1, 1),
            decoder_dim=16, num_classes=10,
        )
        graph = build_segformer(config, batch_size=1)
        (logits,) = run_graph(graph, {"pixels": rng.normal(size=(1, 3, 64, 64)).astype(np.float32)})
        assert logits.shape[:2] == (1, 10)
