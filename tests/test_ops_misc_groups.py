"""Unit tests for softmax, RoI, interpolation, pooling, reduction,
embedding, misc, and quantized operators."""

import numpy as np
import pytest

from repro import ops
from repro.errors import ShapeError
from repro.ir import DType, TensorSpec
from tests.conftest import make_weights, run_op


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7)).astype(np.float32) * 10
        y = run_op(ops.Softmax(-1), x)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-5)
        assert np.all(y >= 0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5)).astype(np.float32)
        y1 = run_op(ops.Softmax(-1), x)
        y2 = run_op(ops.Softmax(-1), x + 100.0)
        np.testing.assert_allclose(y1, y2, atol=1e-5)

    def test_log_softmax(self, rng):
        x = rng.normal(size=(3, 6)).astype(np.float32)
        y = run_op(ops.LogSoftmax(-1), x)
        np.testing.assert_allclose(np.exp(y).sum(axis=-1), 1.0, rtol=1e-5)


class TestNMS:
    def test_suppresses_overlapping(self):
        boxes = np.array(
            [[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]], dtype=np.float32
        )
        scores = np.array([0.9, 0.8, 0.7], dtype=np.float32)
        op = ops.NMS(iou_threshold=0.5, score_threshold=0.0, max_outputs=10)
        kept, count = run_op(op, boxes, scores)
        assert int(count) == 2  # the two heavily overlapping boxes collapse
        np.testing.assert_array_equal(kept[0], boxes[0])

    def test_score_threshold_filters(self):
        boxes = np.array([[0, 0, 10, 10], [20, 20, 30, 30]], dtype=np.float32)
        scores = np.array([0.9, 0.01], dtype=np.float32)
        op = ops.NMS(iou_threshold=0.5, score_threshold=0.5, max_outputs=10)
        _, count = run_op(op, boxes, scores)
        assert int(count) == 1

    def test_respects_max_outputs(self, rng):
        n = 30
        boxes = np.stack(
            [
                np.arange(n) * 20.0,
                np.zeros(n),
                np.arange(n) * 20.0 + 10,
                np.full(n, 10.0),
            ],
            axis=1,
        ).astype(np.float32)
        scores = rng.uniform(0.5, 1.0, n).astype(np.float32)
        op = ops.NMS(iou_threshold=0.5, score_threshold=0.0, max_outputs=5)
        kept, count = run_op(op, boxes, scores)
        assert int(count) == 5 and kept.shape == (5, 4)

    def test_invalid_threshold(self):
        with pytest.raises(ShapeError):
            ops.NMS(iou_threshold=1.5)


class TestRoIAlign:
    def test_output_shape(self, rng):
        feats = rng.normal(size=(1, 8, 16, 16)).astype(np.float32)
        rois = np.array([[0, 0, 0, 8, 8], [0, 4, 4, 12, 12]], dtype=np.float32)
        y = run_op(ops.RoIAlign(output_size=4), feats, rois)
        assert y.shape == (2, 8, 4, 4)

    def test_constant_feature_sampling(self):
        feats = np.full((1, 2, 8, 8), 5.0, dtype=np.float32)
        rois = np.array([[0, 1, 1, 6, 6]], dtype=np.float32)
        y = run_op(ops.RoIAlign(output_size=2), feats, rois)
        np.testing.assert_allclose(y, 5.0, rtol=1e-6)


class TestInterpolate:
    def test_nearest_upsample_repeats(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        y = run_op(ops.Interpolate(scale_factor=2.0, mode="nearest"), x)
        assert y.shape == (1, 1, 4, 4)
        np.testing.assert_array_equal(y[0, 0, :2, :2], x[0, 0, 0, 0])

    def test_bilinear_preserves_constant(self):
        x = np.full((1, 3, 5, 5), 2.5, dtype=np.float32)
        y = run_op(ops.Interpolate(size=(9, 9), mode="bilinear"), x)
        np.testing.assert_allclose(y, 2.5, rtol=1e-6)

    def test_needs_exactly_one_target(self):
        with pytest.raises(ShapeError):
            ops.Interpolate(scale_factor=2.0, size=(4, 4))
        with pytest.raises(ShapeError):
            ops.Interpolate()


class TestPooling:
    def test_maxpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = run_op(ops.MaxPool2d(2), x)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        y = run_op(ops.AvgPool2d(2), x)
        np.testing.assert_allclose(y, 1.0)

    def test_maxpool_padding_ignores_pad_values(self):
        x = np.full((1, 1, 2, 2), -1.0, dtype=np.float32)
        y = run_op(ops.MaxPool2d(3, stride=1, padding=1), x)
        assert np.all(y == -1.0)

    def test_adaptive_avg_pool(self, rng):
        x = rng.normal(size=(2, 4, 7, 7)).astype(np.float32)
        y = run_op(ops.AdaptiveAvgPool2d(1), x)
        np.testing.assert_allclose(y[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)


class TestReductions:
    def test_mean_sum_max(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        np.testing.assert_allclose(run_op(ops.Mean(1), x), x.mean(axis=1), rtol=1e-6)
        np.testing.assert_allclose(run_op(ops.Sum(0), x), x.sum(axis=0), rtol=1e-5)
        np.testing.assert_allclose(run_op(ops.Max(1), x), x.max(axis=1), rtol=1e-6)

    def test_keepdim(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        assert run_op(ops.Mean(1, keepdim=True), x).shape == (3, 1)

    def test_argmax_dtype(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        y = run_op(ops.ArgMax(1), x)
        assert y.dtype == np.int64
        np.testing.assert_array_equal(y, np.argmax(x, axis=1))


class TestEmbedding:
    def test_gathers_rows(self, rng):
        op = ops.Embedding(10, 4)
        w = make_weights(op)
        ids = np.array([[0, 3, 9]], dtype=np.int64)
        y = run_op(op, ids, weights=w)
        np.testing.assert_array_equal(y[0, 1], w["weight"][3])

    def test_requires_integer_ids(self):
        with pytest.raises(ShapeError):
            ops.Embedding(10, 4).infer_spec([TensorSpec((1, 3), DType.F32)])


class TestMiscOps:
    def test_where(self, rng):
        cond = np.array([True, False, True])
        a = np.ones(3, np.float32)
        b = np.zeros(3, np.float32)
        np.testing.assert_array_equal(run_op(ops.Where(), cond, a, b), [1, 0, 1])

    def test_masked_fill(self):
        x = np.ones((2, 2), np.float32)
        mask = np.array([[True, False], [False, True]])
        y = run_op(ops.MaskedFill(0.0), x, mask)
        np.testing.assert_array_equal(y, [[0, 1], [1, 0]])

    def test_tril(self):
        x = np.ones((3, 3), np.float32)
        y = run_op(ops.Tril(), x)
        assert y[0, 2] == 0 and y[2, 0] == 1

    def test_gather_is_memory_group(self, rng):
        assert ops.Gather(0).category is ops.OpCategory.MEMORY
        x = rng.normal(size=(5, 3)).astype(np.float32)
        idx = np.array([4, 0], dtype=np.int64)
        y = run_op(ops.Gather(0), x, idx)
        np.testing.assert_array_equal(y, x[[4, 0]])

    def test_index_add(self, rng):
        base = np.zeros((4, 2), np.float32)
        idx = np.array([1, 3], dtype=np.int64)
        vals = np.ones((2, 2), np.float32)
        y = run_op(ops.IndexAdd(0), base, idx, vals)
        np.testing.assert_array_equal(y[[1, 3]], 1.0)
        np.testing.assert_array_equal(y[[0, 2]], 0.0)

    def test_topk(self):
        x = np.array([[1.0, 5.0, 3.0, 2.0]], dtype=np.float32)
        values, idx = run_op(ops.TopK(2), x)
        np.testing.assert_array_equal(values, [[5.0, 3.0]])
        np.testing.assert_array_equal(idx, [[1, 2]])

    def test_cast(self, rng):
        x = rng.normal(size=(3,)).astype(np.float32)
        y = run_op(ops.Cast(DType.F16), x)
        assert y.dtype == np.float16

    def test_constant_yields_weight(self):
        op = ops.Constant((2, 3), name="pos")
        w = make_weights(op)
        (y,) = op.run([], w)
        np.testing.assert_array_equal(y, w["pos"])

    def test_nonzero_pads_to_bound(self):
        x = np.array([1.0, 0.0, 2.0, 0.0], dtype=np.float32)
        op = ops.Nonzero(max_outputs=3)
        y = run_op(op, x)
        assert y.shape == (3, 1)
        np.testing.assert_array_equal(y[:2, 0], [0, 2])
        assert getattr(op, "forces_sync")


class TestQuantizedOps:
    def test_quantize_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=(4, 64)).astype(np.float16)
        q, scale = run_op(ops.Quantize(), x)
        assert q.dtype == np.int8
        recon = q.astype(np.float32) * scale.astype(np.float32)
        absmax = np.abs(x).max(axis=-1, keepdims=True)
        assert np.all(np.abs(recon - x.astype(np.float32)) <= absmax / 127.0 + 1e-3)

    def test_int8_linear_matches_integer_matmul(self, rng):
        op = ops.Int8Linear(8, 4)
        w = make_weights(op)
        x = rng.integers(-127, 127, size=(3, 8), dtype=np.int8)
        y = run_op(op, x, weights=w)
        assert y.dtype == np.int32
        np.testing.assert_array_equal(y, x.astype(np.int32) @ w["weight_int8"].astype(np.int32).T)

    def test_int8_linear_rejects_float(self):
        with pytest.raises(ShapeError):
            ops.Int8Linear(8, 4).infer_spec([TensorSpec((3, 8), DType.F16)])

    def test_dequantize(self, rng):
        acc = rng.integers(-100, 100, size=(2, 4)).astype(np.int32)
        scales = np.full((2, 1), 0.5, dtype=np.float16)
        y = run_op(ops.Dequantize(DType.F16), acc, scales)
        assert y.dtype == np.float16
        np.testing.assert_allclose(y, acc * 0.5, rtol=1e-3)

    def test_qdq_category(self):
        assert ops.Quantize().category is ops.OpCategory.QDQ
        assert ops.Dequantize().category is ops.OpCategory.QDQ
        assert ops.Int8Linear(8, 8).category is ops.OpCategory.GEMM
