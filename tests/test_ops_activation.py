"""Unit tests for activation operators."""

import numpy as np
import pytest

from repro import ops
from tests.conftest import run_op


class TestReLU:
    def test_clamps_negatives(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        y = run_op(ops.ReLU(), x)
        assert np.all(y >= 0)
        np.testing.assert_array_equal(y, np.maximum(x, 0))


class TestGELU:
    def test_limits(self):
        x = np.array([-20.0, 0.0, 20.0], dtype=np.float32)
        y = run_op(ops.GELU(), x)
        np.testing.assert_allclose(y, [0.0, 0.0, 20.0], atol=1e-4)

    def test_monotone_on_positives(self, rng):
        x = np.sort(rng.uniform(0, 4, size=32).astype(np.float32))
        y = run_op(ops.GELU(), x)
        assert np.all(np.diff(y) >= 0)

    def test_composite_flag_sets_kernel_count(self):
        assert ops.GELU().eager_kernels == 1
        assert ops.GELU(composite=True).eager_kernels == 8
        assert ops.GELU(composite=True).describe() == "gelu(composite)"

    def test_composite_numerics_identical(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_array_equal(run_op(ops.GELU(), x), run_op(ops.GELU(composite=True), x))


class TestSiLU:
    def test_matches_x_sigmoid(self, rng):
        x = rng.normal(size=(6,)).astype(np.float32)
        y = run_op(ops.SiLU(), x)
        np.testing.assert_allclose(y, x / (1 + np.exp(-x)), rtol=1e-5)


class TestSigmoidTanh:
    def test_sigmoid_range(self, rng):
        y = run_op(ops.Sigmoid(), rng.normal(size=(100,)).astype(np.float32) * 5)
        assert np.all((y > 0) & (y < 1))

    def test_tanh_odd(self, rng):
        x = rng.normal(size=(50,)).astype(np.float32)
        y_pos = run_op(ops.Tanh(), x)
        y_neg = run_op(ops.Tanh(), -x)
        np.testing.assert_allclose(y_pos, -y_neg, atol=1e-6)

    def test_hardswish_zero_below_minus3(self):
        x = np.array([-5.0, -3.0, 0.0, 3.0], dtype=np.float32)
        y = run_op(ops.HardSwish(), x)
        np.testing.assert_allclose(y, [0.0, 0.0, 0.0, 3.0], atol=1e-6)


@pytest.mark.parametrize(
    "op",
    [ops.ReLU(), ops.GELU(), ops.SiLU(), ops.Sigmoid(), ops.Tanh()],
    ids=lambda o: o.kind,
)
def test_activation_cost_is_elementwise(op, rng):
    from repro.ir import TensorSpec

    spec = TensorSpec((4, 32))
    cost = op.cost([spec], list(op.infer_spec([spec])))
    assert cost.flops == spec.numel * op.FLOPS_PER_ELEMENT
    assert cost.bytes_read == spec.nbytes
    assert cost.bytes_written == spec.nbytes


def test_activations_preserve_dtype(rng):
    x = rng.normal(size=(3, 3)).astype(np.float16)
    for op in (ops.ReLU(), ops.GELU(), ops.SiLU()):
        assert run_op(op, x).dtype == np.float16
