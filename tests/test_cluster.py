"""Cluster simulator tests: policies, fault injection, the router, sweeps.

The load-bearing suite is the equivalence battery: a single-replica cluster
with the ``none`` fault profile and no robustness knobs must reproduce the
plain :class:`~repro.serving.engine.ServingEngine` **bit-identically** —
same records, same float accumulations — for every registered batching
scheduler.  Everything the cluster layer adds (retries, hedging, shedding,
fault windows) is opt-in on top of that rail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RegistryError, ServingError
from repro.serving import (
    ACCEL_LOSS,
    CRASH,
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_SHED,
    AdmissionPolicy,
    ClusterConfig,
    ClusterRouter,
    FaultInjector,
    FaultSchedule,
    FaultWindow,
    Request,
    RequestTrace,
    ServingConfig,
    ServingEngine,
    fault_profile_entries,
    get_policy,
    list_fault_profiles,
    list_policies,
    list_schedulers,
    make_trace,
    policy_entries,
    register_fault_profile,
    register_policy,
    simulate_cluster,
)
from repro.sweep.cache import PLAN_CACHE

MODEL = "gpt2"


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def cluster_config(**kwargs) -> ClusterConfig:
    kwargs.setdefault("model", MODEL)
    return ClusterConfig(**kwargs)


def fleet_trace(
    config: ClusterConfig, load: float = 1.0, n: int = 24, seed: int = 0
) -> tuple[RequestTrace, float]:
    router = ClusterRouter(config)
    rate = load * router.fleet_capacity_rps()
    trace = make_trace("poisson", rate, n, rng(seed), decode_steps=(1, 4))
    return trace, rate


# -- fault profiles ----------------------------------------------------------


class TestFaultProfiles:
    def test_registry_lists_builtins(self):
        assert list_fault_profiles() == ["accel-loss", "crash", "none", "straggler"]
        assert all(desc for _, desc in fault_profile_entries())
        with pytest.raises(ServingError):
            FaultInjector("mystery", 2, 1.0)

    def test_custom_profile_registration(self):
        def always_down(num_replicas, horizon_s, generator):
            return FaultSchedule(
                windows=(FaultWindow(0, CRASH, 0.0, horizon_s),)
            )

        register_fault_profile("always-down-test", always_down)
        try:
            assert "always-down-test" in list_fault_profiles()
            with pytest.raises(ServingError):
                register_fault_profile("always-down-test", always_down)
            injector = FaultInjector("always-down-test", 2, 5.0)
            assert injector.is_crashed(0, 0.0) and not injector.is_crashed(1, 0.0)
        finally:
            from repro.serving import faults as faults_module

            del faults_module._FAULT_PROFILES["always-down-test"]

    def test_injector_is_deterministic(self):
        a = FaultInjector("crash", 3, 2.0, seed=7)
        b = FaultInjector("crash", 3, 2.0, seed=7)
        assert a.schedule == b.schedule
        assert a.transitions() == b.transitions()
        # a different seed moves the outage window
        assert FaultInjector("crash", 3, 2.0, seed=8).schedule != a.schedule

    def test_straggler_streams_are_per_replica(self):
        a = FaultInjector("straggler", 2, 1.0, seed=1)
        b = FaultInjector("straggler", 2, 1.0, seed=1)
        # replica 1's stream is independent of how often replica 0 draws
        [a.dispatch_multiplier(0) for _ in range(10)]
        stream_a = [a.dispatch_multiplier(1) for _ in range(16)]
        stream_b = [b.dispatch_multiplier(1) for _ in range(16)]
        assert stream_a == stream_b
        assert all(m >= 1.0 for m in stream_a)
        assert any(m > 1.0 for m in stream_a)

    def test_no_fault_profile_never_touches_rng(self):
        injector = FaultInjector("none", 2, 1.0, seed=0)
        assert injector.schedule == FaultSchedule()
        assert not injector.has_stragglers
        assert [injector.dispatch_multiplier(0) for _ in range(4)] == [1.0] * 4

    def test_validation(self):
        with pytest.raises(ServingError):
            FaultWindow(0, "meteor", 0.0, 1.0)
        with pytest.raises(ServingError):
            FaultWindow(0, CRASH, 1.0, 1.0)
        with pytest.raises(ServingError):
            FaultWindow(-1, ACCEL_LOSS, 0.0, 1.0)
        with pytest.raises(ServingError):
            FaultSchedule(straggler_prob=1.5)
        with pytest.raises(ServingError):
            FaultSchedule(straggler_range=(0.5, 2.0))
        with pytest.raises(ServingError):
            FaultInjector("none", 0, 1.0)
        with pytest.raises(ServingError):
            FaultInjector("none", 2, 0.0)


# -- admission policies ------------------------------------------------------


class _StubReplica:
    def __init__(self, index: int, delay: float):
        self.index = index
        self._delay = delay

    def est_delay_s(self, now: float) -> float:
        return self._delay


class TestPolicies:
    def test_registry_lists_builtins(self):
        assert list_policies() == [
            "least-loaded",
            "power-of-two-choices",
            "round-robin",
        ]
        assert all(desc for _, desc in policy_entries())
        with pytest.raises(ServingError):
            get_policy("mystery")

    def test_fresh_instance_per_call(self):
        assert get_policy("round-robin") is not get_policy("round-robin")

    def test_round_robin_rotates_and_skips_dead(self):
        policy = get_policy("round-robin")
        policy.reset(3)
        replicas = [_StubReplica(i, 0.0) for i in range(3)]
        picks = [policy.choose(0.0, replicas, rng()).index for _ in range(4)]
        assert picks == [0, 1, 2, 0]
        # replica 1 dead: the rotation continues over the survivors
        alive = [replicas[0], replicas[2]]
        assert policy.choose(0.0, alive, rng()).index == 2
        assert policy.choose(0.0, alive, rng()).index == 0

    def test_least_loaded_picks_smallest_delay(self):
        policy = get_policy("least-loaded")
        replicas = [_StubReplica(0, 3.0), _StubReplica(1, 1.0), _StubReplica(2, 1.0)]
        # ties break to the lowest index
        assert policy.choose(0.0, replicas, rng()).index == 1

    def test_power_of_two_is_seeded_and_load_aware(self):
        policy = get_policy("power-of-two-choices")
        replicas = [_StubReplica(i, float(i)) for i in range(4)]
        picks_a = [policy.choose(0.0, replicas, rng(3)).index for _ in range(8)]
        picks_b = [policy.choose(0.0, replicas, rng(3)).index for _ in range(8)]
        assert picks_a == picks_b
        # of the two sampled candidates it always admits the less loaded
        for _ in range(8):
            generator = rng(11)
            chosen = policy.choose(0.0, replicas, generator)
            i, j = sorted(int(x) for x in rng(11).choice(4, size=2, replace=False))
            assert chosen.index == i  # delay == index here
        assert policy.choose(0.0, replicas[:1], rng()).index == 0

    def test_custom_policy_registration(self):
        class AlwaysFirst(AdmissionPolicy):
            name = "always-first-test"
            description = "test double"

            def choose(self, now, candidates, generator):
                return candidates[0]

        register_policy(AlwaysFirst)
        try:
            assert "always-first-test" in list_policies()
            with pytest.raises(ServingError):
                register_policy(AlwaysFirst)
            result = simulate_cluster(
                cluster_config(policy="always-first-test", scheduler="fifo"),
                RequestTrace("pair", (Request(0, 0.0), Request(1, 0.0))),
            )
            assert all(r.replica == 0 for r in result.records)
        finally:
            from repro.serving import cluster as cluster_module

            del cluster_module._POLICIES["always-first-test"]


# -- configuration -----------------------------------------------------------


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ServingError):
            cluster_config(platforms=())
        with pytest.raises(ServingError):
            cluster_config(max_retries=-1)
        for knob in (
            "timeout_s", "timeout_cap_s", "hedge_after_s", "shed_queue_s",
            "deadline_s",
        ):
            with pytest.raises(ServingError):
                cluster_config(**{knob: 0.0})

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(ServingError):
            ClusterRouter(cluster_config(policy="mystery"))

    def test_crash_profile_requires_timeout(self):
        config = cluster_config(fault_profile="crash")
        trace, rate = fleet_trace(config, n=8)
        with pytest.raises(ServingError, match="timeout"):
            simulate_cluster(config, trace, rate)


# -- the equivalence battery -------------------------------------------------


@pytest.mark.parametrize("scheduler", sorted(list_schedulers()))
@pytest.mark.parametrize("platform_id", ["A", "B"])
def test_single_replica_matches_engine_exactly(platform_id, scheduler):
    """One replica, no faults, no knobs: the cluster IS the engine, bitwise."""
    engine = ServingEngine(
        ServingConfig(
            model=MODEL, platform=platform_id, scheduler=scheduler, max_batch=4
        )
    )
    rate = 2.0 / engine.base_latency_s()
    trace = make_trace("poisson", rate, 20, rng(5), decode_steps=(1, 4))
    single = engine.run(trace, rate)
    result = simulate_cluster(
        cluster_config(platforms=(platform_id,), scheduler=scheduler, max_batch=4),
        trace,
        rate,
    )
    assert result.replicas[0] == single
    assert result.makespan_s == single.makespan_s
    completions = {r.request_id: r.completion_s for r in single.records}
    for record in result.records:
        assert record.status == REQUEST_OK
        assert record.attempts == 1 and record.replica == 0
        assert not record.hedged and not record.hedge_won
        assert record.completion_s == completions[record.request_id]


# -- the router under faults -------------------------------------------------


class TestClusterRouter:
    def test_determinism_including_cache_disabled(self):
        config = cluster_config(
            platforms=("A", "A", "B"),
            scheduler="continuous",
            policy="power-of-two-choices",
            fault_profile="crash",
            timeout_s=0.02,
            deadline_s=0.1,
        )
        trace, rate = fleet_trace(config)
        a = simulate_cluster(config, trace, rate)
        b = simulate_cluster(config, trace, rate)
        with PLAN_CACHE.disabled():
            c = simulate_cluster(config, trace, rate)
        for other in (b, c):
            assert a.records == other.records
            assert a.replicas == other.replicas
            assert a.makespan_s == other.makespan_s
            assert a.time_to_recovery_s == other.time_to_recovery_s

    def test_crash_lost_work_is_retried_elsewhere(self):
        config = cluster_config(
            platforms=("A", "A"),
            scheduler="fifo",
            policy="least-loaded",
            fault_profile="crash",
            fault_seed=3,
            timeout_s=0.01,
        )
        trace, rate = fleet_trace(config)
        result = simulate_cluster(config, trace, rate)
        assert result.num_retries > 0
        assert result.time_to_recovery_s > 0.0
        retried = [r for r in result.records if r.attempts > 1]
        assert retried
        # re-routed work completes elsewhere (a saturated fifo fleet may
        # still exhaust some budgets — those end failed, never limbo).
        assert any(r.status == REQUEST_OK for r in retried)
        assert all(r.status in (REQUEST_OK, REQUEST_FAILED) for r in result.records)
        # every record the fleet completed carries the completing replica
        assert all(
            r.replica in (0, 1)
            for r in result.records
            if r.status == REQUEST_OK
        )

    def test_retry_budget_exhaustion_fails_requests(self):
        def long_outage(num_replicas, horizon_s, generator):
            return FaultSchedule(
                windows=(FaultWindow(0, CRASH, 0.0, 0.9 * horizon_s),)
            )

        register_fault_profile("long-outage-test", long_outage)
        try:
            config = cluster_config(
                platforms=("A", "A"),
                scheduler="fifo",
                fault_profile="long-outage-test",
                timeout_s=1e-4,
                max_retries=0,
            )
            trace, rate = fleet_trace(config, load=2.0)
            result = simulate_cluster(config, trace, rate)
        finally:
            from repro.serving import faults as faults_module

            del faults_module._FAULT_PROFILES["long-outage-test"]
        assert result.num_failed > 0
        failed = [r for r in result.records if r.status == REQUEST_FAILED]
        assert failed and all(r.completion_s is None for r in failed)
        assert result.goodput < 1.0

    def test_shedding_rejects_queued_arrivals(self):
        config = cluster_config(
            platforms=("A", "A"),
            scheduler="fifo",
            shed_queue_s=1e-3,
            deadline_s=0.1,
        )
        trace, rate = fleet_trace(config, load=3.0)
        result = simulate_cluster(config, trace, rate)
        assert result.num_shed > 0
        shed = [r for r in result.records if r.status == REQUEST_SHED]
        assert len(shed) == result.num_shed
        assert all(r.completion_s is None and r.replica == -1 for r in shed)
        # shed requests count against goodput but not the admitted tail
        assert result.goodput < 1.0
        assert len(result.latencies_s()) == len(result.records) - result.num_shed

    def test_hedging_duplicates_and_first_completion_wins(self):
        config = cluster_config(
            platforms=("A", "A", "A"),
            scheduler="continuous",
            fault_profile="straggler",
            fault_seed=1,
            hedge_after_s=0.005,
        )
        trace, rate = fleet_trace(config, load=0.5)
        result = simulate_cluster(config, trace, rate)
        assert result.num_hedges > 0
        assert 0 < result.num_hedge_wins <= result.num_hedges
        hedged = [r for r in result.records if r.hedged]
        assert len(hedged) == result.num_hedges
        winners = [r for r in hedged if r.hedge_won]
        assert len(winners) == result.num_hedge_wins
        assert all(r.status == REQUEST_OK for r in hedged)

    def test_accel_loss_degrades_but_keeps_serving(self):
        config = cluster_config(
            platforms=("A", "A"),
            scheduler="dynamic",
            fault_profile="accel-loss",
            fault_seed=0,
        )
        trace, rate = fleet_trace(config, load=0.8)
        healthy = simulate_cluster(
            cluster_config(platforms=("A", "A"), scheduler="dynamic"), trace, rate
        )
        result = simulate_cluster(config, trace, rate)
        # no outage: every request completes without retries or failures...
        assert all(r.status == REQUEST_OK for r in result.records)
        assert result.num_retries == 0 and result.num_failed == 0
        # ... but host-priced dispatches slow the victim: the run stretches
        # and the fleet burns more CPU time than the healthy one.  (The tail
        # can actually *improve* — slower dispatches accumulate bigger, more
        # amortized batches — so the makespan is the honest signal.)
        assert result.makespan_s > healthy.makespan_s
        from repro.hardware.device import DeviceKind

        degraded_cpu = sum(r.busy_s[DeviceKind.CPU] for r in result.replicas)
        healthy_cpu = sum(r.busy_s[DeviceKind.CPU] for r in healthy.replicas)
        assert degraded_cpu > healthy_cpu

    def test_straggler_inflates_tail_deterministically(self):
        base = cluster_config(platforms=("A", "A"), scheduler="continuous")
        config = cluster_config(
            platforms=("A", "A"), scheduler="continuous",
            fault_profile="straggler", fault_seed=2,
        )
        trace, rate = fleet_trace(config, load=0.5)
        healthy = simulate_cluster(base, trace, rate)
        slow_a = simulate_cluster(config, trace, rate)
        slow_b = simulate_cluster(config, trace, rate)
        assert slow_a.records == slow_b.records
        assert slow_a.p99_s > healthy.p99_s

    def test_no_faults_recovery_is_zero(self):
        config = cluster_config(platforms=("A", "A"))
        trace, rate = fleet_trace(config, n=8)
        result = simulate_cluster(config, trace, rate)
        assert result.time_to_recovery_s == 0.0
        assert result.num_shed == result.num_failed == result.num_retries == 0

    def test_empty_trace(self):
        result = simulate_cluster(
            cluster_config(), RequestTrace("empty", ())
        )
        assert result.records == [] and result.replicas == []
        assert result.throughput_rps == 0.0 and result.goodput == 0.0

    def test_heterogeneous_fleet_and_describe(self):
        config = cluster_config(platforms=("A", "B"), policy="least-loaded")
        trace, rate = fleet_trace(config, n=12)
        result = simulate_cluster(config, trace, rate)
        assert result.platform_ids == ("A", "B")
        assert len(result.replicas) == 2
        assert {r.platform_id for r in result.replicas} == {"A", "B"}
        described = result.describe()
        assert "A/B" in described and "least-loaded" in described
        assert len(result.utilization()) == 2
        assert result.total_energy_j > 0.0


# -- sweep integration -------------------------------------------------------


class TestSweepCluster:
    def test_policy_axis_expands_points(self):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(1.0,),
            policies=("round-robin", "least-loaded"),
            fault_profiles=("none", "crash"),
            num_replicas=3, timeout_s=0.02,
        )
        points = spec.points()
        assert len(points) == 4
        assert {(p.policy, p.fault_profile) for p in points} == {
            ("round-robin", "none"), ("round-robin", "crash"),
            ("least-loaded", "none"), ("least-loaded", "crash"),
        }
        assert all(p.num_replicas == 3 and p.timeout_s == 0.02 for p in points)
        assert "3x round-robin" in points[0].describe()
        assert "faults=crash" in points[1].describe()

    def test_policy_requires_load_and_fault_requires_policy(self):
        from repro.sweep.spec import SweepSpec

        with pytest.raises(RegistryError):
            SweepSpec(models=(MODEL,), policies=("round-robin",)).points()
        with pytest.raises(RegistryError):
            SweepSpec(
                models=(MODEL,), loads=(1.0,), fault_profiles=("crash",)
            ).points()
        with pytest.raises(RegistryError):
            SweepSpec(models=(MODEL,), loads=(1.0,), num_replicas=0).points()

    def test_run_point_attaches_cluster_result(self):
        from repro.serving.metrics import ClusterResult
        from repro.sweep.runner import run_sweep
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(1.0,), policies=("least-loaded",),
            scheduler="continuous", num_requests=8, num_replicas=2,
            iterations=2, name="cluster-smoke",
        )
        result = run_sweep(spec)
        assert len(result.records) == 1
        serving = result.records[0].serving
        assert isinstance(serving, ClusterResult)
        assert len(serving.records) == 8 and serving.num_replicas == 2
        # load alone (no policy) still routes to the single engine
        single = run_sweep(spec.subset(policies=(None,), name="single-smoke"))
        assert not isinstance(single.records[0].serving, ClusterResult)

    def test_cluster_points_survive_process_pool(self):
        import pickle

        from repro.sweep.runner import _run_point_for_pool
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(0.5,), policies=("round-robin",),
            num_requests=4, iterations=2,
        )
        record, cache_delta = _run_point_for_pool(spec.points()[0])
        restored = pickle.loads(pickle.dumps(record))
        assert restored.serving.records == record.serving.records
        assert restored.serving.replicas == record.serving.replicas
        # the worker ships its per-point cache delta back alongside the record
        assert isinstance(cache_delta, dict)


# -- ext3 experiment ---------------------------------------------------------


class TestExt3:
    def test_reduced_grid_is_deterministic(self):
        from repro.analysis import run_ext3

        kwargs = dict(
            platform_ids=("A",), schedulers=("continuous",),
            fault_profiles=("none", "crash"), policies=("least-loaded",),
            num_requests=12, iterations=2,
        )
        a = run_ext3(**kwargs)
        b = run_ext3(**kwargs)
        assert a.rows == b.rows
        assert a.render() == b.render()
        # 1 platform x 1 scheduler x 1 policy x 2 faults, + 2x2 study rows
        assert len(a.rows) == 2 + 4
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            first = a.save(Path(tmp) / "one").read_bytes()
            second = b.save(Path(tmp) / "two").read_bytes()
        assert first == second
