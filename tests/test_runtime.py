"""Unit tests for the runtime: executor, simulator, memory profiling."""

import numpy as np
import pytest

from repro import ops
from repro.errors import ExecutionError
from repro.flows import PyTorchEagerFlow, TensorRTFlow, get_flow
from repro.hardware import PLATFORM_A, PLATFORM_B
from repro.ir import DType, Graph, TensorSpec
from repro.runtime import GraphExecutor, profile_memory, run_graph, simulate


class TestExecutor:
    def test_runs_tiny_graph(self, tiny_transformer_graph, rng):
        x = rng.normal(size=(2, 8, 32)).astype(np.float32)
        (out,) = run_graph(tiny_transformer_graph, {"x": x})
        assert out.shape == (2, 8, 32)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)  # ends in softmax

    def test_deterministic_given_seed(self, tiny_transformer_graph, rng):
        x = rng.normal(size=(2, 8, 32)).astype(np.float32)
        a = run_graph(tiny_transformer_graph, {"x": x}, seed=3)[0]
        b = run_graph(tiny_transformer_graph, {"x": x}, seed=3)[0]
        np.testing.assert_array_equal(a, b)

    def test_different_seed_changes_weights(self, tiny_transformer_graph, rng):
        x = rng.normal(size=(2, 8, 32)).astype(np.float32)
        a = run_graph(tiny_transformer_graph, {"x": x}, seed=1)[0]
        b = run_graph(tiny_transformer_graph, {"x": x}, seed=2)[0]
        assert not np.allclose(a, b)

    def test_missing_input_raises(self, tiny_transformer_graph):
        with pytest.raises(ExecutionError, match="missing graph input"):
            run_graph(tiny_transformer_graph, {})

    def test_wrong_shape_raises(self, tiny_transformer_graph):
        with pytest.raises(ExecutionError, match="shape"):
            run_graph(tiny_transformer_graph, {"x": np.zeros((1, 8, 32), np.float32)})

    def test_weight_cache_reused(self, tiny_transformer_graph, rng):
        executor = GraphExecutor(tiny_transformer_graph, seed=0)
        x = rng.normal(size=(2, 8, 32)).astype(np.float32)
        executor.run({"x": x})
        cached = dict(executor._weight_cache)
        executor.run({"x": x})
        for key, value in executor._weight_cache.items():
            assert value is cached[key]

    def test_multi_output_graph(self, rng):
        g = Graph("m")
        x = g.input(TensorSpec((2, 6)), "x")
        a, b = g.call(ops.Split(2, dim=1), x)
        g.set_outputs(a, b)
        outs = run_graph(g, {"x": rng.normal(size=(2, 6)).astype(np.float32)})
        assert len(outs) == 2 and outs[0].shape == (2, 3)

    def test_integer_inputs_cast(self, rng):
        g = Graph("e")
        ids = g.input(TensorSpec((1, 4), DType.I64), "ids")
        g.set_outputs(g.call(ops.Embedding(10, 8), ids))
        (out,) = run_graph(g, {"ids": np.array([[1, 2, 3, 9]])})
        assert out.shape == (1, 4, 8)


class TestSimulator:
    def test_latency_positive_and_summed(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=True)
        result = simulate(plan, PLATFORM_A)
        assert result.total_latency_s > 0
        assert result.total_latency_s == pytest.approx(
            sum(r.latency_s for r in result.records)
        )

    def test_gpu_energy_zero_without_gpu(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=False)
        result = simulate(plan, PLATFORM_A.cpu_only())
        assert result.gpu_energy_j == 0.0
        assert result.cpu_energy_j > 0.0

    def test_trt_faster_than_eager(self, tiny_transformer_graph):
        eager = simulate(PyTorchEagerFlow().lower(tiny_transformer_graph, True), PLATFORM_A)
        trt = simulate(TensorRTFlow().lower(tiny_transformer_graph, True), PLATFORM_A)
        assert trt.total_latency_s < eager.total_latency_s

    def test_platform_b_differs(self, tiny_transformer_graph):
        plan = PyTorchEagerFlow().lower(tiny_transformer_graph, use_gpu=True)
        a = simulate(plan, PLATFORM_A)
        b = simulate(plan, PLATFORM_B)
        assert a.total_latency_s != b.total_latency_s

    def test_fallback_transfer_time_charged(self):
        g = Graph("split")
        x = g.input(TensorSpec((2, 12)), "x")
        a, b, c = g.call(ops.Split(3, dim=1), x)
        g.set_outputs(g.call(ops.Concat(1), a, b, c))
        plan = get_flow("ort").lower(g, use_gpu=True)
        result = simulate(plan, PLATFORM_A)
        fallback = [r for r in result.records if r.kernel.transfer_bytes_in > 0]
        assert fallback and all(r.transfer_s > 0 for r in fallback)


class TestMemoryProfile:
    def test_weights_counted(self, tiny_transformer_graph):
        profile = profile_memory(tiny_transformer_graph)
        expected_weights = tiny_transformer_graph.param_count() * 4
        assert profile.weight_bytes == expected_weights

    def test_peak_at_least_largest_tensor(self, tiny_transformer_graph):
        profile = profile_memory(tiny_transformer_graph)
        largest = max(
            s.nbytes for n in tiny_transformer_graph.nodes for s in n.outputs
        )
        assert profile.peak_activation_bytes >= largest

    def test_views_add_no_activation_memory(self):
        g = Graph("views")
        x = g.input(TensorSpec((4, 4)), "x")
        h = g.call(ops.Reshape((16,)), x)
        h = g.call(ops.Reshape((2, 8)), h)
        g.set_outputs(h)
        profile = profile_memory(g)
        assert profile.peak_activation_bytes == TensorSpec((4, 4)).nbytes

    def test_peak_total_includes_weights(self, tiny_transformer_graph):
        profile = profile_memory(tiny_transformer_graph)
        assert profile.peak_total_bytes == profile.weight_bytes + profile.peak_activation_bytes
