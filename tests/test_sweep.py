"""Sweep engine tests: vectorized-vs-scalar equivalence, caching, specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ops
from repro.errors import RegistryError
from repro.flows import get_flow
from repro.hardware import PLATFORM_A, PLATFORM_B, DeviceKind, list_platforms
from repro.ir import Graph, TensorSpec
from repro.models import build_model
from repro.profiler import profile_graph
from repro.runtime.memory import profile_memory
from repro.runtime.simulator import simulate, simulate_reference, use_reference_backend
from repro.sweep.cache import PLAN_CACHE, PlanCache
from repro.sweep.runner import SweepRunner, run_point
from repro.sweep.spec import SweepPoint, SweepSpec

ALL_FLOWS = ("pytorch", "torchinductor", "tensorrt", "onnxruntime")
SMALL_MODELS = ("swin-t", "segformer", "gpt2")


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("flow_name", ALL_FLOWS)
    @pytest.mark.parametrize("platform", [PLATFORM_A, PLATFORM_B], ids=["A", "B"])
    def test_matches_scalar_reference_per_kernel(self, flow_name, platform):
        for model in SMALL_MODELS:
            graph = build_model(model, batch_size=1)
            for use_gpu in (True, False):
                plat = platform if use_gpu else platform.cpu_only()
                plan = get_flow(flow_name).lower(graph, use_gpu=use_gpu)
                fast = simulate(plan, plat)
                slow = simulate_reference(plan, plat)
                ref = np.array([r.latency_s for r in slow.records])
                assert np.all(np.abs(fast.latencies - ref) <= 1e-12)
                # in practice the paths are bit-identical, not just close
                assert np.array_equal(fast.latencies, ref)
                assert fast.total_latency_s == slow.total_latency_s
                assert fast.gpu_energy_j == slow.gpu_energy_j
                assert fast.cpu_energy_j == slow.cpu_energy_j
                assert fast.bound_labels() == [r.estimate.bound for r in slow.records]

    def test_estimate_breakdowns_match(self, tiny_transformer_graph):
        plan = get_flow("pytorch").lower(tiny_transformer_graph, use_gpu=True)
        fast = simulate(plan, PLATFORM_A)
        slow = simulate_reference(plan, PLATFORM_A)
        for fast_rec, slow_rec in zip(fast.records, slow.records):
            assert fast_rec.estimate == slow_rec.estimate
            assert fast_rec.transfer_s == slow_rec.transfer_s

    def test_reference_backend_context(self, tiny_transformer_graph):
        plan = get_flow("pytorch").lower(tiny_transformer_graph, use_gpu=True)
        with use_reference_backend():
            result = simulate(plan, PLATFORM_A)
        assert result.estimates is None  # scalar path taken
        assert result.total_latency_s == simulate(plan, PLATFORM_A).total_latency_s

    def test_profile_matches_reference_backend(self):
        graph = build_model("swin-t", batch_size=1)
        flow = get_flow("pytorch")
        fast = profile_graph(graph, flow, PLATFORM_A, use_gpu=True, iterations=3, seed=7)
        with use_reference_backend():
            slow = profile_graph(graph, flow, PLATFORM_A, use_gpu=True, iterations=3, seed=7)
        assert fast.total_latency_s == slow.total_latency_s
        assert fast.gpu_energy_j == slow.gpu_energy_j
        assert fast.latency_by_group() == slow.latency_by_group()
        assert fast.records == slow.records


class TestPlatformBitIdentity:
    """Scalar-vs-vectorized equivalence over *every* registered platform,
    including the 3-device Platform C, on every device target the platform
    offers — the N-device generalization of the A/B-only battery above."""

    @pytest.mark.parametrize(
        "platform", list_platforms(), ids=lambda p: p.platform_id
    )
    def test_bit_identical_on_every_registered_platform(self, platform):
        graph = build_model("swin-t", batch_size=1)
        for flow_name in ("pytorch", "onnxruntime", "npu-offload"):
            flow = get_flow(flow_name)
            for kind in sorted(platform.kinds, key=lambda k: k.value):
                plat = platform.cpu_only() if kind is DeviceKind.CPU else platform
                plan = flow.lower(graph, use_gpu=kind)
                fast = simulate(plan, plat)
                slow = simulate_reference(plan, plat)
                ref = np.array([r.latency_s for r in slow.records])
                assert np.array_equal(fast.latencies, ref), (flow_name, kind)
                assert fast.total_latency_s == slow.total_latency_s
                assert fast.energy_j == slow.energy_j  # per-device, bit-equal
                assert fast.bound_labels() == [r.estimate.bound for r in slow.records]

    def test_npu_target_offloads_only_gemm(self):
        graph = build_model("gpt2", batch_size=1)
        plan = get_flow("npu-offload").lower(graph, use_gpu=DeviceKind.NPU)
        assert plan.target is DeviceKind.NPU
        npu_kernels = [k for k in plan.kernels if k.device is DeviceKind.NPU]
        assert npu_kernels and all(k.is_gemm for k in npu_kernels)
        # off-target kernels pay fabric transfers, on-target ones do not
        assert all(
            k.transfer_bytes_in == 0 and k.transfer_bytes_out == 0
            for k in npu_kernels
            if not k.metadata_only
        )
        fallback = [k for k in plan.kernels if k.device is DeviceKind.CPU]
        assert any(k.transfer_bytes_in > 0 for k in fallback)

    def test_npu_sweep_point_profiles_on_platform_c(self):
        point = SweepPoint(
            platform="C", model="segformer", flow="npu-offload",
            batch_size=1, use_gpu=True, device_mode="npu", iterations=2,
        )
        record = run_point(point)
        profile = record.profile
        assert profile.target is DeviceKind.NPU
        assert profile.platform.platform_id == "C"
        assert DeviceKind.NPU in profile.energy_j
        assert profile.energy_j[DeviceKind.NPU] > 0.0

    def test_device_axis_rejects_unknown_mode(self):
        spec = SweepSpec(models=("segformer",), devices=("tpu",))
        with pytest.raises(RegistryError, match="tpu"):
            spec.points()

    def test_device_axis_accepts_npu_mode(self):
        spec = SweepSpec(models=("segformer",), devices=("cpu", "npu"))
        points = spec.points()
        assert [p.device for p in points] == ["cpu", "npu"]
        assert points[1].target is DeviceKind.NPU
        assert not points[0].use_gpu and points[1].use_gpu


class TestDerivedPlans:
    @pytest.mark.parametrize("flow_name", ["pytorch", "torchinductor", "tensorrt"])
    def test_derive_matches_full_lower(self, flow_name):
        flow = get_flow(flow_name)
        graph = build_model("swin-t", batch_size=1)
        for source_gpu in (True, False):
            source = flow.lower(graph, use_gpu=source_gpu)
            derived = flow.derive_plan(source, use_gpu=not source_gpu)
            direct = flow.lower(graph, use_gpu=not source_gpu)
            assert derived.kernels == direct.kernels
            assert derived.content_hash() == direct.content_hash()

    def test_ort_refuses_derivation(self):
        from repro.errors import PlanError

        flow = get_flow("onnxruntime")
        graph = build_model("gpt2", batch_size=1)
        plan = flow.lower(graph, use_gpu=True)
        with pytest.raises(PlanError):
            flow.derive_plan(plan, use_gpu=False)


class TestContentHash:
    def test_stable_until_mutation(self, tiny_transformer_graph):
        first = tiny_transformer_graph.content_hash()
        assert tiny_transformer_graph.content_hash() == first
        out = tiny_transformer_graph.call(ops.GELU(), tiny_transformer_graph.outputs[0])
        tiny_transformer_graph.set_outputs(out)
        assert tiny_transformer_graph.content_hash() != first

    def test_identical_builds_hash_equal(self):
        a = build_model("swin-t", batch_size=1)
        b = build_model("swin-t", batch_size=1)
        assert a is not b
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != build_model("swin-t", batch_size=2).content_hash()

    def test_plan_hash_covers_flow(self, tiny_transformer_graph):
        eager = get_flow("pytorch").lower(tiny_transformer_graph, use_gpu=True)
        trt = get_flow("tensorrt").lower(tiny_transformer_graph, use_gpu=True)
        assert eager.content_hash() != trt.content_hash()


class TestValidationMemo:
    def test_validate_walk_runs_once(self, tiny_transformer_graph, monkeypatch):
        calls = {"n": 0}
        original = Graph._check_value

        def counting(self, value):
            calls["n"] += 1
            return original(self, value)

        monkeypatch.setattr(Graph, "_check_value", counting)
        tiny_transformer_graph.validate()
        after_first = calls["n"]
        assert after_first > 0
        tiny_transformer_graph.validate()
        assert calls["n"] == after_first  # memoized: no second walk

    def test_mutation_resets_validated_flag(self, tiny_transformer_graph):
        tiny_transformer_graph.validate()
        assert tiny_transformer_graph._validated
        out = tiny_transformer_graph.call(ops.GELU(), tiny_transformer_graph.outputs[0])
        assert not tiny_transformer_graph._validated
        tiny_transformer_graph.set_outputs(out)
        tiny_transformer_graph.validate()
        assert tiny_transformer_graph._validated


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        flow = get_flow("pytorch")
        graph = build_model("swin-t", batch_size=1)
        first = cache.plan(flow, graph, use_gpu=True)
        assert cache.plan(flow, graph, use_gpu=True) is first
        assert cache.stats.hits.get("plan") == 1

    def test_hit_returns_identical_profile(self):
        graph = build_model("swin-t", batch_size=1)
        flow = get_flow("pytorch")
        cold = profile_graph(graph, flow, PLATFORM_A, use_gpu=True, iterations=3, seed=3)
        warm = profile_graph(graph, flow, PLATFORM_A, use_gpu=True, iterations=3, seed=3)
        assert warm.total_latency_s == cold.total_latency_s
        assert warm.gpu_energy_j == cold.gpu_energy_j
        assert warm.peak_memory_bytes == cold.peak_memory_bytes
        assert warm.latency_by_group() == cold.latency_by_group()
        assert warm.records == cold.records

    def test_mutated_graph_misses(self):
        cache = PlanCache()
        flow = get_flow("pytorch")
        graph = build_model("swin-t", batch_size=1)
        first = cache.plan(flow, graph, use_gpu=True)
        out = graph.call(ops.GELU(), graph.outputs[0])
        graph.set_outputs(out)
        second = cache.plan(flow, graph, use_gpu=True)
        assert second is not first
        assert second.num_kernels == first.num_kernels + 1

    def test_memory_memoized_by_structure(self):
        cache = PlanCache()
        a = build_model("segformer", batch_size=1)
        b = build_model("segformer", batch_size=1)
        first = cache.memory(a)
        assert cache.memory(b) is first  # structurally equal twin hits
        assert first == profile_memory(a)

    def test_lru_bound(self):
        cache = PlanCache(max_entries=2)
        for batch in (1, 2, 3):
            cache.graph("segformer", batch_size=batch)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # oldest entry (batch 1) was evicted; re-request misses
        cache.graph("segformer", batch_size=1)
        assert cache.stats.misses.get("graph") == 4

    def test_disabled_bypasses(self):
        cache = PlanCache()
        with cache.disabled():
            a = cache.graph("segformer", batch_size=1)
            b = cache.graph("segformer", batch_size=1)
        assert a is not b
        assert len(cache) == 0

    def test_mutated_cached_graph_is_not_reissued(self):
        cache = PlanCache()
        graph = cache.graph("segformer", batch_size=1)
        clean_len = len(graph.nodes)
        graph.set_outputs(graph.call(ops.GELU(), graph.outputs[0]))
        fresh = cache.graph("segformer", batch_size=1)
        assert fresh is not graph
        assert len(fresh.nodes) == clean_len

    def test_warm_from_store_promotes_without_counting(self):
        store = PLAN_CACHE.store
        assert store is not None  # the test session pins a hermetic store
        flow = get_flow("pytorch")
        writer = PlanCache(store=store)
        writer.plan(flow, writer.graph_ref("segformer", 3), use_gpu=True)
        writer.memory(writer.graph_ref("segformer", 3))

        reader = PlanCache(store=store)
        before = reader.stats.snapshot()
        promoted = reader.warm_from_store(
            flow, reader.graph_ref("segformer", 3), use_gpu=True
        )
        assert promoted == 2  # plan + memory (no platform, so no serving key)
        # the warm-up itself never moves a counter...
        assert reader.stats.snapshot() == before
        # ...but the promoted entries serve in-memory hits afterwards
        reader.plan(flow, reader.graph_ref("segformer", 3), use_gpu=True)
        assert reader.stats.hits.get("plan") == 1
        assert not reader.stats.misses
        assert not reader.stats.disk_hits
        # a second warm-up is a no-op: everything already sits in the LRU
        assert (
            reader.warm_from_store(flow, reader.graph_ref("segformer", 3), True) == 0
        )

    def test_transform_cached_and_hash_derived(self):
        cache = PlanCache()
        graph = build_model("gpt2", batch_size=1)
        first = cache.transform("llm-int8", graph)
        assert cache.transform("llm-int8", graph) is first
        assert first.graph.content_hash() != graph.content_hash()


class TestSweepSpec:
    def test_points_follow_order(self):
        spec = SweepSpec(
            models=("a", "b"),
            batch_sizes=(1, 2),
            order=("batch_size", "model"),
        )
        combos = [(p.batch_size, p.model) for p in spec.points()]
        assert combos == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_unknown_dimension_rejected(self):
        spec = SweepSpec(models=("a",), order=("nope",))
        with pytest.raises(RegistryError):
            spec.points()

    def test_unknown_device_rejected(self):
        spec = SweepSpec(models=("a",), devices=("tpu",))
        with pytest.raises(RegistryError):
            spec.points()

    def test_empty_dimension_yields_no_points(self):
        assert SweepSpec(models=()).points() == []

    def test_num_points(self):
        spec = SweepSpec(models=("a", "b"), batch_sizes=(1, 2, 4), devices=("gpu", "cpu"))
        assert spec.num_points == 12
        assert len(spec.points()) == 12


class TestSweepRunner:
    def test_cpu_point_uses_cpu_only_platform(self):
        point = SweepPoint(
            platform="A", model="segformer", flow="pytorch",
            batch_size=1, use_gpu=False, iterations=2,
        )
        record = run_point(point)
        assert record.profile.gpu_energy_j == 0.0
        assert record.profile.platform.platform_id == "A-cpu"

    def test_matches_direct_profiling(self):
        spec = SweepSpec(
            models=("segformer",), batch_sizes=(1, 2), iterations=2, seed=5,
            order=("model", "batch_size"),
        )
        result = SweepRunner().run(spec)
        assert len(result) == 2
        for record, batch in zip(result.records, (1, 2)):
            direct = profile_graph(
                build_model("segformer", batch_size=batch),
                get_flow("pytorch"), PLATFORM_A,
                use_gpu=True, batch_size=batch, iterations=2, seed=5,
            )
            assert record.profile.total_latency_s == direct.total_latency_s

    def test_transform_point_carries_stats(self):
        point = SweepPoint(
            platform="A", model="gpt2-l", flow="pytorch", batch_size=1,
            use_gpu=True, transform="llm-int8", iterations=2,
        )
        record = run_point(point)
        assert record.transform_stats is not None
        assert record.transform_stats.ops_added > 0
        assert record.profile.model == "gpt2-l-llm-int8"

    def test_cache_info_is_per_run(self):
        spec = SweepSpec(models=("segformer",), batch_sizes=(1,), iterations=2)
        first = SweepRunner().run(spec)
        second = SweepRunner().run(spec)
        # the second run hits for every stage but reports only its own counts
        assert second.cache_info["hits"].get("plan") == 1
        assert first.cache_info["hits"].get("plan", 0) <= 1

    def test_seq_len_override_on_vision_model_names_the_problem(self):
        point = SweepPoint(
            platform="A", model="swin-t", flow="pytorch", batch_size=1,
            use_gpu=True, seq_len=128, iterations=2,
        )
        with pytest.raises(RegistryError, match="swin-t.*seq_len"):
            run_point(point)

    def test_parallel_matches_serial(self):
        spec = SweepSpec(
            models=("segformer",), batch_sizes=(1, 2), iterations=2,
            order=("model", "batch_size"),
        )
        serial = SweepRunner(workers=0).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        for a, b in zip(serial.records, parallel.records):
            assert a.point == b.point
            assert a.profile.total_latency_s == b.profile.total_latency_s
            assert a.profile.latency_by_group() == b.profile.latency_by_group()

    def test_pool_run_aggregates_worker_cache_deltas(self):
        spec = SweepSpec(
            models=("segformer",), batch_sizes=(1, 2), iterations=2,
            order=("model", "batch_size"),
        )
        result = SweepRunner(workers=2).run(spec)
        info = result.cache_info
        # each of the two points touches the plan stage exactly once in its
        # worker — as an LRU hit when the initializer pre-warmed it from the
        # store, as a miss/disk-hit otherwise — and the deltas ship back.
        plan_events = sum(
            info.get(kind, {}).get("plan", 0)
            for kind in ("hits", "misses", "disk_hits")
        )
        assert plan_events == 2


class TestSweepCLI:
    def test_sweep_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "--models", "segformer", "--batches", "1",
             "--devices", "gpu", "--iterations", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "segformer" in out
        assert "1 points" in out


class TestGraphCallValueSemantics:
    def test_value_is_tuple_but_not_unpacked_by_call(self):
        g = Graph("t")
        x = g.input(TensorSpec((2, 4)), "x")
        y = g.call(ops.GELU(), x)
        g.set_outputs(y)
        assert y.node_id == 1 and y.port == 0
        out = Graph("q")
        xin = out.input(TensorSpec((2, 12)), "x")
        parts = out.call(ops.Split(3, dim=1), xin)
        assert isinstance(parts, tuple) and len(parts) == 3
