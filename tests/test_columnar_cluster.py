"""The columnar cluster fast paths: bit-identity, rails, and fallback.

``serving/columnar_cluster.py`` replays the reference router's event loop in
columns on two rails: ``run_fast_cluster`` (closed forms + per-scheduler
columnar kernels, no faults/retries) and ``run_fast_faulted`` (minimal event
heap over fault transitions and retry timers, lazy launches and lazily
resolved completions).  These tests pin four contracts:

* **equivalence** — on the no-fault rail the fast path's ``ClusterResult``
  equals the reference router's, field for field, across schedulers,
  policies, shedding, capped streaming metrics, heterogeneous fleets, and
  trace shapes;
* **the single-replica rail** — a 1-replica no-fault fast cluster stays
  bit-identical to plain ``ServingEngine.run`` for every registered
  scheduler;
* **faulted equivalence** — crash / accel-loss / straggler windows and
  timeout retries ride ``run_fast_faulted`` (the no-fault kernels must not
  run) and stay bit-identical to the reference loop, including retry
  exhaustion, shed-under-fault, and capped streaming metrics;
* **fallback** — hedging and custom policies/schedulers route to the
  reference loop (neither fast entry point may run), still returning
  identical results, with the reason recorded on the result.
"""

import numpy as np
import pytest

from repro.serving import (
    ClusterConfig,
    ClusterRouter,
    ServingConfig,
    ServingEngine,
    make_trace,
)
from repro.serving import columnar_cluster
from repro.serving.cluster import (
    _POLICIES,
    AdmissionPolicy,
    get_policy,
    register_policy,
)
from repro.serving.columnar_cluster import (
    fast_path_fallback_reason,
    needs_faulted_path,
    supports_fast_path,
)
from repro.serving.faults import FaultInjector
from repro.serving.scheduler import (
    _SCHEDULERS,
    FIFOScheduler,
    get_scheduler,
    register_scheduler,
)

POLICIES = ("round-robin", "least-loaded", "power-of-two-choices")
SCHEDULERS = ("fifo", "static", "dynamic", "continuous")

#: fault knobs that must ride the fault-capable fast rail.
FAULT_KNOBS = {
    "crash": dict(fault_profile="crash", timeout_s=0.02, timeout_cap_s=0.32),
    "accel-loss": dict(fault_profile="accel-loss", timeout_s=0.02, timeout_cap_s=0.32),
    "straggler": dict(fault_profile="straggler"),
    "retries": dict(timeout_s=0.05, timeout_cap_s=0.4),
}


def run_cluster(
    backend,
    *,
    num_requests=400,
    load=1.5,
    seed=0,
    trace_kind="poisson",
    decode_steps=(1, 4),
    **overrides,
):
    config = ClusterConfig(model="gpt2", backend=backend, **overrides)
    router = ClusterRouter(config)
    rate = load * router.fleet_capacity_rps()
    trace = make_trace(
        trace_kind,
        rate,
        num_requests,
        rng=np.random.default_rng(seed),
        decode_steps=decode_steps,
    )
    return router.run(trace, offered_rate_rps=rate)


def assert_backends_identical(expect_backend="columnar", **overrides):
    fast = run_cluster("fast", **overrides)
    reference = run_cluster("reference", **overrides)
    assert fast == reference
    assert fast.backend_used == expect_backend
    assert fast.fast_path_fallback_reason is None
    assert reference.backend_used == "reference"
    return fast


class TestFastPathEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_matches_reference(self, scheduler, policy):
        assert_backends_identical(
            scheduler=scheduler, policy=policy, platforms=("A", "A")
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_shedding_matches_reference(self, policy):
        result = assert_backends_identical(
            scheduler="fifo",
            policy=policy,
            platforms=("A", "A"),
            shed_queue_s=0.02,
            load=2.0,
        )
        assert result.num_shed > 0

    def test_capped_metrics_and_deadline_match_reference(self):
        result = assert_backends_identical(
            scheduler="continuous",
            policy="least-loaded",
            platforms=("A", "A", "A"),
            record_requests=64,
            deadline_s=0.05,
        )
        assert result.record_cap == 64
        assert len(result.records) <= 64
        assert 0.0 < result.goodput <= 1.0

    def test_heterogeneous_fleet_matches_reference(self):
        assert_backends_identical(
            scheduler="dynamic", policy="least-loaded", platforms=("A", "B", "C")
        )

    @pytest.mark.parametrize("trace_kind", ("bursty", "closed-loop"))
    def test_other_trace_shapes_match_reference(self, trace_kind):
        assert_backends_identical(
            scheduler="static",
            policy="round-robin",
            platforms=("A", "A"),
            trace_kind=trace_kind,
        )

    def test_policy_seed_respected(self):
        draws = [
            run_cluster(
                "fast",
                scheduler="fifo",
                policy="power-of-two-choices",
                platforms=("A",) * 4,
                policy_seed=policy_seed,
            )
            for policy_seed in (1, 2)
        ]
        assert draws[0] != draws[1]

    def test_fast_rail_actually_taken(self, monkeypatch):
        calls = []
        original = columnar_cluster.run_fast_cluster

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(columnar_cluster, "run_fast_cluster", spy)
        run_cluster("fast", scheduler="fifo", policy="round-robin")
        assert len(calls) == 1


class TestSingleReplicaRail:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_matches_plain_engine(self, scheduler):
        config = ClusterConfig(
            model="gpt2",
            platforms=("A",),
            scheduler=scheduler,
            policy="round-robin",
            backend="fast",
        )
        router = ClusterRouter(config)
        rate = 1.5 * router.fleet_capacity_rps()
        trace = make_trace(
            "poisson", rate, 300, rng=np.random.default_rng(0), decode_steps=(1, 4)
        )
        cluster = router.run(trace, offered_rate_rps=rate)
        solo = ServingEngine(
            ServingConfig(model="gpt2", scheduler=scheduler, backend="fast")
        ).run(trace, offered_rate_rps=rate)
        assert cluster.replicas[0] == solo


class TestFaultedFastPath:
    """Crash / accel-loss / straggler windows and timeout retries ride the
    fault-capable replay — never the no-fault kernels — bit-identically."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheduler", ("fifo", "dynamic", "continuous"))
    @pytest.mark.parametrize("knob", ("crash", "accel-loss", "straggler"))
    def test_fault_windows_match_reference(
        self, knob, scheduler, policy, monkeypatch
    ):
        monkeypatch.setattr(columnar_cluster, "run_fast_cluster", _refuse_fast_path)
        result = assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler=scheduler,
            policy=policy,
            platforms=("A", "A", "A"),
            **FAULT_KNOBS[knob],
        )
        assert result.num_failed + result.num_shed < len(result.records)

    def test_timeout_retries_match_reference(self, monkeypatch):
        monkeypatch.setattr(columnar_cluster, "run_fast_cluster", _refuse_fast_path)
        assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler="static",
            policy="round-robin",
            platforms=("A", "A"),
            **FAULT_KNOBS["retries"],
        )

    def test_retry_exhaustion_matches_reference(self):
        result = assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler="static",
            policy="round-robin",
            platforms=("A", "A", "A"),
            fault_profile="crash",
            timeout_s=0.004,
            timeout_cap_s=0.004,
            max_retries=1,
        )
        assert result.num_failed > 0

    def test_shed_under_fault_matches_reference(self):
        result = assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler="dynamic",
            policy="least-loaded",
            platforms=("A", "A", "A"),
            fault_profile="crash",
            timeout_s=0.02,
            timeout_cap_s=0.32,
            shed_queue_s=0.05,
            load=2.0,
        )
        assert result.num_shed > 0
        assert result.num_retries > 0

    def test_capped_streaming_metrics_match_reference(self):
        result = assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler="dynamic",
            policy="power-of-two-choices",
            platforms=("A", "A", "A"),
            fault_profile="crash",
            timeout_s=0.02,
            timeout_cap_s=0.32,
            record_requests=64,
            deadline_s=0.1,
        )
        assert result.record_cap == 64
        assert len(result.records) <= 64

    def test_heterogeneous_accel_loss_matches_reference(self):
        assert_backends_identical(
            expect_backend="columnar-faulted",
            scheduler="dynamic",
            policy="least-loaded",
            platforms=("A", "B", "C"),
            fault_profile="accel-loss",
            timeout_s=0.02,
            timeout_cap_s=0.32,
        )

    def test_faulted_rail_actually_taken(self, monkeypatch):
        calls = []
        original = columnar_cluster.run_fast_faulted

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(columnar_cluster, "run_fast_faulted", spy)
        result = run_cluster(
            "fast",
            scheduler="dynamic",
            policy="round-robin",
            fault_profile="crash",
            timeout_s=0.02,
            timeout_cap_s=0.32,
        )
        assert len(calls) == 1
        assert result.backend_used == "columnar-faulted"


def _refuse_fast_path(*args, **kwargs):
    raise AssertionError("the fast path must not run for unsupported knobs")


def _refuse_both_fast_paths(monkeypatch):
    """Hedged / custom runs must enter neither fast entry point."""
    monkeypatch.setattr(columnar_cluster, "run_fast_cluster", _refuse_fast_path)
    monkeypatch.setattr(columnar_cluster, "run_fast_faulted", _refuse_fast_path)


#: every unsupported-knob combination that must take the reference rail.
FALLBACK_KNOBS = {
    "hedging": dict(hedge_after_s=0.01),
    "hedging-with-faults": dict(
        hedge_after_s=0.01,
        fault_profile="crash",
        timeout_s=0.02,
        timeout_cap_s=0.32,
    ),
}


class TestFallback:
    @pytest.mark.parametrize("knob", sorted(FALLBACK_KNOBS))
    def test_unsupported_knob_runs_reference_loop(self, knob, monkeypatch):
        _refuse_both_fast_paths(monkeypatch)
        overrides = FALLBACK_KNOBS[knob]
        fast = run_cluster(
            "fast", scheduler="continuous", policy="least-loaded", **overrides
        )
        reference = run_cluster(
            "reference", scheduler="continuous", policy="least-loaded", **overrides
        )
        assert fast == reference
        assert fast.backend_used == "reference"
        assert "hedge_after_s" in fast.fast_path_fallback_reason
        assert reference.fast_path_fallback_reason is None

    def test_custom_policy_falls_back(self, monkeypatch):
        class HighestIndexPolicy(AdmissionPolicy):
            name = "test-highest-index"
            description = "always the highest alive index (test-only)"

            def choose(self, now, candidates, rng):
                return candidates[-1]

        register_policy(HighestIndexPolicy, replace=True)
        _refuse_both_fast_paths(monkeypatch)
        try:
            fast = run_cluster("fast", scheduler="fifo", policy="test-highest-index")
            reference = run_cluster(
                "reference", scheduler="fifo", policy="test-highest-index"
            )
        finally:
            _POLICIES.pop(HighestIndexPolicy.name, None)
        assert fast == reference

    def test_subclassed_scheduler_falls_back(self, monkeypatch):
        class SubclassedFIFOScheduler(FIFOScheduler):
            name = "test-fifo-subclass"
            description = "fifo subclass without its own columnar kernel"

        register_scheduler(SubclassedFIFOScheduler, replace=True)
        _refuse_both_fast_paths(monkeypatch)
        try:
            fast = run_cluster(
                "fast", scheduler="test-fifo-subclass", policy="round-robin"
            )
            reference = run_cluster(
                "reference", scheduler="test-fifo-subclass", policy="round-robin"
            )
        finally:
            _SCHEDULERS.pop(SubclassedFIFOScheduler.name, None)
        assert fast == reference


class TestSupportsFastPath:
    def _config(
        self,
        *,
        profile="none",
        scheduler="fifo",
        policy="round-robin",
        backend="fast",
        **config_overrides,
    ):
        return ClusterConfig(
            model="gpt2",
            platforms=("A", "A"),
            scheduler=scheduler,
            policy=policy,
            fault_profile=profile,
            backend=backend,
            **config_overrides,
        )

    def _probe(self, **kwargs):
        config = self._config(**kwargs)
        injector = FaultInjector(config.fault_profile, 2, 100.0, seed=0)
        return supports_fast_path(
            config,
            injector,
            get_policy(config.policy),
            get_scheduler(config.scheduler),
        )

    def _reason(self, **kwargs):
        config = self._config(**kwargs)
        return fast_path_fallback_reason(
            config, get_policy(config.policy), get_scheduler(config.scheduler)
        )

    def test_rail_conditions_hold(self):
        for scheduler in SCHEDULERS:
            for policy in POLICIES:
                assert self._probe(scheduler=scheduler, policy=policy)
        # shedding, capping, and deadlines stay on the rail
        assert self._probe(shed_queue_s=0.01, record_requests=32, deadline_s=0.1)
        # faults and timeout retries now ride the fault-capable rail
        assert self._probe(profile="crash", timeout_s=0.02)
        assert self._probe(profile="accel-loss", timeout_s=0.02)
        assert self._probe(profile="straggler")
        assert self._probe(timeout_s=0.02)

    def test_unsupported_knobs_fall_off(self):
        assert "hedge_after_s" in self._reason(hedge_after_s=0.01)
        assert "backend" in self._reason(backend="reference")
        assert not self._probe(hedge_after_s=0.01)
        assert not self._probe(backend="reference")

    def test_faulted_rail_selection(self):
        def needs(**kwargs):
            config = self._config(**kwargs)
            injector = FaultInjector(config.fault_profile, 2, 100.0, seed=0)
            return needs_faulted_path(config, injector)

        # the drawn schedule (not the profile name) decides the rail
        assert not needs()
        assert needs(profile="crash", timeout_s=0.02)
        assert needs(profile="accel-loss")
        assert needs(profile="straggler")
        assert needs(timeout_s=0.02)
