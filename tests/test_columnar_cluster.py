"""The columnar cluster fast path: bit-identity, rails, and fallback.

``run_fast_cluster`` (serving/columnar_cluster.py) replays the reference
router's event loop in columns: routing decisions come from closed forms and
per-replica virtual-clock recurrences, per-replica streams run through the
per-scheduler columnar kernels.  These tests pin its three contracts:

* **equivalence** — on the supported rail (no faults, retries, or hedging;
  builtin policy and scheduler) the fast path's ``ClusterResult`` equals the
  reference router's, field for field, across schedulers, policies,
  shedding, capped streaming metrics, heterogeneous fleets, and trace
  shapes;
* **the single-replica rail** — a 1-replica no-fault fast cluster stays
  bit-identical to plain ``ServingEngine.run`` for every registered
  scheduler;
* **fallback** — every unsupported knob routes to the reference loop (the
  fast kernels must never run) and still returns identical results.
"""

import numpy as np
import pytest

from repro.serving import (
    ClusterConfig,
    ClusterRouter,
    ServingConfig,
    ServingEngine,
    make_trace,
)
from repro.serving import columnar_cluster
from repro.serving.cluster import (
    _POLICIES,
    AdmissionPolicy,
    get_policy,
    register_policy,
)
from repro.serving.columnar_cluster import supports_fast_path
from repro.serving.faults import FaultInjector
from repro.serving.scheduler import (
    _SCHEDULERS,
    FIFOScheduler,
    get_scheduler,
    register_scheduler,
)

POLICIES = ("round-robin", "least-loaded", "power-of-two-choices")
SCHEDULERS = ("fifo", "static", "dynamic", "continuous")


def run_cluster(
    backend,
    *,
    num_requests=400,
    load=1.5,
    seed=0,
    trace_kind="poisson",
    decode_steps=(1, 4),
    **overrides,
):
    config = ClusterConfig(model="gpt2", backend=backend, **overrides)
    router = ClusterRouter(config)
    rate = load * router.fleet_capacity_rps()
    trace = make_trace(
        trace_kind,
        rate,
        num_requests,
        rng=np.random.default_rng(seed),
        decode_steps=decode_steps,
    )
    return router.run(trace, offered_rate_rps=rate)


def assert_backends_identical(**overrides):
    fast = run_cluster("fast", **overrides)
    reference = run_cluster("reference", **overrides)
    assert fast == reference
    return fast


class TestFastPathEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_matches_reference(self, scheduler, policy):
        assert_backends_identical(
            scheduler=scheduler, policy=policy, platforms=("A", "A")
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_shedding_matches_reference(self, policy):
        result = assert_backends_identical(
            scheduler="fifo",
            policy=policy,
            platforms=("A", "A"),
            shed_queue_s=0.02,
            load=2.0,
        )
        assert result.num_shed > 0

    def test_capped_metrics_and_deadline_match_reference(self):
        result = assert_backends_identical(
            scheduler="continuous",
            policy="least-loaded",
            platforms=("A", "A", "A"),
            record_requests=64,
            deadline_s=0.05,
        )
        assert result.record_cap == 64
        assert len(result.records) <= 64
        assert 0.0 < result.goodput <= 1.0

    def test_heterogeneous_fleet_matches_reference(self):
        assert_backends_identical(
            scheduler="dynamic", policy="least-loaded", platforms=("A", "B", "C")
        )

    @pytest.mark.parametrize("trace_kind", ("bursty", "closed-loop"))
    def test_other_trace_shapes_match_reference(self, trace_kind):
        assert_backends_identical(
            scheduler="static",
            policy="round-robin",
            platforms=("A", "A"),
            trace_kind=trace_kind,
        )

    def test_policy_seed_respected(self):
        draws = [
            run_cluster(
                "fast",
                scheduler="fifo",
                policy="power-of-two-choices",
                platforms=("A",) * 4,
                policy_seed=policy_seed,
            )
            for policy_seed in (1, 2)
        ]
        assert draws[0] != draws[1]

    def test_fast_rail_actually_taken(self, monkeypatch):
        calls = []
        original = columnar_cluster.run_fast_cluster

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(columnar_cluster, "run_fast_cluster", spy)
        run_cluster("fast", scheduler="fifo", policy="round-robin")
        assert len(calls) == 1


class TestSingleReplicaRail:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_matches_plain_engine(self, scheduler):
        config = ClusterConfig(
            model="gpt2",
            platforms=("A",),
            scheduler=scheduler,
            policy="round-robin",
            backend="fast",
        )
        router = ClusterRouter(config)
        rate = 1.5 * router.fleet_capacity_rps()
        trace = make_trace(
            "poisson", rate, 300, rng=np.random.default_rng(0), decode_steps=(1, 4)
        )
        cluster = router.run(trace, offered_rate_rps=rate)
        solo = ServingEngine(
            ServingConfig(model="gpt2", scheduler=scheduler, backend="fast")
        ).run(trace, offered_rate_rps=rate)
        assert cluster.replicas[0] == solo


def _refuse_fast_path(*args, **kwargs):
    raise AssertionError("the fast path must not run for unsupported knobs")


#: every unsupported-knob combination that must take the reference rail.
FALLBACK_KNOBS = {
    "crash": dict(fault_profile="crash", timeout_s=0.02, timeout_cap_s=0.32),
    "accel-loss": dict(fault_profile="accel-loss", timeout_s=0.02, timeout_cap_s=0.32),
    "straggler": dict(fault_profile="straggler"),
    "hedging": dict(hedge_after_s=0.01),
    "retries": dict(timeout_s=0.05, timeout_cap_s=0.4),
}


class TestFallback:
    @pytest.mark.parametrize("knob", sorted(FALLBACK_KNOBS))
    def test_unsupported_knob_runs_reference_loop(self, knob, monkeypatch):
        monkeypatch.setattr(
            columnar_cluster, "run_fast_cluster", _refuse_fast_path
        )
        overrides = FALLBACK_KNOBS[knob]
        fast = run_cluster(
            "fast", scheduler="continuous", policy="least-loaded", **overrides
        )
        reference = run_cluster(
            "reference", scheduler="continuous", policy="least-loaded", **overrides
        )
        assert fast == reference

    def test_custom_policy_falls_back(self, monkeypatch):
        class HighestIndexPolicy(AdmissionPolicy):
            name = "test-highest-index"
            description = "always the highest alive index (test-only)"

            def choose(self, now, candidates, rng):
                return candidates[-1]

        register_policy(HighestIndexPolicy, replace=True)
        monkeypatch.setattr(
            columnar_cluster, "run_fast_cluster", _refuse_fast_path
        )
        try:
            fast = run_cluster("fast", scheduler="fifo", policy="test-highest-index")
            reference = run_cluster(
                "reference", scheduler="fifo", policy="test-highest-index"
            )
        finally:
            _POLICIES.pop(HighestIndexPolicy.name, None)
        assert fast == reference

    def test_subclassed_scheduler_falls_back(self, monkeypatch):
        class SubclassedFIFOScheduler(FIFOScheduler):
            name = "test-fifo-subclass"
            description = "fifo subclass without its own columnar kernel"

        register_scheduler(SubclassedFIFOScheduler, replace=True)
        monkeypatch.setattr(
            columnar_cluster, "run_fast_cluster", _refuse_fast_path
        )
        try:
            fast = run_cluster(
                "fast", scheduler="test-fifo-subclass", policy="round-robin"
            )
            reference = run_cluster(
                "reference", scheduler="test-fifo-subclass", policy="round-robin"
            )
        finally:
            _SCHEDULERS.pop(SubclassedFIFOScheduler.name, None)
        assert fast == reference


class TestSupportsFastPath:
    def _probe(
        self,
        *,
        profile="none",
        scheduler="fifo",
        policy="round-robin",
        backend="fast",
        **config_overrides,
    ):
        config = ClusterConfig(
            model="gpt2",
            platforms=("A", "A"),
            scheduler=scheduler,
            policy=policy,
            fault_profile=profile,
            backend=backend,
            **config_overrides,
        )
        injector = FaultInjector(profile, 2, 100.0, seed=0)
        return supports_fast_path(
            config, injector, get_policy(policy), get_scheduler(scheduler)
        )

    def test_rail_conditions_hold(self):
        for scheduler in SCHEDULERS:
            for policy in POLICIES:
                assert self._probe(scheduler=scheduler, policy=policy)
        # shedding, capping, and deadlines stay on the rail
        assert self._probe(shed_queue_s=0.01, record_requests=32, deadline_s=0.1)

    def test_unsupported_knobs_fall_off(self):
        assert not self._probe(profile="crash", timeout_s=0.02)
        assert not self._probe(profile="accel-loss", timeout_s=0.02)
        assert not self._probe(profile="straggler")
        assert not self._probe(hedge_after_s=0.01)
        assert not self._probe(timeout_s=0.02)
        assert not self._probe(backend="reference")
