"""Serving simulator tests: traces, schedulers, the event loop, metrics.

The load-bearing suite is the equivalence battery: with one request, batch
size 1, and a FIFO scheduler, the serving engine's end-to-end latency must
be **bit-identical** to ``Simulation.total_latency_s`` for every registered
flow on every registered platform — the serving analogue of the
scalar-vs-vectorized simulator battery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.flows import get_flow, list_flows
from repro.hardware import list_platforms
from repro.hardware.device import DeviceKind
from repro.hardware.platform import get_platform
from repro.runtime.simulator import simulate
from repro.serving import (
    ContinuousBatchScheduler,
    Request,
    RequestTrace,
    ServingConfig,
    ServingEngine,
    get_scheduler,
    list_schedulers,
    list_traces,
    make_trace,
    nearest_rank,
    register_scheduler,
    resolve_serving_target,
    simulate_serving,
)
from repro.serving.scheduler import BatchScheduler, Dispatch
from repro.sweep.cache import PLAN_CACHE

MODEL = "vit-b"


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def single_request_trace() -> RequestTrace:
    return RequestTrace("single", (Request(0, 0.0, 1),))


# -- traces -----------------------------------------------------------------


class TestTraces:
    def test_registry_lists_builtins(self):
        assert list_traces() == ["bursty", "closed-loop", "poisson"]

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "closed-loop"])
    def test_deterministic_and_sorted(self, kind):
        a = make_trace(kind, 100.0, 32, rng(7), decode_steps=(1, 4))
        b = make_trace(kind, 100.0, 32, rng(7), decode_steps=(1, 4))
        assert a == b
        arrivals = [r.arrival_s for r in a.requests]
        assert arrivals == sorted(arrivals)
        assert all(1 <= r.decode_steps <= 4 for r in a.requests)

    def test_poisson_rate_roughly_matches(self):
        trace = make_trace("poisson", 200.0, 400, rng(1))
        assert trace.offered_rate_rps == pytest.approx(200.0, rel=0.25)
        assert trace.requests[0].arrival_s == 0.0

    def test_bursty_clusters(self):
        trace = make_trace("bursty", 100.0, 16, rng(0))
        gaps = np.diff([r.arrival_s for r in trace.requests])
        # within-burst gaps are two orders of magnitude under the burst gap
        assert np.median(gaps) < 0.1 * np.max(gaps)

    def test_round_trip_is_bit_exact(self):
        trace = make_trace("poisson", 50.0, 12, rng(3), decode_steps=(2, 5))
        replayed = RequestTrace.from_rows(trace.name, trace.to_rows())
        assert replayed == trace

    def test_validation(self):
        with pytest.raises(ServingError):
            make_trace("poisson", -1.0, 4, rng(0))
        with pytest.raises(ServingError):
            make_trace("nope", 1.0, 4, rng(0))
        with pytest.raises(ServingError):
            RequestTrace("bad", (Request(0, 1.0), Request(1, 0.5)))
        with pytest.raises(ServingError):
            RequestTrace("bad", (Request(0, 0.0, decode_steps=0),))


# -- schedulers -------------------------------------------------------------


class TestSchedulers:
    def test_registry_lists_builtins(self):
        assert list_schedulers() == ["continuous", "dynamic", "fifo", "static"]
        with pytest.raises(ServingError):
            get_scheduler("mystery")

    def test_fresh_instance_per_call(self):
        assert get_scheduler("fifo") is not get_scheduler("fifo")

    def test_fifo_serves_in_arrival_order(self):
        scheduler = get_scheduler("fifo")
        scheduler.admit(Request(0, 0.0, decode_steps=3))
        scheduler.admit(Request(1, 0.0))
        first = scheduler.next_dispatch(0.0, arrivals_pending=False)
        assert first.members == (0,) and first.iterations == 3
        second = scheduler.next_dispatch(0.0, arrivals_pending=False)
        assert second.members == (1,) and second.size == 1

    def test_static_waits_for_full_batch_then_flushes(self):
        scheduler = get_scheduler("static", max_batch=3)
        scheduler.admit(Request(0, 0.0))
        scheduler.admit(Request(1, 0.0))
        assert scheduler.next_dispatch(0.0, arrivals_pending=True) is None
        scheduler.admit(Request(2, 0.0))
        full = scheduler.next_dispatch(0.0, arrivals_pending=True)
        assert full.size == 3 and full.completes == (0, 1, 2)
        scheduler.admit(Request(3, 1.0))
        flush = scheduler.next_dispatch(1.0, arrivals_pending=False)
        assert flush.size == 1 and flush.members == (3,)

    def test_dynamic_deadline_then_partial_launch(self):
        scheduler = get_scheduler("dynamic", max_batch=4, max_wait_s=0.01)
        scheduler.admit(Request(0, 0.0))
        verdict = scheduler.next_dispatch(0.0, arrivals_pending=True)
        assert verdict == pytest.approx(0.01)
        launched = scheduler.next_dispatch(0.01, arrivals_pending=True)
        assert isinstance(launched, Dispatch) and launched.size == 1

    def test_dynamic_full_batch_launches_immediately(self):
        scheduler = get_scheduler("dynamic", max_batch=2, max_wait_s=10.0)
        scheduler.admit(Request(0, 0.0))
        scheduler.admit(Request(1, 0.0))
        launched = scheduler.next_dispatch(0.0, arrivals_pending=True)
        assert isinstance(launched, Dispatch) and launched.size == 2

    def test_continuous_iteration_membership(self):
        scheduler = get_scheduler("continuous", max_batch=2)
        scheduler.admit(Request(0, 0.0, decode_steps=2))
        scheduler.admit(Request(1, 0.0, decode_steps=1))
        scheduler.admit(Request(2, 0.0, decode_steps=1))
        first = scheduler.next_dispatch(0.0, arrivals_pending=False)
        assert first.members == (0, 1) and first.barrier
        assert first.completes == (1,)  # request 1's single step is done
        second = scheduler.next_dispatch(0.0, arrivals_pending=False)
        # request 2 takes the freed slot while request 0 keeps decoding
        assert second.members == (0, 2)
        assert set(second.completes) == {0, 2}
        assert scheduler.next_dispatch(0.0, arrivals_pending=False) is None

    def test_custom_scheduler_registration(self):
        class EveryOther(BatchScheduler):
            name = "every-other-test"
            description = "test double"

            def next_dispatch(self, now, arrivals_pending):
                return None

        register_scheduler(EveryOther)
        try:
            assert "every-other-test" in list_schedulers()
            with pytest.raises(ServingError):
                register_scheduler(EveryOther)
        finally:
            from repro.serving import scheduler as scheduler_module

            del scheduler_module._SCHEDULERS["every-other-test"]


# -- the equivalence battery ------------------------------------------------


def battery_cases():
    for platform in list_platforms():
        for flow_name in list_flows():
            yield platform.platform_id, flow_name


@pytest.mark.parametrize("platform_id,flow_name", sorted(battery_cases()))
def test_single_request_matches_simulation_exactly(platform_id, flow_name):
    """One request, batch 1, FIFO: engine latency == Simulation, bitwise."""
    device = "npu" if flow_name == "npu-offload" else "gpu"
    engine = ServingEngine(
        ServingConfig(
            model=MODEL,
            flow=flow_name,
            platform=platform_id,
            device=device,
            scheduler="fifo",
            max_batch=1,
        )
    )
    result = engine.run(single_request_trace())
    platform, target = resolve_serving_target(get_platform(platform_id), device)
    plan = PLAN_CACHE.plan(get_flow(flow_name), PLAN_CACHE.graph_ref(MODEL, 1), target)
    expected = simulate(plan, platform)
    assert result.records[0].latency_s == expected.total_latency_s
    assert result.makespan_s == expected.total_latency_s
    assert result.energy_j == expected.energy_j


def test_cpu_only_target_matches_simulation_exactly():
    engine = ServingEngine(
        ServingConfig(model=MODEL, platform="A", device="cpu", scheduler="fifo")
    )
    result = engine.run(single_request_trace())
    platform, target = resolve_serving_target(get_platform("A"), "cpu")
    assert platform.platform_id == "A-cpu" and target is DeviceKind.CPU
    plan = PLAN_CACHE.plan(get_flow("pytorch"), PLAN_CACHE.graph_ref(MODEL, 1), target)
    assert result.records[0].latency_s == simulate(plan, platform).total_latency_s


# -- the engine under load --------------------------------------------------


class TestEngine:
    def config(self, scheduler: str = "fifo", **kwargs) -> ServingConfig:
        kwargs.setdefault("model", MODEL)
        kwargs.setdefault("platform", "A")
        return ServingConfig(scheduler=scheduler, **kwargs)

    def test_serial_fifo_back_to_back(self):
        """Simultaneous arrivals served FIFO complete in repeated-add order."""
        engine = ServingEngine(self.config())
        trace = RequestTrace("burst", tuple(Request(i, 0.0) for i in range(4)))
        result = engine.run(trace)
        unit = engine.costs.cost(1).total_s
        expected = 0.0
        for record in sorted(result.records, key=lambda r: r.request_id):
            expected += unit
            assert record.completion_s == expected

    def test_determinism(self):
        config = self.config("dynamic", max_batch=4)
        rate = 2.0 / ServingEngine(config).base_latency_s()
        trace = make_trace("poisson", rate, 20, rng(5), decode_steps=(1, 3))
        a = simulate_serving(config, trace, rate)
        b = simulate_serving(config, trace, rate)
        assert a.records == b.records
        assert a.busy_s == b.busy_s and a.energy_j == b.energy_j
        assert a.queue_depth_timeline == b.queue_depth_timeline

    def test_batching_beats_fifo_under_overload(self):
        rate = 4.0 / ServingEngine(self.config()).base_latency_s()
        trace = make_trace("poisson", rate, 24, rng(0))
        fifo = simulate_serving(self.config("fifo"), trace, rate)
        dynamic = simulate_serving(self.config("dynamic", max_batch=4), trace, rate)
        assert dynamic.throughput_rps > fifo.throughput_rps
        assert dynamic.p99_s < fifo.p99_s
        assert dynamic.mean_batch_size > 1.5
        assert fifo.max_queue_depth > 2

    def test_continuous_removes_head_of_line_blocking(self):
        config = self.config(model="gpt2")
        rate = 2.0 / ServingEngine(config).base_latency_s()
        trace = make_trace("poisson", rate, 24, rng(0), decode_steps=(1, 4))
        static = simulate_serving(self.config("static", model="gpt2", max_batch=4), trace, rate)
        continuous = simulate_serving(
            self.config("continuous", model="gpt2", max_batch=4), trace, rate
        )
        assert continuous.p99_s < static.p99_s
        assert continuous.num_iterations >= static.num_dispatches

    def test_occupancy_and_energy_accounting(self):
        engine = ServingEngine(self.config("dynamic", max_batch=4))
        rate = 1.0 / engine.base_latency_s()
        result = engine.run(make_trace("poisson", rate, 12, rng(2)), rate)
        utilization = result.utilization()
        assert set(result.busy_s) == {DeviceKind.CPU, DeviceKind.GPU}
        assert all(0.0 <= value <= 1.0 for value in utilization.values())
        assert utilization[DeviceKind.GPU] > 0.2
        assert result.energy_j[DeviceKind.GPU] > 0.0
        assert result.gemm_busy_s > 0.0 and result.non_gemm_busy_s > 0.0
        assert 0.0 < result.non_gemm_busy_share < 1.0

    def test_stalling_scheduler_raises(self):
        class Staller(BatchScheduler):
            name = "staller-test"
            description = "never dispatches"

            def next_dispatch(self, now, arrivals_pending):
                return None

        register_scheduler(Staller)
        try:
            with pytest.raises(ServingError, match="outstanding"):
                simulate_serving(self.config("staller-test"), single_request_trace())
        finally:
            from repro.serving import scheduler as scheduler_module

            del scheduler_module._SCHEDULERS["staller-test"]

    def test_empty_trace(self):
        result = ServingEngine(self.config()).run(RequestTrace("empty", ()))
        assert result.records == [] and result.throughput_rps == 0.0

    def test_missing_accelerator_falls_back_to_cpu(self):
        engine = ServingEngine(self.config(device="npu"))  # A has no NPU
        assert engine.target is DeviceKind.CPU
        assert engine.platform.platform_id == "A-cpu"


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_nearest_rank_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert nearest_rank(values, 0.50) == 50.0
        assert nearest_rank(values, 0.95) == 95.0
        assert nearest_rank(values, 0.99) == 99.0
        assert nearest_rank([7.0], 0.99) == 7.0
        assert nearest_rank([], 0.5) == 0.0

    def test_continuous_scheduler_reports_pending_in_flight(self):
        # constructed directly (no reset()) — usable out of the box
        scheduler = ContinuousBatchScheduler(max_batch=2)
        scheduler.admit(Request(0, 0.0, decode_steps=2))
        scheduler.next_dispatch(0.0, arrivals_pending=False)
        assert scheduler.queue_depth == 0 and scheduler.has_pending


# -- sweep integration ------------------------------------------------------


class TestSweepServing:
    def test_load_axis_expands_points(self):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(0.5, 2.0), scheduler="continuous",
            num_requests=8, max_wait_s=5e-3, decode_steps=(1, 2),
        )
        points = spec.points()
        assert [p.load for p in points] == [0.5, 2.0]
        assert all(p.scheduler == "continuous" for p in points)
        assert all(p.max_wait_s == 5e-3 for p in points)
        assert "load0.5" in points[0].describe()

    def test_default_specs_unchanged(self):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(models=(MODEL,))
        assert spec.num_points == 1
        assert spec.points()[0].load is None

    def test_invalid_loads_rejected(self):
        from repro.errors import RegistryError
        from repro.sweep.spec import SweepSpec

        with pytest.raises(RegistryError):
            SweepSpec(models=(MODEL,), loads=(0.0,)).points()
        with pytest.raises(RegistryError):
            SweepSpec(
                models=("gpt2-xl",), loads=(1.0,), transforms=("llm-int8",)
            ).points()

    def test_run_point_attaches_serving_metrics(self):
        from repro.sweep.runner import run_sweep
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(1.0,), scheduler="dynamic",
            num_requests=6, max_batch=2, iterations=2, name="serving-smoke",
        )
        result = run_sweep(spec)
        assert len(result.records) == 1
        serving = result.records[0].serving
        assert serving is not None and len(serving.records) == 6
        assert serving.scheduler == "dynamic"
        # plain points keep serving empty
        plain = run_sweep(SweepSpec(models=(MODEL,), iterations=2))
        assert plain.records[0].serving is None

    def test_serving_points_survive_process_pool(self):
        import pickle

        from repro.sweep.runner import _run_point_for_pool
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            models=(MODEL,), loads=(0.5,), num_requests=4, iterations=2,
        )
        record, cache_delta = _run_point_for_pool(spec.points()[0])
        restored = pickle.loads(pickle.dumps(record))
        assert restored.serving.records == record.serving.records
        assert isinstance(cache_delta, dict)


# -- ext2 experiment --------------------------------------------------------


class TestExt2:
    def test_reduced_grid_is_deterministic(self):
        from repro.analysis import run_ext2

        kwargs = dict(
            platform_ids=("A",), models=("gpt2",), loads=(0.5, 2.0),
            schedulers=("fifo", "continuous"), num_requests=8, iterations=2,
        )
        a = run_ext2(**kwargs)
        b = run_ext2(**kwargs)
        assert a.rows == b.rows
        assert a.render() == b.render()
        assert len(a.rows) == 4
        # the CSV serialization itself is byte-stable
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            first = a.save(Path(tmp) / "one").read_bytes()
            second = b.save(Path(tmp) / "two").read_bytes()
        assert first == second
