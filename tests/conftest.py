"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import DType, Graph, TensorSpec
from repro.ops.base import Operator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def run_op(op: Operator, *arrays: np.ndarray, weights: dict | None = None):
    """Infer specs and execute one operator; asserts shapes agree."""
    specs = [TensorSpec(a.shape, _dtype_of(a)) for a in arrays]
    out_specs = op.infer_spec(specs)
    outputs = op.run(list(arrays), weights or {})
    assert len(outputs) == len(out_specs)
    for out, spec in zip(outputs, out_specs):
        assert tuple(out.shape) == spec.shape, f"{op.kind}: {out.shape} != {spec.shape}"
    return outputs if len(outputs) > 1 else outputs[0]


def _dtype_of(array: np.ndarray) -> DType:
    mapping = {
        np.dtype(np.float32): DType.F32,
        np.dtype(np.float16): DType.F16,
        np.dtype(np.int8): DType.I8,
        np.dtype(np.int32): DType.I32,
        np.dtype(np.int64): DType.I64,
        np.dtype(np.bool_): DType.BOOL,
    }
    return mapping.get(array.dtype, DType.F32)


def make_weights(op: Operator, seed: int = 0) -> dict[str, np.ndarray]:
    """Random weights for an op, respecting spec shapes and dtypes."""
    gen = np.random.default_rng(seed)
    weights = {}
    for spec in op.weight_specs():
        if spec.dtype == DType.I8:
            weights[spec.name] = gen.integers(-8, 8, size=spec.shape, dtype=np.int8)
        elif spec.dtype.is_integer:
            weights[spec.name] = gen.integers(0, 4, size=spec.shape).astype(spec.dtype.to_numpy())
        else:
            data = gen.normal(0, 0.5, size=spec.shape)
            if spec.name == "running_var":
                data = np.abs(data) + 0.5
            weights[spec.name] = data.astype(spec.dtype.to_numpy())
    return weights


@pytest.fixture
def tiny_transformer_graph() -> Graph:
    """A small but non-trivial graph used by flow/runtime/profiler tests."""
    from repro import ops

    g = Graph("tiny")
    x = g.input(TensorSpec((2, 8, 32)), "x")
    h = g.call(ops.LayerNorm(32), x)
    h = g.call(ops.Linear(32, 64), h)
    h = g.call(ops.GELU(), h)
    h = g.call(ops.Linear(64, 32), h)
    h = g.call(ops.Add(), h, x)
    h = g.call(ops.Softmax(-1), h)
    g.set_outputs(h)
    return g
