"""Tests for synthetic data, the viz helpers, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data import (
    SyntheticCOCO,
    SyntheticImageNet,
    SyntheticWikitext,
    ToyTokenizer,
    dataset_for,
    prepare_inputs,
)
from repro.models import get_model
from repro.runtime import run_graph
from repro.viz.ascii import render_stacked_bar, render_stacked_chart, render_table
from repro.viz.csvout import write_csv


class TestTokenizer:
    def test_deterministic(self):
        tok = ToyTokenizer(1000)
        assert tok.encode("hello world") == tok.encode("hello world")

    def test_ids_in_vocab(self):
        tok = ToyTokenizer(100)
        ids = tok.encode("a quick brown fox jumps over lazy dogs")
        assert all(0 <= i < 100 for i in ids)

    def test_padding_and_truncation(self):
        tok = ToyTokenizer(1000)
        padded = tok.encode("one two", max_length=10)
        assert len(padded) == 10 and padded[-1] == tok.PAD
        truncated = tok.encode(" ".join(["w"] * 50), max_length=5)
        assert len(truncated) == 5

    def test_special_tokens(self):
        tok = ToyTokenizer(1000)
        ids = tok.encode("x")
        assert ids[0] == tok.BOS and ids[-1] == tok.EOS

    def test_vocab_too_small(self):
        with pytest.raises(ValueError):
            ToyTokenizer(2)


class TestDatasets:
    def test_imagenet_shape_and_dtype(self):
        batch = SyntheticImageNet(image_size=64).batch(3)
        assert batch.shape == (3, 3, 64, 64)
        assert batch.dtype == np.float32

    def test_imagenet_deterministic(self):
        a = SyntheticImageNet(seed=5).batch(1)
        b = SyntheticImageNet(seed=5).batch(1)
        np.testing.assert_array_equal(a, b)

    def test_coco_boxes_valid(self):
        boxes, scores = SyntheticCOCO(image_size=200).boxes(15)
        assert boxes.shape == (15, 4) and scores.shape == (15,)
        assert np.all(boxes[:, 2] > boxes[:, 0]) and np.all(boxes[:, 3] > boxes[:, 1])
        assert np.all((scores >= 0) & (scores <= 1))

    def test_wikitext_batch(self):
        data = SyntheticWikitext(vocab_size=500)
        batch = data.batch(2, 16)
        assert batch.shape == (2, 16) and batch.dtype == np.int64
        assert np.all((batch >= 0) & (batch < 500))

    def test_dataset_factory(self):
        assert isinstance(dataset_for("imagenet"), SyntheticImageNet)
        assert isinstance(dataset_for("coco"), SyntheticCOCO)
        assert isinstance(dataset_for("wikitext"), SyntheticWikitext)
        with pytest.raises(KeyError):
            dataset_for("librispeech")


class TestPrepareInputs:
    def test_nlp_inputs_feed_graph(self):
        entry = get_model("gpt2")
        graph = entry.build(batch_size=2, seq_len=8)
        inputs = prepare_inputs(entry, graph, batch_size=2)
        assert set(inputs) == {"input_ids", "position_ids"}
        (logits,) = run_graph(graph, inputs)
        assert logits.shape[0] == 2

    def test_vision_inputs_match_spec(self):
        entry = get_model("vit-b")
        graph = entry.build(batch_size=1)
        inputs = prepare_inputs(entry, graph, batch_size=1)
        assert inputs["pixels"].shape == (1, 3, 224, 224)


class TestViz:
    def test_render_table(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "22" in lines[3]

    def test_render_table_empty(self):
        assert render_table([]) == "(empty)"

    def test_stacked_bar_width(self):
        bar = render_stacked_bar("m", {"A": 0.5, "B": 0.5}, width=20)
        inner = bar.split("|")[1]
        assert len(inner) == 20

    def test_stacked_chart_legend(self):
        chart = render_stacked_chart([("m", {"GEMM": 0.7, "other": 0.3}, "1ms")])
        assert "legend:" in chart and "GEMM" in chart

    def test_write_csv(self, tmp_path):
        path = write_csv([{"x": 1, "y": [2, 3]}, {"x": 4, "z": 5}], "t", tmp_path)
        content = path.read_text().splitlines()
        assert content[0] == "x,y,z"
        assert content[1] == "1,2x3,"
        assert content[2] == "4,,5"


class TestCLI:
    def test_list_models(self, capsys):
        assert cli_main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "gpt2-xl" in out and "mixtral-8x7b" in out

    def test_profile_command(self, capsys, tmp_path):
        code = cli_main(
            ["profile", "gpt2", "--batch", "1", "--iterations", "2", "--csv", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GEMM-based" in out and "slowest kernels" in out
        assert (tmp_path / "profile_gpt2.csv").exists()

    def test_workload_command(self, capsys):
        assert cli_main(["workload", "bert"]) == 0
        out = capsys.readouterr().out
        assert "operator counts" in out and "layer_norm" in out

    def test_no_command_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_profile_cpu_only(self, capsys):
        assert cli_main(["profile", "gpt2", "--cpu-only", "--iterations", "1"]) == 0
        assert "cpu" in capsys.readouterr().out


class TestServeCLI:
    def test_list_schedulers(self, capsys):
        assert cli_main(["serve", "--list-schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("fifo", "static", "dynamic", "continuous"):
            assert name in out
        assert "iteration-level" in out

    def test_list_traces(self, capsys):
        assert cli_main(["serve", "--list-traces"]) == 0
        out = capsys.readouterr().out
        for name in ("poisson", "bursty", "closed-loop"):
            assert name in out

    def test_serve_requires_model(self, capsys):
        assert cli_main(["serve"]) == 2
        assert "model is required" in capsys.readouterr().out

    def test_serve_run(self, capsys):
        code = cli_main(
            [
                "serve", "gpt2", "--scheduler", "continuous", "--load", "2",
                "--decode-steps", "1:3", "--requests", "12", "--max-batch", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99_ms" in out and "device occupancy" in out
        assert "continuous" in out and "single-stream capacity" in out

    def test_serve_explicit_rate_and_trace(self, capsys):
        code = cli_main(
            ["serve", "vit-b", "--trace", "bursty", "--rate", "50", "--requests", "8"]
        )
        assert code == 0
        assert "offered" in capsys.readouterr().out

    def test_serve_deterministic_output(self, capsys):
        args = ["serve", "gpt2", "--load", "1.5", "--requests", "10", "--seed", "7"]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert cli_main(args) == 0
        assert capsys.readouterr().out == first

class TestClusterCLI:
    def test_list_policies_and_faults(self, capsys):
        assert cli_main(["cluster", "--list-policies", "--list-faults"]) == 0
        out = capsys.readouterr().out
        for name in ("round-robin", "least-loaded", "power-of-two-choices"):
            assert name in out
        for name in ("none", "crash", "accel-loss", "straggler"):
            assert name in out

    def test_list_autoscalers_and_traces(self, capsys):
        assert cli_main(["cluster", "--list-autoscalers", "--list-traces"]) == 0
        out = capsys.readouterr().out
        for name in ("target-utilization", "goodput", "step"):
            assert name in out
        for name in ("poisson", "bursty", "closed-loop"):
            assert name in out

    def test_cluster_requires_model(self, capsys):
        assert cli_main(["cluster"]) == 2
        assert "model is required" in capsys.readouterr().out

    def test_cluster_autoscaled_run(self, capsys):
        code = cli_main(
            [
                "cluster", "gpt2", "--replicas", "4", "--policy", "least-loaded",
                "--scheduler", "continuous", "--autoscaler", "goodput",
                "--min-replicas", "1", "--load", "1", "--requests", "64",
                "--trace", "bursty", "--decode-steps", "1:4",
                "--deadline-ms", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "autoscale: goodput [1,4]" in out
        assert "replica_seconds=" in out and "mean_replicas=" in out

    def test_cluster_run_with_faults(self, capsys):
        code = cli_main(
            [
                "cluster", "gpt2", "--replicas", "3", "--policy", "least-loaded",
                "--scheduler", "continuous", "--fault", "crash",
                "--timeout-ms", "20", "--load", "1", "--requests", "16",
                "--decode-steps", "1:4", "--deadline-ms", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "per-replica occupancy" in out
        assert "faults=crash" in out and "fleet capacity" in out

    def test_cluster_heterogeneous_platforms(self, capsys):
        code = cli_main(
            ["cluster", "vit-b", "--platforms", "A,B", "--requests", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicas" in out

    def test_cluster_deterministic_output(self, capsys):
        args = [
            "cluster", "gpt2", "--fault", "straggler", "--hedge-ms", "10",
            "--load", "0.5", "--requests", "10", "--seed", "7",
        ]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert cli_main(args) == 0
        assert capsys.readouterr().out == first
        assert "hedge_wins" in first


class TestSweepLoadCLI:
    def test_sweep_load_adds_serving_columns(self, capsys):
        code = cli_main(
            [
                "sweep", "--models", "gpt2", "--load", "0.5,1.0",
                "--scheduler", "continuous",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served_rps" in out and "p99_ms" in out
        assert "continuous" in out
        assert out.count("gpt2") == 2

    def test_sweep_without_load_keeps_profile_columns(self, capsys):
        assert cli_main(["sweep", "--models", "gpt2"]) == 0
        out = capsys.readouterr().out
        assert "served_rps" not in out and "latency_ms" in out
