"""Benchmark the sweep engine against the seed-equivalent reference path.

Times the figure-6 grid (the repo's heaviest harness) across five tiers:

* ``reference``         — memoization disabled and the scalar per-kernel
  simulator: the seed implementation's algorithm (per-point
  build/lower/simulate with 142k Python-level ``estimate_kernel`` calls),
  run through today's harness.
* ``engine_cold``       — the sweep engine from an empty cache, no disk
  store: vectorized simulation, content-hash memoized builds/plans/memory,
  derived CPU plans.
* ``engine_populate``   — the same cold run while writing a fresh persistent
  artifact store (the one-time population cost).
* ``engine_disk_warm``  — a fresh in-memory cache backed by the warm store:
  what every *new process* (pytest run, CLI call, CI job) pays once the
  store exists.  Plans, memory profiles, and transform stats come off disk;
  graphs are never built (lazy GraphRefs).
* ``engine_warm``       — the engine re-running the same grid in-session,
  the steady state of interactive/sweep workloads.

All tiers produce byte-identical rows (asserted).  Besides the fig6 grid,
the same five tiers run the N-device Platform C grid, a reduced serving
grid (the discrete-event engine), and a reduced cluster grid (the
fault-tolerant fleet) — the latter two gated on their cold-vs-warm ratios.
A separate ``serving_1m`` tier exercises the columnar fast backend:
fast-vs-reference cross-checks at 10^5 requests (fifo gated at 5x; dynamic
and continuous at 6x now that they dispatch through dense batch-cost
tables) and 10^6-request traces in a subprocess reporting wall time and
peak RSS at a served and an overloaded rate (the overloaded row's p99 is
labeled ``regime: overload`` — it measures the queueing ramp, not a
service tail).  The ``cluster_1m`` tier does the same for the columnar
*fleet* fast path: a 4-replica cross-check asserted bit-identical and
gated at 5x, plus a faulted cross-check (crash window + timeout retries
on the event-replaying faulted rail) gated at 5x, plus a 10^6-request
fleet run.  Results land in ``BENCH_sweep.json`` at the repo
root for the performance trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--full] [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform as platform_mod
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import analysis
from repro.runtime.simulator import use_reference_backend
from repro.sweep.cache import PLAN_CACHE
from repro.sweep.store import ArtifactStore

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the full harness suite, with the iteration counts the benchmarks use
SUITE = {
    "fig1": lambda: analysis.run_fig1(iterations=3),
    "fig5": lambda: analysis.run_fig5(iterations=2),
    "fig6": lambda: analysis.run_fig6(iterations=2),
    "fig7": lambda: analysis.run_fig7(iterations=3),
    "fig8": lambda: analysis.run_fig8(iterations=2),
    "fig9": lambda: analysis.run_fig9(iterations=2),
    "table1": lambda: analysis.run_table1(),
    "table4": lambda: analysis.run_table4(iterations=2),
    "table5": lambda: analysis.run_table5(iterations=2),
    "ext1": lambda: analysis.run_ext1(iterations=2),
    "ext2": lambda: analysis.run_ext2(iterations=2),
    "ext3": lambda: analysis.run_ext3(iterations=2),
}


def timed(fn):
    """Time one workload run with the GC's scan set frozen.

    Later tiers run with millions of objects from earlier tiers still
    alive; without freezing, generational collections re-traverse that
    baseline on every threshold crossing, taxing whichever side of a
    ratio allocates faster (the columnar paths) and skewing the gates by
    2x+.  Objects allocated *during* the run are still collected normally.
    """
    gc.collect()
    gc.freeze()
    start = time.perf_counter()
    try:
        result = fn()
        elapsed = time.perf_counter() - start
    finally:
        gc.unfreeze()
    return elapsed, result


def bench_tiers(runner, describe) -> tuple:
    """Run one workload through all five engine tiers and check equivalence.

    ``runner`` executes the workload; ``describe`` extracts the comparison
    payload from its result.  Returns ``(payload, timings)`` so callers can
    report on the output without re-running the workload.
    """
    original_store = PLAN_CACHE.store
    store_dir = tempfile.mkdtemp(prefix="bench-sweep-store-")
    try:
        PLAN_CACHE.store = None
        PLAN_CACHE.clear()
        with PLAN_CACHE.disabled(), use_reference_backend():
            reference_s, reference = timed(runner)

        PLAN_CACHE.clear()
        cold_s, cold = timed(runner)

        PLAN_CACHE.store = ArtifactStore(store_dir)
        PLAN_CACHE.clear()
        populate_s, populated = timed(runner)

        # fresh in-memory tier against the warm store: a new process's view
        # (modulo interpreter startup and imports, which are engine-independent)
        PLAN_CACHE.clear()
        disk_warm_s, disk_warm = timed(runner)

        warm_s, warm = timed(runner)

        tiers = [reference, cold, populated, disk_warm, warm]
        payloads = [describe(result) for result in tiers]
        assert all(p == payloads[0] for p in payloads), "engine output diverged!"
    finally:
        PLAN_CACHE.store = original_store
        PLAN_CACHE.clear()
        shutil.rmtree(store_dir, ignore_errors=True)
    return payloads[0], {
        "reference_s": round(reference_s, 4),
        "engine_cold_s": round(cold_s, 4),
        "engine_populate_s": round(populate_s, 4),
        "engine_disk_warm_s": round(disk_warm_s, 4),
        "engine_warm_s": round(warm_s, 4),
        "speedup_cold": round(reference_s / cold_s, 2),
        "speedup_disk_warm": round(cold_s / disk_warm_s, 2),
        "speedup_warm": round(reference_s / warm_s, 2),
        "byte_identical": True,
    }


def bench_fig6(models: tuple[str, ...] | None = None) -> dict:
    runner = lambda: analysis.run_fig6(iterations=2, models=models)  # noqa: E731
    rows, payload = bench_tiers(runner, lambda result: result.rows)
    payload["rows"] = len(rows)
    return payload


def bench_platform_c(models: tuple[str, ...] | None = None) -> dict:
    """Perf-gate the N-device simulator path: the ext1 edge grid on the
    3-device Platform C (CPU/iGPU pytorch columns plus the NPU offload
    column), through the same five tiers as fig6."""
    runner = lambda: analysis.run_ext1(  # noqa: E731
        platform_ids=("C",), models=models, iterations=2
    )
    rows, payload = bench_tiers(runner, lambda result: result.rows)
    payload["rows"] = len(rows)
    return payload


def bench_serving() -> dict:
    """Perf-gate the serving tier: a reduced ext2 grid (one model/platform,
    two loads, no-batching vs continuous) through the same five tiers.
    Plans are lowered per batch size here, so the cold->warm ratio measures
    how well the serving path leans on the plan cache and artifact store."""
    runner = lambda: analysis.run_ext2(  # noqa: E731
        platform_ids=("A",),
        models=("gpt2",),
        loads=(0.5, 2.0),
        schedulers=("fifo", "continuous"),
        num_requests=16,
        iterations=2,
    )
    rows, payload = bench_tiers(runner, lambda result: result.rows)
    payload["rows"] = len(rows)
    return payload


def bench_cluster() -> dict:
    """Perf-gate the cluster tier: a reduced ext3 grid (one platform, one
    scheduler/policy, the none and crash profiles plus both focused studies)
    through the same five tiers.  The fleet's replicas share one plan cache,
    so a warm run should be pure event loop — no lowering, no simulation."""
    runner = lambda: analysis.run_ext3(  # noqa: E731
        platform_ids=("A",),
        schedulers=("continuous",),
        policies=("least-loaded",),
        fault_profiles=("none", "crash"),
        num_requests=24,
        iterations=2,
    )
    rows, payload = bench_tiers(runner, lambda result: result.rows)
    payload["rows"] = len(rows)
    return payload


def bench_autoscale() -> dict:
    """Perf-gate the elastic tier: a reduced ext5 grid (one static fleet
    vs the goodput controller at the overload demand) through the same
    five tiers.  Autoscaled rows always run the reference event loop, so
    the cold->warm ratio measures how completely the plan cache removes
    lowering and batch-cost work from under the elastic lifecycle."""
    runner = lambda: analysis.run_ext5(  # noqa: E731
        platform_ids=("A",),
        static_fleets=(2,),
        controllers=("goodput",),
        demands=(4.0,),
        num_requests=256,
        iterations=2,
    )
    rows, payload = bench_tiers(runner, lambda result: result.rows)
    payload["rows"] = len(rows)
    return payload


#: child script for the million-request tier: run in a fresh interpreter so
#: ``ru_maxrss`` measures this trace alone, not the parent's sweep caches.
_SERVING_1M_CHILD = """\
import json, resource, sys, time
import numpy as np
from repro.serving import ServingConfig, ServingEngine, make_trace
from repro.sweep.cache import PLAN_CACHE

num_requests = int(sys.argv[1])
load_factor = float(sys.argv[2])
config = ServingConfig(
    model="gpt2", scheduler="fifo", backend="fast", record_requests=512
)
engine = ServingEngine(config, cache=PLAN_CACHE)
rate = load_factor / engine.base_latency_s()
trace = make_trace(
    "poisson", rate, num_requests, rng=np.random.default_rng(0),
    decode_steps=(1, 4),
)
start = time.perf_counter()
result = engine.run(trace, offered_rate_rps=rate)
wall_s = time.perf_counter() - start
print(json.dumps({
    "wall_s": round(wall_s, 4),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    ),
    "num_served": result.num_requests_served,
    "records_kept": len(result.records),
    "p99_ms": round(result.p99_s * 1e3, 4),
}))
"""


#: rate factors for the 10^6-request rows: 0.8 / batch-1 step latency
#: oversubscribes the serial fifo server 2x once the 1-4 decode-step draws
#: (mean 2.5 steps per request) are paid — exactly what the RSS measurement
#: wants, since the queue grows to the full trace; dividing the same knob by
#: the mean draw instead offers a *served* load 0.8 whose p99 is a readable
#: tail latency rather than a queueing ramp.
_OVERLOAD_FACTOR = 0.8
_SERVED_FACTOR = 0.8 / 2.5


def bench_serving_1m(quick: bool = False) -> dict:
    """The million-request tier: how far the columnar fast backend scales.

    Two measurements:

    * cross-checks — fifo, dynamic, and continuous at 10^5 requests (10^4
      under ``--quick``), fast vs reference backend in-process, results
      asserted equal with a ``record_requests`` cap so both sides build the
      same streamed metrics.  The reference backend cannot reasonably run
      10^6 requests, so the speedup gates live here: fifo (the highest
      events-per-second scheduler, nothing batched to amortize the scalar
      loop) at 5x; dynamic and continuous at 6x — their kernels resolve
      batch costs through dense ``BatchCostModel.cost_table`` lookups, so
      they carry the same columnar headroom as fifo rather than paying a
      per-launch cost-model call.
    * ``trace_1m`` / ``trace_1m_served`` — 10^6 requests (10^5 under
      ``--quick``) on the fast backend in a subprocess, reporting wall time
      and peak RSS: once 2x oversubscribed (the RSS high-water mark) and
      once at served load 0.8 (a readable p99).  The rows carry a
      ``regime`` label: the oversubscribed p99 is a queueing ramp (latency
      grows with queue position for the whole trace), not a service tail,
      and must not be read as one.  With the record cap the per-request
      memory is flat: the child's high-water mark is the trace columns
      plus O(1) streaming state, not a million ``RequestRecord`` objects.
    """
    import os
    import subprocess

    import numpy as np

    from repro.serving import ServingConfig, ServingEngine, make_trace

    crosscheck_n = 10_000 if quick else 100_000
    trace_n = 100_000 if quick else 1_000_000

    def build(scheduler: str, backend: str) -> ServingEngine:
        config = ServingConfig(
            model="gpt2", scheduler=scheduler, backend=backend, record_requests=512
        )
        return ServingEngine(config, cache=PLAN_CACHE)

    crosschecks = {}
    for scheduler in ("fifo", "dynamic", "continuous"):
        fast_engine = build(scheduler, "fast")
        rate = _OVERLOAD_FACTOR / fast_engine.base_latency_s()
        trace = make_trace(
            "poisson", rate, crosscheck_n, rng=np.random.default_rng(0),
            decode_steps=(1, 4),
        )
        fast_s, fast_result = timed(
            lambda: fast_engine.run(trace, offered_rate_rps=rate)
        )
        reference_s, reference_result = timed(
            lambda: build(scheduler, "reference").run(trace, offered_rate_rps=rate)
        )
        assert fast_result == reference_result, (
            f"fast backend diverged from reference ({scheduler})!"
        )
        crosschecks[scheduler] = {
            "num_requests": crosscheck_n,
            "reference_s": round(reference_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(reference_s / fast_s, 2),
            "byte_identical": True,
        }

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))

    def child_row(load_factor: float, regime: str) -> dict:
        child = subprocess.run(
            [sys.executable, "-c", _SERVING_1M_CHILD, str(trace_n), str(load_factor)],
            capture_output=True, text=True, env=env, check=True,
        )
        row = {"num_requests": trace_n, "regime": regime, **json.loads(child.stdout)}
        if regime == "overload":
            # 2x oversubscribed: every request queues behind the whole
            # backlog, so p99 tracks the queueing ramp (~minutes at 10^6
            # requests), not the service-time tail.  Label it so downstream
            # readers of BENCH_sweep.json never quote it as a latency.
            row["p99_note"] = (
                "overload regime: p99 is the queueing ramp of a 2x"
                " oversubscribed serial server, not a service tail"
            )
        return row

    return {
        "crosscheck": crosschecks["fifo"],
        "crosscheck_dynamic": crosschecks["dynamic"],
        "crosscheck_continuous": crosschecks["continuous"],
        "trace_1m": child_row(_OVERLOAD_FACTOR, "overload"),
        "trace_1m_served": child_row(_SERVED_FACTOR, "served"),
    }


#: child script for the fleet-scale tier: the columnar cluster fast path in
#: a fresh interpreter, so ``ru_maxrss`` measures the fleet run alone.
_CLUSTER_1M_CHILD = """\
import json, resource, sys, time
import numpy as np
from repro.serving import ClusterConfig, ClusterRouter, make_trace
from repro.sweep.cache import PLAN_CACHE

num_requests = int(sys.argv[1])
num_replicas = int(sys.argv[2])
config = ClusterConfig(
    model="gpt2", platforms=("A",) * num_replicas, scheduler="fifo",
    policy="round-robin", backend="fast", record_requests=512,
)
router = ClusterRouter(config, cache=PLAN_CACHE)
rate = 0.8 * router.fleet_capacity_rps()
trace = make_trace(
    "poisson", rate, num_requests, rng=np.random.default_rng(0),
    decode_steps=(1, 4),
)
start = time.perf_counter()
result = router.run(trace, offered_rate_rps=rate)
wall_s = time.perf_counter() - start
print(json.dumps({
    "wall_s": round(wall_s, 4),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    ),
    "num_completed": result.num_completed,
    "records_kept": len(result.records),
    "p99_ms": round(result.p99_s * 1e3, 4),
}))
"""


def bench_cluster_1m(quick: bool = False) -> dict:
    """The fleet-scale tier: the columnar cluster fast path at 10^5-10^6.

    * ``crosscheck`` — a 4-replica round-robin fifo fleet at 10^5 requests
      (10^4 under ``--quick``), fast vs reference router in-process, the
      full ``ClusterResult`` asserted equal under the same record cap.  The
      reference heap cannot reasonably run 10^6 fleet events, so the >= 5x
      speedup gate lives here.
    * ``crosscheck_faulted`` — the same fleet under the dynamic scheduler
      at the served rate, with a crash window and ~13k timeout-driven
      retries, which rides the event-replaying faulted rail
      (``run_fast_faulted``) instead of the closed forms.  Asserted
      bit-identical to the reference and that the faulted rail was actually
      taken (``backend_used == "columnar-faulted"``); gated at >= 5x.
    * ``fleet_1m`` — 10^6 requests (10^5 under ``--quick``) across the same
      fleet on the fast path in a subprocess, reporting wall time and peak
      RSS; with the record cap the memory high-water mark tracks the trace
      columns, not per-request router state.
    """
    import os
    import subprocess

    import numpy as np

    from repro.serving import ClusterConfig, ClusterRouter, make_trace

    crosscheck_n = 10_000 if quick else 100_000
    fleet_n = 100_000 if quick else 1_000_000
    replicas = 4

    def build(backend: str, faulted: bool = False) -> ClusterRouter:
        knobs = (
            # the faulted tier runs the dynamic scheduler at the served rate
            # with tight timeouts: the crash window plus ~13k timeout-driven
            # retries all replay on the event-replaying faulted rail.
            dict(
                scheduler="dynamic",
                fault_profile="crash",
                timeout_s=0.02,
                timeout_cap_s=0.16,
                max_retries=3,
            )
            if faulted
            else dict(scheduler="fifo")
        )
        config = ClusterConfig(
            model="gpt2", platforms=("A",) * replicas,
            policy="round-robin", backend=backend, record_requests=512,
            **knobs,
        )
        return ClusterRouter(config, cache=PLAN_CACHE)

    fast_router = build("fast")
    rate = _OVERLOAD_FACTOR * fast_router.fleet_capacity_rps()
    trace = make_trace(
        "poisson", rate, crosscheck_n, rng=np.random.default_rng(0),
        decode_steps=(1, 4),
    )
    fast_s, fast_result = timed(lambda: fast_router.run(trace, offered_rate_rps=rate))
    reference_s, reference_result = timed(
        lambda: build("reference").run(trace, offered_rate_rps=rate)
    )
    assert fast_result == reference_result, "fast cluster diverged from reference!"

    faulted_rate = _SERVED_FACTOR * fast_router.fleet_capacity_rps()
    faulted_trace = make_trace(
        "poisson", faulted_rate, crosscheck_n, rng=np.random.default_rng(0),
        decode_steps=(1, 4),
    )
    faulted_fast_s, faulted_fast = timed(
        lambda: build("fast", faulted=True).run(
            faulted_trace, offered_rate_rps=faulted_rate
        )
    )
    faulted_reference_s, faulted_reference = timed(
        lambda: build("reference", faulted=True).run(
            faulted_trace, offered_rate_rps=faulted_rate
        )
    )
    assert faulted_fast == faulted_reference, (
        "faulted fast cluster diverged from reference!"
    )
    assert faulted_fast.backend_used == "columnar-faulted", (
        f"faulted crosscheck rode {faulted_fast.backend_used!r},"
        " not the faulted rail"
    )
    assert faulted_fast.num_retries > 0, (
        "faulted crosscheck produced no retries — the crash window missed"
        " the trace, so nothing was exercised"
    )

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    child = subprocess.run(
        [sys.executable, "-c", _CLUSTER_1M_CHILD, str(fleet_n), str(replicas)],
        capture_output=True, text=True, env=env, check=True,
    )
    fleet_1m = json.loads(child.stdout)
    return {
        "crosscheck": {
            "num_requests": crosscheck_n,
            "num_replicas": replicas,
            "reference_s": round(reference_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(reference_s / fast_s, 2),
            "byte_identical": True,
        },
        "crosscheck_faulted": {
            "num_requests": crosscheck_n,
            "num_replicas": replicas,
            "scheduler": "dynamic",
            "load_factor": _SERVED_FACTOR,
            "fault_profile": "crash",
            "timeout_ms": 20.0,
            "num_retries": faulted_fast.num_retries,
            "num_failed": faulted_fast.num_failed,
            "reference_s": round(faulted_reference_s, 4),
            "fast_s": round(faulted_fast_s, 4),
            "speedup": round(faulted_reference_s / faulted_fast_s, 2),
            "byte_identical": True,
        },
        "fleet_1m": {"num_requests": fleet_n, "num_replicas": replicas, **fleet_1m},
    }


def bench_suite() -> dict:
    def runner():
        return {name: fn() for name, fn in SUITE.items()}

    def describe(results):
        return {name: result.rows for name, result in results.items()}

    _, payload = bench_tiers(runner, describe)
    payload["harnesses"] = len(SUITE)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="also bench the whole suite")
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: a four-model fig6 subset (for CI)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sweep.json"))
    args = parser.parse_args(argv)

    models = ("swin-t", "vit-b", "gpt2", "segformer") if args.quick else None
    payload: dict = {
        "benchmark": "sweep-engine",
        "mode": "quick" if args.quick else "standard",
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "fig6": bench_fig6(models),
        "platform_c": bench_platform_c(models),
        "serving": bench_serving(),
        "cluster": bench_cluster(),
        "autoscale": bench_autoscale(),
        "serving_1m": bench_serving_1m(quick=args.quick),
        "cluster_1m": bench_cluster_1m(quick=args.quick),
    }
    if args.full:
        payload["suite"] = bench_suite()

    out_path = Path(args.output)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    fig6 = payload["fig6"]
    print(
        f"fig6: reference {fig6['reference_s']}s -> engine cold {fig6['engine_cold_s']}s"
        f" ({fig6['speedup_cold']}x), disk-warm {fig6['engine_disk_warm_s']}s"
        f" ({fig6['speedup_disk_warm']}x vs cold), warm {fig6['engine_warm_s']}s"
        f" ({fig6['speedup_warm']}x); rows byte-identical"
    )
    plat_c = payload["platform_c"]
    print(
        f"platform C (N-device): reference {plat_c['reference_s']}s ->"
        f" cold {plat_c['engine_cold_s']}s ({plat_c['speedup_cold']}x),"
        f" disk-warm {plat_c['engine_disk_warm_s']}s, warm {plat_c['engine_warm_s']}s"
    )
    serving = payload["serving"]
    serving_warm_gain = round(serving["engine_cold_s"] / serving["engine_warm_s"], 2)
    print(
        f"serving (discrete-event): reference {serving['reference_s']}s ->"
        f" cold {serving['engine_cold_s']}s ({serving['speedup_cold']}x),"
        f" disk-warm {serving['engine_disk_warm_s']}s,"
        f" warm {serving['engine_warm_s']}s ({serving_warm_gain}x vs cold)"
    )
    cluster = payload["cluster"]
    cluster_warm_gain = round(cluster["engine_cold_s"] / cluster["engine_warm_s"], 2)
    print(
        f"cluster (fault-tolerant fleet): reference {cluster['reference_s']}s ->"
        f" cold {cluster['engine_cold_s']}s ({cluster['speedup_cold']}x),"
        f" disk-warm {cluster['engine_disk_warm_s']}s,"
        f" warm {cluster['engine_warm_s']}s ({cluster_warm_gain}x vs cold)"
    )
    autoscale = payload["autoscale"]
    autoscale_warm_gain = round(
        autoscale["engine_cold_s"] / autoscale["engine_warm_s"], 2
    )
    print(
        f"autoscale (elastic fleet): reference {autoscale['reference_s']}s ->"
        f" cold {autoscale['engine_cold_s']}s ({autoscale['speedup_cold']}x),"
        f" disk-warm {autoscale['engine_disk_warm_s']}s,"
        f" warm {autoscale['engine_warm_s']}s ({autoscale_warm_gain}x vs cold)"
    )
    serving_1m = payload["serving_1m"]
    crosscheck = serving_1m["crosscheck"]
    check_dynamic = serving_1m["crosscheck_dynamic"]
    check_continuous = serving_1m["crosscheck_continuous"]
    trace_1m = serving_1m["trace_1m"]
    trace_served = serving_1m["trace_1m_served"]
    print(
        f"serving_1m: crosscheck@{crosscheck['num_requests']} fifo"
        f" {crosscheck['speedup']}x, dynamic {check_dynamic['speedup']}x,"
        f" continuous {check_continuous['speedup']}x (all bit-identical);"
        f" {trace_1m['num_requests']}-request fast trace {trace_1m['wall_s']}s,"
        f" peak RSS {trace_1m['peak_rss_mb']} MB,"
        f" {trace_1m['records_kept']} records kept,"
        f" p99 {trace_1m['p99_ms']} ms (overload regime — queueing ramp,"
        f" not a service tail);"
        f" served-load p99 {trace_served['p99_ms']} ms"
    )
    cluster_1m = payload["cluster_1m"]
    fleet_check = cluster_1m["crosscheck"]
    faulted_check = cluster_1m["crosscheck_faulted"]
    fleet_1m = cluster_1m["fleet_1m"]
    print(
        f"cluster_1m: crosscheck@{fleet_check['num_requests']}"
        f"x{fleet_check['num_replicas']} reference {fleet_check['reference_s']}s ->"
        f" fast {fleet_check['fast_s']}s ({fleet_check['speedup']}x,"
        f" bit-identical); faulted crosscheck (crash +"
        f" {faulted_check['timeout_ms']}ms timeouts,"
        f" {faulted_check['num_retries']} retries)"
        f" {faulted_check['reference_s']}s -> {faulted_check['fast_s']}s"
        f" ({faulted_check['speedup']}x, bit-identical);"
        f" {fleet_1m['num_requests']}-request fleet"
        f" {fleet_1m['wall_s']}s, peak RSS {fleet_1m['peak_rss_mb']} MB,"
        f" {fleet_1m['records_kept']} records kept"
    )
    if args.full:
        suite = payload["suite"]
        print(
            f"suite: reference {suite['reference_s']}s -> cold {suite['engine_cold_s']}s"
            f" ({suite['speedup_cold']}x), disk-warm {suite['engine_disk_warm_s']}s"
            f" ({suite['speedup_disk_warm']}x vs cold), warm {suite['engine_warm_s']}s"
            f" ({suite['speedup_warm']}x)"
        )
    print(f"wrote {out_path}")
    # the speedup gates apply to the full grid; the --quick subset has
    # proportionally less cross-point reuse and only smoke-checks correctness.
    if not args.quick and fig6["speedup_cold"] < 5.0:
        print("WARNING: cold speedup below the 5x target", file=sys.stderr)
        return 1
    if not args.quick and fig6["speedup_disk_warm"] < 3.0:
        print("WARNING: disk-warm speedup below the 3x target", file=sys.stderr)
        return 1
    # the serving gate is cold-vs-warm: a warm run must skip all lowering
    # and simulation (batch costs served from the cache), so the event loop
    # itself is what remains.
    if not args.quick and serving_warm_gain < 2.0:
        print("WARNING: serving warm speedup below the 2x target", file=sys.stderr)
        return 1
    # same contract for the cluster: all replicas share one plan cache, so
    # a warm fleet run pays only for the router's event loop.
    if not args.quick and cluster_warm_gain < 2.0:
        print("WARNING: cluster warm speedup below the 2x target", file=sys.stderr)
        return 1
    # the elastic tier's controller evaluations and drain/provision events
    # live in the event loop; everything below it (lowering, batch costs)
    # must come out of the warm cache.
    if not args.quick and autoscale_warm_gain < 2.0:
        print("WARNING: autoscale warm speedup below the 2x target", file=sys.stderr)
        return 1
    # the columnar gate runs on the fifo cross-check (the highest
    # events-per-second scheduler, with no batching to amortize the scalar
    # loop's overhead) — the 10^6 run has no reference to compare against.
    if not args.quick and crosscheck["speedup"] < 5.0:
        print("WARNING: columnar speedup below the 5x target", file=sys.stderr)
        return 1
    # the batched kernels now resolve costs through dense cost-table lookups
    # instead of per-launch cost-model calls (~18x dynamic / ~9x continuous
    # measured) — gate at 6x to catch regressions back to scalar dispatch.
    if not args.quick and check_dynamic["speedup"] < 6.0:
        print("WARNING: columnar dynamic speedup below the 6x target", file=sys.stderr)
        return 1
    if not args.quick and check_continuous["speedup"] < 6.0:
        print("WARNING: columnar continuous speedup below the 6x target", file=sys.stderr)
        return 1
    # the fleet gate runs on the 4-replica cross-check: the fast path must
    # beat the reference heap by 5x while staying bit-identical.
    if not args.quick and fleet_check["speedup"] < 5.0:
        print("WARNING: columnar cluster speedup below the 5x target", file=sys.stderr)
        return 1
    # same bar for the faulted rail: replaying crash windows and timeout
    # retries through the lazy machines must still clear 5x.
    if not args.quick and faulted_check["speedup"] < 5.0:
        print("WARNING: columnar faulted-cluster speedup below the 5x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
