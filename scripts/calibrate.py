"""Calibration harness: per-model shares vs the paper's anchors.

Run:  python scripts/calibrate.py [--platform A|B] [--batch 1]

Prints, for every paper model: CPU-only and CPU+GPU non-GEMM shares, the
dominant non-GEMM group with its share, and the paper's Table IV target for
quick visual comparison.
"""

from __future__ import annotations

import argparse

from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import PAPER_MODELS, build_model
from repro.profiler import profile_graph

# Table IV anchors: model -> (group label, share of total latency)
PAPER_TABLE4 = {
    "vit-b": ("Normalization", 0.140),
    "vit-l": ("Normalization", 0.133),
    "vit-h": ("Normalization", 0.112),
    "swin-t": ("Memory", 0.318),
    "swin-s": ("Memory", 0.331),
    "swin-b": ("Memory", 0.328),
    "faster-rcnn": ("Element-wise Arithmetic", 0.344),
    "mask-rcnn": ("Element-wise Arithmetic", 0.336),
    "detr": ("Normalization", 0.348),
    "maskformer": ("Memory", 0.408),
    "segformer": ("Normalization", 0.174),
    "gpt2": ("Activation", 0.302),
    "gpt2-l": ("Activation", 0.299),
    "gpt2-xl": ("Activation", 0.281),
    "llama2-7b": ("Normalization", 0.149),
    "bert": ("Normalization", 0.131),
    "mixtral-8x7b": ("Memory", 0.431),
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--platform", default="A")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--models", nargs="*", default=None)
    args = parser.parse_args()

    platform = get_platform(args.platform)
    flow = get_flow("pytorch")
    names = args.models or PAPER_MODELS

    print(
        f"{'model':14s} {'cpu ms':>9s} {'cpuNG%':>7s} {'gpu ms':>9s} {'gpuNG%':>7s}"
        f"  {'dominant group':24s} {'share':>6s}  {'paper target':>28s}"
    )
    for name in names:
        graph = build_model(name, batch_size=args.batch)
        cpu = profile_graph(
            graph, flow, platform.cpu_only(), use_gpu=False, batch_size=args.batch, model_name=name
        )
        gpu = profile_graph(
            graph, flow, platform, use_gpu=True, batch_size=args.batch, model_name=name
        )
        dom, share = gpu.dominant_non_gemm_group()
        target_group, target_share = PAPER_TABLE4.get(name, ("?", 0.0))
        match = "OK " if dom.value == target_group else "!! "
        print(
            f"{name:14s} {cpu.total_latency_ms:9.2f} {cpu.non_gemm_share:7.1%}"
            f" {gpu.total_latency_ms:9.2f} {gpu.non_gemm_share:7.1%}"
            f"  {dom.value:24s} {share:6.1%}  {match}{target_group:>20s} {target_share:5.1%}"
        )


if __name__ == "__main__":
    main()
