"""Extension 2 bench: the serving horizon — non-GEMM cost under load.

The paper's per-inference measurements, replayed as a serving system: the
discrete-event engine sweeps offered load and batching discipline over
platforms A/B/C and asserts the qualitative serving truths — tails amplify
with load, no-batching saturates at single-stream capacity, continuous
batching dominates on tail latency, and the non-GEMM horizon persists at
every sustained batch size.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_ext2


def _row(rows, **filters):
    matched = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(matched) == 1, f"expected one row for {filters}, got {len(matched)}"
    return matched[0]


def test_ext2_serving_horizon(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_ext2(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    # 3 schedulers x 3 platforms x 2 models x 3 loads
    assert len(result.rows) == 3 * 3 * 2 * 3

    platforms = ("A", "B", "C")
    models = ("vit-b", "gpt2")
    for platform in platforms:
        for model in models:
            # tail latency amplifies with offered load under every discipline.
            for scheduler in ("fifo", "dynamic", "continuous"):
                low = _row(
                    result.rows,
                    platform=platform, model=model, scheduler=scheduler, load=0.25,
                )
                high = _row(
                    result.rows,
                    platform=platform, model=model, scheduler=scheduler, load=4.0,
                )
                assert high["p99_ms"] > low["p99_ms"]

            # no batching saturates at single-stream capacity: quadrupling
            # the offered load cannot raise served throughput materially.
            fifo_1 = _row(
                result.rows, platform=platform, model=model, scheduler="fifo", load=1.0
            )
            fifo_4 = _row(
                result.rows, platform=platform, model=model, scheduler="fifo", load=4.0
            )
            assert fifo_4["throughput_rps"] <= fifo_1["throughput_rps"] * 1.05
            assert fifo_4["target_util_pct"] > 99.0

            # continuous batching absorbs the overload no-batching cannot,
            # and cuts the tail while doing it (decode lengths vary, so
            # iteration-level scheduling removes head-of-line blocking).
            cont_4 = _row(
                result.rows,
                platform=platform, model=model, scheduler="continuous", load=4.0,
            )
            assert cont_4["throughput_rps"] > fifo_4["throughput_rps"]
            assert cont_4["p99_ms"] < fifo_4["p99_ms"]
            assert cont_4["mean_batch"] > 1.5

    # the horizon persists under load: even with batching amortizing
    # per-kernel dispatch, non-GEMM work stays a large share of busy time.
    assert all(r["non_gemm_busy_pct"] > 10.0 for r in result.rows)
    b_rows = [r for r in result.rows if r["platform"] == "B"]
    assert all(r["non_gemm_busy_pct"] > 40.0 for r in b_rows)
