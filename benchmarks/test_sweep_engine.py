"""Sweep engine bench: end-to-end speedup of the fig6 grid vs the seed path.

The reference leg disables memoization and routes the simulator through the
scalar per-kernel estimator — the seed implementation's algorithm — then the
engine regenerates the same grid cold (empty cache) and warm.  Output rows
must be byte-identical across all three; the measured speedups land in the
benchmark's extra_info (and ``scripts/bench_sweep.py`` writes them to
``BENCH_sweep.json``).  A second benchmark times the persistent-store tier:
a fresh in-memory cache backed by a warm artifact store, i.e. what every new
process pays.
"""

import time

from repro.analysis import run_fig6
from repro.runtime.simulator import use_reference_backend
from repro.sweep.cache import PLAN_CACHE
from repro.sweep.store import ArtifactStore


def test_sweep_engine_speedup(benchmark, results_dir):
    # detach the persistent store: this benchmark measures the *in-process*
    # tiers, and a warm disk store would silently turn the cold leg into a
    # disk-warm one (test_disk_warm_store_speedup covers that tier).
    original_store = PLAN_CACHE.store
    try:
        PLAN_CACHE.store = None
        PLAN_CACHE.clear()
        with PLAN_CACHE.disabled(), use_reference_backend():
            start = time.perf_counter()
            reference = run_fig6(iterations=2)
            reference_s = time.perf_counter() - start

        PLAN_CACHE.clear()
        result = benchmark.pedantic(
            lambda: run_fig6(iterations=2), rounds=1, iterations=1
        )
        cold_s = benchmark.stats.stats.mean

        start = time.perf_counter()
        warm = run_fig6(iterations=2)
        warm_s = time.perf_counter() - start
    finally:
        PLAN_CACHE.store = original_store
        PLAN_CACHE.clear()

    # the engine is an optimization, not a remodel: identical output rows
    assert result.rows == reference.rows
    assert warm.rows == reference.rows

    benchmark.extra_info["reference_s"] = round(reference_s, 4)
    benchmark.extra_info["engine_warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup_cold"] = round(reference_s / cold_s, 2)
    benchmark.extra_info["speedup_warm"] = round(reference_s / warm_s, 2)

    # loose floors so CI noise cannot flake the suite; nominal values are
    # ~5-6x cold and >50x warm (see BENCH_sweep.json)
    assert reference_s / cold_s > 2.0
    assert reference_s / warm_s > 10.0


def test_disk_warm_store_speedup(benchmark, tmp_path):
    """Warm-from-disk: a fresh process against a populated artifact store.

    The in-memory cache is cleared between legs, so the benchmarked leg pays
    exactly what a new pytest/CLI/CI process pays: store loads instead of
    graph construction and plan lowering.
    """
    original_store = PLAN_CACHE.store
    try:
        PLAN_CACHE.store = None
        PLAN_CACHE.clear()
        start = time.perf_counter()
        cold = run_fig6(iterations=2)
        cold_s = time.perf_counter() - start

        PLAN_CACHE.store = ArtifactStore(tmp_path / "store")
        PLAN_CACHE.clear()
        populated = run_fig6(iterations=2)

        PLAN_CACHE.clear()
        disk_warm = benchmark.pedantic(
            lambda: run_fig6(iterations=2), rounds=1, iterations=1
        )
        disk_warm_s = benchmark.stats.stats.mean
    finally:
        PLAN_CACHE.store = original_store
        PLAN_CACHE.clear()

    # the store is an accelerator, not a remodel: identical output rows
    assert populated.rows == cold.rows
    assert disk_warm.rows == cold.rows

    benchmark.extra_info["engine_cold_s"] = round(cold_s, 4)
    benchmark.extra_info["speedup_disk_warm"] = round(cold_s / disk_warm_s, 2)
    # loose floor (nominal ~9-10x, see BENCH_sweep.json); the acceptance
    # target for the persistent path is >= 3x vs today's cold suite
    assert cold_s / disk_warm_s > 2.0
