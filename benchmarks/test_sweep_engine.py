"""Sweep engine bench: end-to-end speedup of the fig6 grid vs the seed path.

The reference leg disables memoization and routes the simulator through the
scalar per-kernel estimator — the seed implementation's algorithm — then the
engine regenerates the same grid cold (empty cache) and warm.  Output rows
must be byte-identical across all three; the measured speedups land in the
benchmark's extra_info (and ``scripts/bench_sweep.py`` writes them to
``BENCH_sweep.json``).
"""

import time

from repro.analysis import run_fig6
from repro.runtime.simulator import use_reference_backend
from repro.sweep.cache import PLAN_CACHE


def test_sweep_engine_speedup(benchmark, results_dir):
    PLAN_CACHE.clear()
    with PLAN_CACHE.disabled(), use_reference_backend():
        start = time.perf_counter()
        reference = run_fig6(iterations=2)
        reference_s = time.perf_counter() - start

    PLAN_CACHE.clear()
    result = benchmark.pedantic(lambda: run_fig6(iterations=2), rounds=1, iterations=1)
    cold_s = benchmark.stats.stats.mean

    start = time.perf_counter()
    warm = run_fig6(iterations=2)
    warm_s = time.perf_counter() - start

    # the engine is an optimization, not a remodel: identical output rows
    assert result.rows == reference.rows
    assert warm.rows == reference.rows

    benchmark.extra_info["reference_s"] = round(reference_s, 4)
    benchmark.extra_info["engine_warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup_cold"] = round(reference_s / cold_s, 2)
    benchmark.extra_info["speedup_warm"] = round(reference_s / warm_s, 2)

    # loose floors so CI noise cannot flake the suite; nominal values are
    # ~5-6x cold and >50x warm (see BENCH_sweep.json)
    assert reference_s / cold_s > 2.0
    assert reference_s / warm_s > 10.0
