"""Extension 3 bench: the fault horizon — goodput and tails under failures.

Three-replica fleets serve the autoregressive LLM at fleet-capacity load
while a seeded injector crashes replicas and slows dispatches.  The bench
asserts the robustness truths: crashes inflate tails but retries keep the
fleet serving, shedding beats no-shedding on both goodput and
p99-of-admitted under a crash at load >= 1, and hedging rescues
straggler-stuck requests when the fleet has headroom.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_ext3
from repro.analysis.ext3_faults import (
    FAULT_POLICIES,
    FAULT_PROFILES,
    FAULT_SCHEDULERS,
)


def _row(rows, **filters):
    matched = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(matched) == 1, f"expected one row for {filters}, got {len(matched)}"
    return matched[0]


def test_ext3_fault_horizon(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_ext3(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    # 3 platforms x 2 schedulers x 3 policies x 3 faults, plus the two
    # two-variant focused studies (degradation, hedging).
    baseline = [r for r in result.rows if r["variant"] == "baseline"]
    assert len(baseline) == 3 * len(FAULT_SCHEDULERS) * len(FAULT_POLICIES) * len(
        FAULT_PROFILES
    )
    assert len(result.rows) == len(baseline) + 4

    # without a fault profile no fault-tied machinery fires: nothing is
    # shed or hedged and recovery is instant.  (Timeout *retries* can still
    # fire on a healthy fleet — fifo at fleet-capacity load queues past the
    # 20 ms timeout — so they are asserted per fault profile below, not here.)
    for row in baseline:
        if row["fault"] == "none":
            for counter in ("shed", "hedges", "hedge_wins", "recovery_ms"):
                assert row[counter] == 0, (counter, row)

    for platform in ("A", "B", "C"):
        for scheduler in FAULT_SCHEDULERS:
            healthy_p99, crashed_p99 = [], []
            for policy in FAULT_POLICIES:
                healthy = _row(
                    baseline,
                    platform=platform, scheduler=scheduler, policy=policy,
                    fault="none",
                )
                crashed = _row(
                    baseline,
                    platform=platform, scheduler=scheduler, policy=policy,
                    fault="crash",
                )
                healthy_p99.append(healthy["p99_ms"])
                crashed_p99.append(crashed["p99_ms"])
                # timeout retries re-route the work lost to the crash.
                assert crashed["retries"] > healthy["retries"]
                # continuous batching absorbs the outage completely; fifo at
                # fleet-capacity load already queues past the retry budget.
                if scheduler == "continuous":
                    assert crashed["failed"] == 0
                    # with capacity headroom the crash is visible in every
                    # policy's tail, not just on average.
                    assert crashed["p99_ms"] > healthy["p99_ms"]
                # the afflicted replica completes work after its window ends.
                assert crashed["recovery_ms"] > 0.0
            # a crash inflates the tail (mean over policies; a fifo fleet at
            # fleet-capacity load is queue-saturated either way, so its
            # per-policy tails can jitter while the mean still moves up).
            assert sum(crashed_p99) > sum(healthy_p99)

    # graceful degradation: under a crash at load >= 1, shedding the
    # requests that would queue behind the outage beats admitting everything
    # on BOTH goodput and p99-of-admitted (the ISSUE's acceptance row).
    shed = _row(result.rows, variant="shed")
    no_shed = _row(result.rows, variant="no-shed")
    assert shed["load"] >= 1.0
    assert shed["shed"] > 0
    assert shed["goodput_pct"] > no_shed["goodput_pct"]
    assert shed["p99_ms"] < no_shed["p99_ms"]

    # hedging: with capacity headroom, duplicate dispatches win often enough
    # to cut the straggler-inflated tail.
    hedge = _row(result.rows, variant="hedge")
    no_hedge = _row(result.rows, variant="no-hedge")
    assert hedge["hedges"] > 0
    assert hedge["hedge_wins"] > 0
    assert hedge["p99_ms"] < no_hedge["p99_ms"]
    assert hedge["goodput_pct"] >= no_hedge["goodput_pct"]

    # the notes narrate both studies for the committed artifact.
    notes = "\n".join(result.notes)
    assert "graceful degradation" in notes
    assert "hedging" in notes
