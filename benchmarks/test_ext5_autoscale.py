"""Extension 5 bench: autoscaling cost vs goodput on a bursty trace.

Static fleets of 1/2/4/8 replicas and the three feedback controllers serve
the identical bursty arrival trace (common random numbers across configs)
at each demand level.  The bench asserts the elastic-provisioning truths:
the SLO-feedback ``goodput`` controller matches the static-4 tail within
10% at >= 25% fewer replica-seconds (the ISSUE's acceptance headline, met
with ~2x margin), holds the one-replica floor when one replica suffices,
and the utilization-driven controllers hold the ceiling at the overload
point because busy fraction alone cannot see latency slack.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_ext5
from repro.analysis.ext5_autoscale import (
    AUTOSCALE_DEMANDS,
    CEILING,
    CONTROLLERS,
    HEADLINE_DEMAND,
    HEADLINE_STATIC,
    STATIC_FLEETS,
)


def _row(rows, **filters):
    matched = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(matched) == 1, f"expected one row for {filters}, got {len(matched)}"
    return matched[0]


def test_ext5_autoscale(benchmark, results_dir):
    result = benchmark.pedantic(lambda: run_ext5(), rounds=1, iterations=1)
    save_experiment(result, results_dir)

    # (4 static fleets + 3 controllers) x 3 demands, all on platform A.
    configs = [f"static-{n}" for n in STATIC_FLEETS] + list(CONTROLLERS)
    assert len(result.rows) == len(configs) * len(AUTOSCALE_DEMANDS)

    for demand in AUTOSCALE_DEMANDS:
        rows = [_row(result.rows, config=c, demand=demand) for c in configs]
        # common random numbers: every config sees the same absolute trace.
        assert len({r["offered_rps"] for r in rows}) == 1, (demand, rows)

    # static fleets never scale and pay size x makespan.
    for size in STATIC_FLEETS:
        for demand in AUTOSCALE_DEMANDS:
            row = _row(result.rows, config=f"static-{size}", demand=demand)
            assert row["scale_ups"] == 0 and row["scale_downs"] == 0
            assert row["mean_replicas"] == size

    static4 = _row(
        result.rows, config=f"static-{HEADLINE_STATIC}", demand=HEADLINE_DEMAND
    )
    goodput = _row(result.rows, config="goodput", demand=HEADLINE_DEMAND)

    # the acceptance headline: within 10% of the static-4 tail at >= 25%
    # fewer replica-seconds, discovered online from a one-replica start.
    assert goodput["p99_ms"] <= 1.10 * static4["p99_ms"], (goodput, static4)
    assert goodput["replica_seconds"] <= 0.75 * static4["replica_seconds"]
    assert goodput["goodput_pct"] >= 99.0
    assert goodput["scale_ups"] > 0 and goodput["scale_downs"] > 0

    # where one replica suffices, the goodput controller holds the floor.
    floor = _row(result.rows, config="goodput", demand=1.0)
    assert floor["mean_replicas"] == 1.0
    assert floor["scale_ups"] == 0

    # utilization controllers sit near the ceiling at the overload point:
    # busy fraction stays above their hold bands, so they buy the whole
    # fleet even though the SLO needed only a quarter of it.
    for controller in ("target-utilization", "step"):
        row = _row(result.rows, config=controller, demand=HEADLINE_DEMAND)
        assert row["mean_replicas"] > 0.9 * CEILING, row
        assert row["replica_seconds"] > 3.0 * goodput["replica_seconds"]

    # elastic replicas that did come online served hard while they lived.
    assert goodput["active_util_pct"] > 90.0

    # the chart and notes carry the headline comparison.
    assert "replica-seconds" in result.chart
    notes = "\n".join(result.notes)
    assert "fewer replica-seconds" in notes
    for controller in CONTROLLERS:
        assert controller in notes
