"""Figure 6 bench: the full breakdown grid (17 models x batches x devices x platforms)."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig6


def test_fig6_breakdown(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig6(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    # 17 models x 2 batches x 2 devices x 2 platforms
    assert len(result.rows) == 17 * 2 * 2 * 2

    cpu_rows = [r for r in result.rows if r["device"] == "cpu"]
    gpu_rows = [r for r in result.rows if r["device"] == "cpu+gpu"]
    cpu_avg = sum(r["non_gemm_pct"] for r in cpu_rows) / len(cpu_rows)
    gpu_avg = sum(r["non_gemm_pct"] for r in gpu_rows) / len(gpu_rows)

    # paper: average non-GEMM share rises from 17.2% to 42.3% with GPUs;
    # our simulated averages must show the same direction and ballpark.
    assert gpu_avg > cpu_avg + 5
    assert 25 <= gpu_avg <= 60
    assert cpu_avg <= 45

    # paper: non-GEMM spans a wide range across models with GPUs (11.3-73.6%)
    gpu_shares = [r["non_gemm_pct"] for r in gpu_rows]
    assert min(gpu_shares) < 30 and max(gpu_shares) > 55

    # the phenomenon holds on both platform classes
    for platform in ("A", "B"):
        plat_gpu = [r["non_gemm_pct"] for r in gpu_rows if r["platform"] == platform]
        plat_cpu = [r["non_gemm_pct"] for r in cpu_rows if r["platform"] == platform]
        assert sum(plat_gpu) / len(plat_gpu) > sum(plat_cpu) / len(plat_cpu)
