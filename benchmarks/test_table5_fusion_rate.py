"""Table V bench: TensorRT fusion rate and non-GEMM latency before/after."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_table5


def test_table5_fusion_rate(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table5(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {r["model"]: r for r in result.rows}
    assert set(rows) == {"swin-t", "swin-b", "detr", "segformer"}

    for row in result.rows:
        # fusion always reduces absolute non-GEMM latency
        assert row["non_gemm_after_ms"] < row["non_gemm_before_ms"]
        assert 0 < row["fusion_rate_pct"] < 100

    # Swin's window memory ops resist fusion: low fusion rate (paper: 7-9%)
    assert rows["swin-t"]["fusion_rate_pct"] < rows["detr"]["fusion_rate_pct"]

    # DETR and SegFormer fuse a similar *fraction* of non-GEMM ops, but
    # DETR's non-GEMM speedup is far larger because its norms fuse into the
    # GEMM kernels (paper: 13.5x vs 2.39x)
    assert rows["detr"]["non_gemm_speedup"] > 3 * rows["segformer"]["non_gemm_speedup"]
    assert rows["detr"]["non_gemm_speedup"] > 8

    # non-GEMM remains a significant share after fusion for Swin/SegFormer
    assert rows["swin-b"]["non_gemm_after_pct"] > 15
    assert rows["segformer"]["non_gemm_after_pct"] > 15
