"""Figure 5 bench: per-inference GPU energy across all models and batch sizes."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig5


def test_fig5_energy(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    energy = {(r["model"], r["batch"]): r["gpu_energy_j"] for r in result.rows}
    assert len(energy) == 17 * 2

    # larger batches always cost more energy per inference
    for model in {m for m, _ in energy}:
        assert energy[(model, 8)] > energy[(model, 1)]

    # paper orderings: NLP giants dominate; segformer is the lightest IS model
    assert energy[("llama2-7b", 1)] > energy[("gpt2", 1)]
    assert energy[("mixtral-8x7b", 1)] > energy[("llama2-7b", 1)]
    assert energy[("maskformer", 1)] > energy[("segformer", 1)]
    assert energy[("vit-h", 1)] > energy[("vit-b", 1)]
    assert energy[("swin-b", 1)] > energy[("swin-t", 1)]
