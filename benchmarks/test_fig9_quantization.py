"""Figure 9 bench: LLM.int8() Llama-3 8B across sequence lengths."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig9


def test_fig9_quantization(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig9(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {(r["seq_len"], r["precision"]): r for r in result.rows}
    seqs = (512, 1024, 2048, 4096, 8192)
    assert len(result.rows) == len(seqs) * 2

    for seq in seqs:
        fp16 = rows[(seq, "fp16")]
        int8 = rows[(seq, "int8")]
        # GEMM latency improves with int8 arithmetic (paper: -38.2% average)
        assert int8["gemm_ms"] < fp16["gemm_ms"]
        # non-GEMM dominates after quantization (paper: 29.3% -> 76.7%)
        assert int8["non_gemm_pct"] > fp16["non_gemm_pct"] + 10
        assert int8["non_gemm_pct"] > 55
        # the Q/DQ group exists only in the quantized graph
        assert int8["q/dq_pct"] > 0 and fp16["q/dq_pct"] == 0

    # thousands of operators are added by the pass (paper: 6510)
    assert rows[(512, "int8")]["ops_added"] > 1000

    # element-wise share grows from seq 512 to 8192 (paper: 31.8% -> 63.8%)
    assert (
        rows[(8192, "int8")]["element_wise_arithmetic_pct"]
        > rows[(512, "int8")]["element_wise_arithmetic_pct"]
    )
