"""Table I bench: the non-GEMM operator taxonomy with captured shapes."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_table1


def test_table1_taxonomy(benchmark, results_dir):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_experiment(result, results_dir)

    by_op = {}
    for row in result.rows:
        by_op.setdefault(row["operator"], []).append(row)

    # the operator families of the paper's Table I are all captured
    for op in ("relu", "gelu", "silu", "layer_norm", "batch_norm2d", "rms_norm",
               "frozen_batch_norm2d", "add", "mul", "neg", "div_scalar",
               "contiguous", "permute", "split", "view", "reshape", "expand",
               "squeeze", "softmax", "nms", "interpolate"):
        assert op in by_op, f"missing taxonomy row for {op}"

    # trait columns match the paper's characterization
    assert by_op["softmax"][0]["reduction"] and by_op["softmax"][0]["dynamicity"]
    assert by_op["nms"][0]["dynamicity"] and not by_op["nms"][0]["single_operation"]
    assert by_op["layer_norm"][0]["non_linearity"] and by_op["layer_norm"][0]["reduction"]
    assert by_op["view"][0]["single_operation"] and by_op["view"][0]["single_operand"]

    # captured example shapes come from real model graphs (Table I examples)
    gpt2_gelu = [r for r in by_op["gelu"] if r["model"] == "gpt2-xl"]
    assert gpt2_gelu and gpt2_gelu[0]["example_input_shape"] == [1, 8, 6400]
    llama_silu = [r for r in by_op["silu"] if r["model"] == "llama2-7b"]
    assert llama_silu and llama_silu[0]["example_input_shape"] == [1, 10, 11008]
