"""Extension 1 bench: the non-GEMM horizon across platform classes A/B/C.

The paper's thesis measured beyond its own Table III: the paper models on
the data-center, workstation, and edge-SoC platforms, plus the GEMM-only
``npu-offload`` flow on the edge NPU — the narrower the accelerated
fraction, the wider the non-GEMM share of end-to-end latency.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_ext1


def _avg(rows, **filters):
    rows = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    return sum(r["non_gemm_pct"] for r in rows) / len(rows)


def test_ext1_edge_horizon(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_ext1(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    # 17 models x 3 platforms x {cpu, gpu} + 17 models on the C NPU
    assert len(result.rows) == 17 * 3 * 2 + 17

    # the paper's direction holds on every platform class: accelerating the
    # GEMMs raises the non-GEMM share of what remains.
    for platform in ("A", "B", "C"):
        assert _avg(result.rows, platform=platform, device="gpu") > _avg(
            result.rows, platform=platform, device="cpu"
        )

    # the horizon widens as the accelerator narrows: the edge NPU offloads
    # *only* GEMM-family groups, so its non-GEMM share exceeds both the same
    # platform's general-purpose iGPU and the data-center platform.
    npu_avg = _avg(result.rows, platform="C", device="npu")
    assert npu_avg > _avg(result.rows, platform="C", device="gpu") + 10
    assert npu_avg > _avg(result.rows, platform="A", device="gpu")
    assert 40 <= npu_avg <= 80

    # every NPU row actually offloaded: GEMM share is nonzero but the
    # offload tax keeps non-GEMM above the CPU-only baseline per model.
    npu_rows = [r for r in result.rows if r["device"] == "npu"]
    assert all(r["flow"] == "npu-offload" for r in npu_rows)
    assert all(r["gemm_pct"] > 0 for r in npu_rows)
