"""Micro-benchmarks of the library itself: graph build, lowering, simulation.

These measure the *framework's* throughput (not the simulated hardware), so
regressions in the IR or flows show up here.
"""

import pytest

from repro.flows import PyTorchEagerFlow, TensorRTFlow
from repro.hardware import PLATFORM_A
from repro.models import build_model
from repro.profiler import profile_graph
from repro.runtime import simulate


@pytest.fixture(scope="module")
def gpt2_graph():
    return build_model("gpt2", batch_size=1)


@pytest.fixture(scope="module")
def swin_graph():
    return build_model("swin-b", batch_size=1)


def test_build_gpt2_graph(benchmark):
    graph = benchmark(lambda: build_model("gpt2", batch_size=1))
    assert len(graph.compute_nodes()) > 300


def test_build_mask_rcnn_graph(benchmark):
    graph = benchmark(lambda: build_model("mask-rcnn", batch_size=1))
    assert len(graph.compute_nodes()) > 300


def test_lower_eager(benchmark, gpt2_graph):
    flow = PyTorchEagerFlow()
    plan = benchmark(lambda: flow.lower(gpt2_graph, use_gpu=True))
    assert plan.num_kernels == len(gpt2_graph.compute_nodes())


def test_lower_tensorrt_with_fusion(benchmark, swin_graph):
    flow = TensorRTFlow()
    plan = benchmark(lambda: flow.lower(swin_graph, use_gpu=True))
    assert plan.num_fused_kernels > 0


def test_simulate_plan(benchmark, gpt2_graph):
    plan = PyTorchEagerFlow().lower(gpt2_graph, use_gpu=True)
    result = benchmark(lambda: simulate(plan, PLATFORM_A))
    assert result.total_latency_s > 0


def test_full_profile_pipeline(benchmark, gpt2_graph):
    result = benchmark.pedantic(
        lambda: profile_graph(
            gpt2_graph, PyTorchEagerFlow(), PLATFORM_A, use_gpu=True, iterations=5
        ),
        rounds=3,
        iterations=1,
    )
    assert result.num_kernels > 0
