"""Figure 1 bench: GEMM vs non-GEMM split on GPT2-XL and Swin-b, CPU vs GPU."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig1


def test_fig1_motivation(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig1(iterations=3), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {(r["model"], r["device"]): r for r in result.rows}
    # paper: CPU runs are GEMM-dominated ...
    assert rows[("gpt2-xl", "CPU")]["gemm_pct"] > 60
    assert rows[("swin-b", "CPU")]["gemm_pct"] > 50
    # ... and GPU acceleration makes non-GEMM roughly half the latency
    for model in ("gpt2-xl", "swin-b"):
        gained = (
            rows[(model, "CPU+GPU")]["non_gemm_pct"] - rows[(model, "CPU")]["non_gemm_pct"]
        )
        assert gained > 10, f"{model}: non-GEMM share should grow with GPU ({gained:+.1f}pp)"
        assert 30 <= rows[(model, "CPU+GPU")]["non_gemm_pct"] <= 75
    # GPU accelerates the end-to-end latency
    assert rows[("gpt2-xl", "CPU+GPU")]["latency_ms"] < rows[("gpt2-xl", "CPU")]["latency_ms"]
