"""Table IV bench: the dominant non-GEMM operator group per model.

The headline qualitative result of the paper's characterization: which
operator family a non-GEMM optimization should target, per model.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_table4

#: the paper's Table IV (Platform A, GPU, averaged over batch sizes)
PAPER_TABLE4 = {
    "vit-b": "Normalization",
    "vit-l": "Normalization",
    "vit-h": "Normalization",
    "swin-t": "Memory",
    "swin-s": "Memory",
    "swin-b": "Memory",
    "faster-rcnn": "Element-wise Arithmetic",
    "mask-rcnn": "Element-wise Arithmetic",
    "detr": "Normalization",
    "maskformer": "Memory",
    "segformer": "Normalization",
    "gpt2": "Activation",
    "gpt2-l": "Activation",
    "gpt2-xl": "Activation",
    "llama2-7b": "Normalization",
    "bert": "Normalization",
    "mixtral-8x7b": "Memory",
}

#: models whose top-two non-GEMM groups are within ~2pp of each other in our
#: simulation, so the batch-averaged winner can flip (see EXPERIMENTS.md).
#: Both R-CNNs match the paper at batch 1; at batch 8 FrozenBatchNorm's
#: memory traffic overtakes the launch-bound box-decode arithmetic.
TOLERATED_ALTERNATES = {
    "segformer": {"Normalization", "Memory"},
    "faster-rcnn": {"Element-wise Arithmetic", "Normalization"},
    "mask-rcnn": {"Element-wise Arithmetic", "Normalization", "ROI Selection"},
}


def test_table4_dominant_groups(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table4(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {r["model"]: r for r in result.rows}
    assert set(rows) == set(PAPER_TABLE4)

    mismatches = []
    for model, paper_group in PAPER_TABLE4.items():
        measured = rows[model]["operator_group"]
        allowed = TOLERATED_ALTERNATES.get(model, {paper_group})
        allowed = allowed | {paper_group}
        if measured not in allowed:
            mismatches.append(f"{model}: measured {measured}, paper {paper_group}")
    assert not mismatches, "; ".join(mismatches)

    # dominant-group shares are material (paper: 11.2% - 43.1%; our detection
    # models sit lower because their GEMM share is higher, see EXPERIMENTS.md)
    for row in result.rows:
        assert row["latency_pct"] > 3
