"""Ablation benches: which modelled mechanisms produce the paper's results?

DESIGN.md names four load-bearing mechanisms; each ablation removes one and
checks that the corresponding phenomenon weakens or disappears:

1. composite Python ops (multi-kernel GELU/RMSNorm) -> GPT-2's activation
   bottleneck;
2. eager dispatch overhead -> the launch-bound non-GEMM share on GPUs;
3. GEMM-epilogue fusion (vs pointwise-only) -> DETR's TensorRT win;
4. ORT's CPU fallback -> the memory-group blowup of Fig. 7.
"""

import dataclasses

from repro.flows import (
    FusionConfig,
    ONNXRuntimeFlow,
    PyTorchEagerFlow,
    TensorRTFlow,
)
from repro.hardware import PLATFORM_A
from repro.hardware.calibration import DISPATCH_PROFILES
from repro.models import build_model
from repro.ops.base import OpCategory
from repro.profiler import profile_graph


class _EagerCollapsedComposites(PyTorchEagerFlow):
    """Eager flow but every composite op launches a single kernel."""

    name = "pytorch-nocomposite"
    collapses_composites = True


class _TensorRTNoEpilogue(TensorRTFlow):
    """TensorRT with GEMM-epilogue fusion disabled (pointwise chains only)."""

    name = "tensorrt-noepilogue"
    fusion = FusionConfig(
        gemm_epilogue=False,
        pointwise_chains=True,
        chain_norms=True,
        max_chain=6,
    )


class _ORTNoFallback(ONNXRuntimeFlow):
    """ORT with a fully-capable CUDA provider (no CPU fallback)."""

    name = "onnxruntime-nofallback"
    gpu_unsupported_kinds = frozenset()


def test_ablation_composite_kernels(benchmark):
    """Collapsing HF's composite GELU removes most of GPT-2's activation cost."""
    graph = build_model("gpt2-xl", batch_size=1)
    base = profile_graph(graph, PyTorchEagerFlow(), PLATFORM_A, use_gpu=True)
    ablated = benchmark.pedantic(
        lambda: profile_graph(graph, _EagerCollapsedComposites(), PLATFORM_A, use_gpu=True),
        rounds=1,
        iterations=1,
    )
    act_base = base.share_by_group().get(OpCategory.ACTIVATION, 0.0)
    act_ablated = ablated.share_by_group().get(OpCategory.ACTIVATION, 0.0)
    assert act_ablated < act_base / 2
    assert ablated.total_latency_s < base.total_latency_s


def test_ablation_dispatch_overhead(benchmark):
    """With near-zero dispatch overhead, ViT's non-GEMM share collapses."""
    graph = build_model("vit-b", batch_size=1)
    base = profile_graph(graph, PyTorchEagerFlow(), PLATFORM_A, use_gpu=True)

    original = DISPATCH_PROFILES["eager"]
    DISPATCH_PROFILES["eager"] = dataclasses.replace(
        original, gpu_kernel=0.1e-6, gpu_metadata=0.05e-6
    )
    try:
        ablated = benchmark.pedantic(
            lambda: profile_graph(graph, PyTorchEagerFlow(), PLATFORM_A, use_gpu=True),
            rounds=1,
            iterations=1,
        )
    finally:
        DISPATCH_PROFILES["eager"] = original

    assert ablated.non_gemm_share < base.non_gemm_share - 0.10
    assert ablated.total_latency_s < base.total_latency_s


def test_ablation_gemm_epilogue_fusion(benchmark):
    """DETR's fusion win requires folding norms INTO GEMMs, not just chaining."""
    graph = build_model("detr", batch_size=1)
    full = profile_graph(graph, TensorRTFlow(), PLATFORM_A, use_gpu=True)
    no_epilogue = benchmark.pedantic(
        lambda: profile_graph(graph, _TensorRTNoEpilogue(), PLATFORM_A, use_gpu=True),
        rounds=1,
        iterations=1,
    )
    assert no_epilogue.non_gemm_latency_s > 2 * full.non_gemm_latency_s


def test_ablation_ort_fallback(benchmark):
    """Without CPU fallback, GPT2-XL's ORT memory blowup disappears."""
    graph = build_model("gpt2-xl", batch_size=1)
    with_fallback = profile_graph(graph, ONNXRuntimeFlow(), PLATFORM_A, use_gpu=True)
    without = benchmark.pedantic(
        lambda: profile_graph(graph, _ORTNoFallback(), PLATFORM_A, use_gpu=True),
        rounds=1,
        iterations=1,
    )
    mem_with = with_fallback.share_by_group().get(OpCategory.MEMORY, 0.0)
    mem_without = without.share_by_group().get(OpCategory.MEMORY, 0.0)
    assert mem_without < mem_with / 2
    assert without.total_latency_s < with_fallback.total_latency_s
