"""Extension 4 bench: the fleet knee — p99 vs fleet size at fixed demand.

Fleets of 1/2/4/8 replicas serve the same absolute arrival trace (demand is
a fraction of one replica's capacity, so load = demand / replicas) at 10⁵
requests per point through the columnar cluster fast path.  The bench
asserts the provisioning truths: growing the fleet never hurts the tail,
continuous batching reaches the flat part of the curve with far fewer
replicas than unbatched fifo, and the saturated points stay pinned at full
utilization while the over-provisioned ones idle.
"""

from benchmarks.conftest import save_experiment
from repro.analysis import run_ext4
from repro.analysis.ext4_fleet import (
    FLEET_DEMANDS,
    FLEET_SCHEDULERS,
    FLEET_SIZES,
)


def _row(rows, **filters):
    matched = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(matched) == 1, f"expected one row for {filters}, got {len(matched)}"
    return matched[0]


def test_ext4_fleet_knee(benchmark, results_dir):
    result = benchmark.pedantic(lambda: run_ext4(), rounds=1, iterations=1)
    save_experiment(result, results_dir)

    # 2 schedulers x 4 fleet sizes x 5 demands, all on platform A.
    assert len(result.rows) == len(FLEET_SCHEDULERS) * len(FLEET_SIZES) * len(
        FLEET_DEMANDS
    )

    for scheduler in FLEET_SCHEDULERS:
        for demand in FLEET_DEMANDS:
            curve = [
                _row(result.rows, scheduler=scheduler, demand=demand, replicas=size)
                for size in FLEET_SIZES
            ]
            # the same absolute trace is offered to every fleet size.
            offered = {row["offered_rps"] for row in curve}
            assert len(offered) == 1, (scheduler, demand, offered)
            # more replicas never hurt the tail (equal traces, pooled queues).
            p99s = [row["p99_ms"] for row in curve]
            assert all(a >= b for a, b in zip(p99s, p99s[1:])), (scheduler, demand, p99s)

    # unbatched fifo is still queue-bound at 4 replicas under demand 4 while
    # continuous batching has already flattened at 2 — the headline knee gap.
    fifo4 = _row(result.rows, scheduler="fifo", demand=4.0, replicas=4)
    cont2 = _row(result.rows, scheduler="continuous", demand=4.0, replicas=2)
    cont8 = _row(result.rows, scheduler="continuous", demand=4.0, replicas=8)
    assert fifo4["p99_ms"] > 100 * cont2["p99_ms"]
    assert cont2["p99_ms"] < 1.5 * cont8["p99_ms"]

    # saturated fleets are pinned at full target utilization; doubling an
    # already-flat fleet halves it (same work, twice the machines).
    assert _row(result.rows, scheduler="fifo", demand=2.0, replicas=1)[
        "mean_target_util_pct"
    ] == 100.0
    low = _row(result.rows, scheduler="continuous", demand=0.25, replicas=8)
    assert low["mean_target_util_pct"] < 15.0

    # the notes narrate one knee per discipline and overload demand.
    notes = "\n".join(result.notes)
    assert "knee at" in notes
    for scheduler in FLEET_SCHEDULERS:
        assert scheduler in notes
