"""Shared plumbing for the benchmark harness.

Every ``test_figN_*``/``test_tableN_*`` benchmark regenerates one figure or
table of the paper: it runs the corresponding experiment harness under
pytest-benchmark, writes the rows to ``results/<name>.csv`` and the rendered
text to ``results/<name>.txt``, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_experiment(result, results_dir: Path):
    """Persist one ExperimentResult as CSV + rendered text."""
    csv_path = result.save(results_dir)
    text_path = results_dir / f"{result.name}.txt"
    text_path.write_text(result.render() + "\n")
    return csv_path
