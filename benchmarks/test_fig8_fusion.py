"""Figure 8 bench: PyTorch vs TorchInductor vs TensorRT across batch sizes."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig8


def test_fig8_fusion(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig8(iterations=2), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {(r["model"], r["flow"], r["batch"]): r for r in result.rows}
    models = ("swin-t", "swin-b", "detr", "segformer")
    batches = (1, 2, 4, 8)
    assert len(result.rows) == len(models) * 3 * len(batches)

    for model in models:
        for batch in batches:
            eager = rows[(model, "pytorch", batch)]
            inductor = rows[(model, "torchinductor", batch)]
            trt = rows[(model, "tensorrt", batch)]
            # fusion flows are faster than eager, TRT fastest (paper's columns)
            assert inductor["latency_ms"] < eager["latency_ms"]
            assert trt["latency_ms"] < inductor["latency_ms"]
            # latency grows (weakly) with batch within each flow
            if batch > 1:
                prev = rows[(model, "pytorch", batch // 2)]
                assert eager["latency_ms"] >= prev["latency_ms"] * 0.95

    # fusion mitigates but does not eliminate non-GEMM for Swin/SegFormer
    for model in ("swin-t", "swin-b", "segformer"):
        assert rows[(model, "tensorrt", 1)]["non_gemm_pct"] > 15

    # ... while DETR's CONV+BN+ReLU fusion is exceptionally effective (paper:
    # 18.5% residual non-GEMM vs 32-41% for the others)
    assert rows[("detr", "tensorrt", 1)]["non_gemm_pct"] < 25
    assert (
        rows[("detr", "tensorrt", 1)]["non_gemm_pct"]
        < rows[("swin-t", "tensorrt", 1)]["non_gemm_pct"] - 10
    )
    assert rows[("detr", "pytorch", 1)]["non_gemm_pct"] > 35
