"""Figure 7 bench: PyTorch vs ONNX Runtime on GPT2-XL and Llama-2."""

from benchmarks.conftest import save_experiment
from repro.analysis import run_fig7


def test_fig7_deployment(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig7(iterations=3), rounds=1, iterations=1
    )
    save_experiment(result, results_dir)

    rows = {(r["flow"], r["model"]): r for r in result.rows}

    # ORT reduces absolute latency for both models (paper Fig. 7 latencies)
    for model in ("gpt2-xl", "llama2-7b"):
        assert rows[("onnxruntime", model)]["latency_ms"] < rows[("pytorch", model)]["latency_ms"]

    # GPT2-XL: unsupported memory ops fall back to CPU and the Memory group
    # share explodes (paper: 3.2% -> 66.8% average across the two models)
    assert rows[("onnxruntime", "gpt2-xl")]["memory_pct"] > 3 * rows[("pytorch", "gpt2-xl")]["memory_pct"]

    # Llama-2's export is clean: it gets the speedup without the blowup
    assert rows[("onnxruntime", "llama2-7b")]["memory_pct"] < 15
    speedup = (
        rows[("pytorch", "llama2-7b")]["latency_ms"]
        / rows[("onnxruntime", "llama2-7b")]["latency_ms"]
    )
    assert speedup > 1.5
