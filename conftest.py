"""Root pytest plumbing: a hermetic persistent store for the whole suite.

The process-global ``PLAN_CACHE`` attaches a persistent
:class:`~repro.sweep.store.ArtifactStore` from ``REPRO_CACHE_DIR`` at import
time.  Under pytest, an explicitly-set ``REPRO_CACHE_DIR`` is respected (CI
uses this to share a store across runs); otherwise the store is redirected to
a per-session temporary directory, so the disk tier is still exercised
end-to-end but test runs neither depend on developer-machine cache state nor
leak synthetic test graphs into the real user cache.  The redirect goes
through the environment variable as well, so process-pool sweep workers
spawned by tests inherit the hermetic directory too.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_store(tmp_path_factory):
    # presence check, not truthiness: an empty value is the documented way
    # to *disable* the store, which must be respected too.
    if "REPRO_CACHE_DIR" in os.environ:
        yield
        return
    from repro.sweep.cache import PLAN_CACHE
    from repro.sweep.store import ArtifactStore

    store_dir = tmp_path_factory.mktemp("artifact-store")
    original_store = PLAN_CACHE.store
    PLAN_CACHE.store = ArtifactStore(store_dir)
    os.environ["REPRO_CACHE_DIR"] = str(store_dir)
    try:
        yield
    finally:
        PLAN_CACHE.store = original_store
        os.environ.pop("REPRO_CACHE_DIR", None)
