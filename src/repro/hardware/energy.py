"""Energy accounting for simulated inference (Fig. 5 of the paper).

The paper reports *GPU* energy for end-to-end inference on the data-center
platform.  We integrate a two-term power model over the simulated timeline:

    E = P_idle * T_wall  +  sum_k (P_peak - P_idle) * util_k * t_k

where the sum ranges over kernels executed *on that device*.  Utilization of
a kernel is the fraction of its busy time spent at peak rate (from the
roofline estimate), so launch-bound kernels draw little dynamic power while
saturated GEMMs draw close to peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import LatencyEstimate
from repro.hardware.device import DeviceSpec


@dataclass
class EnergyAccumulator:
    """Accumulates one device's energy over a simulated run."""

    device: DeviceSpec
    dynamic_j: float = 0.0
    busy_s: float = 0.0

    def add_kernel(self, estimate: LatencyEstimate) -> None:
        dynamic_power = (self.device.peak_power_w - self.device.idle_power_w)
        self.dynamic_j += dynamic_power * estimate.utilization * estimate.device_s
        self.busy_s += estimate.device_s

    def total_j(self, wall_s: float) -> float:
        """Total energy given the end-to-end wall time of the run."""
        return self.device.idle_power_w * wall_s + self.dynamic_j
