"""Roofline latency estimation for one kernel on one device.

Latency of a kernel is modelled as::

    host   = dispatch overhead of the deployment flow (per kernel)
    device = kernel launch + max(flops / achieved_compute,
                                 bytes / achieved_bandwidth)
    total  = max(host, device)   on GPUs (async dispatch overlaps)
             host + device_work  on CPUs (the host thread runs the kernel)

Metadata-only ops (tensor views) never launch a kernel: their entire cost is
the host dispatch time.  This single mechanism produces the paper's headline
result — after GEMM acceleration, many non-GEMM kernels are launch- or
dispatch-bound, so their *relative* share of latency grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.calibration import (
    CUSTOM_KERNEL_PENALTY,
    efficiency_for_kind,
    gemm_saturation,
)
from repro.hardware.device import DeviceSpec
from repro.ir.dtype import DType
from repro.ops.base import OpCategory, OpCost

#: bound labels in the order of the integer codes in :class:`BatchEstimates`.
BOUND_LABELS = ("dispatch", "launch", "compute", "memory")


@dataclass(frozen=True)
class LatencyEstimate:
    """Breakdown of one kernel's estimated wall-clock time."""

    total_s: float
    host_s: float
    device_s: float
    compute_s: float
    memory_s: float
    launch_s: float
    bound: str  # "dispatch" | "launch" | "compute" | "memory"

    @property
    def utilization(self) -> float:
        """Fraction of the device's busy time doing peak-rate work (for energy)."""
        if self.device_s <= 0.0:
            return 0.0
        return min(1.0, max(self.compute_s, self.memory_s) / self.device_s)


def estimate_kernel(
    device: DeviceSpec,
    category: OpCategory,
    cost: OpCost,
    dtype: DType,
    dispatch_s: float,
    is_custom: bool = False,
    metadata_only: bool = False,
    launch_count: int = 1,
    gemm_peak_scale_f32: float = 1.0,
    gemm_saturation_scale: float = 1.0,
) -> LatencyEstimate:
    """Estimate wall-clock latency of one kernel.

    ``dispatch_s`` is the deployment flow's host-side per-kernel overhead;
    ``is_custom`` applies the custom-kernel efficiency penalty (non vendor-
    library implementations, e.g. DETR's FrozenBatchNorm2d).
    ``launch_count > 1`` models composite Python ops that issue several
    device kernels per call (the cost's traffic must already include the
    repeated tensor passes — flows do this when lowering).
    """
    host_s = dispatch_s * launch_count
    if metadata_only:
        return LatencyEstimate(
            total_s=host_s,
            host_s=host_s,
            device_s=0.0,
            compute_s=0.0,
            memory_s=0.0,
            launch_s=0.0,
            bound="dispatch",
        )

    eff = efficiency_for_kind(category, device.kind)
    scale = CUSTOM_KERNEL_PENALTY if is_custom else 1.0
    if category is OpCategory.GEMM:
        saturation = gemm_saturation(
            cost.flops, device.gemm_saturation_flops * gemm_saturation_scale
        )
        peak = device.gemm_peak(dtype)
        # the f32 scale models TF32 tensor cores — GPU-only hardware
        if dtype == DType.F32 and device.is_gpu:
            peak *= gemm_peak_scale_f32
        peak_flops = peak * saturation
    else:
        peak_flops = device.vector_flops
    compute_s = cost.flops / (peak_flops * eff.compute * scale) if cost.flops else 0.0
    memory_s = (
        cost.total_bytes / (device.mem_bandwidth * eff.memory * scale)
        if cost.total_bytes
        else 0.0
    )
    work_s = max(compute_s, memory_s)
    launch_s = device.kernel_launch_s * launch_count
    device_s = launch_s + work_s

    # async accelerators (GPU/NPU command queues) overlap host dispatch with
    # device work; CPUs run the kernel inline on the dispatching thread.
    is_async = device.async_dispatch
    if is_async:
        total_s = max(host_s, device_s)
    else:
        total_s = host_s + work_s

    if work_s <= 0.0:
        bound = "launch" if is_async and launch_s >= host_s else "dispatch"
    elif is_async and host_s >= device_s:
        bound = "dispatch"
    elif is_async and launch_s >= work_s:
        bound = "launch"
    elif compute_s >= memory_s:
        bound = "compute"
    else:
        bound = "memory"

    return LatencyEstimate(
        total_s=total_s,
        host_s=host_s,
        device_s=device_s,
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=launch_s,
        bound=bound,
    )


@dataclass
class BatchEstimates:
    """Vectorized :class:`LatencyEstimate` for every kernel of a plan.

    Produced by :func:`estimate_kernels_batch`; each field is a float64 array
    with one entry per kernel, and every value is bit-identical to what the
    scalar :func:`estimate_kernel` reference computes for that kernel (the
    vectorized expressions preserve operation order and association).
    """

    total_s: np.ndarray
    host_s: np.ndarray
    device_s: np.ndarray
    compute_s: np.ndarray
    memory_s: np.ndarray
    launch_s: np.ndarray
    bound_code: np.ndarray  # int8 index into BOUND_LABELS

    def bound_labels(self) -> list[str]:
        return [BOUND_LABELS[c] for c in self.bound_code]

    @property
    def utilization(self) -> np.ndarray:
        """Per-kernel fraction of busy time at peak rate (see LatencyEstimate)."""
        work = np.maximum(self.compute_s, self.memory_s)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.minimum(1.0, work / self.device_s)
        return np.where(self.device_s > 0.0, util, 0.0)

    def estimate(self, i: int) -> LatencyEstimate:
        """Materialize the scalar estimate record for one kernel."""
        return LatencyEstimate(
            total_s=float(self.total_s[i]),
            host_s=float(self.host_s[i]),
            device_s=float(self.device_s[i]),
            compute_s=float(self.compute_s[i]),
            memory_s=float(self.memory_s[i]),
            launch_s=float(self.launch_s[i]),
            bound=BOUND_LABELS[self.bound_code[i]],
        )


def estimate_kernels_batch(
    *,
    is_async: np.ndarray,
    is_gemm: np.ndarray,
    flops: np.ndarray,
    total_bytes: np.ndarray,
    metadata_only: np.ndarray,
    is_custom: np.ndarray,
    launch_count: np.ndarray,
    dispatch_s: np.ndarray,
    eff_compute: np.ndarray,
    eff_memory: np.ndarray,
    gemm_peak: np.ndarray,
    gemm_saturation_flops: np.ndarray,
    vector_flops: np.ndarray,
    mem_bandwidth: np.ndarray,
    kernel_launch_s: np.ndarray,
) -> BatchEstimates:
    """Roofline-estimate an entire plan's kernels in one numpy pass.

    All inputs are per-kernel arrays with device- and flow-level parameters
    already resolved (``gemm_peak`` includes the TF32 f32 scale, and
    ``gemm_saturation_flops`` the flow's saturation scale; ``is_async`` is
    the per-kernel async-dispatch flag of the kernel's device — True for
    GPU/NPU command queues, False for inline CPU execution).  The arithmetic
    mirrors :func:`estimate_kernel` expression-for-expression so results are
    bit-identical; the scalar function remains the reference implementation
    that the equivalence tests check against.
    """
    host_s = dispatch_s * launch_count
    scale = np.where(is_custom, CUSTOM_KERNEL_PENALTY, 1.0)

    with np.errstate(divide="ignore", invalid="ignore"):
        saturation = np.where(
            gemm_saturation_flops > 0.0,
            flops / (flops + gemm_saturation_flops),
            1.0,
        )
        peak_flops = np.where(is_gemm, gemm_peak * saturation, vector_flops)
        compute_s = np.where(
            flops > 0.0, flops / (peak_flops * eff_compute * scale), 0.0
        )
        memory_s = np.where(
            total_bytes > 0.0,
            total_bytes / (mem_bandwidth * eff_memory * scale),
            0.0,
        )

    work_s = np.maximum(compute_s, memory_s)
    launch_s = kernel_launch_s * launch_count
    device_s = launch_s + work_s
    total_s = np.where(is_async, np.maximum(host_s, device_s), host_s + work_s)

    no_work = work_s <= 0.0
    bound_code = np.select(
        [
            metadata_only,
            no_work & is_async & (launch_s >= host_s),
            no_work,
            is_async & (host_s >= device_s),
            is_async & (launch_s >= work_s),
            compute_s >= memory_s,
        ],
        [0, 1, 0, 0, 1, 2],
        default=3,
    ).astype(np.int8)

    # metadata-only kernels pay only host dispatch and launch nothing.
    zero = np.zeros_like(host_s)
    total_s = np.where(metadata_only, host_s, total_s)
    device_s = np.where(metadata_only, zero, device_s)
    compute_s = np.where(metadata_only, zero, compute_s)
    memory_s = np.where(metadata_only, zero, memory_s)
    launch_s = np.where(metadata_only, zero, launch_s)

    return BatchEstimates(
        total_s=total_s,
        host_s=host_s,
        device_s=device_s,
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=launch_s,
        bound_code=bound_code,
    )
