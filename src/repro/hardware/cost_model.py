"""Roofline latency estimation for one kernel on one device.

Latency of a kernel is modelled as::

    host   = dispatch overhead of the deployment flow (per kernel)
    device = kernel launch + max(flops / achieved_compute,
                                 bytes / achieved_bandwidth)
    total  = max(host, device)   on GPUs (async dispatch overlaps)
             host + device_work  on CPUs (the host thread runs the kernel)

Metadata-only ops (tensor views) never launch a kernel: their entire cost is
the host dispatch time.  This single mechanism produces the paper's headline
result — after GEMM acceleration, many non-GEMM kernels are launch- or
dispatch-bound, so their *relative* share of latency grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.calibration import (
    CUSTOM_KERNEL_PENALTY,
    efficiency_for,
    gemm_saturation,
)
from repro.hardware.device import DeviceSpec
from repro.ir.dtype import DType
from repro.ops.base import OpCategory, OpCost


@dataclass(frozen=True)
class LatencyEstimate:
    """Breakdown of one kernel's estimated wall-clock time."""

    total_s: float
    host_s: float
    device_s: float
    compute_s: float
    memory_s: float
    launch_s: float
    bound: str  # "dispatch" | "launch" | "compute" | "memory"

    @property
    def utilization(self) -> float:
        """Fraction of the device's busy time doing peak-rate work (for energy)."""
        if self.device_s <= 0.0:
            return 0.0
        return min(1.0, max(self.compute_s, self.memory_s) / self.device_s)


def estimate_kernel(
    device: DeviceSpec,
    category: OpCategory,
    cost: OpCost,
    dtype: DType,
    dispatch_s: float,
    is_custom: bool = False,
    metadata_only: bool = False,
    launch_count: int = 1,
    gemm_peak_scale_f32: float = 1.0,
    gemm_saturation_scale: float = 1.0,
) -> LatencyEstimate:
    """Estimate wall-clock latency of one kernel.

    ``dispatch_s`` is the deployment flow's host-side per-kernel overhead;
    ``is_custom`` applies the custom-kernel efficiency penalty (non vendor-
    library implementations, e.g. DETR's FrozenBatchNorm2d).
    ``launch_count > 1`` models composite Python ops that issue several
    device kernels per call (the cost's traffic must already include the
    repeated tensor passes — flows do this when lowering).
    """
    host_s = dispatch_s * launch_count
    if metadata_only:
        return LatencyEstimate(
            total_s=host_s,
            host_s=host_s,
            device_s=0.0,
            compute_s=0.0,
            memory_s=0.0,
            launch_s=0.0,
            bound="dispatch",
        )

    eff = efficiency_for(category, device.is_gpu)
    scale = CUSTOM_KERNEL_PENALTY if is_custom else 1.0
    if category is OpCategory.GEMM:
        saturation = gemm_saturation(
            cost.flops, device.gemm_saturation_flops * gemm_saturation_scale
        )
        peak = device.gemm_peak(dtype)
        if dtype == DType.F32 and device.is_gpu:
            peak *= gemm_peak_scale_f32
        peak_flops = peak * saturation
    else:
        peak_flops = device.vector_flops
    compute_s = cost.flops / (peak_flops * eff.compute * scale) if cost.flops else 0.0
    memory_s = (
        cost.total_bytes / (device.mem_bandwidth * eff.memory * scale)
        if cost.total_bytes
        else 0.0
    )
    work_s = max(compute_s, memory_s)
    launch_s = device.kernel_launch_s * launch_count
    device_s = launch_s + work_s

    if device.is_gpu:
        total_s = max(host_s, device_s)
    else:
        total_s = host_s + work_s

    if work_s <= 0.0:
        bound = "launch" if device.is_gpu and launch_s >= host_s else "dispatch"
    elif device.is_gpu and host_s >= device_s:
        bound = "dispatch"
    elif device.is_gpu and launch_s >= work_s:
        bound = "launch"
    elif compute_s >= memory_s:
        bound = "compute"
    else:
        bound = "memory"

    return LatencyEstimate(
        total_s=total_s,
        host_s=host_s,
        device_s=device_s,
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=launch_s,
        bound=bound,
    )
