"""Device specifications for the analytic performance model.

Each :class:`DeviceSpec` captures the handful of published numbers the
roofline model needs: peak GEMM throughput per precision, vector (non-GEMM)
throughput, memory bandwidth, kernel-launch latency, and power envelope.
The four devices of the paper's Table III ship as presets, plus the three
devices of the edge SoC Platform C (big-core CPU + NPU + integrated GPU).

Devices are grouped into :class:`DeviceKind` classes — CPU, GPU, NPU — which
is what placement policies, the sweep ``device`` axis, and the simulator's
per-kind parameter tables speak.  :func:`register_device` adds presets to the
registry the same way :func:`repro.flows.register_flow` does for flows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RegistryError
from repro.ir.dtype import DType


class DeviceKind(enum.Enum):
    """Device classes the placement and simulation layers can target.

    The member order is load-bearing: it defines the row order of the
    simulator's per-kind parameter tables and the integer codes in the plan
    arrays, so new kinds must be appended, never inserted.
    """

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"


def as_device_kind(value: "bool | str | DeviceKind") -> DeviceKind:
    """Normalize a lowering/profiling target to a :class:`DeviceKind`.

    Accepts the historical ``use_gpu`` booleans (``True`` -> GPU, ``False``
    -> CPU), device-mode strings from the sweep axis (``"npu"``), and kinds
    themselves, so every API that grew out of the binary CPU/GPU model keeps
    its call sites working.
    """
    if isinstance(value, DeviceKind):
        return value
    if isinstance(value, bool):
        return DeviceKind.GPU if value else DeviceKind.CPU
    try:
        return DeviceKind(str(value).lower())
    except ValueError:
        known = ", ".join(kind.value for kind in DeviceKind)
        raise RegistryError(f"unknown device kind {value!r}; known: {known}") from None


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of one processor.

    ``gemm_flops_*`` are peak matrix-engine throughputs (tensor cores / FMA
    units running dense GEMM); ``vector_flops`` is the peak for elementwise
    and reduction kernels.  ``kernel_launch_s`` is the fixed device-side cost
    of starting one kernel (zero for CPUs, where the caller runs inline).
    """

    name: str
    kind: DeviceKind
    gemm_flops_f32: float
    gemm_flops_f16: float
    gemm_flops_i8: float
    vector_flops: float
    mem_bandwidth: float
    kernel_launch_s: float
    idle_power_w: float
    peak_power_w: float
    #: GEMM problem size (flops) at which matrix engines reach half of peak;
    #: models the poor occupancy of small batched GEMMs (see calibration).
    gemm_saturation_flops: float = 0.0

    def gemm_peak(self, dtype: DType) -> float:
        """Peak GEMM throughput for a given accumulation precision."""
        if dtype == DType.I8:
            return self.gemm_flops_i8
        if dtype in (DType.F16, DType.BF16):
            return self.gemm_flops_f16
        return self.gemm_flops_f32

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def async_dispatch(self) -> bool:
        """True when host dispatch overlaps device work (GPU/NPU command
        queues); CPUs run kernels inline on the dispatching thread."""
        return self.kind is not DeviceKind.CPU


# -- presets (Table III of the paper) ---------------------------------------

#: NVIDIA A100 80GB (PCIe).  The f32 entry is the non-tensor-core rate —
#: PyTorch has shipped with TF32 matmul *disabled* by default since 1.12, so
#: eager fp32 Linear/BMM run on the FP32 pipes.  624 TOPS int8 matches the
#: paper's Table III.
A100 = DeviceSpec(
    name="nvidia-a100-80gb",
    kind=DeviceKind.GPU,
    gemm_flops_f32=19.5e12,
    gemm_flops_f16=312e12,
    gemm_flops_i8=624e12,
    vector_flops=19.5e12,
    mem_bandwidth=2.0e12,
    kernel_launch_s=4.0e-6,
    idle_power_w=60.0,
    peak_power_w=300.0,
    gemm_saturation_flops=800e6,
)

#: NVIDIA RTX 4090 24GB: 660 TOPS int8 per the paper's table.
RTX4090 = DeviceSpec(
    name="nvidia-rtx-4090",
    kind=DeviceKind.GPU,
    gemm_flops_f32=82.6e12,
    gemm_flops_f16=330e12,
    gemm_flops_i8=660e12,
    vector_flops=41.3e12,
    mem_bandwidth=1.008e12,
    kernel_launch_s=3.5e-6,
    idle_power_w=30.0,
    peak_power_w=450.0,
    gemm_saturation_flops=600e6,
)

#: AMD EPYC 7763: 64 Zen3 cores, AVX2 FMA; 8-channel DDR4-3200.
EPYC_7763 = DeviceSpec(
    name="amd-epyc-7763",
    kind=DeviceKind.CPU,
    gemm_flops_f32=4.9e12,
    gemm_flops_f16=4.9e12,  # no fast fp16 path on Zen3; runs at f32 rate
    gemm_flops_i8=9.8e12,   # VNNI-less int8 via AVX2 packing
    vector_flops=1.2e12,
    mem_bandwidth=204.8e9,
    kernel_launch_s=0.0,
    idle_power_w=100.0,
    peak_power_w=280.0,
    # 64 cores need large GEMMs to amortise threading/synchronisation; small
    # attention-sized GEMMs run at a fraction of peak on many-core CPUs.
    gemm_saturation_flops=350e6,
)

#: Intel i9-13900K: 8P+16E cores; 2-channel DDR5-5600.
I9_13900K = DeviceSpec(
    name="intel-i9-13900k",
    kind=DeviceKind.CPU,
    gemm_flops_f32=1.8e12,
    gemm_flops_f16=1.8e12,
    gemm_flops_i8=3.6e12,
    vector_flops=0.6e12,
    mem_bandwidth=89.6e9,
    kernel_launch_s=0.0,
    idle_power_w=30.0,
    peak_power_w=253.0,
    gemm_saturation_flops=80e6,
)


# -- edge SoC presets (Platform C) ------------------------------------------

#: AMD Ryzen 9 7940HS (Phoenix): 8 Zen4 cores @ 4.0 GHz sustained, AVX-512
#: via double-pumped 256-bit datapaths (32 f32 flops/cycle/core ~= 1.0 Tflop/s
#: all-core) with AVX-512 VNNI for int8; 2-channel DDR5-5600 shared with the
#: iGPU and NPU.  35-54 W configurable TDP.
RYZEN_7940HS = DeviceSpec(
    name="amd-ryzen-9-7940hs",
    kind=DeviceKind.CPU,
    gemm_flops_f32=1.0e12,
    gemm_flops_f16=1.0e12,  # no fast fp16 FMA path; runs at f32 rate
    gemm_flops_i8=4.0e12,   # AVX-512 VNNI
    vector_flops=0.35e12,
    mem_bandwidth=89.6e9,
    kernel_launch_s=0.0,
    idle_power_w=8.0,
    peak_power_w=54.0,
    # 8 mobile cores saturate on much smaller GEMMs than a 64-core EPYC
    gemm_saturation_flops=40e6,
)

#: AMD XDNA NPU (Phoenix): 10 TOPS int8 published, bf16 at half rate.  There
#: is no fp32 datapath — NPU deployment toolchains cast fp32 GEMMs to bf16
#: (the standard Vitis-AI / ONNX-EP path), so the f32 entry is the bf16
#: rate.  A pure matrix engine otherwise: the AIE tiles' scalar/vector units
#: are tiny next to the systolic arrays, kernel dispatch goes through a
#: driver round trip, and operands stream over a fabric DMA — exactly the
#: profile that makes non-GEMM offload unprofitable.
XDNA_NPU = DeviceSpec(
    name="amd-xdna-npu",
    kind=DeviceKind.NPU,
    gemm_flops_f32=5.0e12,
    gemm_flops_f16=5.0e12,
    gemm_flops_i8=10.0e12,
    vector_flops=0.15e12,
    mem_bandwidth=35e9,
    kernel_launch_s=30e-6,
    idle_power_w=0.3,
    peak_power_w=10.0,
    gemm_saturation_flops=150e6,
)

#: AMD Radeon 780M (RDNA3 iGPU): 12 CUs / 768 shaders @ 2.7 GHz — ~4.1
#: Tflop/s f32 (8.3 with dual-issue, rarely achieved), double-rate fp16,
#: WMMA int8.  No dedicated VRAM: it shares the SoC's DDR5 bandwidth, which
#: is the edge squeeze next to an A100's 2 TB/s of HBM.
RADEON_780M = DeviceSpec(
    name="amd-radeon-780m",
    kind=DeviceKind.GPU,
    gemm_flops_f32=4.1e12,
    gemm_flops_f16=8.3e12,
    gemm_flops_i8=16.6e12,
    vector_flops=2.0e12,
    mem_bandwidth=89.6e9,
    kernel_launch_s=6.0e-6,
    idle_power_w=2.0,
    peak_power_w=45.0,
    gemm_saturation_flops=200e6,
)


_DEVICES: dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec, replace: bool = False) -> DeviceSpec:
    """Register a device preset for :func:`get_device` lookup.

    Mirrors :func:`repro.flows.register_flow`: returns the spec so it can be
    used as-is after registration.
    """
    if spec.name in _DEVICES and not replace:
        raise RegistryError(f"device {spec.name!r} already registered")
    _DEVICES[spec.name] = spec
    return spec


for _spec in (A100, RTX4090, EPYC_7763, I9_13900K, RYZEN_7940HS, XDNA_NPU, RADEON_780M):
    register_device(_spec)


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise RegistryError(f"unknown device {name!r}; known: {known}") from None


def list_devices() -> list[DeviceSpec]:
    """All registered device presets, sorted by name."""
    return [_DEVICES[name] for name in sorted(_DEVICES)]
