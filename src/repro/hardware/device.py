"""Device specifications for the analytic performance model.

Each :class:`DeviceSpec` captures the handful of published numbers the
roofline model needs: peak GEMM throughput per precision, vector (non-GEMM)
throughput, memory bandwidth, kernel-launch latency, and power envelope.
The four devices of the paper's Table III ship as presets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RegistryError
from repro.ir.dtype import DType


class DeviceKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of one processor.

    ``gemm_flops_*`` are peak matrix-engine throughputs (tensor cores / FMA
    units running dense GEMM); ``vector_flops`` is the peak for elementwise
    and reduction kernels.  ``kernel_launch_s`` is the fixed device-side cost
    of starting one kernel (zero for CPUs, where the caller runs inline).
    """

    name: str
    kind: DeviceKind
    gemm_flops_f32: float
    gemm_flops_f16: float
    gemm_flops_i8: float
    vector_flops: float
    mem_bandwidth: float
    kernel_launch_s: float
    idle_power_w: float
    peak_power_w: float
    #: GEMM problem size (flops) at which matrix engines reach half of peak;
    #: models the poor occupancy of small batched GEMMs (see calibration).
    gemm_saturation_flops: float = 0.0

    def gemm_peak(self, dtype: DType) -> float:
        """Peak GEMM throughput for a given accumulation precision."""
        if dtype == DType.I8:
            return self.gemm_flops_i8
        if dtype in (DType.F16, DType.BF16):
            return self.gemm_flops_f16
        return self.gemm_flops_f32

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU


# -- presets (Table III of the paper) ---------------------------------------

#: NVIDIA A100 80GB (PCIe).  The f32 entry is the non-tensor-core rate —
#: PyTorch has shipped with TF32 matmul *disabled* by default since 1.12, so
#: eager fp32 Linear/BMM run on the FP32 pipes.  624 TOPS int8 matches the
#: paper's Table III.
A100 = DeviceSpec(
    name="nvidia-a100-80gb",
    kind=DeviceKind.GPU,
    gemm_flops_f32=19.5e12,
    gemm_flops_f16=312e12,
    gemm_flops_i8=624e12,
    vector_flops=19.5e12,
    mem_bandwidth=2.0e12,
    kernel_launch_s=4.0e-6,
    idle_power_w=60.0,
    peak_power_w=300.0,
    gemm_saturation_flops=800e6,
)

#: NVIDIA RTX 4090 24GB: 660 TOPS int8 per the paper's table.
RTX4090 = DeviceSpec(
    name="nvidia-rtx-4090",
    kind=DeviceKind.GPU,
    gemm_flops_f32=82.6e12,
    gemm_flops_f16=330e12,
    gemm_flops_i8=660e12,
    vector_flops=41.3e12,
    mem_bandwidth=1.008e12,
    kernel_launch_s=3.5e-6,
    idle_power_w=30.0,
    peak_power_w=450.0,
    gemm_saturation_flops=600e6,
)

#: AMD EPYC 7763: 64 Zen3 cores, AVX2 FMA; 8-channel DDR4-3200.
EPYC_7763 = DeviceSpec(
    name="amd-epyc-7763",
    kind=DeviceKind.CPU,
    gemm_flops_f32=4.9e12,
    gemm_flops_f16=4.9e12,  # no fast fp16 path on Zen3; runs at f32 rate
    gemm_flops_i8=9.8e12,   # VNNI-less int8 via AVX2 packing
    vector_flops=1.2e12,
    mem_bandwidth=204.8e9,
    kernel_launch_s=0.0,
    idle_power_w=100.0,
    peak_power_w=280.0,
    # 64 cores need large GEMMs to amortise threading/synchronisation; small
    # attention-sized GEMMs run at a fraction of peak on many-core CPUs.
    gemm_saturation_flops=350e6,
)

#: Intel i9-13900K: 8P+16E cores; 2-channel DDR5-5600.
I9_13900K = DeviceSpec(
    name="intel-i9-13900k",
    kind=DeviceKind.CPU,
    gemm_flops_f32=1.8e12,
    gemm_flops_f16=1.8e12,
    gemm_flops_i8=3.6e12,
    vector_flops=0.6e12,
    mem_bandwidth=89.6e9,
    kernel_launch_s=0.0,
    idle_power_w=30.0,
    peak_power_w=253.0,
    gemm_saturation_flops=80e6,
)

_DEVICES = {spec.name: spec for spec in (A100, RTX4090, EPYC_7763, I9_13900K)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise RegistryError(f"unknown device {name!r}; known: {known}") from None
