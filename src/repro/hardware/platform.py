"""Hardware platforms: a host CPU plus an optional GPU over PCIe.

Mirrors the paper's Table III: Platform A is the data-center machine
(EPYC 7763 + A100) and Platform B the workstation (i9-13900K + RTX 4090).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import RegistryError
from repro.hardware.calibration import PCIE_BANDWIDTH, PCIE_LATENCY_S
from repro.hardware.device import A100, EPYC_7763, I9_13900K, RTX4090, DeviceKind, DeviceSpec


@dataclass(frozen=True)
class Platform:
    """One benchmarking machine: CPU, optional GPU, and the link between them."""

    platform_id: str
    description: str
    cpu: DeviceSpec
    gpu: DeviceSpec | None = None
    pcie_bandwidth: float = PCIE_BANDWIDTH
    pcie_latency_s: float = PCIE_LATENCY_S

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    @property
    def accelerator(self) -> DeviceSpec:
        """The device that runs placed-on-GPU kernels; CPU when no GPU present."""
        return self.gpu if self.gpu is not None else self.cpu

    def device(self, kind: DeviceKind) -> DeviceSpec:
        if kind is DeviceKind.GPU:
            if self.gpu is None:
                raise RegistryError(f"platform {self.platform_id} has no GPU")
            return self.gpu
        return self.cpu

    def cpu_only(self) -> "Platform":
        """The same machine with the GPU removed (the paper's CPU-only bars)."""
        return replace(
            self,
            platform_id=f"{self.platform_id}-cpu",
            description=f"{self.description} (CPU only)",
            gpu=None,
        )

    def transfer_time(self, nbytes: int) -> float:
        """Host<->device copy time over PCIe."""
        return PCIE_LATENCY_S + nbytes / self.pcie_bandwidth


#: Platform A — data center class (paper Table III row A).
PLATFORM_A = Platform(
    platform_id="A",
    description="Data Center: AMD EPYC 7763 + NVIDIA A100 80GB",
    cpu=EPYC_7763,
    gpu=A100,
)

#: Platform B — workstation class (paper Table III row B).
PLATFORM_B = Platform(
    platform_id="B",
    description="Workstation: Intel i9-13900K + NVIDIA RTX 4090",
    cpu=I9_13900K,
    gpu=RTX4090,
)

_PLATFORMS = {"A": PLATFORM_A, "B": PLATFORM_B}


def get_platform(platform_id: str) -> Platform:
    """Look up a platform preset ("A" or "B", case-insensitive)."""
    try:
        return _PLATFORMS[platform_id.upper()]
    except KeyError:
        raise RegistryError(
            f"unknown platform {platform_id!r}; known: {sorted(_PLATFORMS)}"
        ) from None
