"""Hardware platforms: an ordered set of devices plus an interconnect topology.

Mirrors the paper's Table III — Platform A is the data-center machine
(EPYC 7763 + A100) and Platform B the workstation (i9-13900K + RTX 4090) —
and extends it with Platform C, an edge SoC (Ryzen 9 7940HS big-core CPU +
XDNA NPU + Radeon 780M iGPU) built from published numbers.

A platform holds at most one device per :class:`~repro.hardware.device.DeviceKind`
and a directed link table; :meth:`Platform.transfer_time` replaces the old
single-PCIe assumption with a per-pair lookup (asymmetric links supported,
same-device transfers are free).  Platforms live in a registry mirroring
``register_flow()``: :func:`register_platform`, :func:`get_platform`,
:func:`list_platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping

from repro.errors import RegistryError
from repro.hardware.calibration import PCIE_BANDWIDTH, PCIE_LATENCY_S
from repro.hardware.device import (
    A100,
    EPYC_7763,
    I9_13900K,
    RADEON_780M,
    RTX4090,
    RYZEN_7940HS,
    XDNA_NPU,
    DeviceKind,
    DeviceSpec,
)

#: suffix reserved for :meth:`Platform.cpu_only` derived platform ids;
#: :func:`register_platform` rejects it so derived ids can never collide
#: with (or shadow) a registered platform.
CPU_ONLY_SUFFIX = "-cpu"


@dataclass(frozen=True)
class Link:
    """One directed interconnect between two devices of a platform."""

    bandwidth: float
    latency_s: float

    def time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link."""
        return self.latency_s + nbytes / self.bandwidth


class Platform:
    """One benchmarking machine: an ordered device set and its link table.

    ``devices`` holds at most one :class:`DeviceSpec` per kind (so a kind
    names a device unambiguously, the way placement targets do).  ``links``
    maps directed ``(src_kind, dst_kind)`` pairs to :class:`Link`\\ s; pairs
    without an entry fall back to the reverse direction, then to the host
    PCIe link (``pcie_bandwidth``/``pcie_latency_s``), preserving the
    historical CPU<->GPU behavior bit-for-bit.

    The legacy two-device constructor shape (``cpu=``, ``gpu=``) keeps
    working: it builds the equivalent ordered device set.
    """

    def __init__(
        self,
        platform_id: str,
        description: str,
        cpu: DeviceSpec | None = None,
        gpu: DeviceSpec | None = None,
        pcie_bandwidth: float = PCIE_BANDWIDTH,
        pcie_latency_s: float = PCIE_LATENCY_S,
        devices: Iterable[DeviceSpec] = (),
        links: Mapping[tuple[DeviceKind, DeviceKind], Link] | None = None,
    ):
        resolved = tuple(devices)
        if resolved and (cpu is not None or gpu is not None):
            raise RegistryError(
                f"platform {platform_id!r} mixes the legacy cpu=/gpu= arguments"
                " with an explicit devices= set; declare every device in one place"
            )
        if not resolved:
            resolved = tuple(d for d in (cpu, gpu) if d is not None)
        if not resolved:
            raise RegistryError(f"platform {platform_id!r} declares no devices")
        by_kind: dict[DeviceKind, DeviceSpec] = {}
        for spec in resolved:
            if spec.kind in by_kind:
                raise RegistryError(
                    f"platform {platform_id!r} declares two {spec.kind.value} devices"
                    f" ({by_kind[spec.kind].name}, {spec.name})"
                )
            by_kind[spec.kind] = spec
        if DeviceKind.CPU not in by_kind:
            raise RegistryError(f"platform {platform_id!r} has no host CPU")
        self.platform_id = platform_id
        self.description = description
        self.devices = resolved
        self.pcie_bandwidth = pcie_bandwidth
        self.pcie_latency_s = pcie_latency_s
        #: read-only: the simulator caches per-platform tables derived from
        #: the link topology, so platforms are immutable once constructed —
        #: build a new Platform (register with replace=True) for what-ifs.
        self.links: Mapping[tuple[DeviceKind, DeviceKind], Link] = MappingProxyType(
            dict(links or {})
        )
        self._by_kind = by_kind
        self._host_link = Link(bandwidth=pcie_bandwidth, latency_s=pcie_latency_s)

    # -- device lookup -------------------------------------------------------

    @property
    def cpu(self) -> DeviceSpec:
        return self._by_kind[DeviceKind.CPU]

    @property
    def gpu(self) -> DeviceSpec | None:
        return self._by_kind.get(DeviceKind.GPU)

    @property
    def npu(self) -> DeviceSpec | None:
        return self._by_kind.get(DeviceKind.NPU)

    @property
    def kinds(self) -> frozenset[DeviceKind]:
        return frozenset(self._by_kind)

    @property
    def has_gpu(self) -> bool:
        return DeviceKind.GPU in self._by_kind

    def has_device(self, kind: DeviceKind) -> bool:
        return kind in self._by_kind

    @property
    def accelerator(self) -> DeviceSpec:
        """The default accelerator: the GPU when present, else the first
        non-CPU device, else the CPU itself (CPU-only machines)."""
        gpu = self.gpu
        if gpu is not None:
            return gpu
        for spec in self.devices:
            if spec.kind is not DeviceKind.CPU:
                return spec
        return self.cpu

    def device(self, kind: DeviceKind) -> DeviceSpec:
        try:
            return self._by_kind[kind]
        except KeyError:
            raise RegistryError(
                f"platform {self.platform_id} has no {kind.value.upper()}"
            ) from None

    def cpu_only(self) -> "Platform":
        """The same machine with every accelerator removed (the paper's
        CPU-only bars).  The derived id carries the reserved ``-cpu`` suffix;
        :func:`get_platform` resolves such ids back through the registry."""
        derived = self.__dict__.get("_cpu_only")
        if derived is None:
            derived = Platform(
                platform_id=f"{self.platform_id}{CPU_ONLY_SUFFIX}",
                description=f"{self.description} (CPU only)",
                devices=(self.cpu,),
                pcie_bandwidth=self.pcie_bandwidth,
                pcie_latency_s=self.pcie_latency_s,
            )
            self.__dict__["_cpu_only"] = derived
        return derived

    def content_signature(self) -> str:
        """Content hash of the platform's device specs and link topology.

        Persistent serving-cost artifacts fold this into their store keys so
        an out-of-tree platform re-registered under the same id with
        different numbers can never be served another definition's entries
        (in-tree platforms are already covered by the source fingerprint,
        but the signature keeps the rule uniform).  Memoized under a
        ``_sim_``-prefixed slot so pickled platforms stay lean.
        """
        cached = self.__dict__.get("_sim_content_signature")
        if cached is None:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                f"{self.pcie_bandwidth!r}|{self.pcie_latency_s!r}".encode()
            )
            for spec in self.devices:
                digest.update(f"\x00{spec!r}".encode())
            for (src, dst), link in sorted(
                self.links.items(), key=lambda item: (item[0][0].value, item[0][1].value)
            ):
                digest.update(
                    f"\x01{src.value}>{dst.value}:{link.bandwidth!r},{link.latency_s!r}".encode()
                )
            cached = digest.hexdigest()
            self.__dict__["_sim_content_signature"] = cached
        return cached

    # -- interconnect --------------------------------------------------------

    def link(self, src: DeviceKind, dst: DeviceKind) -> Link | None:
        """The directed link between two device kinds; None when src is dst.

        Lookup order: the exact ``(src, dst)`` entry, the reverse entry
        (symmetric links need only one declaration), then the host PCIe
        default — the historical single-link assumption.
        """
        if src is dst:
            return None
        entry = self.links.get((src, dst))
        if entry is None:
            entry = self.links.get((dst, src))
        return entry if entry is not None else self._host_link

    def transfer_time(
        self,
        src: "DeviceKind | int",
        dst: DeviceKind | None = None,
        nbytes: int | None = None,
    ) -> float:
        """Copy time for ``nbytes`` over the ``src -> dst`` link.

        Same-device transfers are free.  The legacy one-argument form
        ``transfer_time(nbytes)`` remains supported and prices the host PCIe
        link, exactly as the old CPU-plus-GPU model did.
        """
        if dst is None and nbytes is None:
            return self._host_link.time(int(src))  # legacy: transfer_time(nbytes)
        assert isinstance(src, DeviceKind) and dst is not None and nbytes is not None
        link = self.link(src, dst)
        if link is None:
            return 0.0
        return link.time(nbytes)

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(spec.name for spec in self.devices)
        return f"<Platform {self.platform_id}: {names}>"

    def __getstate__(self) -> dict:
        # drop derived caches (simulator tables, cpu_only variant) so pickled
        # platforms — e.g. inside pool-shipped ProfileResults — stay lean,
        # and unwrap the links mapping proxy (proxies don't pickle).
        state = dict(self.__dict__)
        for key in tuple(state):
            if key.startswith("_sim_") or key == "_cpu_only":
                del state[key]
        state["links"] = dict(self.links)
        return state

    def __setstate__(self, state: dict) -> None:
        state["links"] = MappingProxyType(state["links"])
        self.__dict__.update(state)


#: Platform A — data center class (paper Table III row A).
PLATFORM_A = Platform(
    platform_id="A",
    description="Data Center: AMD EPYC 7763 + NVIDIA A100 80GB",
    cpu=EPYC_7763,
    gpu=A100,
)

#: Platform B — workstation class (paper Table III row B).
PLATFORM_B = Platform(
    platform_id="B",
    description="Workstation: Intel i9-13900K + NVIDIA RTX 4090",
    cpu=I9_13900K,
    gpu=RTX4090,
)

#: Platform C — edge SoC class (beyond the paper's table): one shared DDR5
#: pool behind a big-core CPU, an XDNA NPU, and an RDNA3 iGPU.  The link
#: table models the SoC fabric: CPU<->iGPU traffic is a same-die copy
#: through the shared memory controller; NPU traffic goes over a fabric DMA
#: whose read and write paths differ (reads from NPU-local tiles are
#: slightly faster than host-initiated writes into them, hence the
#: asymmetric pair); iGPU<->NPU traffic bounces through host memory.
PLATFORM_C = Platform(
    platform_id="C",
    description="Edge SoC: AMD Ryzen 9 7940HS + XDNA NPU + Radeon 780M iGPU",
    devices=(RYZEN_7940HS, XDNA_NPU, RADEON_780M),
    links={
        (DeviceKind.CPU, DeviceKind.GPU): Link(bandwidth=50e9, latency_s=3e-6),
        (DeviceKind.CPU, DeviceKind.NPU): Link(bandwidth=25e9, latency_s=25e-6),
        (DeviceKind.NPU, DeviceKind.CPU): Link(bandwidth=30e9, latency_s=20e-6),
        (DeviceKind.GPU, DeviceKind.NPU): Link(bandwidth=15e9, latency_s=30e-6),
    },
)


_PLATFORMS: dict[str, Platform] = {}


def register_platform(platform: Platform, replace: bool = False) -> Platform:
    """Register a platform for :func:`get_platform` lookup.

    Ids ending in the reserved ``-cpu`` suffix are rejected: those name
    :meth:`Platform.cpu_only` derivations, which the registry resolves from
    the base platform instead of storing.
    """
    pid = platform.platform_id
    if pid.lower().endswith(CPU_ONLY_SUFFIX):
        raise RegistryError(
            f"platform id {pid!r} uses the reserved {CPU_ONLY_SUFFIX!r} suffix"
            " (derived CPU-only variants); register the base platform instead"
        )
    existing = _lookup(pid)
    if existing is not None and not replace:
        raise RegistryError(f"platform {pid!r} already registered")
    if existing is not None and existing.platform_id != pid:
        del _PLATFORMS[existing.platform_id]  # replace the case-insensitive twin
    _PLATFORMS[pid] = platform
    return platform


def _lookup(platform_id: str) -> Platform | None:
    """Exact-id lookup first, then unique case-insensitive match."""
    found = _PLATFORMS.get(platform_id)
    if found is not None:
        return found
    folded = platform_id.lower()
    for pid, platform in _PLATFORMS.items():
        if pid.lower() == folded:
            return platform
    return None


for _platform in (PLATFORM_A, PLATFORM_B, PLATFORM_C):
    register_platform(_platform)


def get_platform(platform_id: str) -> Platform:
    """Look up a registered platform by id (case-insensitive).

    Ids with the reserved ``-cpu`` suffix resolve to the base platform's
    :meth:`Platform.cpu_only` derivation, so ``get_platform("A-cpu")`` works
    and a registered platform can never be shadowed by a derived id.
    """
    found = _lookup(platform_id)
    if found is not None:
        return found
    if platform_id.lower().endswith(CPU_ONLY_SUFFIX):
        base = _lookup(platform_id[: -len(CPU_ONLY_SUFFIX)])
        if base is not None:
            return base.cpu_only()
    raise RegistryError(
        f"unknown platform {platform_id!r}; known: {sorted(_PLATFORMS)}"
    )


def list_platforms() -> list[Platform]:
    """All registered platforms, sorted by id."""
    return [_PLATFORMS[pid] for pid in sorted(_PLATFORMS)]
