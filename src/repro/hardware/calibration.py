"""Efficiency and overhead calibration for the roofline model.

A roofline with published peaks alone overestimates real kernels.  Three
effects dominate the gap and are calibrated here:

1. **Per-category achieved efficiency** — GEMM libraries hit 60-80% of peak;
   two-pass normalizations and gather-heavy kernels far less.
2. **Host dispatch overhead per operator** — eager PyTorch pays Python
   module + dispatcher + launch setup per op (~20 us on GPU paths, measured
   values for HF-style model code); compiled flows (Inductor/TensorRT
   engines) cut this by an order of magnitude; metadata-only view ops pay a
   smaller Python-only cost.
3. **Small-GEMM saturation** — a GEMM reaches peak throughput only beyond a
   device-dependent problem size; tiny batched attention GEMMs run at a
   small fraction of peak (the reason Swin's GEMM time is ~5 ms, not 0.2 ms,
   on an A100).

These tables are the single tuning surface of the model; values were fitted
so that per-model GEMM/non-GEMM shares land in the paper's reported ranges
(see EXPERIMENTS.md) while staying physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PlanError
from repro.ops.base import OpCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.device import DeviceKind


@dataclass(frozen=True)
class Efficiency:
    """Achieved fraction of peak compute and peak bandwidth for one category."""

    compute: float
    memory: float


_GPU_EFFICIENCY: dict[OpCategory, Efficiency] = {
    OpCategory.GEMM: Efficiency(compute=0.62, memory=0.80),
    OpCategory.ACTIVATION: Efficiency(compute=0.50, memory=0.72),
    OpCategory.NORMALIZATION: Efficiency(compute=0.30, memory=0.40),
    OpCategory.MEMORY: Efficiency(compute=0.50, memory=0.55),
    OpCategory.ELEMENTWISE: Efficiency(compute=0.55, memory=0.75),
    OpCategory.LOGIT: Efficiency(compute=0.35, memory=0.50),
    OpCategory.ROI: Efficiency(compute=0.05, memory=0.35),
    OpCategory.INTERPOLATION: Efficiency(compute=0.40, memory=0.45),
    OpCategory.POOLING: Efficiency(compute=0.45, memory=0.60),
    OpCategory.REDUCTION: Efficiency(compute=0.40, memory=0.60),
    OpCategory.EMBEDDING: Efficiency(compute=0.50, memory=0.35),
    OpCategory.QDQ: Efficiency(compute=0.45, memory=0.60),
    OpCategory.MISC: Efficiency(compute=0.40, memory=0.55),
}

_CPU_EFFICIENCY: dict[OpCategory, Efficiency] = {
    OpCategory.GEMM: Efficiency(compute=0.72, memory=0.80),
    OpCategory.ACTIVATION: Efficiency(compute=0.60, memory=0.70),
    OpCategory.NORMALIZATION: Efficiency(compute=0.45, memory=0.55),
    OpCategory.MEMORY: Efficiency(compute=0.60, memory=0.60),
    OpCategory.ELEMENTWISE: Efficiency(compute=0.65, memory=0.75),
    OpCategory.LOGIT: Efficiency(compute=0.45, memory=0.55),
    OpCategory.ROI: Efficiency(compute=0.10, memory=0.30),
    OpCategory.INTERPOLATION: Efficiency(compute=0.50, memory=0.55),
    OpCategory.POOLING: Efficiency(compute=0.55, memory=0.65),
    OpCategory.REDUCTION: Efficiency(compute=0.55, memory=0.70),
    OpCategory.EMBEDDING: Efficiency(compute=0.60, memory=0.50),
    OpCategory.QDQ: Efficiency(compute=0.55, memory=0.65),
    OpCategory.MISC: Efficiency(compute=0.50, memory=0.60),
}

#: NPU efficiencies: systolic matrix engines run GEMMs close to peak, but
#: everything else limps — the AIE-style scalar/vector units are an
#: afterthought, gathers and data-dependent ops map terribly onto tiled
#: dataflow, and operands stream over a fabric DMA.  This is the calibrated
#: form of the observation in the Ryzen-AI NPU literature that non-GEMM
#: offload is rarely profitable.
_NPU_EFFICIENCY: dict[OpCategory, Efficiency] = {
    OpCategory.GEMM: Efficiency(compute=0.80, memory=0.70),
    OpCategory.ACTIVATION: Efficiency(compute=0.30, memory=0.45),
    OpCategory.NORMALIZATION: Efficiency(compute=0.15, memory=0.30),
    OpCategory.MEMORY: Efficiency(compute=0.30, memory=0.40),
    OpCategory.ELEMENTWISE: Efficiency(compute=0.35, memory=0.50),
    OpCategory.LOGIT: Efficiency(compute=0.15, memory=0.30),
    OpCategory.ROI: Efficiency(compute=0.02, memory=0.20),
    OpCategory.INTERPOLATION: Efficiency(compute=0.15, memory=0.30),
    OpCategory.POOLING: Efficiency(compute=0.30, memory=0.45),
    OpCategory.REDUCTION: Efficiency(compute=0.25, memory=0.40),
    OpCategory.EMBEDDING: Efficiency(compute=0.20, memory=0.25),
    OpCategory.QDQ: Efficiency(compute=0.50, memory=0.55),
    OpCategory.MISC: Efficiency(compute=0.20, memory=0.35),
}

#: Custom (non vendor-library) kernels achieve a fraction of the tabulated
#: efficiency — the DETR FrozenBatchNorm effect.
CUSTOM_KERNEL_PENALTY = 0.45


@dataclass(frozen=True)
class DispatchProfile:
    """Host-side per-operator overheads (seconds) of one deployment flow.

    ``npu_kernel``/``npu_metadata`` default to the GPU values: NPU runtimes
    dispatch through the same host-driver machinery as discrete accelerators,
    and profiles that never target an NPU need not declare them.
    """

    gpu_kernel: float
    gpu_metadata: float
    cpu_kernel: float
    cpu_metadata: float
    npu_kernel: float | None = None
    npu_metadata: float | None = None

    def dispatch_s(self, is_gpu: bool, metadata_only: bool) -> float:
        if is_gpu:
            return self.gpu_metadata if metadata_only else self.gpu_kernel
        return self.cpu_metadata if metadata_only else self.cpu_kernel

    def dispatch_for(self, kind: "DeviceKind", metadata_only: bool) -> float:
        """Per-kind dispatch overhead (the N-device form of ``dispatch_s``)."""
        from repro.hardware.device import DeviceKind

        if kind is DeviceKind.CPU:
            return self.cpu_metadata if metadata_only else self.cpu_kernel
        if kind is DeviceKind.NPU:
            kernel = self.npu_kernel if self.npu_kernel is not None else self.gpu_kernel
            metadata = (
                self.npu_metadata if self.npu_metadata is not None else self.gpu_metadata
            )
            return metadata if metadata_only else kernel
        return self.gpu_metadata if metadata_only else self.gpu_kernel


#: Per-flow dispatch overheads.  The eager GPU value reflects end-to-end
#: Python-module + dispatcher + launch-setup time per operator in real
#: HuggingFace-style model code; compiled flows execute pregenerated code.
DISPATCH_PROFILES: dict[str, DispatchProfile] = {
    "eager": DispatchProfile(
        gpu_kernel=21e-6, gpu_metadata=4.5e-6, cpu_kernel=6e-6, cpu_metadata=2.5e-6
    ),
    # torch.compile still pays Python glue at graph breaks and CUDA-graph-less
    # kernel launches, so its per-kernel floor sits well above TensorRT's.
    "compiled": DispatchProfile(
        gpu_kernel=7e-6, gpu_metadata=2e-6, cpu_kernel=2.5e-6, cpu_metadata=0.8e-6
    ),
    "engine": DispatchProfile(
        gpu_kernel=2.5e-6, gpu_metadata=0.5e-6, cpu_kernel=1.2e-6, cpu_metadata=0.4e-6
    ),
    "ort": DispatchProfile(
        gpu_kernel=5e-6, gpu_metadata=1.5e-6, cpu_kernel=2.5e-6, cpu_metadata=1e-6
    ),
}

#: PCIe gen4 x16 effective bandwidth and per-transfer latency, for the
#: ORT CPU-fallback study (Fig. 7) and data-dependent synchronizations.
PCIE_BANDWIDTH = 22e9
PCIE_LATENCY_S = 8e-6

#: Extra stall when an operator is forced off the accelerator mid-graph:
#: the device stream must drain before the download and refill after the
#: upload.  Applied once per transfer direction of a fallback kernel.
FALLBACK_SYNC_S = 45e-6


def efficiency_for(category: OpCategory, is_gpu: bool) -> Efficiency:
    table = _GPU_EFFICIENCY if is_gpu else _CPU_EFFICIENCY
    return table[category]


def efficiency_for_kind(category: OpCategory, kind: "DeviceKind") -> Efficiency:
    """Per-device-kind achieved efficiency (the N-device form of
    :func:`efficiency_for`; CPU and GPU read the exact same tables)."""
    from repro.hardware.device import DeviceKind

    if kind is DeviceKind.NPU:
        return _NPU_EFFICIENCY[category]
    return _GPU_EFFICIENCY[category] if kind is DeviceKind.GPU else _CPU_EFFICIENCY[category]


def dispatch_profile(name: str) -> DispatchProfile:
    try:
        return DISPATCH_PROFILES[name]
    except KeyError:
        raise PlanError(f"unknown dispatch profile {name!r}") from None


def gemm_saturation(flops: int, saturation_flops: float) -> float:
    """Fraction of peak GEMM throughput achieved at a given problem size.

    Models launch/occupancy limits of small GEMMs: half efficiency at
    ``saturation_flops``, approaching 1 for large problems.
    """
    if saturation_flops <= 0:
        return 1.0
    return flops / (flops + saturation_flops)
