"""Analytic hardware models: devices, platforms, roofline cost, energy."""

from repro.hardware.calibration import (
    CUSTOM_KERNEL_PENALTY,
    DISPATCH_PROFILES,
    DispatchProfile,
    Efficiency,
    dispatch_profile,
    efficiency_for,
    gemm_saturation,
)
from repro.hardware.cost_model import LatencyEstimate, estimate_kernel
from repro.hardware.device import (
    A100,
    EPYC_7763,
    I9_13900K,
    RTX4090,
    DeviceKind,
    DeviceSpec,
    get_device,
)
from repro.hardware.energy import EnergyAccumulator
from repro.hardware.platform import PLATFORM_A, PLATFORM_B, Platform, get_platform

__all__ = [
    "A100",
    "CUSTOM_KERNEL_PENALTY",
    "DISPATCH_PROFILES",
    "DeviceKind",
    "DeviceSpec",
    "DispatchProfile",
    "dispatch_profile",
    "gemm_saturation",
    "Efficiency",
    "EnergyAccumulator",
    "EPYC_7763",
    "I9_13900K",
    "LatencyEstimate",
    "PLATFORM_A",
    "PLATFORM_B",
    "Platform",
    "RTX4090",
    "efficiency_for",
    "estimate_kernel",
    "get_device",
    "get_platform",
]
