"""NonGEMM Bench (reproduction): operator-level GEMM/non-GEMM performance
characterization of modern ML inference.

Public API quick reference::

    from repro import BenchConfig, run_bench, build_model, profile_graph
    from repro.flows import get_flow
    from repro.hardware import PLATFORM_A, get_platform

    profile = profile_graph(build_model("gpt2"), get_flow("pytorch"), PLATFORM_A)
    print(profile.describe())

See DESIGN.md for the system inventory and the per-experiment index.
"""

from repro.core import BenchConfig, BenchResults, NonGEMMBench, run_bench
from repro.errors import (
    ConfigError,
    ExecutionError,
    GraphError,
    PlanError,
    RegistryError,
    ReproError,
    ShapeError,
)
from repro.ir import DType, Graph, TensorSpec
from repro.models import PAPER_MODELS, build_model, get_model, list_models, register_model
from repro.profiler import ProfileResult, profile_graph
from repro.quant import quantize_llm_int8

__version__ = "1.0.0"

__all__ = [
    "BenchConfig",
    "BenchResults",
    "ConfigError",
    "DType",
    "ExecutionError",
    "Graph",
    "GraphError",
    "NonGEMMBench",
    "PAPER_MODELS",
    "PlanError",
    "ProfileResult",
    "RegistryError",
    "ReproError",
    "ShapeError",
    "TensorSpec",
    "__version__",
    "build_model",
    "get_model",
    "list_models",
    "profile_graph",
    "quantize_llm_int8",
    "register_model",
    "run_bench",
]
