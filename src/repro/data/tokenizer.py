"""A small deterministic word-level tokenizer for the synthetic wikitext data.

The benchmark needs realistic token-id streams (shape and distribution),
not linguistic fidelity: ids follow a Zipf-like rank distribution the way
real subword corpora do, which keeps embedding-gather traffic realistic.
"""

from __future__ import annotations

import hashlib


class ToyTokenizer:
    """Hash-based word tokenizer with special tokens and fixed-size vocab."""

    PAD = 0
    BOS = 1
    EOS = 2
    UNK = 3
    SPECIAL_TOKENS = 4

    def __init__(self, vocab_size: int = 50257):
        if vocab_size <= self.SPECIAL_TOKENS:
            raise ValueError(f"vocab_size must exceed {self.SPECIAL_TOKENS}")
        self.vocab_size = vocab_size

    def token_id(self, word: str) -> int:
        """Deterministic id for a word in [SPECIAL_TOKENS, vocab)."""
        digest = hashlib.sha1(word.lower().encode()).digest()
        span = self.vocab_size - self.SPECIAL_TOKENS
        return self.SPECIAL_TOKENS + int.from_bytes(digest[:4], "big") % span

    def encode(self, text: str, max_length: int | None = None, add_special: bool = True) -> list[int]:
        ids = [self.token_id(w) for w in text.split() if w]
        if add_special:
            ids = [self.BOS] + ids + [self.EOS]
        if max_length is not None:
            ids = ids[:max_length]
            ids += [self.PAD] * (max_length - len(ids))
        return ids

    def encode_batch(self, texts: list[str], max_length: int) -> list[list[int]]:
        return [self.encode(t, max_length=max_length) for t in texts]
