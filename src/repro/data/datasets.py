"""Synthetic stand-ins for the paper's datasets (ImageNet, COCO, wikitext).

Only input *shapes*, value ranges, and data-dependent behaviours (e.g. how
many boxes survive NMS) influence an operator-level performance profile, so
each generator produces deterministic samples with those properties:
natural-image-statistics pixels, COCO-like box layouts, and Zipf-ish token
streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tokenizer import ToyTokenizer

_WORDS = (
    "the of and to in a is that for it as was with be by on not he his but at are this "
    "which her or had from she they you were all one we can there been who their when "
    "will more no if out so said what up its about into than them only some could time"
).split()


@dataclass
class SyntheticImageNet:
    """224-class-agnostic image batches with natural-image statistics."""

    image_size: int = 224
    seed: int = 0

    def batch(self, batch_size: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        # low-frequency structure + noise, normalized like torchvision inputs
        base = rng.normal(0.0, 1.0, size=(batch_size, 3, self.image_size // 8, self.image_size // 8))
        up = np.repeat(np.repeat(base, 8, axis=2), 8, axis=3)
        noise = rng.normal(0.0, 0.25, size=(batch_size, 3, self.image_size, self.image_size))
        return (up + noise).astype(np.float32)


@dataclass
class SyntheticCOCO:
    """Detection-style images plus ground-truth-like box sets."""

    image_size: int = 800
    max_boxes: int = 20
    seed: int = 0

    def batch(self, batch_size: int) -> np.ndarray:
        return SyntheticImageNet(self.image_size, self.seed).batch(batch_size)

    def boxes(self, count: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(boxes [N,4] xyxy, scores [N]) with realistic overlap structure."""
        rng = np.random.default_rng(self.seed + 1)
        n = count or self.max_boxes
        centers = rng.uniform(0.15, 0.85, size=(n, 2)) * self.image_size
        sizes = rng.uniform(0.05, 0.4, size=(n, 2)) * self.image_size
        boxes = np.stack(
            [
                centers[:, 0] - sizes[:, 0] / 2,
                centers[:, 1] - sizes[:, 1] / 2,
                centers[:, 0] + sizes[:, 0] / 2,
                centers[:, 1] + sizes[:, 1] / 2,
            ],
            axis=1,
        )
        scores = rng.beta(2.0, 3.0, size=n)
        return boxes.astype(np.float32), scores.astype(np.float32)


@dataclass
class SyntheticWikitext:
    """Token-id batches drawn from a Zipf-like vocabulary distribution."""

    vocab_size: int = 50257
    seed: int = 0

    def text(self, length_words: int = 64) -> str:
        rng = np.random.default_rng(self.seed)
        ranks = rng.zipf(1.3, size=length_words) % len(_WORDS)
        return " ".join(_WORDS[r] for r in ranks)

    def batch(self, batch_size: int, seq_len: int) -> np.ndarray:
        tokenizer = ToyTokenizer(self.vocab_size)
        texts = [self.text(seq_len * 2) for _ in range(batch_size)]
        ids = tokenizer.encode_batch(texts, max_length=seq_len)
        return np.asarray(ids, dtype=np.int64)

    def position_ids(self, batch_size: int, seq_len: int) -> np.ndarray:
        return np.tile(np.arange(seq_len, dtype=np.int64), (batch_size, 1))


def dataset_for(name: str, seed: int = 0):
    """Dataset factory keyed by the registry's dataset tag."""
    if name == "imagenet":
        return SyntheticImageNet(seed=seed)
    if name == "coco":
        return SyntheticCOCO(seed=seed)
    if name == "wikitext":
        return SyntheticWikitext(seed=seed)
    raise KeyError(f"unknown dataset {name!r}")
