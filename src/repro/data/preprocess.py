"""Model-specific preprocessing: graph inputs from raw synthetic data.

The paper's Data Preprocessing module (Fig. 4): fetch raw samples, clean,
and transform into the tensor dict a model graph expects.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import dataset_for
from repro.ir.graph import Graph
from repro.models.registry import ModelEntry, TaskDomain


def prepare_inputs(entry: ModelEntry, graph: Graph, batch_size: int, seed: int = 0) -> dict[str, np.ndarray]:
    """Build the named input dict for one registered model's graph."""
    inputs: dict[str, np.ndarray] = {}
    if entry.domain is TaskDomain.NLP:
        data = dataset_for("wikitext", seed=seed)
        for node in graph.input_nodes:
            _, seq = node.outputs[0].shape
            if node.name == "position_ids":
                inputs[node.name] = data.position_ids(batch_size, seq)
            elif node.name == "token_type_ids":
                inputs[node.name] = np.zeros((batch_size, seq), dtype=np.int64)
            else:
                inputs[node.name] = data.batch(batch_size, seq)
        return inputs

    data = dataset_for(entry.dataset, seed=seed)
    for node in graph.input_nodes:
        shape = node.outputs[0].shape
        image_size = shape[-1]
        batch = type(data)(image_size=image_size, seed=seed).batch(batch_size)  # type: ignore[call-arg]
        inputs[node.name] = batch
    return inputs
