"""Synthetic datasets and preprocessing."""

from repro.data.datasets import (
    SyntheticCOCO,
    SyntheticImageNet,
    SyntheticWikitext,
    dataset_for,
)
from repro.data.preprocess import prepare_inputs
from repro.data.tokenizer import ToyTokenizer

__all__ = [
    "SyntheticCOCO",
    "SyntheticImageNet",
    "SyntheticWikitext",
    "ToyTokenizer",
    "dataset_for",
    "prepare_inputs",
]
