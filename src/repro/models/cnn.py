"""Classic CNN classifiers: ResNet-50 and MobileNetV2.

Not part of the paper's 17-model registry — they demonstrate the benchmark's
extensibility (Section III-B: "users can plug their new models into the
NonGEMM Bench model registry") and provide pre-transformer baselines whose
non-GEMM profile is BatchNorm/ReLU-dominated rather than memory-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import image_input
from repro.models.resnet import batch_norm, build_resnet50_backbone


@dataclass(frozen=True)
class ResNetConfig:
    name: str = "resnet50"
    image_size: int = 224
    num_classes: int = 1000
    dtype: DType = DType.F32


RESNET50 = ResNetConfig()


def build_resnet50(config: ResNetConfig = RESNET50, batch_size: int = 1) -> Graph:
    """ResNet-50 ImageNet classifier (trainable BN, classification head)."""
    g = Graph(config.name)
    x = image_input(g, batch_size, config.image_size, config.dtype)
    features = build_resnet50_backbone(g, x, dtype=config.dtype, norm=batch_norm)
    with g.scope("head"):
        pooled = g.call(ops.AdaptiveAvgPool2d(1), features.c5, name="avgpool")
        flat = g.call(ops.Reshape((batch_size, 2048)), pooled, name="flatten")
        logits = g.call(
            ops.Linear(2048, config.num_classes, dtype=config.dtype), flat, name="fc"
        )
    g.set_outputs(logits)
    return g


@dataclass(frozen=True)
class MobileNetV2Config:
    name: str = "mobilenet-v2"
    image_size: int = 224
    width_mult: float = 1.0
    num_classes: int = 1000
    dtype: DType = DType.F32


MOBILENET_V2 = MobileNetV2Config()

#: (expansion t, output channels c, repeats n, stride s) per the paper's Table 2
_MBV2_BLOCKS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v2(config: MobileNetV2Config = MOBILENET_V2, batch_size: int = 1) -> Graph:
    """MobileNetV2: inverted residual bottlenecks with depthwise convolutions."""
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    def c(ch: int) -> int:
        return max(8, int(ch * config.width_mult))

    with g.scope("stem"):
        h = g.call(ops.Conv2d(3, c(32), 3, stride=2, padding=1, bias=False, dtype=dtype), x, name="conv")
        h = g.call(ops.BatchNorm2d(c(32), dtype=dtype), h, name="bn")
        h = g.call(ops.HardSwish(), h, name="act")  # relu6-family activation

    in_ch = c(32)
    for block_idx, (t, ch, n, s) in enumerate(_MBV2_BLOCKS):
        out_ch = c(ch)
        for i in range(n):
            stride = s if i == 0 else 1
            h = _inverted_residual(
                g, h, in_ch, out_ch, stride, t, dtype, f"block{block_idx}.{i}"
            )
            in_ch = out_ch

    with g.scope("head"):
        h = g.call(ops.Conv2d(in_ch, c(1280), 1, bias=False, dtype=dtype), h, name="conv")
        h = g.call(ops.BatchNorm2d(c(1280), dtype=dtype), h, name="bn")
        h = g.call(ops.HardSwish(), h, name="act")
        pooled = g.call(ops.AdaptiveAvgPool2d(1), h, name="avgpool")
        flat = g.call(ops.Reshape((batch_size, c(1280))), pooled, name="flatten")
        logits = g.call(ops.Linear(c(1280), config.num_classes, dtype=dtype), flat, name="classifier")
    g.set_outputs(logits)
    return g


def _inverted_residual(
    g: Graph,
    x: Value,
    in_ch: int,
    out_ch: int,
    stride: int,
    expansion: int,
    dtype: DType,
    name: str,
) -> Value:
    hidden = in_ch * expansion
    with g.scope(name):
        h = x
        if expansion != 1:
            h = g.call(ops.Conv2d(in_ch, hidden, 1, bias=False, dtype=dtype), h, name="expand_conv")
            h = g.call(ops.BatchNorm2d(hidden, dtype=dtype), h, name="expand_bn")
            h = g.call(ops.HardSwish(), h, name="expand_act")
        h = g.call(
            ops.Conv2d(hidden, hidden, 3, stride=stride, padding=1, groups=hidden, bias=False, dtype=dtype),
            h,
            name="dw_conv",
        )
        h = g.call(ops.BatchNorm2d(hidden, dtype=dtype), h, name="dw_bn")
        h = g.call(ops.HardSwish(), h, name="dw_act")
        h = g.call(ops.Conv2d(hidden, out_ch, 1, bias=False, dtype=dtype), h, name="project_conv")
        h = g.call(ops.BatchNorm2d(out_ch, dtype=dtype), h, name="project_bn")
        if stride == 1 and in_ch == out_ch:
            h = g.call(ops.Add(), x, h, name="residual")
    return h
