"""ResNet-50 backbone builder (classification trunk and detection backbone).

Detection models (Faster/Mask R-CNN, DETR) freeze batch-norm statistics, so
the backbone takes the normalization operator as a parameter:
``BatchNorm2d`` for the classification trunk, ``FrozenBatchNorm2d`` (a
custom multi-kernel op) for detection — the root cause of DETR's
normalization bottleneck in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value

#: bottleneck blocks per stage for ResNet-50.
RESNET50_LAYERS = (3, 4, 6, 3)
#: channel widths entering each stage.
STAGE_WIDTHS = (256, 512, 1024, 2048)

NormFactory = Callable[[int], ops.Operator]


@dataclass
class BackboneFeatures:
    """Multi-scale feature maps C2..C5 produced by the backbone."""

    c2: Value
    c3: Value
    c4: Value
    c5: Value

    def as_list(self) -> list[Value]:
        return [self.c2, self.c3, self.c4, self.c5]


def frozen_norm(channels: int) -> ops.Operator:
    """torchvision-style frozen BN (scale/bias folded at load time)."""
    return ops.FrozenBatchNorm2d(channels, precomputed=True)


def detr_frozen_norm(channels: int) -> ops.Operator:
    """HF DETR's custom frozen BN (recomputes scale/bias every forward)."""
    return ops.FrozenBatchNorm2d(channels, precomputed=False)


def batch_norm(channels: int) -> ops.Operator:
    return ops.BatchNorm2d(channels)


def build_resnet50_backbone(
    g: Graph,
    x: Value,
    dtype: DType = DType.F32,
    norm: NormFactory = frozen_norm,
) -> BackboneFeatures:
    """Emit ResNet-50 up to C5, returning all four stage outputs."""
    with g.scope("backbone.stem"):
        h = g.call(ops.Conv2d(3, 64, 7, stride=2, padding=3, bias=False, dtype=dtype), x, name="conv1")
        h = g.call(norm(64), h, name="bn1")
        h = g.call(ops.ReLU(), h, name="relu1")
        h = g.call(ops.MaxPool2d(3, stride=2, padding=1), h, name="maxpool")

    features: list[Value] = []
    in_channels = 64
    for stage, blocks in enumerate(RESNET50_LAYERS):
        width = STAGE_WIDTHS[stage]
        mid = width // 4
        stride = 1 if stage == 0 else 2
        for block in range(blocks):
            h = _bottleneck(
                g,
                h,
                in_channels=in_channels,
                mid_channels=mid,
                out_channels=width,
                stride=stride if block == 0 else 1,
                norm=norm,
                dtype=dtype,
                name=f"backbone.layer{stage + 1}.block{block}",
            )
            in_channels = width
        features.append(h)

    return BackboneFeatures(*features)


def _bottleneck(
    g: Graph,
    x: Value,
    in_channels: int,
    mid_channels: int,
    out_channels: int,
    stride: int,
    norm: NormFactory,
    dtype: DType,
    name: str,
) -> Value:
    """One ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with a residual connection."""
    with g.scope(name):
        h = g.call(ops.Conv2d(in_channels, mid_channels, 1, bias=False, dtype=dtype), x, name="conv1")
        h = g.call(norm(mid_channels), h, name="bn1")
        h = g.call(ops.ReLU(), h, name="relu1")
        h = g.call(
            ops.Conv2d(mid_channels, mid_channels, 3, stride=stride, padding=1, bias=False, dtype=dtype),
            h,
            name="conv2",
        )
        h = g.call(norm(mid_channels), h, name="bn2")
        h = g.call(ops.ReLU(), h, name="relu2")
        h = g.call(ops.Conv2d(mid_channels, out_channels, 1, bias=False, dtype=dtype), h, name="conv3")
        h = g.call(norm(out_channels), h, name="bn3")

        if in_channels != out_channels or stride != 1:
            shortcut = g.call(
                ops.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, dtype=dtype),
                x,
                name="downsample_conv",
            )
            shortcut = g.call(norm(out_channels), shortcut, name="downsample_bn")
        else:
            shortcut = x
        h = g.call(ops.Add(), h, shortcut, name="residual")
        h = g.call(ops.ReLU(), h, name="relu3")
    return h
