"""Mixtral 8x7B graph builder: Llama attention + sparse mixture-of-experts.

HuggingFace's MoE block routes every token through its top-2 of 8 expert
FFNs with a Python loop over experts: per expert it calls ``nonzero`` on the
routing mask (a device->host synchronization), gathers the assigned token
rows, runs the expert, and scatter-adds results back.  With short sequences
nearly every expert is hit in every layer, so the graph carries thousands of
small routing/memory operators — the reason Memory is Mixtral's dominant
non-GEMM group in the paper (Table IV, 43.1%).
"""

from __future__ import annotations

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import token_input
from repro.models.configs import LlamaConfig, MixtralConfig
from repro.models.llama import llama_attention


def build_mixtral(config: MixtralConfig, batch_size: int = 1, seq_len: int | None = None) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    seq = seq_len or config.seq_len
    ids = token_input(g, batch_size, seq)

    dim = config.dim
    with g.scope("embeddings"):
        h = g.call(ops.Embedding(config.vocab, dim, dtype=dtype), ids, name="embed_tokens")

    attn_config = LlamaConfig(
        name=config.name,
        layers=config.layers,
        dim=config.dim,
        heads=config.heads,
        kv_heads=config.kv_heads,
        ffn_dim=config.ffn_dim,
        vocab=config.vocab,
        seq_len=seq,
        dtype=dtype,
    )

    for i in range(config.layers):
        with g.scope(f"layers.{i}"):
            shortcut = h
            normed = g.call(ops.RMSNorm(dim, dtype=dtype), h, name="input_layernorm")
            attn = llama_attention(g, normed, attn_config, batch_size, seq, dtype)
            h = g.call(ops.Add(), shortcut, attn, name="residual1")

            shortcut = h
            normed = g.call(ops.RMSNorm(dim, dtype=dtype), h, name="post_attention_layernorm")
            moe = _moe_block(g, normed, config, batch_size, seq, dtype)
            h = g.call(ops.Add(), shortcut, moe, name="residual2")

    with g.scope("head"):
        h = g.call(ops.RMSNorm(dim, dtype=dtype), h, name="norm")
        logits = g.call(ops.Linear(dim, config.vocab, bias=False, dtype=dtype), h, name="lm_head")

    g.set_outputs(logits)
    return g


def _moe_block(
    g: Graph,
    x: Value,
    config: MixtralConfig,
    batch: int,
    seq: int,
    dtype: DType,
) -> Value:
    """Top-2 routing over 8 experts, HF-style expert loop.

    With batch*seq tokens and 2 experts per token, the number of *active*
    experts is min(experts, 2 * tokens); each active expert processes an
    average of tokens * 2 / active rows.  The graph statically unrolls the
    expert loop the way eager execution does.
    """
    dim = config.dim
    tokens = batch * seq
    active_experts = min(config.experts, config.experts_per_token * tokens)
    rows = max(1, (tokens * config.experts_per_token) // active_experts)

    with g.scope("moe"):
        flat = g.call(ops.Reshape((tokens, dim)), x, name="flatten_tokens")
        router_logits = g.call(
            ops.Linear(dim, config.experts, bias=False, dtype=dtype), flat, name="gate"
        )
        weights = g.call(ops.Softmax(-1), router_logits, name="routing_softmax")
        topk_w, topk_idx = g.call(ops.TopK(config.experts_per_token), weights, name="topk")
        norm_w = g.call(ops.Sum(-1, keepdim=True), topk_w, name="topk_sum")
        topk_w = g.call(ops.Div(), topk_w, norm_w, name="renormalize")

        expert_outputs: list[Value] = []
        for e in range(active_experts):
            with g.scope(f"expert{e}"):
                # routing bookkeeping: mask compare + nonzero sync + gathers
                mask = g.call(ops.Where(), _bool_mask(g, topk_idx, e), topk_w, topk_w, name="mask")
                hit = g.call(ops.Nonzero(max_outputs=rows), mask, name="token_lookup")
                hit_rows = g.call(ops.Slice(1, 0, 1), hit, name="row_index")
                hit_rows = g.call(ops.Squeeze(1), hit_rows)
                taken = g.call(ops.Gather(0), flat, hit_rows, name="gather_tokens")

                gate = g.call(
                    ops.Linear(dim, config.ffn_dim, bias=False, dtype=dtype), taken, name="w1"
                )
                gate = g.call(ops.SiLU(), gate, name="act")
                up = g.call(
                    ops.Linear(dim, config.ffn_dim, bias=False, dtype=dtype), taken, name="w3"
                )
                prod = g.call(ops.Mul(), gate, up, name="gate_mul")
                down = g.call(
                    ops.Linear(config.ffn_dim, dim, bias=False, dtype=dtype), prod, name="w2"
                )

                # scale by routing weight and scatter-add into the output
                w_rows = g.call(ops.Gather(0), topk_w, hit_rows, name="gather_weights")
                w_rows = g.call(ops.Slice(1, 0, 1), w_rows)
                scaled = g.call(ops.Mul(), down, w_rows, name="apply_weight")
                expert_outputs.append((hit_rows, scaled))

        acc = g.call(ops.Constant((tokens, dim), dtype, name="moe_zeros"), name="moe_zeros")
        for e, (rows_idx, scaled) in enumerate(expert_outputs):
            acc = g.call(ops.IndexAdd(0), acc, rows_idx, scaled, name=f"index_add{e}")
        return g.call(ops.Reshape((batch, seq, dim)), acc, name="unflatten")


def _bool_mask(g: Graph, topk_idx: Value, expert: int) -> Value:
    """Expert-hit mask; stands in for HF's ``expert_mask[e]`` one-hot select."""
    from repro.ir.dtype import DType as _DType

    mask = g.call(
        ops.Constant(topk_idx.spec.shape, _DType.BOOL, name=f"expert_mask_{expert}"),
        name=f"expert_mask_{expert}",
    )
    return mask
