"""BERT-base graph builder (HuggingFace-faithful encoder).

Post-LN encoder with separate Q/K/V projections, native (single-kernel)
GELU, and word/position/token-type embeddings followed by a LayerNorm.  With
25 LayerNorms and no composite activations, normalization is BERT's dominant
non-GEMM group in the paper (Table IV, 13.1%).
"""

from __future__ import annotations

from repro import ops
from repro.ir.graph import Graph
from repro.models.common import post_norm_encoder_layer, token_input
from repro.models.configs import BertConfig


def build_bert(config: BertConfig, batch_size: int = 1, seq_len: int | None = None) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    seq = seq_len or config.seq_len
    ids = token_input(g, batch_size, seq)
    type_ids = token_input(g, batch_size, seq, name="token_type_ids")
    pos_ids = token_input(g, batch_size, seq, name="position_ids")

    dim = config.dim
    with g.scope("embeddings"):
        words = g.call(ops.Embedding(config.vocab, dim, dtype=dtype), ids, name="word_embeddings")
        positions = g.call(
            ops.Embedding(config.max_positions, dim, dtype=dtype), pos_ids, name="position_embeddings"
        )
        types = g.call(
            ops.Embedding(config.type_vocab, dim, dtype=dtype), type_ids, name="token_type_embeddings"
        )
        h = g.call(ops.Add(), words, positions, name="add_pos")
        h = g.call(ops.Add(), h, types, name="add_type")
        h = g.call(ops.LayerNorm(dim, dtype=dtype), h, name="embeddings_ln")

    for i in range(config.layers):
        h = post_norm_encoder_layer(
            g, h, dim, config.heads, config.ffn_dim, dtype, f"encoder.layer{i}"
        )

    with g.scope("pooler"):
        cls = g.call(ops.Slice(1, 0, 1), h, name="take_cls")
        cls = g.call(ops.Squeeze(1), cls)
        pooled = g.call(ops.Linear(dim, dim, dtype=dtype), cls, name="dense")
        pooled = g.call(ops.Tanh(), pooled, name="activation")

    g.set_outputs(h, pooled)
    return g
