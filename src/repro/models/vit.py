"""Vision Transformer graph builder (ViT-B/16, ViT-L/16, ViT-H/14).

Reproduces the torchvision/HF ViT operator stream: conv patch embedding,
class-token concat, learned position embeddings, pre-LN encoder stack, and
a linear classification head.  Nearly all memory ops here are zero-copy
views, which is why ViT's dominant non-GEMM group is Normalization rather
than Memory (paper Table IV).
"""

from __future__ import annotations

from repro import ops
from repro.ir.graph import Graph
from repro.models.common import image_input, pre_norm_encoder_layer
from repro.models.configs import ViTConfig


def build_vit(config: ViTConfig, batch_size: int = 1) -> Graph:
    """Build a ViT classification graph at the given batch size."""
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    grid = config.image_size // config.patch_size
    seq = grid * grid + 1  # +1 class token
    dim = config.dim

    with g.scope("embed"):
        patches = g.call(
            ops.Conv2d(3, dim, config.patch_size, stride=config.patch_size, dtype=dtype),
            x,
            name="patch_conv",
        )
        patches = g.call(ops.Reshape((batch_size, dim, grid * grid)), patches)
        patches = g.call(ops.Permute((0, 2, 1)), patches)  # [B, N, D]
        cls = g.call(ops.Constant((1, 1, dim), dtype, name="cls_token"), name="cls_token")
        cls = g.call(ops.Expand((batch_size, 1, dim)), cls)
        tokens = g.call(ops.Concat(1), cls, patches, name="cat_cls")
        pos = g.call(ops.Constant((1, seq, dim), dtype, name="pos_embed"), name="pos_embed")
        tokens = g.call(ops.Add(), tokens, pos, name="add_pos")

    h = tokens
    for i in range(config.depth):
        h = pre_norm_encoder_layer(
            g, h, dim, config.heads, dim * config.mlp_ratio, dtype, f"encoder.layer{i}"
        )

    with g.scope("head"):
        h = g.call(ops.LayerNorm(dim, dtype=dtype), h, name="final_ln")
        cls_out = g.call(ops.Slice(1, 0, 1), h, name="take_cls")
        cls_out = g.call(ops.Squeeze(1), cls_out)
        logits = g.call(ops.Linear(dim, config.num_classes, dtype=dtype), cls_out, name="classifier")

    g.set_outputs(logits)
    return g
