"""SegFormer (MiT-B0) graph builder.

A hierarchical transformer for semantic segmentation: overlapping patch
embeddings, efficient attention with spatial-reduction (the captured softmax
shape [B, 1, 16384, 256] of Table I is exactly stage-1's 128x128 queries
against 8x-reduced keys), Mix-FFN with a depthwise conv, and an all-MLP
decode head with a BatchNorm2d — the op Table I lists for SegFormer.
"""

from __future__ import annotations

import math

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import image_input
from repro.models.configs import SegFormerConfig


def build_segformer(config: SegFormerConfig, batch_size: int = 1) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    features: list[tuple[Value, int, int]] = []  # (tokens, resolution, dim)
    h = x
    res = config.image_size
    in_ch = 3
    for stage in range(4):
        dim = config.embed_dims[stage]
        kernel, stride, padding = (7, 4, 3) if stage == 0 else (3, 2, 1)
        res = res // stride
        with g.scope(f"stage{stage}.patch_embed"):
            h = g.call(
                ops.Conv2d(in_ch, dim, kernel, stride=stride, padding=padding, dtype=dtype),
                h,
                name="proj",
            )
            tokens = g.call(ops.Reshape((batch_size, dim, res * res)), h)
            tokens = g.call(ops.Permute((0, 2, 1)), tokens)
            tokens = g.call(ops.LayerNorm(dim, dtype=dtype), tokens, name="norm")

        for block in range(config.depths[stage]):
            tokens = _segformer_block(
                g,
                tokens,
                batch=batch_size,
                resolution=res,
                dim=dim,
                heads=config.heads[stage],
                sr_ratio=config.sr_ratios[stage],
                mlp_ratio=config.mlp_ratio,
                dtype=dtype,
                name=f"stage{stage}.block{block}",
            )
        tokens = g.call(ops.LayerNorm(dim, dtype=dtype), tokens, name=f"stage{stage}_norm")
        features.append((tokens, res, dim))

        # hand the spatial map to the next stage's embedding conv
        if stage < 3:
            h = g.call(ops.Permute((0, 2, 1)), tokens)
            h = g.call(ops.Reshape((batch_size, dim, res, res)), h)
            h = g.call(ops.Contiguous(), h, name=f"stage{stage}_to_spatial")
            in_ch = dim

    logits = _decode_head(g, features, config, batch_size, dtype)
    g.set_outputs(logits)
    return g


def _segformer_block(
    g: Graph,
    x: Value,
    batch: int,
    resolution: int,
    dim: int,
    heads: int,
    sr_ratio: int,
    mlp_ratio: int,
    dtype: DType,
    name: str,
) -> Value:
    seq = resolution * resolution
    head_dim = dim // heads
    with g.scope(name):
        shortcut = x
        h = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln1")

        q = g.call(ops.Linear(dim, dim, dtype=dtype), h, name="q_proj")
        q = g.call(ops.Reshape((batch, seq, heads, head_dim)), q)
        q = g.call(ops.Permute((0, 2, 1, 3)), q)

        # spatial reduction of keys/values: strided conv + LN
        if sr_ratio > 1:
            kv_res = resolution // sr_ratio
            kv = g.call(ops.Permute((0, 2, 1)), h)
            kv = g.call(ops.Reshape((batch, dim, resolution, resolution)), kv)
            kv = g.call(ops.Contiguous(), kv, name="sr_to_spatial")
            kv = g.call(
                ops.Conv2d(dim, dim, sr_ratio, stride=sr_ratio, dtype=dtype), kv, name="sr_conv"
            )
            kv = g.call(ops.Reshape((batch, dim, kv_res * kv_res)), kv)
            kv = g.call(ops.Permute((0, 2, 1)), kv)
            kv = g.call(ops.LayerNorm(dim, dtype=dtype), kv, name="sr_norm")
            kv_seq = kv_res * kv_res
        else:
            kv = h
            kv_seq = seq

        k = g.call(ops.Linear(dim, dim, dtype=dtype), kv, name="k_proj")
        k = g.call(ops.Reshape((batch, kv_seq, heads, head_dim)), k)
        k = g.call(ops.Permute((0, 2, 3, 1)), k)
        v = g.call(ops.Linear(dim, dim, dtype=dtype), kv, name="v_proj")
        v = g.call(ops.Reshape((batch, kv_seq, heads, head_dim)), v)
        v = g.call(ops.Permute((0, 2, 1, 3)), v)

        scores = g.call(ops.BMM(), q, k, name="qk")
        scores = g.call(ops.DivScalar(math.sqrt(head_dim)), scores, name="scale")
        probs = g.call(ops.Softmax(-1), scores, name="attn_softmax")
        ctx = g.call(ops.BMM(), probs, v, name="pv")
        ctx = g.call(ops.Transpose(1, 2), ctx)
        ctx = g.call(ops.Reshape((batch, seq, dim)), ctx)
        attn = g.call(ops.Linear(dim, dim, dtype=dtype), ctx, name="out_proj")
        x = g.call(ops.Add(), shortcut, attn, name="residual1")

        # Mix-FFN: fc1 -> depthwise 3x3 conv -> GELU -> fc2
        shortcut = x
        h = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln2")
        hidden = dim * mlp_ratio
        h = g.call(ops.Linear(dim, hidden, dtype=dtype), h, name="fc1")
        h = g.call(ops.Permute((0, 2, 1)), h)
        h = g.call(ops.Reshape((batch, hidden, resolution, resolution)), h)
        h = g.call(ops.Contiguous(), h, name="ffn_to_spatial")
        h = g.call(
            ops.Conv2d(hidden, hidden, 3, padding=1, groups=hidden, dtype=dtype), h, name="dwconv"
        )
        h = g.call(ops.Reshape((batch, hidden, seq)), h)
        h = g.call(ops.Permute((0, 2, 1)), h)
        h = g.call(ops.GELU(), h, name="act")
        h = g.call(ops.Linear(hidden, dim, dtype=dtype), h, name="fc2")
        x = g.call(ops.Add(), shortcut, h, name="residual2")
    return x


def _decode_head(
    g: Graph,
    features: list[tuple[Value, int, int]],
    config: SegFormerConfig,
    batch: int,
    dtype: DType,
) -> Value:
    """All-MLP decode head: project, upsample to 1/4, fuse, classify."""
    target_res = config.image_size // 4
    dim = config.decoder_dim
    upsampled: list[Value] = []
    with g.scope("decode_head"):
        for i, (tokens, res, in_dim) in enumerate(features):
            h = g.call(ops.Linear(in_dim, dim, dtype=dtype), tokens, name=f"mlp{i}")
            h = g.call(ops.Permute((0, 2, 1)), h)
            h = g.call(ops.Reshape((batch, dim, res, res)), h)
            h = g.call(ops.Contiguous(), h, name=f"to_spatial{i}")
            if res != target_res:
                h = g.call(
                    ops.Interpolate(size=(target_res, target_res), mode="bilinear"),
                    h,
                    name=f"upsample{i}",
                )
            upsampled.append(h)
        fused = g.call(ops.Concat(1), *reversed(upsampled), name="cat")
        fused = g.call(ops.Conv2d(4 * dim, dim, 1, bias=False, dtype=dtype), fused, name="linear_fuse")
        fused = g.call(ops.BatchNorm2d(dim, dtype=dtype), fused, name="bn")
        fused = g.call(ops.ReLU(), fused, name="relu")
        logits = g.call(ops.Conv2d(dim, config.num_classes, 1, dtype=dtype), fused, name="classifier")
    return logits
