"""The NonGEMM Bench model registry.

Mirrors the paper's Table II: 17 models across Image Classification, Object
Detection, Image Segmentation, and NLP, plus Llama-3 8B for the quantization
study.  Users extend the benchmark by registering their own
:class:`ModelEntry` (the paper's "plug new models into the registry" flow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import RegistryError
from repro.ir.graph import Graph
from repro.models import configs
from repro.models.bert import build_bert
from repro.models.detr import build_detr
from repro.models.gpt2 import build_gpt2
from repro.models.llama import build_llama
from repro.models.maskformer import build_maskformer
from repro.models.mixtral import build_mixtral
from repro.models.rcnn import build_faster_rcnn, build_mask_rcnn
from repro.models.segformer import build_segformer
from repro.models.swin import build_swin
from repro.models.vit import build_vit


class TaskDomain(enum.Enum):
    """The paper's four task domains."""

    IMAGE_CLASSIFICATION = "IC"
    OBJECT_DETECTION = "OD"
    IMAGE_SEGMENTATION = "IS"
    NLP = "NLP"


@dataclass(frozen=True)
class ModelEntry:
    """One registry row: how to build a model and what data it consumes."""

    name: str
    domain: TaskDomain
    builder: Callable[..., Graph]
    config: object
    dataset: str
    paper_params: str  # Table II's reported size, for the workload report

    def build(self, batch_size: int = 1, **overrides) -> Graph:
        return self.builder(self.config, batch_size=batch_size, **overrides)


_REGISTRY: dict[str, ModelEntry] = {}


def register_model(entry: ModelEntry, replace: bool = False) -> None:
    """Add a model to the registry (``replace=True`` to override a preset)."""
    if entry.name in _REGISTRY and not replace:
        raise RegistryError(f"model {entry.name!r} already registered")
    _REGISTRY[entry.name] = entry


def get_model(name: str) -> ModelEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown model {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def list_models(domain: TaskDomain | None = None) -> list[ModelEntry]:
    entries = sorted(_REGISTRY.values(), key=lambda e: (e.domain.value, e.name))
    if domain is None:
        return entries
    return [e for e in entries if e.domain is domain]


def build_model(name: str, batch_size: int = 1, **overrides) -> Graph:
    """Build a registered model's graph (convenience wrapper)."""
    return get_model(name).build(batch_size=batch_size, **overrides)


#: The 17 models of the paper's Table II (+ Llama-3 for Fig. 9).
_PRESETS = [
    # Image classification
    ModelEntry("vit-b", TaskDomain.IMAGE_CLASSIFICATION, build_vit, configs.VIT_BASE, "imagenet", "86M"),
    ModelEntry("vit-l", TaskDomain.IMAGE_CLASSIFICATION, build_vit, configs.VIT_LARGE, "imagenet", "307M"),
    ModelEntry("vit-h", TaskDomain.IMAGE_CLASSIFICATION, build_vit, configs.VIT_HUGE, "imagenet", "632M"),
    ModelEntry("swin-t", TaskDomain.IMAGE_CLASSIFICATION, build_swin, configs.SWIN_TINY, "imagenet", "29M"),
    ModelEntry("swin-s", TaskDomain.IMAGE_CLASSIFICATION, build_swin, configs.SWIN_SMALL, "imagenet", "50M"),
    ModelEntry("swin-b", TaskDomain.IMAGE_CLASSIFICATION, build_swin, configs.SWIN_BASE, "imagenet", "88M"),
    # Object detection
    ModelEntry("faster-rcnn", TaskDomain.OBJECT_DETECTION, build_faster_rcnn, configs.FASTER_RCNN, "coco", "42M"),
    ModelEntry("mask-rcnn", TaskDomain.OBJECT_DETECTION, build_mask_rcnn, configs.MASK_RCNN, "coco", "44M"),
    ModelEntry("detr", TaskDomain.OBJECT_DETECTION, build_detr, configs.DETR, "coco", "41M"),
    # Image segmentation
    ModelEntry("maskformer", TaskDomain.IMAGE_SEGMENTATION, build_maskformer, configs.MASKFORMER, "coco", "102M"),
    ModelEntry("segformer", TaskDomain.IMAGE_SEGMENTATION, build_segformer, configs.SEGFORMER_B0, "coco", "3.7M"),
    # NLP
    ModelEntry("gpt2", TaskDomain.NLP, build_gpt2, configs.GPT2, "wikitext", "117M"),
    ModelEntry("gpt2-l", TaskDomain.NLP, build_gpt2, configs.GPT2_LARGE, "wikitext", "762M"),
    ModelEntry("gpt2-xl", TaskDomain.NLP, build_gpt2, configs.GPT2_XL, "wikitext", "1.5B"),
    ModelEntry("llama2-7b", TaskDomain.NLP, build_llama, configs.LLAMA2_7B, "wikitext", "7B"),
    ModelEntry("bert", TaskDomain.NLP, build_bert, configs.BERT_BASE, "wikitext", "110M"),
    ModelEntry("mixtral-8x7b", TaskDomain.NLP, build_mixtral, configs.MIXTRAL_8X7B, "wikitext", "46.7B"),
    # Quantization study (Section IV-C)
    ModelEntry("llama3-8b", TaskDomain.NLP, build_llama, configs.LLAMA3_8B, "wikitext", "8B"),
]

#: extension models beyond the paper's Table II (extensibility demo;
#: classic CNN baselines with BatchNorm/ReLU-dominated non-GEMM profiles).
_EXTENSIONS = "resnet50", "mobilenet-v2"

for _entry in _PRESETS:
    register_model(_entry)


def _register_extensions() -> None:
    from repro.models import cnn

    register_model(
        ModelEntry(
            "resnet50", TaskDomain.IMAGE_CLASSIFICATION, cnn.build_resnet50,
            cnn.RESNET50, "imagenet", "25.6M",
        )
    )
    register_model(
        ModelEntry(
            "mobilenet-v2", TaskDomain.IMAGE_CLASSIFICATION, cnn.build_mobilenet_v2,
            cnn.MOBILENET_V2, "imagenet", "3.5M",
        )
    )


_register_extensions()

#: names of the paper's 17 evaluated models (llama3-8b is the Fig. 9 extra).
PAPER_MODELS = [
    e.name for e in _PRESETS if e.name != "llama3-8b"
]
