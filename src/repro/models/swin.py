"""Swin Transformer graph builder (tiny / small / base).

Swin's shifted-window attention is the paper's canonical memory-bound
workload: every block partitions the token grid into windows (view ->
permute -> **contiguous** -> view), attends within windows, then reverses
the partition — and half the blocks additionally cyclic-shift the grid with
``roll`` (a real copy).  Those materializing copies are why the Memory group
dominates every Swin variant's non-GEMM latency (~32%, Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import fused_qkv_attention, image_input, mlp
from repro.models.configs import SwinConfig


@dataclass(frozen=True)
class SwinStageFeature:
    """One hierarchical stage output: tokens [B, res*res, dim]."""

    tokens: Value
    resolution: int
    dim: int


def build_swin_stages(
    g: Graph, x: Value, config: SwinConfig, batch_size: int
) -> list[SwinStageFeature]:
    """Emit the Swin trunk, returning every stage's token features.

    Used directly by the classifier and as MaskFormer's backbone.
    """
    dtype = config.dtype
    res = config.image_size // config.patch_size
    dim = config.embed_dim

    with g.scope("patch_embed"):
        h = g.call(
            ops.Conv2d(3, dim, config.patch_size, stride=config.patch_size, dtype=dtype),
            x,
            name="proj",
        )
        h = g.call(ops.Reshape((batch_size, dim, res * res)), h)
        h = g.call(ops.Permute((0, 2, 1)), h)  # [B, H*W, C]
        h = g.call(ops.LayerNorm(dim, dtype=dtype), h, name="norm")

    features: list[SwinStageFeature] = []
    for stage, (depth, heads) in enumerate(zip(config.depths, config.heads)):
        for block in range(depth):
            shifted = block % 2 == 1
            h = _swin_block(
                g,
                h,
                batch=batch_size,
                resolution=res,
                dim=dim,
                heads=heads,
                window=config.window,
                shifted=shifted,
                mlp_ratio=config.mlp_ratio,
                dtype=dtype,
                name=f"stage{stage}.block{block}",
            )
        features.append(SwinStageFeature(tokens=h, resolution=res, dim=dim))
        if stage < len(config.depths) - 1:
            h = _patch_merging(g, h, batch_size, res, dim, dtype, f"stage{stage}.downsample")
            res //= 2
            dim *= 2

    return features


def build_swin(config: SwinConfig, batch_size: int = 1) -> Graph:
    """Build a Swin classification graph at the given batch size."""
    g = Graph(config.name)
    x = image_input(g, batch_size, config.image_size, config.dtype)
    dtype = config.dtype
    features = build_swin_stages(g, x, config, batch_size)
    h = features[-1].tokens
    dim = features[-1].dim

    with g.scope("head"):
        h = g.call(ops.LayerNorm(dim, dtype=dtype), h, name="final_ln")
        pooled = g.call(ops.Mean(1), h, name="pool")
        logits = g.call(ops.Linear(dim, config.num_classes, dtype=dtype), pooled, name="classifier")

    g.set_outputs(logits)
    return g


def _swin_block(
    g: Graph,
    x: Value,
    batch: int,
    resolution: int,
    dim: int,
    heads: int,
    window: int,
    shifted: bool,
    mlp_ratio: int,
    dtype: DType,
    name: str,
) -> Value:
    """One (shifted-)window attention block over a [B, H*W, C] token grid."""
    window = min(window, resolution)
    n_side = resolution // window
    n_windows = n_side * n_side
    tokens_per_window = window * window

    with g.scope(name):
        shortcut = x
        h = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln1")
        h = g.call(ops.View((batch, resolution, resolution, dim)), h)
        if shifted:
            h = g.call(ops.Roll((-window // 2, -window // 2), (1, 2)), h, name="shift")

        # window partition: the contiguous copy is the expensive part
        h = g.call(ops.View((batch, n_side, window, n_side, window, dim)), h)
        h = g.call(ops.Permute((0, 1, 3, 2, 4, 5)), h)
        h = g.call(ops.Contiguous(), h, name="partition_copy")
        h = g.call(ops.View((batch * n_windows, tokens_per_window, dim)), h)

        bias = g.call(
            ops.Constant((1, heads, tokens_per_window, tokens_per_window), dtype, name="rel_pos_bias"),
            name="rel_pos_bias",
        )
        h = fused_qkv_attention(g, h, dim, heads, dtype, bias_value=bias, contiguous_merge=True)

        if shifted:
            # shifted windows also add the attention mask (view + add + view)
            h = g.call(ops.View((batch, n_windows, tokens_per_window, dim)), h)
            mask = g.call(
                ops.Constant((1, n_windows, tokens_per_window, 1), dtype, name="attn_mask"),
                name="attn_mask",
            )
            h = g.call(ops.Add(), h, mask, name="apply_mask")
            h = g.call(ops.View((batch * n_windows, tokens_per_window, dim)), h)

        # window reverse
        h = g.call(ops.View((batch, n_side, n_side, window, window, dim)), h)
        h = g.call(ops.Permute((0, 1, 3, 2, 4, 5)), h)
        h = g.call(ops.Contiguous(), h, name="reverse_copy")
        h = g.call(ops.View((batch, resolution, resolution, dim)), h)
        if shifted:
            h = g.call(ops.Roll((window // 2, window // 2), (1, 2)), h, name="unshift")
        h = g.call(ops.View((batch, resolution * resolution, dim)), h)

        x = g.call(ops.Add(), shortcut, h, name="residual1")
        normed = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln2")
        ff = mlp(g, normed, dim, dim * mlp_ratio, dtype)
        x = g.call(ops.Add(), x, ff, name="residual2")
    return x


def _patch_merging(
    g: Graph,
    x: Value,
    batch: int,
    resolution: int,
    dim: int,
    dtype: DType,
    name: str,
) -> Value:
    """2x2 patch merging: gather the 4 neighbours, LN, project 4C -> 2C."""
    half = resolution // 2
    with g.scope(name):
        h = g.call(ops.View((batch, half, 2, half, 2, dim)), x)
        h = g.call(ops.Permute((0, 1, 3, 2, 4, 5)), h)
        h = g.call(ops.Contiguous(), h, name="merge_copy")
        h = g.call(ops.View((batch, half * half, 4 * dim)), h)
        h = g.call(ops.LayerNorm(4 * dim, dtype=dtype), h, name="norm")
        h = g.call(ops.Linear(4 * dim, 2 * dim, bias=False, dtype=dtype), h, name="reduction")
    return h
