"""GPT-2 graph builder (base / large / XL), HuggingFace-faithful.

Reproduces the exact eager operator stream of ``transformers``' GPT-2:
Conv1D projections (not Linear), fused-QKV split, causal masking via
``where`` with a constant bias, and — critically for the paper — the
``NewGELUActivation`` composite, which eager PyTorch executes as ~7 separate
kernels.  That composite is why activation is the dominant non-GEMM group
for every GPT-2 variant (Table IV, ~28-30% of total latency).
"""

from __future__ import annotations

import math

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import token_input
from repro.models.configs import GPT2Config


def build_gpt2(config: GPT2Config, batch_size: int = 1, seq_len: int | None = None) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    seq = seq_len or config.seq_len
    ids = token_input(g, batch_size, seq)
    pos_ids = token_input(g, batch_size, seq, name="position_ids")

    dim = config.dim
    with g.scope("embeddings"):
        tok = g.call(ops.Embedding(config.vocab, dim, dtype=dtype), ids, name="wte")
        pos = g.call(ops.Embedding(config.max_positions, dim, dtype=dtype), pos_ids, name="wpe")
        h = g.call(ops.Add(), tok, pos, name="add_embeddings")

    for i in range(config.layers):
        h = _gpt2_block(g, h, config, batch_size, seq, dtype, f"h.{i}")

    with g.scope("head"):
        h = g.call(ops.LayerNorm(dim, dtype=dtype), h, name="ln_f")
        logits = g.call(ops.Linear(dim, config.vocab, bias=False, dtype=dtype), h, name="lm_head")

    g.set_outputs(logits)
    return g


def _gpt2_block(
    g: Graph,
    x: Value,
    config: GPT2Config,
    batch: int,
    seq: int,
    dtype: DType,
    name: str,
) -> Value:
    dim = config.dim
    heads = config.heads
    head_dim = dim // heads
    with g.scope(name):
        shortcut = x
        h = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln_1")

        # fused QKV Conv1D then split (HF: qkv = conv1d(x).split(dim, dim=2))
        qkv = g.call(ops.Conv1DGPT(dim, 3 * dim, dtype=dtype), h, name="c_attn")
        q, k, v = g.call(ops.Split(3, dim=2), qkv, name="split_qkv")

        def heads_view(t: Value, label: str) -> Value:
            t = g.call(ops.View((batch, seq, heads, head_dim)), t, name=f"{label}_view")
            return g.call(ops.Permute((0, 2, 1, 3)), t, name=f"{label}_permute")

        q = heads_view(q, "q")
        k = heads_view(k, "k")
        v = heads_view(v, "v")

        kt = g.call(ops.Transpose(-2, -1), k)
        scores = g.call(ops.BMM(), q, kt, name="qk")
        scores = g.call(ops.DivScalar(math.sqrt(head_dim)), scores, name="scale")

        # HF applies the causal mask with torch.where(bias, scores, min_value)
        causal = g.call(
            ops.Constant((1, 1, seq, seq), DType.BOOL, name="causal_bias"), name="causal_bias"
        )
        neg_inf = g.call(
            ops.Constant((1, 1, 1, 1), dtype, name="mask_value"), name="mask_value"
        )
        scores = g.call(ops.Where(), causal, scores, neg_inf, name="causal_where")

        probs = g.call(ops.Softmax(-1), scores, name="attn_softmax")
        ctx = g.call(ops.BMM(), probs, v, name="pv")
        ctx = g.call(ops.Permute((0, 2, 1, 3)), ctx, name="merge_permute")
        ctx = g.call(ops.Contiguous(), ctx, name="merge_contiguous")
        ctx = g.call(ops.View((batch, seq, dim)), ctx, name="merge_view")
        attn = g.call(ops.Conv1DGPT(dim, dim, dtype=dtype), ctx, name="c_proj")
        x = g.call(ops.Add(), shortcut, attn, name="residual1")

        shortcut = x
        h = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln_2")
        h = g.call(ops.Conv1DGPT(dim, 4 * dim, dtype=dtype), h, name="c_fc")
        h = g.call(ops.GELU(composite=True), h, name="gelu_new")
        h = g.call(ops.Conv1DGPT(4 * dim, dim, dtype=dtype), h, name="c_proj_mlp")
        x = g.call(ops.Add(), shortcut, h, name="residual2")
    return x
