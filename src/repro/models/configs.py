"""Hyperparameter configurations of the 17 NonGEMM Bench models (+ Llama 3).

Values follow the published model cards.  The paper's Table II parameter
counts are approximate (it lists ViT-base as 307M; the standard ViT-B/16 is
86M) — we use the standard configs and verify our builders' parameter counts
in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.dtype import DType


@dataclass(frozen=True)
class ViTConfig:
    """torchvision/HF Vision Transformer."""

    name: str
    image_size: int = 224
    patch_size: int = 16
    dim: int = 768
    depth: int = 12
    heads: int = 12
    mlp_ratio: int = 4
    num_classes: int = 1000
    dtype: DType = DType.F32


VIT_BASE = ViTConfig(name="vit-b", dim=768, depth=12, heads=12)
VIT_LARGE = ViTConfig(name="vit-l", dim=1024, depth=24, heads=16)
VIT_HUGE = ViTConfig(name="vit-h", dim=1280, depth=32, heads=16, patch_size=14)


@dataclass(frozen=True)
class SwinConfig:
    """Swin Transformer (hierarchical windows, shifted attention)."""

    name: str
    image_size: int = 224
    patch_size: int = 4
    window: int = 7
    embed_dim: int = 96
    depths: tuple[int, ...] = (2, 2, 6, 2)
    heads: tuple[int, ...] = (3, 6, 12, 24)
    mlp_ratio: int = 4
    num_classes: int = 1000
    dtype: DType = DType.F32


SWIN_TINY = SwinConfig(name="swin-t", embed_dim=96, depths=(2, 2, 6, 2), heads=(3, 6, 12, 24))
SWIN_SMALL = SwinConfig(name="swin-s", embed_dim=96, depths=(2, 2, 18, 2), heads=(3, 6, 12, 24))
SWIN_BASE = SwinConfig(name="swin-b", embed_dim=128, depths=(2, 2, 18, 2), heads=(4, 8, 16, 32))


@dataclass(frozen=True)
class DetectionConfig:
    """torchvision Faster/Mask R-CNN with a ResNet-50 FPN backbone."""

    name: str
    image_size: int = 800
    fpn_channels: int = 256
    anchors_per_cell: int = 3
    pre_nms_topk: int = 1000
    post_nms_topk: int = 1000
    detections: int = 100
    num_classes: int = 91
    with_masks: bool = False
    dtype: DType = DType.F32


FASTER_RCNN = DetectionConfig(name="faster-rcnn", with_masks=False)
MASK_RCNN = DetectionConfig(name="mask-rcnn", with_masks=True)


@dataclass(frozen=True)
class DETRConfig:
    """DETR: ResNet-50 (frozen BN) + encoder-decoder transformer."""

    name: str = "detr"
    image_size: int = 800
    dim: int = 256
    heads: int = 8
    encoder_layers: int = 6
    decoder_layers: int = 6
    ffn_dim: int = 2048
    queries: int = 100
    num_classes: int = 91
    dtype: DType = DType.F32


DETR = DETRConfig()


@dataclass(frozen=True)
class SegFormerConfig:
    """SegFormer MiT-B0 (the 3.7M-parameter variant of Table II)."""

    name: str = "segformer"
    image_size: int = 512
    embed_dims: tuple[int, ...] = (32, 64, 160, 256)
    depths: tuple[int, ...] = (2, 2, 2, 2)
    heads: tuple[int, ...] = (1, 2, 5, 8)
    sr_ratios: tuple[int, ...] = (8, 4, 2, 1)
    mlp_ratio: int = 4
    decoder_dim: int = 256
    num_classes: int = 150
    dtype: DType = DType.F32


SEGFORMER_B0 = SegFormerConfig()


@dataclass(frozen=True)
class MaskFormerConfig:
    """MaskFormer with a Swin-base backbone (per the paper's HF checkpoint)."""

    name: str = "maskformer"
    image_size: int = 384
    backbone: SwinConfig = field(
        default_factory=lambda: SwinConfig(
            name="swin-b-384",
            image_size=384,
            window=12,
            embed_dim=128,
            depths=(2, 2, 18, 2),
            heads=(4, 8, 16, 32),
        )
    )
    dim: int = 256
    mask_dim: int = 256
    decoder_layers: int = 6
    heads: int = 8
    ffn_dim: int = 2048
    queries: int = 100
    num_classes: int = 133
    dtype: DType = DType.F32


MASKFORMER = MaskFormerConfig()


@dataclass(frozen=True)
class GPT2Config:
    """HuggingFace GPT-2 (Conv1D projections, NewGELU composite activation)."""

    name: str
    layers: int = 12
    dim: int = 768
    heads: int = 12
    vocab: int = 50257
    max_positions: int = 1024
    seq_len: int = 8  # matches Table I's captured shapes
    dtype: DType = DType.F32


GPT2 = GPT2Config(name="gpt2", layers=12, dim=768, heads=12)
GPT2_LARGE = GPT2Config(name="gpt2-l", layers=36, dim=1280, heads=20)
GPT2_XL = GPT2Config(name="gpt2-xl", layers=48, dim=1600, heads=25)


@dataclass(frozen=True)
class BertConfig:
    """BERT-base encoder."""

    name: str = "bert"
    layers: int = 12
    dim: int = 768
    heads: int = 12
    ffn_dim: int = 3072
    vocab: int = 30522
    max_positions: int = 512
    type_vocab: int = 2
    seq_len: int = 128
    dtype: DType = DType.F32


BERT_BASE = BertConfig()


@dataclass(frozen=True)
class LlamaConfig:
    """Llama-2/3 decoder (RMSNorm, rotary embeddings, SiLU gated FFN)."""

    name: str
    layers: int = 32
    dim: int = 4096
    heads: int = 32
    kv_heads: int = 32
    ffn_dim: int = 11008
    vocab: int = 32000
    seq_len: int = 10  # matches Table I's captured shapes
    dtype: DType = DType.F16


LLAMA2_7B = LlamaConfig(name="llama2-7b")
LLAMA3_8B = LlamaConfig(
    name="llama3-8b",
    kv_heads=8,
    ffn_dim=14336,
    vocab=128256,
    seq_len=512,
)


@dataclass(frozen=True)
class MixtralConfig:
    """Mixtral 8x7B: Llama-style attention + top-2 of 8 expert FFNs."""

    name: str = "mixtral-8x7b"
    layers: int = 32
    dim: int = 4096
    heads: int = 32
    kv_heads: int = 8
    ffn_dim: int = 14336
    experts: int = 8
    experts_per_token: int = 2
    vocab: int = 32000
    seq_len: int = 10
    dtype: DType = DType.F16


MIXTRAL_8X7B = MixtralConfig()
