"""MaskFormer graph builder: Swin-B backbone + pixel decoder + query decoder.

Because the backbone is a Swin Transformer, MaskFormer inherits Swin's
window-partition Contiguous copies wholesale — the paper finds Memory to be
its dominant non-GEMM group at 40.8% of total latency (Table IV).
"""

from __future__ import annotations

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import image_input, mlp, separate_qkv_attention
from repro.models.configs import MaskFormerConfig
from repro.models.swin import SwinStageFeature, build_swin_stages


def build_maskformer(config: MaskFormerConfig, batch_size: int = 1) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    stages = build_swin_stages(g, x, config.backbone, batch_size)
    spatial = [_tokens_to_spatial(g, s, batch_size, i) for i, s in enumerate(stages)]

    mask_features, memory = _pixel_decoder(g, spatial, config, batch_size, dtype)

    queries = g.call(
        ops.Constant((1, config.queries, config.dim), dtype, name="query_embed"),
        name="query_embed",
    )
    queries = g.call(ops.Expand((batch_size, config.queries, config.dim)), queries)
    tgt = g.call(ops.Contiguous(), queries, name="query_copy")
    for i in range(config.decoder_layers):
        tgt = _decoder_layer(g, tgt, memory, config, dtype, f"transformer.layer{i}")

    with g.scope("heads"):
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="decoder_norm")
        class_logits = g.call(
            ops.Linear(config.dim, config.num_classes + 1, dtype=dtype), tgt, name="class_head"
        )
        emb = g.call(ops.Linear(config.dim, config.dim, dtype=dtype), tgt, name="mask_embed_fc1")
        emb = g.call(ops.ReLU(), emb, name="mask_embed_relu1")
        emb = g.call(ops.Linear(config.dim, config.dim, dtype=dtype), emb, name="mask_embed_fc2")
        emb = g.call(ops.ReLU(), emb, name="mask_embed_relu2")
        emb = g.call(ops.Linear(config.dim, config.mask_dim, dtype=dtype), emb, name="mask_embed_fc3")

        # mask prediction: queries x pixel embedding (an einsum -> BMM)
        _, c, mh, mw = mask_features.spec.shape
        pix = g.call(ops.Reshape((batch_size, c, mh * mw)), mask_features)
        masks = g.call(ops.BMM(), emb, pix, name="mask_bmm")
        masks = g.call(ops.Reshape((batch_size, config.queries, mh, mw)), masks)
        masks = g.call(
            ops.Interpolate(scale_factor=4.0, mode="bilinear"), masks, name="mask_upsample"
        )

    g.set_outputs(class_logits, masks)
    return g


def _tokens_to_spatial(g: Graph, stage: SwinStageFeature, batch: int, index: int) -> Value:
    h = g.call(ops.Permute((0, 2, 1)), stage.tokens)
    h = g.call(ops.Reshape((batch, stage.dim, stage.resolution, stage.resolution)), h)
    return g.call(ops.Contiguous(), h, name=f"backbone_feat{index}")


def _pixel_decoder(
    g: Graph,
    features: list[Value],
    config: MaskFormerConfig,
    batch: int,
    dtype: DType,
) -> tuple[Value, Value]:
    """FPN-style pixel decoder; also returns the /32 tokens as decoder memory."""
    dim = config.dim
    with g.scope("pixel_decoder"):
        laterals = []
        for i, feat in enumerate(features):
            in_ch = feat.spec.shape[1]
            lat = g.call(ops.Conv2d(in_ch, dim, 1, bias=False, dtype=dtype), feat, name=f"lateral{i}")
            lat = g.call(ops.GroupNorm(32, dim, dtype=dtype), lat, name=f"gn_lateral{i}")
            laterals.append(lat)

        merged = laterals[-1]
        for i in range(len(laterals) - 2, -1, -1):
            up = g.call(ops.Interpolate(scale_factor=2.0, mode="nearest"), merged, name=f"up{i}")
            merged = g.call(ops.Add(), laterals[i], up, name=f"merge{i}")
            merged = g.call(
                ops.Conv2d(dim, dim, 3, padding=1, bias=False, dtype=dtype), merged, name=f"out{i}"
            )
            merged = g.call(ops.GroupNorm(32, dim, dtype=dtype), merged, name=f"gn_out{i}")
            merged = g.call(ops.ReLU(), merged, name=f"relu{i}")

        mask_features = g.call(
            ops.Conv2d(dim, config.mask_dim, 3, padding=1, dtype=dtype),
            merged,
            name="mask_projection",
        )

        # transformer memory: the deepest feature as a token sequence
        deep = features[-1]
        _, c, h_, w_ = deep.spec.shape
        memory = g.call(ops.Conv2d(c, dim, 1, dtype=dtype), deep, name="input_proj")
        memory = g.call(ops.Reshape((batch, dim, h_ * w_)), memory)
        memory = g.call(ops.Permute((0, 2, 1)), memory)
        pos = g.call(ops.Constant((1, h_ * w_, dim), dtype, name="pos_embed"), name="pos_embed")
        memory = g.call(ops.Add(), memory, pos, name="add_pos")
    return mask_features, memory


def _decoder_layer(
    g: Graph, tgt: Value, memory: Value, config: MaskFormerConfig, dtype: DType, name: str
) -> Value:
    with g.scope(name):
        self_attn = separate_qkv_attention(g, tgt, tgt, config.dim, config.heads, dtype)
        tgt = g.call(ops.Add(), tgt, self_attn, name="residual1")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln1")
        cross = separate_qkv_attention(g, tgt, memory, config.dim, config.heads, dtype)
        tgt = g.call(ops.Add(), tgt, cross, name="residual2")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln2")
        ff = mlp(g, tgt, config.dim, config.ffn_dim, dtype, activation=ops.ReLU())
        tgt = g.call(ops.Add(), tgt, ff, name="residual3")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln3")
    return tgt
