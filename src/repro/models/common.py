"""Shared graph-building blocks: attention, MLPs, encoder layers.

Builders deliberately emit the *same operator sequences* the real framework
implementations run — including the memory-layout ops (view/permute/
contiguous) around attention and the residual elementwise adds — because the
paper's whole subject is the latency of exactly those operators.
"""

from __future__ import annotations

import math

from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro import ops


def fused_qkv_attention(
    g: Graph,
    x: Value,
    dim: int,
    heads: int,
    dtype: DType,
    bias_value: Value | None = None,
    contiguous_merge: bool = False,
) -> Value:
    """torchvision-style multi-head self-attention with a fused QKV linear.

    ``bias_value`` is an optional additive attention bias (Swin's relative
    position table).  ``contiguous_merge`` inserts the extra Contiguous
    copies Swin pays when windows are merged back.
    """
    batch, seq, _ = x.spec.shape
    head_dim = dim // heads
    qkv = g.call(ops.Linear(dim, 3 * dim, dtype=dtype), x, name="qkv")
    qkv = g.call(ops.Reshape((batch, seq, 3, heads, head_dim)), qkv)
    qkv = g.call(ops.Permute((2, 0, 3, 1, 4)), qkv)  # [3, B, H, S, hd]
    q = g.call(ops.Slice(0, 0, 1), qkv)
    q = g.call(ops.Squeeze(0), q)
    k = g.call(ops.Slice(0, 1, 2), qkv)
    k = g.call(ops.Squeeze(0), k)
    v = g.call(ops.Slice(0, 2, 3), qkv)
    v = g.call(ops.Squeeze(0), v)

    kt = g.call(ops.Transpose(-2, -1), k)
    scores = g.call(ops.BMM(), q, kt, name="qk")
    scores = g.call(ops.DivScalar(math.sqrt(head_dim)), scores, name="scale")
    if bias_value is not None:
        scores = g.call(ops.Add(), scores, bias_value, name="attn_bias")
    probs = g.call(ops.Softmax(-1), scores, name="attn_softmax")
    ctx = g.call(ops.BMM(), probs, v, name="pv")
    ctx = g.call(ops.Transpose(1, 2), ctx)  # [B, S, H, hd]
    if contiguous_merge:
        ctx = g.call(ops.Contiguous(), ctx)
    ctx = g.call(ops.Reshape((batch, seq, dim)), ctx)
    return g.call(ops.Linear(dim, dim, dtype=dtype), ctx, name="proj")


def separate_qkv_attention(
    g: Graph,
    query: Value,
    key_value: Value,
    dim: int,
    heads: int,
    dtype: DType,
) -> Value:
    """BERT/DETR-style attention with separate Q, K, V projections.

    ``query`` and ``key_value`` may differ (cross-attention in DETR's
    decoder); self-attention passes the same value twice.
    """
    batch, q_len, _ = query.spec.shape
    kv_len = key_value.spec.shape[1]
    head_dim = dim // heads

    def project(value: Value, label: str, length: int) -> Value:
        p = g.call(ops.Linear(dim, dim, dtype=dtype), value, name=f"{label}_proj")
        p = g.call(ops.View((batch, length, heads, head_dim)), p)
        return g.call(ops.Transpose(1, 2), p)  # [B, H, L, hd]

    q = project(query, "q", q_len)
    k = project(key_value, "k", kv_len)
    v = project(key_value, "v", kv_len)

    kt = g.call(ops.Transpose(-2, -1), k)
    scores = g.call(ops.BMM(), q, kt, name="qk")
    scores = g.call(ops.DivScalar(math.sqrt(head_dim)), scores, name="scale")
    probs = g.call(ops.Softmax(-1), scores, name="attn_softmax")
    ctx = g.call(ops.BMM(), probs, v, name="pv")
    ctx = g.call(ops.Transpose(1, 2), ctx)
    ctx = g.call(ops.Contiguous(), ctx)
    ctx = g.call(ops.View((batch, q_len, dim)), ctx)
    return g.call(ops.Linear(dim, dim, dtype=dtype), ctx, name="out_proj")


def mlp(
    g: Graph,
    x: Value,
    dim: int,
    hidden: int,
    dtype: DType,
    activation: ops.Operator | None = None,
) -> Value:
    """Two-layer feed-forward block with an activation in between."""
    act = activation if activation is not None else ops.GELU()
    h = g.call(ops.Linear(dim, hidden, dtype=dtype), x, name="fc1")
    h = g.call(act, h, name="act")
    return g.call(ops.Linear(hidden, dim, dtype=dtype), h, name="fc2")


def pre_norm_encoder_layer(
    g: Graph,
    x: Value,
    dim: int,
    heads: int,
    mlp_hidden: int,
    dtype: DType,
    layer_name: str,
) -> Value:
    """Pre-LN transformer encoder layer (ViT style)."""
    with g.scope(layer_name):
        normed = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln1")
        attn = fused_qkv_attention(g, normed, dim, heads, dtype)
        x = g.call(ops.Add(), x, attn, name="residual1")
        normed = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln2")
        ff = mlp(g, normed, dim, mlp_hidden, dtype)
        x = g.call(ops.Add(), x, ff, name="residual2")
    return x


def post_norm_encoder_layer(
    g: Graph,
    x: Value,
    dim: int,
    heads: int,
    mlp_hidden: int,
    dtype: DType,
    layer_name: str,
    activation: ops.Operator | None = None,
) -> Value:
    """Post-LN transformer encoder layer (BERT/DETR style)."""
    with g.scope(layer_name):
        attn = separate_qkv_attention(g, x, x, dim, heads, dtype)
        x = g.call(ops.Add(), x, attn, name="residual1")
        x = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln1")
        ff = mlp(g, x, dim, mlp_hidden, dtype, activation=activation)
        x = g.call(ops.Add(), x, ff, name="residual2")
        x = g.call(ops.LayerNorm(dim, dtype=dtype), x, name="ln2")
    return x


def image_input(g: Graph, batch: int, size: int, dtype: DType, name: str = "pixels") -> Value:
    """Standard NCHW image input."""
    from repro.ir.tensor import TensorSpec

    return g.input(TensorSpec((batch, 3, size, size), dtype), name)


def token_input(g: Graph, batch: int, seq_len: int, name: str = "input_ids") -> Value:
    """Integer token-id input."""
    from repro.ir.dtype import DType as _DType
    from repro.ir.tensor import TensorSpec

    return g.input(TensorSpec((batch, seq_len), _DType.I64), name)
