"""DETR graph builder: ResNet-50 (frozen BN) + encoder-decoder transformer.

Two properties make DETR the paper's normalization case study: the backbone
keeps ~53 FrozenBatchNorm2d custom kernels (each a 4-kernel Python
composite in eager mode), and the transformer adds 42 LayerNorms.  Eager
execution is therefore launch-bound on normalization — and TensorRT's
CONV+BN+ReLU epilogue fusion removes nearly all of it (13.5x non-GEMM
speedup, Table V).
"""

from __future__ import annotations

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import image_input, mlp, separate_qkv_attention
from repro.models.configs import DETRConfig
from repro.models.resnet import build_resnet50_backbone, detr_frozen_norm


def build_detr(config: DETRConfig, batch_size: int = 1) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    backbone = build_resnet50_backbone(g, x, dtype=dtype, norm=detr_frozen_norm)
    c5 = backbone.c5
    _, c5_ch, fh, fw = c5.spec.shape
    seq = fh * fw
    dim = config.dim

    with g.scope("input_proj"):
        src = g.call(ops.Conv2d(c5_ch, dim, 1, dtype=dtype), c5, name="proj")
        src = g.call(ops.Reshape((batch_size, dim, seq)), src)
        src = g.call(ops.Permute((0, 2, 1)), src)  # [B, HW, D]
        pos = g.call(ops.Constant((1, seq, dim), dtype, name="pos_embed"), name="pos_embed")
        src = g.call(ops.Add(), src, pos, name="add_pos")

    memory = src
    for i in range(config.encoder_layers):
        memory = _detr_encoder_layer(g, memory, config, dtype, f"encoder.layer{i}")

    queries = g.call(
        ops.Constant((1, config.queries, dim), dtype, name="query_embed"), name="query_embed"
    )
    queries = g.call(ops.Expand((batch_size, config.queries, dim)), queries)
    # Expand is a view; decoder residuals need materialized storage.
    tgt = g.call(ops.Contiguous(), queries, name="query_copy")
    for i in range(config.decoder_layers):
        tgt = _detr_decoder_layer(g, tgt, memory, config, dtype, f"decoder.layer{i}")

    with g.scope("heads"):
        tgt = g.call(ops.LayerNorm(dim, dtype=dtype), tgt, name="decoder_norm")
        logits = g.call(
            ops.Linear(dim, config.num_classes + 1, dtype=dtype), tgt, name="class_embed"
        )
        h = g.call(ops.Linear(dim, dim, dtype=dtype), tgt, name="bbox_fc1")
        h = g.call(ops.ReLU(), h, name="bbox_relu1")
        h = g.call(ops.Linear(dim, dim, dtype=dtype), h, name="bbox_fc2")
        h = g.call(ops.ReLU(), h, name="bbox_relu2")
        h = g.call(ops.Linear(dim, 4, dtype=dtype), h, name="bbox_fc3")
        boxes = g.call(ops.Sigmoid(), h, name="bbox_sigmoid")

    g.set_outputs(logits, boxes)
    return g


def _detr_encoder_layer(g: Graph, x: Value, config: DETRConfig, dtype: DType, name: str) -> Value:
    with g.scope(name):
        attn = separate_qkv_attention(g, x, x, config.dim, config.heads, dtype)
        x = g.call(ops.Add(), x, attn, name="residual1")
        x = g.call(ops.LayerNorm(config.dim, dtype=dtype), x, name="ln1")
        ff = mlp(g, x, config.dim, config.ffn_dim, dtype, activation=ops.ReLU())
        x = g.call(ops.Add(), x, ff, name="residual2")
        x = g.call(ops.LayerNorm(config.dim, dtype=dtype), x, name="ln2")
    return x


def _detr_decoder_layer(
    g: Graph, tgt: Value, memory: Value, config: DETRConfig, dtype: DType, name: str
) -> Value:
    with g.scope(name):
        self_attn = separate_qkv_attention(g, tgt, tgt, config.dim, config.heads, dtype)
        tgt = g.call(ops.Add(), tgt, self_attn, name="residual1")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln1")
        cross = separate_qkv_attention(g, tgt, memory, config.dim, config.heads, dtype)
        tgt = g.call(ops.Add(), tgt, cross, name="residual2")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln2")
        ff = mlp(g, tgt, config.dim, config.ffn_dim, dtype, activation=ops.ReLU())
        tgt = g.call(ops.Add(), tgt, ff, name="residual3")
        tgt = g.call(ops.LayerNorm(config.dim, dtype=dtype), tgt, name="ln3")
    return tgt
