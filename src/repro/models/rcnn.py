"""Faster R-CNN / Mask R-CNN graph builders (ResNet-50 FPN backbone).

The R-CNN family contributes the benchmark's RoI-selection operators (NMS,
RoIAlign) and an enormous amount of small element-wise arithmetic: anchor
box decoding runs ~10 tensor expressions per FPN level over hundreds of
thousands of anchors, and again for the detection head — which is why
Element-wise Arithmetic is the dominant non-GEMM group for both detectors
in the paper (Table IV, ~34%).
"""

from __future__ import annotations

import math

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import image_input
from repro.models.configs import DetectionConfig
from repro.models.resnet import build_resnet50_backbone, frozen_norm


def build_faster_rcnn(config: DetectionConfig, batch_size: int = 1) -> Graph:
    return _build_rcnn(config, batch_size, with_masks=False)


def build_mask_rcnn(config: DetectionConfig, batch_size: int = 1) -> Graph:
    return _build_rcnn(config, batch_size, with_masks=True)


def _build_rcnn(config: DetectionConfig, batch_size: int, with_masks: bool) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    x = image_input(g, batch_size, config.image_size, dtype)

    # GeneralizedRCNNTransform: per-channel normalization of the input image
    with g.scope("transform"):
        mean = g.call(ops.Constant((1, 3, 1, 1), dtype, name="image_mean"), name="image_mean")
        std = g.call(ops.Constant((1, 3, 1, 1), dtype, name="image_std"), name="image_std")
        x = g.call(ops.Sub(), x, mean, name="normalize_sub")
        x = g.call(ops.Div(), x, std, name="normalize_div")

    backbone = build_resnet50_backbone(g, x, dtype=dtype, norm=frozen_norm)
    pyramid = _fpn(g, backbone.as_list(), config.fpn_channels, dtype)

    proposals = _rpn(g, pyramid, config, batch_size, dtype)

    detections = _roi_heads(g, pyramid[0], proposals, config, batch_size, dtype)

    outputs = [detections]
    if with_masks:
        outputs.append(_mask_head(g, pyramid[0], detections, config, batch_size, dtype))
    g.set_outputs(*outputs)
    return g


def _fpn(g: Graph, features: list[Value], channels: int, dtype: DType) -> list[Value]:
    """Feature pyramid network: laterals, top-down pathway, output convs, P6."""
    with g.scope("fpn"):
        laterals = []
        for i, feat in enumerate(features):
            in_ch = feat.spec.shape[1]
            laterals.append(
                g.call(ops.Conv2d(in_ch, channels, 1, dtype=dtype), feat, name=f"lateral{i + 2}")
            )
        # top-down: upsample deeper level, add to the lateral
        merged = [laterals[-1]]
        for i in range(len(laterals) - 2, -1, -1):
            upsampled = g.call(
                ops.Interpolate(scale_factor=2.0, mode="nearest"), merged[0], name=f"upsample{i + 2}"
            )
            merged.insert(0, g.call(ops.Add(), laterals[i], upsampled, name=f"merge{i + 2}"))
        outputs = [
            g.call(ops.Conv2d(channels, channels, 3, padding=1, dtype=dtype), m, name=f"out{i + 2}")
            for i, m in enumerate(merged)
        ]
        p6 = g.call(ops.MaxPool2d(1, stride=2), outputs[-1], name="p6_pool")
        outputs.append(p6)
    return outputs


def _rpn(
    g: Graph,
    pyramid: list[Value],
    config: DetectionConfig,
    batch: int,
    dtype: DType,
) -> Value:
    """Region proposal network: per-level heads, box decoding, NMS."""
    channels = config.fpn_channels
    anchors = config.anchors_per_cell
    level_boxes: list[Value] = []
    level_scores: list[Value] = []

    with g.scope("rpn"):
        for level, feat in enumerate(pyramid):
            _, _, h, w = feat.spec.shape
            n_anchors = h * w * anchors
            with g.scope(f"level{level + 2}"):
                t = g.call(ops.Conv2d(channels, channels, 3, padding=1, dtype=dtype), feat, name="conv")
                t = g.call(ops.ReLU(), t, name="relu")
                logits = g.call(ops.Conv2d(channels, anchors, 1, dtype=dtype), t, name="cls_logits")
                deltas = g.call(ops.Conv2d(channels, anchors * 4, 1, dtype=dtype), t, name="bbox_pred")

                scores = g.call(ops.Reshape((batch, n_anchors)), logits)
                scores = g.call(ops.Sigmoid(), scores, name="objectness")
                deltas = g.call(ops.Permute((0, 2, 3, 1)), deltas)
                deltas = g.call(ops.Reshape((batch, n_anchors, 4)), deltas)

                anchor_boxes = g.call(
                    ops.Constant((1, n_anchors, 4), dtype, name="anchors"), name="anchors"
                )
                boxes = _decode_boxes(g, deltas, anchor_boxes)

                k = min(config.pre_nms_topk, n_anchors)
                top_scores, top_idx = g.call(ops.TopK(k), scores, name="topk")
                idx_row = g.call(ops.Slice(0, 0, 1), top_idx)
                idx_row = g.call(ops.Squeeze(0), idx_row)
                boxes = g.call(ops.Gather(1), boxes, idx_row, name="gather_boxes")
                level_boxes.append(boxes)
                level_scores.append(top_scores)

        all_boxes = g.call(ops.Concat(1), *level_boxes, name="cat_boxes")
        all_scores = g.call(ops.Concat(1), *level_scores, name="cat_scores")

        # filter_proposals runs PER IMAGE in torchvision (a Python loop), so
        # its elementwise op count scales with the batch size — part of why
        # Element-wise Arithmetic dominates the R-CNNs in the paper.
        kept_per_image: list[Value] = []
        for b in range(batch):
            img_boxes = g.call(ops.Slice(0, b, b + 1), all_boxes)
            img_scores = g.call(ops.Slice(0, b, b + 1), all_scores)
            img_boxes = _filter_proposals(g, img_boxes, f"filter_img{b}")
            img_boxes = g.call(ops.Squeeze(0), img_boxes)
            img_scores = g.call(ops.Squeeze(0), img_scores)
            kept, _count = g.call(
                ops.NMS(iou_threshold=0.7, score_threshold=0.0, max_outputs=config.post_nms_topk),
                img_boxes,
                img_scores,
                name=f"nms_img{b}",
            )
            kept = g.call(ops.Pad(((0, 0), (1, 0))), kept, name=f"add_batch_col{b}")
            kept_per_image.append(kept)
        proposals = (
            kept_per_image[0]
            if batch == 1
            else g.call(ops.Concat(0), *kept_per_image, name="cat_proposals")
        )
    return proposals


def _decode_boxes(g: Graph, deltas: Value, anchors: Value) -> Value:
    """Anchor box decoding, following torchvision's ``decode_single``.

    torchvision unbinds boxes into per-coordinate vectors and runs the
    center/size arithmetic coordinate-by-coordinate (~25 tensor expressions
    over the full anchor set).  This chain — executed for the RPN and again
    for the box head — is the core of the R-CNNs' element-wise arithmetic
    bottleneck (Table IV, ~34% of total latency).
    """
    last = anchors.spec.rank - 1

    def coord(src: Value, i: int, label: str) -> Value:
        c = g.call(ops.Slice(last, i, i + 1), src, name=f"{label}_slice")
        return c

    # anchor geometry: widths, heights, centers (x and y)
    x1, y1 = coord(anchors, 0, "x1"), coord(anchors, 1, "y1")
    x2, y2 = coord(anchors, 2, "x2"), coord(anchors, 3, "y2")
    widths = g.call(ops.Sub(), x2, x1, name="widths")
    heights = g.call(ops.Sub(), y2, y1, name="heights")
    half_w = g.call(ops.MulScalar(0.5), widths, name="half_w")
    half_h = g.call(ops.MulScalar(0.5), heights, name="half_h")
    ctr_x = g.call(ops.Add(), x1, half_w, name="ctr_x")
    ctr_y = g.call(ops.Add(), y1, half_h, name="ctr_y")

    dx, dy = coord(deltas, 0, "dx"), coord(deltas, 1, "dy")
    dw, dh = coord(deltas, 2, "dw"), coord(deltas, 3, "dh")

    # new centers: d * size + ctr
    px = g.call(ops.Mul(), dx, widths, name="dx_w")
    px = g.call(ops.Add(), px, ctr_x, name="pred_ctr_x")
    py = g.call(ops.Mul(), dy, heights, name="dy_h")
    py = g.call(ops.Add(), py, ctr_y, name="pred_ctr_y")

    # new sizes: exp(clamp(d)) * size
    dw = g.call(ops.DivScalar(math.log(1000.0 / 16)), dw, name="dw_clamp")
    dh = g.call(ops.DivScalar(math.log(1000.0 / 16)), dh, name="dh_clamp")
    pw = g.call(ops.Exp(), dw, name="exp_dw")
    pw = g.call(ops.Mul(), pw, widths, name="pred_w")
    ph = g.call(ops.Exp(), dh, name="exp_dh")
    ph = g.call(ops.Mul(), ph, heights, name="pred_h")

    # corners
    hw = g.call(ops.MulScalar(0.5), pw, name="pred_half_w")
    hh = g.call(ops.MulScalar(0.5), ph, name="pred_half_h")
    nx1 = g.call(ops.Sub(), px, hw, name="pred_x1")
    ny1 = g.call(ops.Sub(), py, hh, name="pred_y1")
    nx2 = g.call(ops.Add(), px, hw, name="pred_x2")
    ny2 = g.call(ops.Add(), py, hh, name="pred_y2")
    boxes = g.call(ops.Concat(last), nx1, ny1, nx2, ny2, name="stack_corners")
    return boxes


def _filter_proposals(g: Graph, boxes: Value, label: str) -> Value:
    """torchvision's per-level proposal hygiene: clip to image, drop degenerate
    boxes, offset for batched NMS — all element-wise passes over every box."""
    with g.scope(label):
        zero = g.call(ops.Constant((1, 1, 1), boxes.spec.dtype, name="zero"), name="zero")
        boxes = g.call(ops.Maximum(), boxes, zero, name="clip_lo")
        limit = g.call(ops.Constant((1, 1, 1), boxes.spec.dtype, name="img_limit"), name="img_limit")
        over = g.call(ops.Sub(), boxes, limit, name="overflow")
        over = g.call(ops.Neg(), over, name="neg_overflow")
        boxes = g.call(ops.Maximum(), boxes, over, name="clip_hi")
        # remove_small_boxes: side lengths, threshold comparison, keep mask
        width = g.call(ops.Sub(), boxes, boxes, name="keep_width")
        height = g.call(ops.Sub(), boxes, boxes, name="keep_height")
        min_side = g.call(ops.Constant((1, 1, 1), boxes.spec.dtype, name="min_size"), name="min_size")
        w_ok = g.call(ops.Sub(), width, min_side, name="width_margin")
        h_ok = g.call(ops.Sub(), height, min_side, name="height_margin")
        keep = g.call(ops.Mul(), w_ok, h_ok, name="keep_mask")
        keep = g.call(ops.Maximum(), keep, min_side, name="keep_clamp")
        boxes = g.call(ops.Mul(), boxes, keep, name="apply_keep")
        # batched-NMS trick: offset boxes per class/level
        offset = g.call(ops.Constant((1, 1, 1), boxes.spec.dtype, name="nms_offset"), name="nms_offset")
        boxes = g.call(ops.Add(), boxes, offset, name="offset_boxes")
    return boxes


def _roi_heads(
    g: Graph,
    feature: Value,
    proposals: Value,
    config: DetectionConfig,
    batch: int,
    dtype: DType,
) -> Value:
    """Box head: RoIAlign, two FC layers, class/box predictors, final NMS."""
    channels = config.fpn_channels
    n_rois = proposals.spec.shape[0]
    with g.scope("roi_heads"):
        pooled = g.call(
            ops.RoIAlign(output_size=7, spatial_scale=0.25), feature, proposals, name="roi_align"
        )
        flat = g.call(ops.Reshape((n_rois, channels * 49)), pooled)
        h = g.call(ops.Linear(channels * 49, 1024, dtype=dtype), flat, name="fc6")
        h = g.call(ops.ReLU(), h, name="relu6")
        h = g.call(ops.Linear(1024, 1024, dtype=dtype), h, name="fc7")
        h = g.call(ops.ReLU(), h, name="relu7")
        cls_logits = g.call(ops.Linear(1024, config.num_classes, dtype=dtype), h, name="cls_score")
        box_deltas = g.call(
            ops.Linear(1024, config.num_classes * 4, dtype=dtype), h, name="bbox_pred"
        )

        probs = g.call(ops.Softmax(-1), cls_logits, name="cls_softmax")
        deltas = g.call(ops.Reshape((1, n_rois * config.num_classes, 4)), box_deltas)
        ref = g.call(
            ops.Constant((1, n_rois * config.num_classes, 4), dtype, name="proposal_ref"),
            name="proposal_ref",
        )
        boxes = _decode_boxes(g, deltas, ref)
        boxes = g.call(ops.Reshape((batch, (n_rois // batch) * config.num_classes, 4)), boxes)
        scores = g.call(
            ops.Reshape((batch, (n_rois // batch) * config.num_classes)), probs, name="flat_scores"
        )

        # postprocess_detections also loops per image: clip, filter, NMS, topk
        per_image: list[Value] = []
        for b in range(batch):
            img_boxes = g.call(ops.Slice(0, b, b + 1), boxes)
            img_boxes = _filter_proposals(g, img_boxes, f"postprocess_filter_img{b}")
            img_boxes = g.call(ops.Squeeze(0), img_boxes)
            img_scores = g.call(ops.Slice(0, b, b + 1), scores)
            img_scores = g.call(ops.Squeeze(0), img_scores)
            kept, _count = g.call(
                ops.NMS(iou_threshold=0.5, score_threshold=0.05, max_outputs=config.detections),
                img_boxes,
                img_scores,
                name=f"detection_nms_img{b}",
            )
            per_image.append(kept)
        detections = (
            per_image[0] if batch == 1 else g.call(ops.Concat(0), *per_image, name="cat_detections")
        )
    return detections


def _mask_head(
    g: Graph,
    feature: Value,
    detections: Value,
    config: DetectionConfig,
    batch: int,
    dtype: DType,
) -> Value:
    """Mask R-CNN's extra branch: 14x14 RoIAlign + 4 convs + upsample + predictor."""
    channels = config.fpn_channels
    n_det = detections.spec.shape[0]
    with g.scope("mask_head"):
        rois = g.call(ops.Pad(((0, 0), (1, 0))), detections, name="det_rois")
        pooled = g.call(
            ops.RoIAlign(output_size=14, spatial_scale=0.25), feature, rois, name="mask_roi_align"
        )
        h = pooled
        for i in range(4):
            h = g.call(
                ops.Conv2d(channels, channels, 3, padding=1, dtype=dtype), h, name=f"mask_fcn{i + 1}"
            )
            h = g.call(ops.ReLU(), h, name=f"mask_relu{i + 1}")
        h = g.call(ops.Interpolate(scale_factor=2.0, mode="bilinear"), h, name="mask_upsample")
        h = g.call(ops.Conv2d(channels, channels, 3, padding=1, dtype=dtype), h, name="mask_conv_up")
        h = g.call(ops.ReLU(), h, name="mask_relu_up")
        logits = g.call(
            ops.Conv2d(channels, config.num_classes, 1, dtype=dtype), h, name="mask_predictor"
        )
        masks = g.call(ops.Sigmoid(), logits, name="mask_probs")

        # paste_masks_in_image: per-detection upsample and threshold.  Real
        # torchvision pastes each mask into its box region (roughly quarter
        # of image area on COCO), modelled here as a half-resolution paste.
        chosen = g.call(ops.Slice(1, 0, 1), masks, name="take_class")
        paste_res = config.image_size // 2
        pasted = g.call(
            ops.Interpolate(size=(paste_res, paste_res), mode="bilinear"),
            chosen,
            name="paste_upsample",
        )
        half = g.call(ops.Constant((1, 1, 1, 1), dtype, name="mask_threshold"), name="mask_threshold")
        binary = g.call(ops.Sub(), pasted, half, name="threshold_sub")
        binary = g.call(ops.Maximum(), binary, half, name="threshold_bin")
    return binary
