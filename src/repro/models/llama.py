"""Llama-2 / Llama-3 graph builder (HuggingFace-faithful decoder).

The operator-level signatures the paper highlights are all here: the
LlamaRMSNorm Python composite (six eager kernels — the source of Llama-2's
normalization bottleneck, Table IV 14.9%), rotary position embeddings with
their slice/neg/concat rotate-half arithmetic (the ``Neg`` row of Table I),
the SiLU-gated FFN, and grouped-query attention with KV-head expansion for
Llama-3 (the model used in the paper's quantization study, Fig. 9).
"""

from __future__ import annotations

import math

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Value
from repro.models.common import token_input
from repro.models.configs import LlamaConfig


def build_llama(config: LlamaConfig, batch_size: int = 1, seq_len: int | None = None) -> Graph:
    g = Graph(config.name)
    dtype = config.dtype
    seq = seq_len or config.seq_len
    ids = token_input(g, batch_size, seq)

    dim = config.dim
    with g.scope("embeddings"):
        h = g.call(ops.Embedding(config.vocab, dim, dtype=dtype), ids, name="embed_tokens")

    for i in range(config.layers):
        h = _llama_layer(g, h, config, batch_size, seq, dtype, f"layers.{i}")

    with g.scope("head"):
        h = g.call(ops.RMSNorm(dim, dtype=dtype), h, name="norm")
        logits = g.call(ops.Linear(dim, config.vocab, bias=False, dtype=dtype), h, name="lm_head")

    g.set_outputs(logits)
    return g


def _llama_layer(
    g: Graph,
    x: Value,
    config: LlamaConfig,
    batch: int,
    seq: int,
    dtype: DType,
    name: str,
) -> Value:
    with g.scope(name):
        shortcut = x
        h = g.call(ops.RMSNorm(config.dim, dtype=dtype), x, name="input_layernorm")
        attn = llama_attention(g, h, config, batch, seq, dtype)
        x = g.call(ops.Add(), shortcut, attn, name="residual1")

        shortcut = x
        h = g.call(ops.RMSNorm(config.dim, dtype=dtype), x, name="post_attention_layernorm")
        ff = llama_ffn(g, h, config.dim, config.ffn_dim, dtype)
        x = g.call(ops.Add(), shortcut, ff, name="residual2")
    return x


def llama_attention(
    g: Graph,
    h: Value,
    config: LlamaConfig,
    batch: int,
    seq: int,
    dtype: DType,
) -> Value:
    """Grouped-query attention with rotary embeddings."""
    dim = config.dim
    heads = config.heads
    kv_heads = config.kv_heads
    head_dim = dim // heads
    kv_dim = kv_heads * head_dim

    q = g.call(ops.Linear(dim, dim, bias=False, dtype=dtype), h, name="q_proj")
    k = g.call(ops.Linear(dim, kv_dim, bias=False, dtype=dtype), h, name="k_proj")
    v = g.call(ops.Linear(dim, kv_dim, bias=False, dtype=dtype), h, name="v_proj")

    q = g.call(ops.View((batch, seq, heads, head_dim)), q, name="q_view")
    q = g.call(ops.Transpose(1, 2), q, name="q_transpose")
    k = g.call(ops.View((batch, seq, kv_heads, head_dim)), k, name="k_view")
    k = g.call(ops.Transpose(1, 2), k, name="k_transpose")
    v = g.call(ops.View((batch, seq, kv_heads, head_dim)), v, name="v_view")
    v = g.call(ops.Transpose(1, 2), v, name="v_transpose")

    cos = g.call(ops.Constant((1, 1, seq, head_dim), dtype, name="rope_cos"), name="rope_cos")
    sin = g.call(ops.Constant((1, 1, seq, head_dim), dtype, name="rope_sin"), name="rope_sin")
    q = _apply_rotary(g, q, cos, sin, "q_rope")
    k = _apply_rotary(g, k, cos, sin, "k_rope")

    if kv_heads != heads:
        # grouped-query attention: expand KV heads to match query heads
        groups = heads // kv_heads
        k = _repeat_kv(g, k, batch, kv_heads, groups, seq, head_dim, "k_repeat")
        v = _repeat_kv(g, v, batch, kv_heads, groups, seq, head_dim, "v_repeat")

    kt = g.call(ops.Transpose(-2, -1), k, name="kt")
    scores = g.call(ops.BMM(), q, kt, name="qk")
    scores = g.call(ops.DivScalar(math.sqrt(head_dim)), scores, name="scale")
    mask = g.call(
        ops.Constant((1, 1, seq, seq), dtype, name="causal_mask"), name="causal_mask"
    )
    scores = g.call(ops.Add(), scores, mask, name="apply_mask")
    # HF clamps masked logits to the dtype minimum before softmax — another
    # full S^2 elementwise pass that grows quadratically with sequence length.
    floor = g.call(
        ops.Constant((1, 1, 1, 1), dtype, name="mask_floor"), name="mask_floor"
    )
    scores = g.call(ops.Maximum(), scores, floor, name="clamp_mask")
    probs = g.call(ops.Softmax(-1), scores, name="attn_softmax")
    ctx = g.call(ops.BMM(), probs, v, name="pv")
    ctx = g.call(ops.Transpose(1, 2), ctx, name="merge_transpose")
    ctx = g.call(ops.Contiguous(), ctx, name="merge_contiguous")
    ctx = g.call(ops.Reshape((batch, seq, dim)), ctx, name="merge_reshape")
    return g.call(ops.Linear(dim, dim, bias=False, dtype=dtype), ctx, name="o_proj")


def llama_ffn(g: Graph, h: Value, dim: int, ffn_dim: int, dtype: DType) -> Value:
    """SiLU-gated feed-forward: down(silu(gate(x)) * up(x))."""
    gate = g.call(ops.Linear(dim, ffn_dim, bias=False, dtype=dtype), h, name="gate_proj")
    gate = g.call(ops.SiLU(), gate, name="act_fn")
    up = g.call(ops.Linear(dim, ffn_dim, bias=False, dtype=dtype), h, name="up_proj")
    fused = g.call(ops.Mul(), gate, up, name="gate_mul")
    return g.call(ops.Linear(ffn_dim, dim, bias=False, dtype=dtype), fused, name="down_proj")


def _apply_rotary(g: Graph, t: Value, cos: Value, sin: Value, label: str) -> Value:
    """Rotary embedding: t*cos + rotate_half(t)*sin.

    ``rotate_half`` is the slice/neg/concat chain whose ``Neg`` op Table I
    captures for Llama-2.
    """
    head_dim = t.spec.shape[-1]
    half = head_dim // 2
    with g.scope(label):
        t_cos = g.call(ops.Mul(), t, cos, name="mul_cos")
        lo = g.call(ops.Slice(-1, 0, half), t, name="slice_lo")
        hi = g.call(ops.Slice(-1, half, head_dim), t, name="slice_hi")
        neg_hi = g.call(ops.Neg(), hi, name="neg")
        rotated = g.call(ops.Concat(-1), neg_hi, lo, name="rotate_cat")
        t_sin = g.call(ops.Mul(), rotated, sin, name="mul_sin")
        out = g.call(ops.Add(), t_cos, t_sin, name="combine")
    return out


def _repeat_kv(
    g: Graph,
    t: Value,
    batch: int,
    kv_heads: int,
    groups: int,
    seq: int,
    head_dim: int,
    label: str,
) -> Value:
    """HF's repeat_kv: unsqueeze -> expand -> reshape (all memory ops)."""
    with g.scope(label):
        t = g.call(ops.Unsqueeze(2), t, name="unsqueeze")
        t = g.call(ops.Expand((batch, kv_heads, groups, seq, head_dim)), t, name="expand")
        t = g.call(ops.Contiguous(), t, name="materialize")
        t = g.call(ops.Reshape((batch, kv_heads * groups, seq, head_dim)), t, name="flatten")
    return t
