"""Graph builders for the NonGEMM Bench model zoo."""

from repro.models import configs
from repro.models.bert import build_bert
from repro.models.detr import build_detr
from repro.models.gpt2 import build_gpt2
from repro.models.llama import build_llama
from repro.models.maskformer import build_maskformer
from repro.models.mixtral import build_mixtral
from repro.models.rcnn import build_faster_rcnn, build_mask_rcnn
from repro.models.registry import (
    PAPER_MODELS,
    ModelEntry,
    TaskDomain,
    build_model,
    get_model,
    list_models,
    register_model,
)
from repro.models.resnet import build_resnet50_backbone
from repro.models.segformer import build_segformer
from repro.models.swin import build_swin, build_swin_stages
from repro.models.vit import build_vit

__all__ = [
    "PAPER_MODELS",
    "ModelEntry",
    "TaskDomain",
    "build_bert",
    "build_detr",
    "build_faster_rcnn",
    "build_gpt2",
    "build_llama",
    "build_mask_rcnn",
    "build_maskformer",
    "build_mixtral",
    "build_model",
    "build_resnet50_backbone",
    "build_segformer",
    "build_swin",
    "build_swin_stages",
    "build_vit",
    "configs",
    "get_model",
    "list_models",
    "register_model",
]
