"""Graph nodes and value references.

A :class:`Node` applies one :class:`~repro.ops.base.Operator` to a list of
input :class:`Value`\\ s and produces one or more output values.  Values are
(node, port) pairs carrying the inferred :class:`~repro.ir.tensor.TensorSpec`,
so multi-output operators such as ``Split`` are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, NamedTuple

from repro.ir.tensor import TensorSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ops.base import Operator


class Value(NamedTuple):
    """A reference to output ``port`` of node ``node_id`` with its spec.

    A NamedTuple rather than a dataclass: values are constructed once per
    graph edge while building multi-billion-parameter models, and tuple
    construction is several times cheaper than a frozen dataclass ``__init__``.
    """

    node_id: int
    port: int
    spec: TensorSpec

    def __str__(self) -> str:
        return f"%{self.node_id}.{self.port}<{self.spec}>"


@dataclass
class Node:
    """One operator application inside a :class:`~repro.ir.graph.Graph`."""

    node_id: int
    op: "Operator"
    inputs: tuple[Value, ...]
    outputs: tuple[TensorSpec, ...]
    name: str
    scope: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        #: True for graph-input nodes (their op is the Input sentinel);
        #: precomputed — executors/planners test this for every node walked.
        self.is_placeholder = self.op.kind == "input"

    def value(self, port: int = 0) -> Value:
        """The :class:`Value` for one of this node's outputs."""
        return Value(self.node_id, port, self.outputs[port])

    def values(self) -> tuple[Value, ...]:
        outputs = self.outputs
        if len(outputs) == 1:  # overwhelmingly common; skip the genexpr
            return (Value(self.node_id, 0, outputs[0]),)
        node_id = self.node_id
        return tuple(Value(node_id, i, spec) for i, spec in enumerate(outputs))

    @property
    def qualified_name(self) -> str:
        """Hierarchical name, e.g. ``encoder.layer3/layer_norm``."""
        return f"{self.scope}/{self.name}" if self.scope else self.name

    def __str__(self) -> str:
        ins = ", ".join(str(v) for v in self.inputs)
        outs = ", ".join(str(s) for s in self.outputs)
        return f"%{self.node_id} = {self.op.kind}({ins}) -> {outs}"
