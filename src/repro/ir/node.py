"""Graph nodes and value references.

A :class:`Node` applies one :class:`~repro.ops.base.Operator` to a list of
input :class:`Value`\\ s and produces one or more output values.  Values are
(node, port) pairs carrying the inferred :class:`~repro.ir.tensor.TensorSpec`,
so multi-output operators such as ``Split`` are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ir.tensor import TensorSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ops.base import Operator


@dataclass(frozen=True)
class Value:
    """A reference to output ``port`` of node ``node_id`` with its spec."""

    node_id: int
    port: int
    spec: TensorSpec

    def __str__(self) -> str:
        return f"%{self.node_id}.{self.port}<{self.spec}>"


@dataclass
class Node:
    """One operator application inside a :class:`~repro.ir.graph.Graph`."""

    node_id: int
    op: "Operator"
    inputs: tuple[Value, ...]
    outputs: tuple[TensorSpec, ...]
    name: str
    scope: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def is_placeholder(self) -> bool:
        """True for graph-input nodes (their op is the Input sentinel)."""
        return self.op.kind == "input"

    def value(self, port: int = 0) -> Value:
        """The :class:`Value` for one of this node's outputs."""
        return Value(self.node_id, port, self.outputs[port])

    def values(self) -> tuple[Value, ...]:
        return tuple(self.value(i) for i in range(len(self.outputs)))

    @property
    def qualified_name(self) -> str:
        """Hierarchical name, e.g. ``encoder.layer3/layer_norm``."""
        return f"{self.scope}/{self.name}" if self.scope else self.name

    def __str__(self) -> str:
        ins = ", ".join(str(v) for v in self.inputs)
        outs = ", ".join(str(s) for s in self.outputs)
        return f"%{self.node_id} = {self.op.kind}({ins}) -> {outs}"
