"""The operator graph: an append-only DAG in topological order.

Graphs are built by model builders (:mod:`repro.models`) through
:meth:`Graph.input` and :meth:`Graph.call`, transformed by deployment flows
(fusion, quantization), and consumed by the executor, simulator, and
profiler.  Because nodes can only reference values created earlier, the node
list is always a valid topological order.
"""

from __future__ import annotations

import contextlib
import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GraphError
from repro.ir.node import Node, Value
from repro.ir.tensor import TensorSpec
from repro.ops.base import InputOp, OpCategory, OpCost, Operator

#: shared zero cost for metadata-only nodes (OpCost is immutable).
_ZERO_COST = OpCost()


def derived_hash(tag: str, parent_hash: str) -> str:
    """The content hash of a graph produced by deterministic derivation.

    Shared by :meth:`Graph.derive_content_hash` and the sweep cache's lazy
    :class:`~repro.sweep.cache.GraphRef`, which must be able to name a
    registry build's hash *without* building the graph.
    """
    return hashlib.blake2b(f"{tag}:{parent_hash}".encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class GraphStats:
    """Aggregate statistics of a graph, used by the workload report."""

    num_nodes: int
    num_inputs: int
    num_params: int
    op_counts: dict[str, int]
    category_counts: dict[OpCategory, int]

    @property
    def gemm_op_count(self) -> int:
        return self.category_counts.get(OpCategory.GEMM, 0)

    @property
    def non_gemm_op_count(self) -> int:
        return sum(c for cat, c in self.category_counts.items() if not cat.is_gemm)


class Graph:
    """A dataflow graph of ML operators.

    ``name`` identifies the model; ``scope`` tracking gives every node a
    hierarchical qualified name (e.g. ``encoder.block3/gelu``) that survives
    into profiling reports.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[Node] = []
        self.input_ids: list[int] = []
        self.outputs: list[Value] = []
        self._scope_parts: list[str] = []
        self._scope_str = ""
        self._name_counts: Counter[tuple[str, str]] = Counter()
        #: memoized structural state; any mutation resets all (see _mutated).
        #: ``_has_memo`` tracks whether any of it is populated, so the
        #: per-append invalidation during bulk construction is one flag read
        #: instead of five attribute writes.
        self._has_memo = False
        self._validated = False
        self._content_hash: str | None = None
        self._consumers: dict[tuple[int, int], list[int]] | None = None
        self._node_costs: list | None = None
        self._compute_nodes: list[Node] | None = None

    # -- construction ------------------------------------------------------

    def input(self, spec: TensorSpec, name: str = "input") -> Value:
        """Add a graph input placeholder and return its value."""
        node = self._append(InputOp(spec, name), (), name)
        self.input_ids.append(node.node_id)
        return node.value()

    def call(self, op: Operator, *args: Value, name: str | None = None) -> Value | tuple[Value, ...]:
        """Apply ``op`` to ``args``; returns one Value, or a tuple for multi-output ops."""
        node = self._append(op, args, name or op.kind)
        outputs = node.outputs
        if len(outputs) == 1:  # overwhelmingly common: skip the tuple round trip
            return Value(node.node_id, 0, outputs[0])
        return node.values()

    def set_outputs(self, *values: Value) -> None:
        for value in values:
            self._check_value(value)
        self.outputs = list(values)
        self._mutated()

    @contextlib.contextmanager
    def scope(self, part: str) -> Iterator[None]:
        """Push a scope component onto the hierarchical name stack."""
        self._scope_parts.append(part)
        self._scope_str = ".".join(self._scope_parts)
        try:
            yield
        finally:
            self._scope_parts.pop()
            self._scope_str = ".".join(self._scope_parts)

    def _append(self, op: Operator, args: Sequence[Value], name: str) -> Node:
        nodes = self.nodes
        count = len(nodes)
        for value in args:
            # inline fast path of _check_value: values minted by Node.value()
            # share the producer's spec object, so bounds + one identity
            # comparison settle the overwhelmingly common case.
            if (
                0 <= value.node_id < count
                and 0 <= value.port < len(nodes[value.node_id].outputs)
                and nodes[value.node_id].outputs[value.port] is value.spec
            ):
                continue
            self._check_value(value)
        out_specs = op.infer_spec([v.spec for v in args])
        node = Node(
            node_id=count,
            op=op,
            inputs=tuple(args),
            outputs=tuple(out_specs),
            name=self._unique_name(name),
            scope=self._scope_str,
        )
        nodes.append(node)
        if self._has_memo:
            self._mutated()
        return node

    def _mutated(self) -> None:
        if not self._has_memo:
            return
        self._has_memo = False
        self._validated = False
        self._content_hash = None
        self._consumers = None
        self._node_costs = None
        self._compute_nodes = None

    def _unique_name(self, base: str) -> str:
        key = (self._scope_str, base)
        count = self._name_counts[key] + 1
        self._name_counts[key] = count
        return base if count == 1 else f"{base}_{count}"

    def _check_value(self, value: Value) -> None:
        if not 0 <= value.node_id < len(self.nodes):
            raise GraphError(f"value {value} references unknown node")
        node = self.nodes[value.node_id]
        if not 0 <= value.port < len(node.outputs):
            raise GraphError(f"value {value} references invalid port of {node}")
        spec = node.outputs[value.port]
        # identity fast path: values minted by Node.value() share the spec object
        if spec is not value.spec and spec != value.spec:
            raise GraphError(f"value {value} spec disagrees with producer {node}")

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def input_nodes(self) -> list[Node]:
        return [self.nodes[i] for i in self.input_ids]

    def materialize(self) -> "Graph":
        """This graph; mirrors :class:`~repro.sweep.cache.GraphRef` so cache
        consumers can handle built graphs and lazy references uniformly."""
        return self

    def compute_nodes(self) -> list[Node]:
        """All nodes except input placeholders (memoized; treat as read-only)."""
        if self._compute_nodes is None:
            self._compute_nodes = [n for n in self.nodes if not n.is_placeholder]
            self._has_memo = True
        return self._compute_nodes

    def consumers(self) -> dict[tuple[int, int], list[int]]:
        """Map (node_id, port) -> ids of nodes consuming that value.

        Memoized until the next mutation; treat the result as read-only
        (fusion and group-cost walk it once per lowered plan).
        """
        if self._consumers is None:
            uses: dict[tuple[int, int], list[int]] = {}
            for node in self.nodes:
                for value in node.inputs:
                    uses.setdefault((value.node_id, value.port), []).append(node.node_id)
            self._consumers = uses
            self._has_memo = True
        return self._consumers

    def node_costs(self) -> list:
        """Per-node unfused :class:`~repro.ops.base.OpCost`, memoized.

        Node costs are pure functions of graph structure but are consulted by
        every flow lowering the graph (placement, fusion grouping, kernel
        construction), so computing them once per structural version removes
        the dominant repeated work of multi-flow/multi-device sweeps.

        Most operators use the stock streaming cost model (inputs in, outputs
        out, zero flops); those are evaluated inline against the memoized
        per-spec byte counts, skipping the method dispatch and the temporary
        spec lists that a generic ``op.cost(...)`` call pays for every node.
        The values are identical to the generic path's — integer sums in a
        different association order.
        """
        if self._node_costs is None:
            default_cost = Operator.cost
            costs: list = []
            append = costs.append
            for node in self.nodes:
                op = node.op
                if type(op).cost is not default_cost:
                    append(op.cost([v.spec for v in node.inputs], list(node.outputs)))
                elif op.is_metadata_only:
                    append(_ZERO_COST)
                else:
                    read = op.weight_bytes()
                    for value in node.inputs:
                        read += value.spec.nbytes
                    written = 0
                    for spec in node.outputs:
                        written += spec.nbytes
                    append(OpCost(0, read, written))
            self._node_costs = costs
            self._has_memo = True
        return self._node_costs

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on violation.

        The full walk runs once per structural version of the graph: a passing
        validation is memoized and any mutation (node append, output change)
        resets the flag, so flows, plans, and executors can all call
        ``validate()`` defensively without paying for repeated walks.
        """
        if self._validated:
            return
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise GraphError(f"node id {node.node_id} at position {i}")
            for value in node.inputs:
                if value.node_id >= i:
                    raise GraphError(f"node {node} consumes a later value {value} (cycle)")
                self._check_value(value)
        if not self.outputs:
            raise GraphError(f"graph {self.name!r} has no outputs")
        for value in self.outputs:
            self._check_value(value)
        self._validated = True
        self._has_memo = True

    def content_hash(self) -> str:
        """Structural fingerprint of the graph, memoized until mutation.

        Covers everything the lowering and cost pipeline reads: per node the
        operator identity (kind, configuration via ``describe``, category,
        kernel-count/custom/metadata flags, weight size summary), input wiring,
        output specs, and qualified name, plus the graph outputs.  Two graphs
        with equal hashes lower to equivalent plans under any flow, which is
        what makes the hash a safe memoization key for
        :class:`~repro.sweep.cache.PlanCache`.
        """
        if self._content_hash is None:
            parts = [self.name]
            for node in self.nodes:
                op = node.op
                parts.append(
                    f"{node.name}|{node.scope}|{op.kind}|{op.describe()}"
                    f"|{op.category.name}"
                    f"|{int(op.is_metadata_only)}{op.eager_kernels}{op.traffic_passes}"
                    f"{int(op.is_custom_kernel)}{int(op.forces_sync)}"
                    f"|{[(v[0], v[1]) for v in node.inputs]}"
                    f"|{[(s.shape, s.dtype.name) for s in node.outputs]}"
                    f"|{op.param_count()},{op.weight_bytes()}"
                )
            parts.append(str([(v[0], v[1]) for v in self.outputs]))
            digest = hashlib.blake2b("\x00".join(parts).encode(), digest_size=16)
            self._content_hash = digest.hexdigest()
            self._has_memo = True
        return self._content_hash

    def derive_content_hash(self, tag: str, parent_hash: str) -> str:
        """Record this graph's content hash as a derivation of a parent's.

        For graphs produced by a *deterministic* transform of a parent graph
        (e.g. the LLM.int8() rewrite), ``hash(tag, parent)`` identifies the
        structure exactly as well as re-walking it, at none of the cost.
        """
        self._content_hash = derived_hash(tag, parent_hash)
        self._has_memo = True
        return self._content_hash

    def stats(self) -> GraphStats:
        op_counts: Counter[str] = Counter()
        category_counts: Counter[OpCategory] = Counter()
        params = 0
        for node in self.compute_nodes():
            op_counts[node.op.kind] += 1
            category_counts[node.op.category] += 1
            params += node.op.param_count()
        return GraphStats(
            num_nodes=len(self.compute_nodes()),
            num_inputs=len(self.input_ids),
            num_params=params,
            op_counts=dict(op_counts),
            category_counts=dict(category_counts),
        )

    def param_count(self) -> int:
        return sum(node.op.param_count() for node in self.nodes)

    def __str__(self) -> str:
        lines = [f"graph {self.name} ({len(self.nodes)} nodes)"]
        lines.extend(f"  {node}" for node in self.nodes)
        outs = ", ".join(str(v) for v in self.outputs)
        lines.append(f"  return {outs}")
        return "\n".join(lines)
