"""The operator graph: an append-only DAG in topological order.

Graphs are built by model builders (:mod:`repro.models`) through
:meth:`Graph.input` and :meth:`Graph.call`, transformed by deployment flows
(fusion, quantization), and consumed by the executor, simulator, and
profiler.  Because nodes can only reference values created earlier, the node
list is always a valid topological order.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GraphError
from repro.ir.node import Node, Value
from repro.ir.tensor import TensorSpec
from repro.ops.base import InputOp, OpCategory, Operator


@dataclass(frozen=True)
class GraphStats:
    """Aggregate statistics of a graph, used by the workload report."""

    num_nodes: int
    num_inputs: int
    num_params: int
    op_counts: dict[str, int]
    category_counts: dict[OpCategory, int]

    @property
    def gemm_op_count(self) -> int:
        return self.category_counts.get(OpCategory.GEMM, 0)

    @property
    def non_gemm_op_count(self) -> int:
        return sum(c for cat, c in self.category_counts.items() if not cat.is_gemm)


class Graph:
    """A dataflow graph of ML operators.

    ``name`` identifies the model; ``scope`` tracking gives every node a
    hierarchical qualified name (e.g. ``encoder.block3/gelu``) that survives
    into profiling reports.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[Node] = []
        self.input_ids: list[int] = []
        self.outputs: list[Value] = []
        self._scope_parts: list[str] = []
        self._name_counts: Counter[str] = Counter()

    # -- construction ------------------------------------------------------

    def input(self, spec: TensorSpec, name: str = "input") -> Value:
        """Add a graph input placeholder and return its value."""
        node = self._append(InputOp(spec, name), (), name)
        self.input_ids.append(node.node_id)
        return node.value()

    def call(self, op: Operator, *args: Value, name: str | None = None) -> Value | tuple[Value, ...]:
        """Apply ``op`` to ``args``; returns one Value, or a tuple for multi-output ops."""
        node = self._append(op, args, name or op.kind)
        values = node.values()
        return values[0] if len(values) == 1 else values

    def set_outputs(self, *values: Value) -> None:
        for value in values:
            self._check_value(value)
        self.outputs = list(values)

    @contextlib.contextmanager
    def scope(self, part: str) -> Iterator[None]:
        """Push a scope component onto the hierarchical name stack."""
        self._scope_parts.append(part)
        try:
            yield
        finally:
            self._scope_parts.pop()

    def _append(self, op: Operator, args: Sequence[Value], name: str) -> Node:
        for value in args:
            self._check_value(value)
        out_specs = op.infer_spec([v.spec for v in args])
        node = Node(
            node_id=len(self.nodes),
            op=op,
            inputs=tuple(args),
            outputs=tuple(out_specs),
            name=self._unique_name(name),
            scope=".".join(self._scope_parts),
        )
        self.nodes.append(node)
        return node

    def _unique_name(self, base: str) -> str:
        key = ".".join(self._scope_parts) + "/" + base
        self._name_counts[key] += 1
        count = self._name_counts[key]
        return base if count == 1 else f"{base}_{count}"

    def _check_value(self, value: Value) -> None:
        if not 0 <= value.node_id < len(self.nodes):
            raise GraphError(f"value {value} references unknown node")
        node = self.nodes[value.node_id]
        if not 0 <= value.port < len(node.outputs):
            raise GraphError(f"value {value} references invalid port of {node}")
        if node.outputs[value.port] != value.spec:
            raise GraphError(f"value {value} spec disagrees with producer {node}")

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def input_nodes(self) -> list[Node]:
        return [self.nodes[i] for i in self.input_ids]

    def compute_nodes(self) -> list[Node]:
        """All nodes except input placeholders."""
        return [n for n in self.nodes if not n.is_placeholder]

    def consumers(self) -> dict[tuple[int, int], list[int]]:
        """Map (node_id, port) -> ids of nodes consuming that value."""
        uses: dict[tuple[int, int], list[int]] = {}
        for node in self.nodes:
            for value in node.inputs:
                uses.setdefault((value.node_id, value.port), []).append(node.node_id)
        return uses

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on violation."""
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise GraphError(f"node id {node.node_id} at position {i}")
            for value in node.inputs:
                if value.node_id >= i:
                    raise GraphError(f"node {node} consumes a later value {value} (cycle)")
                self._check_value(value)
        if not self.outputs:
            raise GraphError(f"graph {self.name!r} has no outputs")
        for value in self.outputs:
            self._check_value(value)

    def stats(self) -> GraphStats:
        op_counts: Counter[str] = Counter()
        category_counts: Counter[OpCategory] = Counter()
        params = 0
        for node in self.compute_nodes():
            op_counts[node.op.kind] += 1
            category_counts[node.op.category] += 1
            params += node.op.param_count()
        return GraphStats(
            num_nodes=len(self.compute_nodes()),
            num_inputs=len(self.input_ids),
            num_params=params,
            op_counts=dict(op_counts),
            category_counts=dict(category_counts),
        )

    def param_count(self) -> int:
        return sum(node.op.param_count() for node in self.nodes)

    def __str__(self) -> str:
        lines = [f"graph {self.name} ({len(self.nodes)} nodes)"]
        lines.extend(f"  {node}" for node in self.nodes)
        outs = ", ".join(str(v) for v in self.outputs)
        lines.append(f"  return {outs}")
        return "\n".join(lines)
