"""The operator graph: an append-only DAG in topological order.

Graphs are built by model builders (:mod:`repro.models`) through
:meth:`Graph.input` and :meth:`Graph.call`, transformed by deployment flows
(fusion, quantization), and consumed by the executor, simulator, and
profiler.  Because nodes can only reference values created earlier, the node
list is always a valid topological order.
"""

from __future__ import annotations

import contextlib
import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GraphError
from repro.ir.node import Node, Value
from repro.ir.tensor import TensorSpec
from repro.ops.base import InputOp, OpCategory, Operator


@dataclass(frozen=True)
class GraphStats:
    """Aggregate statistics of a graph, used by the workload report."""

    num_nodes: int
    num_inputs: int
    num_params: int
    op_counts: dict[str, int]
    category_counts: dict[OpCategory, int]

    @property
    def gemm_op_count(self) -> int:
        return self.category_counts.get(OpCategory.GEMM, 0)

    @property
    def non_gemm_op_count(self) -> int:
        return sum(c for cat, c in self.category_counts.items() if not cat.is_gemm)


class Graph:
    """A dataflow graph of ML operators.

    ``name`` identifies the model; ``scope`` tracking gives every node a
    hierarchical qualified name (e.g. ``encoder.block3/gelu``) that survives
    into profiling reports.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[Node] = []
        self.input_ids: list[int] = []
        self.outputs: list[Value] = []
        self._scope_parts: list[str] = []
        self._scope_str = ""
        self._name_counts: Counter[str] = Counter()
        #: memoized structural state; any mutation resets all (see _mutated).
        self._validated = False
        self._content_hash: str | None = None
        self._consumers: dict[tuple[int, int], list[int]] | None = None
        self._node_costs: list | None = None
        self._compute_nodes: list[Node] | None = None

    # -- construction ------------------------------------------------------

    def input(self, spec: TensorSpec, name: str = "input") -> Value:
        """Add a graph input placeholder and return its value."""
        node = self._append(InputOp(spec, name), (), name)
        self.input_ids.append(node.node_id)
        return node.value()

    def call(self, op: Operator, *args: Value, name: str | None = None) -> Value | tuple[Value, ...]:
        """Apply ``op`` to ``args``; returns one Value, or a tuple for multi-output ops."""
        node = self._append(op, args, name or op.kind)
        values = node.values()
        return values[0] if len(values) == 1 else values

    def set_outputs(self, *values: Value) -> None:
        for value in values:
            self._check_value(value)
        self.outputs = list(values)
        self._mutated()

    @contextlib.contextmanager
    def scope(self, part: str) -> Iterator[None]:
        """Push a scope component onto the hierarchical name stack."""
        self._scope_parts.append(part)
        self._scope_str = ".".join(self._scope_parts)
        try:
            yield
        finally:
            self._scope_parts.pop()
            self._scope_str = ".".join(self._scope_parts)

    def _append(self, op: Operator, args: Sequence[Value], name: str) -> Node:
        for value in args:
            self._check_value(value)
        out_specs = op.infer_spec([v.spec for v in args])
        node = Node(
            node_id=len(self.nodes),
            op=op,
            inputs=tuple(args),
            outputs=tuple(out_specs),
            name=self._unique_name(name),
            scope=self._scope_str,
        )
        self.nodes.append(node)
        self._mutated()
        return node

    def _mutated(self) -> None:
        self._validated = False
        self._content_hash = None
        self._consumers = None
        self._node_costs = None
        self._compute_nodes = None

    def _unique_name(self, base: str) -> str:
        key = self._scope_str + "/" + base
        self._name_counts[key] += 1
        count = self._name_counts[key]
        return base if count == 1 else f"{base}_{count}"

    def _check_value(self, value: Value) -> None:
        if not 0 <= value.node_id < len(self.nodes):
            raise GraphError(f"value {value} references unknown node")
        node = self.nodes[value.node_id]
        if not 0 <= value.port < len(node.outputs):
            raise GraphError(f"value {value} references invalid port of {node}")
        spec = node.outputs[value.port]
        # identity fast path: values minted by Node.value() share the spec object
        if spec is not value.spec and spec != value.spec:
            raise GraphError(f"value {value} spec disagrees with producer {node}")

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def input_nodes(self) -> list[Node]:
        return [self.nodes[i] for i in self.input_ids]

    def compute_nodes(self) -> list[Node]:
        """All nodes except input placeholders (memoized; treat as read-only)."""
        if self._compute_nodes is None:
            self._compute_nodes = [n for n in self.nodes if not n.is_placeholder]
        return self._compute_nodes

    def consumers(self) -> dict[tuple[int, int], list[int]]:
        """Map (node_id, port) -> ids of nodes consuming that value.

        Memoized until the next mutation; treat the result as read-only
        (fusion and group-cost walk it once per lowered plan).
        """
        if self._consumers is None:
            uses: dict[tuple[int, int], list[int]] = {}
            for node in self.nodes:
                for value in node.inputs:
                    uses.setdefault((value.node_id, value.port), []).append(node.node_id)
            self._consumers = uses
        return self._consumers

    def node_costs(self) -> list:
        """Per-node unfused :class:`~repro.ops.base.OpCost`, memoized.

        Node costs are pure functions of graph structure but are consulted by
        every flow lowering the graph (placement, fusion grouping, kernel
        construction), so computing them once per structural version removes
        the dominant repeated work of multi-flow/multi-device sweeps.
        """
        if self._node_costs is None:
            self._node_costs = [
                node.op.cost([v.spec for v in node.inputs], list(node.outputs))
                for node in self.nodes
            ]
        return self._node_costs

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on violation.

        The full walk runs once per structural version of the graph: a passing
        validation is memoized and any mutation (node append, output change)
        resets the flag, so flows, plans, and executors can all call
        ``validate()`` defensively without paying for repeated walks.
        """
        if self._validated:
            return
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise GraphError(f"node id {node.node_id} at position {i}")
            for value in node.inputs:
                if value.node_id >= i:
                    raise GraphError(f"node {node} consumes a later value {value} (cycle)")
                self._check_value(value)
        if not self.outputs:
            raise GraphError(f"graph {self.name!r} has no outputs")
        for value in self.outputs:
            self._check_value(value)
        self._validated = True

    def content_hash(self) -> str:
        """Structural fingerprint of the graph, memoized until mutation.

        Covers everything the lowering and cost pipeline reads: per node the
        operator identity (kind, configuration via ``describe``, category,
        kernel-count/custom/metadata flags, weight size summary), input wiring,
        output specs, and qualified name, plus the graph outputs.  Two graphs
        with equal hashes lower to equivalent plans under any flow, which is
        what makes the hash a safe memoization key for
        :class:`~repro.sweep.cache.PlanCache`.
        """
        if self._content_hash is None:
            parts = [self.name]
            for node in self.nodes:
                op = node.op
                parts.append(
                    f"{node.name}|{node.scope}|{op.kind}|{op.describe()}"
                    f"|{op.category.name}"
                    f"|{int(op.is_metadata_only)}{op.eager_kernels}{op.traffic_passes}"
                    f"{int(op.is_custom_kernel)}{int(op.forces_sync)}"
                    f"|{[(v[0], v[1]) for v in node.inputs]}"
                    f"|{[(s.shape, s.dtype.name) for s in node.outputs]}"
                    f"|{op.param_count()},{op.weight_bytes()}"
                )
            parts.append(str([(v[0], v[1]) for v in self.outputs]))
            digest = hashlib.blake2b("\x00".join(parts).encode(), digest_size=16)
            self._content_hash = digest.hexdigest()
        return self._content_hash

    def derive_content_hash(self, tag: str, parent_hash: str) -> str:
        """Record this graph's content hash as a derivation of a parent's.

        For graphs produced by a *deterministic* transform of a parent graph
        (e.g. the LLM.int8() rewrite), ``hash(tag, parent)`` identifies the
        structure exactly as well as re-walking it, at none of the cost.
        """
        digest = hashlib.blake2b(f"{tag}:{parent_hash}".encode(), digest_size=16)
        self._content_hash = digest.hexdigest()
        return self._content_hash

    def stats(self) -> GraphStats:
        op_counts: Counter[str] = Counter()
        category_counts: Counter[OpCategory] = Counter()
        params = 0
        for node in self.compute_nodes():
            op_counts[node.op.kind] += 1
            category_counts[node.op.category] += 1
            params += node.op.param_count()
        return GraphStats(
            num_nodes=len(self.compute_nodes()),
            num_inputs=len(self.input_ids),
            num_params=params,
            op_counts=dict(op_counts),
            category_counts=dict(category_counts),
        )

    def param_count(self) -> int:
        return sum(node.op.param_count() for node in self.nodes)

    def __str__(self) -> str:
        lines = [f"graph {self.name} ({len(self.nodes)} nodes)"]
        lines.extend(f"  {node}" for node in self.nodes)
        outs = ", ".join(str(v) for v in self.outputs)
        lines.append(f"  return {outs}")
        return "\n".join(lines)
