"""Tensor element types used throughout the IR.

The benchmark models inference-time tensors only, so the set is small:
floating point types used by the deployment flows (fp32/fp16/bf16), the
integer types introduced by quantization and index computation, and bool
for masks.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Element type of a tensor, with its storage width in bytes."""

    F32 = "f32"
    F16 = "f16"
    BF16 = "bf16"
    I8 = "i8"
    I32 = "i32"
    I64 = "i64"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Storage size of one element in bytes."""
        return self._itemsize  # set per member below; avoids a dict lookup
        # (this property is on the nbytes hot path of every cost estimate)

    @property
    def is_floating(self) -> bool:
        return self in (DType.F32, DType.F16, DType.BF16)

    @property
    def is_integer(self) -> bool:
        return self in (DType.I8, DType.I32, DType.I64)

    def to_numpy(self) -> np.dtype:
        """The numpy dtype used for concrete execution of this element type.

        bf16 has no native numpy representation; it executes as float32 while
        keeping its 2-byte width for cost accounting.
        """
        return _NUMPY[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


_ITEMSIZE = {
    DType.F32: 4,
    DType.F16: 2,
    DType.BF16: 2,
    DType.I8: 1,
    DType.I32: 4,
    DType.I64: 8,
    DType.BOOL: 1,
}

for _member in DType:
    _member._itemsize = _ITEMSIZE[_member]

_NUMPY = {
    DType.F32: np.dtype(np.float32),
    DType.F16: np.dtype(np.float16),
    DType.BF16: np.dtype(np.float32),
    DType.I8: np.dtype(np.int8),
    DType.I32: np.dtype(np.int32),
    DType.I64: np.dtype(np.int64),
    DType.BOOL: np.dtype(np.bool_),
}
