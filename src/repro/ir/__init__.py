"""Operator-graph intermediate representation."""

from repro.ir.dtype import DType
from repro.ir.graph import Graph, GraphStats
from repro.ir.node import Node, Value
from repro.ir.tensor import Shape, TensorSpec, broadcast_shapes, normalize_axis

__all__ = [
    "DType",
    "Graph",
    "GraphStats",
    "Node",
    "Shape",
    "TensorSpec",
    "Value",
    "broadcast_shapes",
    "normalize_axis",
]
