"""Static tensor descriptions (shape + dtype) used for graph construction.

A :class:`TensorSpec` is the unit of shape inference: operators map input
specs to output specs without touching data, which lets the simulator reason
about multi-billion-parameter models without materialising tensors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.ir.dtype import DType

Shape = tuple[int, ...]


@dataclass(frozen=True)
class TensorSpec:
    """Shape and element type of one tensor value in the graph."""

    shape: Shape
    dtype: DType = DType.F32

    def __post_init__(self) -> None:
        if not isinstance(self.shape, tuple):
            object.__setattr__(self, "shape", tuple(self.shape))
        for dim in self.shape:
            if not isinstance(dim, int) or dim < 0:
                raise ShapeError(f"invalid dimension {dim!r} in shape {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Number of elements (1 for a scalar / rank-0 tensor)."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes (memoized; specs are immutable and
        shared, and nbytes is consulted by every cost/liveness walk)."""
        try:
            return self._nbytes
        except AttributeError:
            object.__setattr__(self, "_nbytes", self.numel * self.dtype.itemsize)
            return self._nbytes

    def with_shape(self, shape: Shape) -> "TensorSpec":
        return TensorSpec(tuple(shape), self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorSpec":
        return TensorSpec(self.shape, dtype)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"{dims}:{self.dtype.value}"


def broadcast_shapes(a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcast of two shapes.

    Raises :class:`ShapeError` when the shapes are incompatible, mirroring the
    runtime behaviour of elementwise operators.
    """
    result: list[int] = []
    for da, db in zip(_padded(a, b), _padded(b, a)):
        if da == db or db == 1:
            result.append(da)
        elif da == 1:
            result.append(db)
        else:
            raise ShapeError(f"cannot broadcast shapes {a} and {b}")
    return tuple(result)


def _padded(shape: Shape, other: Shape) -> Shape:
    """Left-pad ``shape`` with ones to the rank of the longer of the two."""
    rank = max(len(shape), len(other))
    return (1,) * (rank - len(shape)) + shape


def normalize_axis(axis: int, rank: int) -> int:
    """Convert a possibly-negative axis to a valid positive index."""
    if not -rank <= axis < rank:
        raise ShapeError(f"axis {axis} out of range for rank {rank}")
    return axis % rank
