"""Pluggable batching schedulers behind a registry mirroring ``register_flow()``.

A scheduler owns the waiting queue and decides, at each engine decision
point, what to launch next.  :meth:`BatchScheduler.next_dispatch` returns one
of three verdicts:

* a :class:`Dispatch` — launch these requests now as one batch;
* a ``float`` deadline — nothing launches yet, but re-ask at that time even
  if no new request arrives (dynamic batching's max-wait timer);
* ``None`` — nothing to do until the next arrival.

Four policies ship built in:

* ``fifo``       — no batching: one request per dispatch, strictly in
  arrival order (the paper's per-inference pipeline under load).
* ``static``     — wait until exactly ``max_batch`` requests queue, then
  launch them together (flushing a partial batch only once the trace ends).
* ``dynamic``    — launch when the batch fills *or* the oldest request has
  waited ``max_wait_s``, whichever comes first.
* ``continuous`` — iteration-level batching for autoregressive decode: each
  dispatch is one model iteration over the current in-flight set; requests
  join at iteration boundaries and leave the moment their last decode step
  completes (the Orca/vLLM scheduling discipline).

Batch-level schedulers (everything but ``continuous``) serve a batch until
its *slowest* member finishes: a dispatch runs ``max(decode_steps)``
iterations at full batch cost, which is exactly the head-of-line inefficiency
continuous batching exists to remove.

Schedulers are stateful (they own a queue), so — unlike ``get_flow`` —
:func:`get_scheduler` returns a **fresh instance** per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.serving.trace import Request

#: default scheduler knobs, shared by the CLI and the sweep spec.
DEFAULT_MAX_BATCH = 8
DEFAULT_MAX_WAIT_S = 2e-3


@dataclass(frozen=True)
class Dispatch:
    """One batch launch decision.

    ``size`` is the graph batch dimension the engine prices (one lowered
    plan per distinct size); ``iterations`` is how many sequential model
    iterations the dispatch runs at that size; ``completes`` names the
    member requests that finish when the dispatch ends.  ``barrier`` makes
    the engine advance its scheduling clock to the dispatch's completion
    before asking again — iteration-level schedulers use it so the next
    iteration's membership sees arrivals up to the iteration boundary.
    """

    members: tuple[int, ...]
    size: int
    iterations: int = 1
    completes: tuple[int, ...] = ()
    barrier: bool = False


@dataclass
class BatchScheduler:
    """Base class: queue ownership plus the registry-facing surface."""

    max_batch: int = DEFAULT_MAX_BATCH
    max_wait_s: float = DEFAULT_MAX_WAIT_S
    _queue: list[Request] = field(default_factory=list, repr=False)

    #: registry name; subclasses must override.
    name = ""
    description = ""
    #: name of the columnar fast-path kernel in :mod:`repro.serving.columnar`
    #: that replays this scheduler's decision sequence without driving the
    #: scheduler object itself.  A scheduler opts in by **declaring** this in
    #: its own class body; subclasses that inherit a kernel name but do not
    #: redeclare it run on the reference loop (their overrides could change
    #: the decision sequence the kernel hard-codes).  Deliberately a plain
    #: class attribute, not a dataclass field — it describes the class's
    #: decision algorithm, not per-instance state.
    #:
    #: Declaring a kernel is a **behavioral contract**: the columnar rails
    #: (:mod:`repro.serving.columnar` single-engine closed forms and the
    #: :mod:`repro.serving.columnar_cluster` faulted replay machines)
    #: hard-code this class's launch rules — in particular the post-drain
    #: flush (once the trace is exhausted, partial batches launch at
    #: ``max(host_free, arrival, drain_time)`` with no ``max_wait_s``
    #: deadline) and the pre-drain rules (full batches immediately; dynamic
    #: partials at ``oldest arrival + max_wait_s``; static partials never).
    #: Changing a launch rule here requires updating both rails, and the
    #: bit-identity crosscheck batteries in ``tests/test_columnar*.py`` will
    #: catch any divergence.
    columnar_kernel = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0.0:
            raise ServingError(f"max_wait_s must be >= 0, got {self.max_wait_s}")

    def reset(self) -> None:
        """Drop all queue (and subclass) state before a fresh run."""
        self._queue.clear()

    def admit(self, request: Request) -> None:
        self._queue.append(request)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def has_pending(self) -> bool:
        """Anything queued or in flight that still needs dispatches."""
        return bool(self._queue)

    @property
    def pending_work_steps(self) -> int:
        """Total decode steps queued (plus in flight, for iteration-level
        schedulers) — the cluster router's backlog estimate."""
        return sum(request.decode_steps for request in self._queue)

    def next_dispatch(self, now: float, arrivals_pending: bool) -> "Dispatch | float | None":
        raise NotImplementedError

    def cancel(self, request_id: int) -> bool:
        """Withdraw a request that has not started service (hedge losers,
        timeout retries).  Returns False when the request is unknown or
        already inside a running dispatch — such copies run to completion;
        iteration-level schedulers override this to also drop in-flight
        members at the next batch boundary."""
        for index, request in enumerate(self._queue):
            if request.request_id == request_id:
                del self._queue[index]
                return True
        return False

    def _take(self, count: int) -> tuple[Request, ...]:
        taken = tuple(self._queue[:count])
        del self._queue[:count]
        return taken


class FIFOScheduler(BatchScheduler):
    """No batching: serve one request at a time, in arrival order.

    Dispatches are barriers — the next request starts only when the current
    one completes — so this is the strictly serial per-inference pipeline
    under load: waiting requests pile up in the scheduler queue instead of
    an accelerator-side dispatch queue.
    """

    name = "fifo"
    description = "one request per dispatch, arrival order, no batching"
    columnar_kernel = "fifo"

    def next_dispatch(self, now: float, arrivals_pending: bool) -> "Dispatch | None":
        if not self._queue:
            return None
        (request,) = self._take(1)
        return Dispatch(
            members=(request.request_id,),
            size=1,
            iterations=request.decode_steps,
            completes=(request.request_id,),
            barrier=True,
        )


class StaticBatchScheduler(BatchScheduler):
    """Fixed-size batching: launch only full ``max_batch`` batches.

    A partial batch launches only once the trace is exhausted (there is
    nothing left to wait for); until then the queue simply accumulates.
    """

    name = "static"
    description = "launch only full max_batch batches (flush at end of trace)"
    columnar_kernel = "static"

    def next_dispatch(self, now: float, arrivals_pending: bool) -> "Dispatch | None":
        if not self._queue:
            return None
        if len(self._queue) < self.max_batch and arrivals_pending:
            return None
        members = self._take(min(len(self._queue), self.max_batch))
        ids = tuple(r.request_id for r in members)
        return Dispatch(
            members=ids,
            size=len(members),
            iterations=max(r.decode_steps for r in members),
            completes=ids,
        )


class DynamicBatchScheduler(BatchScheduler):
    """Size-or-deadline batching: launch when full or when the oldest
    request has waited ``max_wait_s`` (the standard serving tradeoff between
    batch efficiency and queueing delay)."""

    name = "dynamic"
    description = "launch when max_batch fills or the oldest waits max_wait_s"
    columnar_kernel = "dynamic"

    def next_dispatch(self, now: float, arrivals_pending: bool) -> "Dispatch | float | None":
        if not self._queue:
            return None
        deadline = self._queue[0].arrival_s + self.max_wait_s
        if len(self._queue) < self.max_batch and now < deadline and arrivals_pending:
            return deadline
        members = self._take(min(len(self._queue), self.max_batch))
        ids = tuple(r.request_id for r in members)
        return Dispatch(
            members=ids,
            size=len(members),
            iterations=max(r.decode_steps for r in members),
            completes=ids,
        )


class ContinuousBatchScheduler(BatchScheduler):
    """Iteration-level batching for autoregressive decode.

    Every dispatch is exactly one model iteration over the in-flight set.
    Waiting requests join whenever a slot (``max_batch``) is free at an
    iteration boundary; a request leaves the moment its own decode steps are
    done, without waiting for the rest of the batch.  Dispatches carry
    ``barrier=True`` so the engine advances its clock to each iteration's
    end — membership decisions always see arrivals up to the boundary.
    """

    name = "continuous"
    description = "iteration-level batching: join/leave at decode-step boundaries"
    columnar_kernel = "continuous"

    def __post_init__(self) -> None:
        super().__post_init__()
        #: request id -> remaining decode steps, in admission order.
        self._in_flight: dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._in_flight.clear()

    @property
    def has_pending(self) -> bool:
        return bool(self._queue) or bool(self._in_flight)

    @property
    def pending_work_steps(self) -> int:
        return super().pending_work_steps + sum(self._in_flight.values())

    def cancel(self, request_id: int) -> bool:
        if request_id in self._in_flight:
            # leaves at the iteration boundary: simply not a member of the
            # next dispatch.
            del self._in_flight[request_id]
            return True
        return super().cancel(request_id)

    def next_dispatch(self, now: float, arrivals_pending: bool) -> "Dispatch | None":
        free_slots = self.max_batch - len(self._in_flight)
        if free_slots > 0 and self._queue:
            for request in self._take(min(free_slots, len(self._queue))):
                self._in_flight[request.request_id] = request.decode_steps
        if not self._in_flight:
            return None
        members = tuple(self._in_flight)
        completes = []
        for request_id in members:
            self._in_flight[request_id] -= 1
            if self._in_flight[request_id] == 0:
                del self._in_flight[request_id]
                completes.append(request_id)
        return Dispatch(
            members=members,
            size=len(members),
            iterations=1,
            completes=tuple(completes),
            barrier=True,
        )


_SCHEDULERS: dict[str, type[BatchScheduler]] = {}


def register_scheduler(
    scheduler_cls: type[BatchScheduler], replace: bool = False
) -> type[BatchScheduler]:
    """Register a batching scheduler class under its ``name``.

    Usable as a decorator on custom schedulers, exactly like
    :func:`repro.flows.register_flow`; registered schedulers are immediately
    available to ``nongemm-bench serve`` and the serving sweep axis.
    """
    key = scheduler_cls.name.lower()
    if not key:
        raise ServingError(f"scheduler {scheduler_cls.__name__} declares no name")
    if key in _SCHEDULERS and not replace:
        raise ServingError(f"scheduler {scheduler_cls.name!r} already registered")
    _SCHEDULERS[key] = scheduler_cls
    return scheduler_cls


for _cls in (
    FIFOScheduler,
    StaticBatchScheduler,
    DynamicBatchScheduler,
    ContinuousBatchScheduler,
):
    register_scheduler(_cls)


def get_scheduler(
    name: str,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_s: float = DEFAULT_MAX_WAIT_S,
) -> BatchScheduler:
    """Instantiate a scheduler by name.

    Returns a **fresh instance** per call (schedulers own mutable queue
    state), unlike the memoized :func:`repro.flows.get_flow`.
    """
    try:
        scheduler_cls = _SCHEDULERS[name.lower()]
    except KeyError:
        raise ServingError(
            f"unknown scheduler {name!r}; known: {list_schedulers()}"
        ) from None
    scheduler = scheduler_cls(max_batch=max_batch, max_wait_s=max_wait_s)
    scheduler.reset()
    return scheduler


def list_schedulers() -> list[str]:
    """Canonical names of all registered schedulers."""
    return sorted(_SCHEDULERS)


def scheduler_entries() -> list[tuple[str, str]]:
    """(name, description) rows for discovery surfaces (CLI, docs)."""
    return [(name, _SCHEDULERS[name].description) for name in list_schedulers()]
