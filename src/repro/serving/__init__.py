"""Discrete-event serving simulation: traces, batching schedulers, metrics.

The per-inference pipeline answers "how long does one forward pass take";
this package answers "what happens under load": seeded arrival traces feed a
deterministic event loop whose batching scheduler and per-device occupancy
model turn the same lowered plans into throughput, tail latency, and
utilization numbers.  See the README's "Serving model" section.
"""

from repro.serving.cost import BatchCost, BatchCostModel, batch_cost_from_simulation
from repro.serving.engine import (
    ServingConfig,
    ServingEngine,
    resolve_serving_target,
    serve_point,
    simulate_serving,
)
from repro.serving.metrics import RequestRecord, ServingResult, nearest_rank
from repro.serving.scheduler import (
    BatchScheduler,
    ContinuousBatchScheduler,
    Dispatch,
    DynamicBatchScheduler,
    FIFOScheduler,
    StaticBatchScheduler,
    get_scheduler,
    list_schedulers,
    register_scheduler,
    scheduler_entries,
)
from repro.serving.trace import (
    Request,
    RequestTrace,
    bursty_trace,
    closed_loop_trace,
    list_traces,
    make_trace,
    poisson_trace,
    register_trace,
)

__all__ = [
    "BatchCost",
    "BatchCostModel",
    "BatchScheduler",
    "ContinuousBatchScheduler",
    "Dispatch",
    "DynamicBatchScheduler",
    "FIFOScheduler",
    "Request",
    "RequestRecord",
    "RequestTrace",
    "ServingConfig",
    "ServingEngine",
    "ServingResult",
    "StaticBatchScheduler",
    "batch_cost_from_simulation",
    "bursty_trace",
    "closed_loop_trace",
    "get_scheduler",
    "list_schedulers",
    "list_traces",
    "make_trace",
    "nearest_rank",
    "poisson_trace",
    "register_scheduler",
    "register_trace",
    "resolve_serving_target",
    "serve_point",
    "simulate_serving",
]
