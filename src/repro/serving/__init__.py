"""Discrete-event serving simulation: traces, batching schedulers, metrics.

The per-inference pipeline answers "how long does one forward pass take";
this package answers "what happens under load": seeded arrival traces feed a
deterministic event loop whose batching scheduler and per-device occupancy
model turn the same lowered plans into throughput, tail latency, and
utilization numbers.  On top of the single engine, :mod:`repro.serving.cluster`
replicates it into a fault-tolerant fleet (admission policies, fault
injection, retries/hedging, admission control).  Both the engine and the
router default to the columnar fast backend (:mod:`repro.serving.columnar`)
— bit-identical to the scalar reference loops, selected by the configs'
``backend`` knob — and both support O(1)-memory streaming metrics behind a
``record_requests`` cap.  See the README's "Serving model", "Cluster &
fault model", and "Scaling the serving simulator" sections.
"""

from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleObservation,
    Autoscaler,
    GoodputAutoscaler,
    StepAutoscaler,
    TargetUtilizationAutoscaler,
    autoscaler_entries,
    get_autoscaler,
    list_autoscalers,
    register_autoscaler,
)
from repro.serving.cluster import (
    AdmissionPolicy,
    ClusterConfig,
    ClusterRouter,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    get_policy,
    list_policies,
    policy_entries,
    register_policy,
    serve_cluster_point,
    simulate_cluster,
)
from repro.serving.columnar import kernel_for, run_fast
from repro.serving.cost import BatchCost, BatchCostModel, batch_cost_from_simulation
from repro.serving.engine import (
    ServingConfig,
    ServingEngine,
    resolve_serving_target,
    serve_point,
    simulate_serving,
)
from repro.serving.faults import (
    ACCEL_LOSS,
    CRASH,
    FaultInjector,
    FaultSchedule,
    FaultWindow,
    fault_profile_entries,
    list_fault_profiles,
    register_fault_profile,
)
from repro.serving.metrics import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_SHED,
    ClusterRequestRecord,
    ClusterResult,
    RequestRecord,
    ScaleEvent,
    ServingResult,
    StreamingQuantile,
    StreamingStats,
    apply_static_lifecycle,
    cap_cluster_result,
    cap_serving_result,
    nearest_rank,
    sample_record_indices,
    streaming_stats,
)
from repro.serving.scheduler import (
    BatchScheduler,
    ContinuousBatchScheduler,
    Dispatch,
    DynamicBatchScheduler,
    FIFOScheduler,
    StaticBatchScheduler,
    get_scheduler,
    list_schedulers,
    register_scheduler,
    scheduler_entries,
)
from repro.serving.trace import (
    Request,
    RequestTrace,
    bursty_trace,
    closed_loop_trace,
    list_traces,
    make_trace,
    poisson_trace,
    register_trace,
    trace_entries,
)

__all__ = [
    "ACCEL_LOSS",
    "CRASH",
    "AdmissionPolicy",
    "AutoscaleConfig",
    "AutoscaleObservation",
    "Autoscaler",
    "BatchCost",
    "BatchCostModel",
    "BatchScheduler",
    "ClusterConfig",
    "ClusterRequestRecord",
    "ClusterResult",
    "ClusterRouter",
    "ContinuousBatchScheduler",
    "Dispatch",
    "DynamicBatchScheduler",
    "FIFOScheduler",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "GoodputAutoscaler",
    "LeastLoadedPolicy",
    "PowerOfTwoPolicy",
    "REQUEST_FAILED",
    "REQUEST_OK",
    "REQUEST_SHED",
    "Request",
    "RequestRecord",
    "RequestTrace",
    "RoundRobinPolicy",
    "ScaleEvent",
    "ServingConfig",
    "ServingEngine",
    "ServingResult",
    "StaticBatchScheduler",
    "StepAutoscaler",
    "StreamingQuantile",
    "StreamingStats",
    "TargetUtilizationAutoscaler",
    "apply_static_lifecycle",
    "autoscaler_entries",
    "batch_cost_from_simulation",
    "bursty_trace",
    "cap_cluster_result",
    "cap_serving_result",
    "closed_loop_trace",
    "fault_profile_entries",
    "get_autoscaler",
    "get_policy",
    "get_scheduler",
    "kernel_for",
    "list_autoscalers",
    "list_fault_profiles",
    "list_policies",
    "list_schedulers",
    "list_traces",
    "make_trace",
    "nearest_rank",
    "poisson_trace",
    "run_fast",
    "sample_record_indices",
    "streaming_stats",
    "policy_entries",
    "register_autoscaler",
    "register_fault_profile",
    "register_policy",
    "register_scheduler",
    "register_trace",
    "resolve_serving_target",
    "serve_cluster_point",
    "serve_point",
    "simulate_cluster",
    "simulate_serving",
    "trace_entries",
]
