"""Feedback autoscalers for the replicated serving fleet.

An :class:`Autoscaler` is a control loop evaluated at a fixed interval
inside the :class:`~repro.serving.cluster.ClusterRouter` event loop: it
observes one window of fleet telemetry (arrivals, completions, busy time,
queue depth) and returns the replica count it *wants*; the router clamps
the answer to ``[min_replicas, max_replicas]``, applies a cooldown, and
turns the delta into elastic lifecycle events — scale-up provisions an
offline replica (online after ``provision_delay_s``, cold: empty queue,
fresh clocks), scale-down drains the highest-index serving replica (stops
admitting, finishes its backlog, then goes offline).

Controllers are registered under a name exactly like admission policies
(:func:`~repro.serving.cluster.register_policy`) and batch schedulers
(:func:`~repro.serving.scheduler.register_scheduler`):
:func:`register_autoscaler` is usable as a decorator, and registered
controllers are immediately available to ``nongemm-bench cluster
--autoscaler`` and the sweep ``autoscaler`` axis.

Determinism: a controller sees only the :class:`AutoscaleObservation` the
router hands it and must return a pure function of it — no randomness, no
wall clock — so cluster runs replay bit-identically across processes
(pinned by the pool-determinism tests).  Three controllers ship built in:

* ``target-utilization`` — proportional control toward a busy-fraction
  set-point with a deadband.
* ``goodput``            — SLO feedback: scales on the windowed p99 versus
  the deadline, with a backlog override when nothing completes at all.
* ``step``               — hysteresis: one replica up above
  ``up_threshold`` utilization, one down below ``down_threshold``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ServingError
from repro.serving.metrics import nearest_rank


@dataclass(frozen=True)
class AutoscaleConfig:
    """One autoscaling scenario: controller, bounds, and timing knobs."""

    #: registered controller name (``list_autoscalers()``).
    controller: str
    #: fleet-size bounds; ``max_replicas`` must equal the number of
    #: provisioned platforms in the cluster config (the ceiling is the
    #: hardware that exists, the floor is what always stays online).
    min_replicas: int = 1
    max_replicas: int = 8
    #: replicas online at t=0; ``None`` starts at ``min_replicas``.
    initial_replicas: int | None = None
    #: controller evaluation period (one observation window per interval).
    interval_s: float = 0.1
    #: minimum time between scale *actions*; evaluations inside the
    #: cooldown observe but do not act.  0 disables.
    cooldown_s: float = 0.0
    #: cold-start delay between a scale-up decision and the replica
    #: admitting work.  Replica-seconds cost accrues from the decision.
    provision_delay_s: float = 0.1
    #: busy-fraction set-point for ``target-utilization``.
    target_utilization: float = 0.6
    #: half-width of the no-action band around the set-point.
    deadband: float = 0.1
    #: ``step`` controller thresholds (hysteresis gap between them).
    up_threshold: float = 0.75
    down_threshold: float = 0.25
    #: latency SLO for ``goodput``; ``None`` falls back to the cluster's
    #: ``deadline_s`` (the router resolves this before the run).
    slo_s: float | None = None
    #: ``goodput`` scales down only when the windowed p99 sits below
    #: ``slo_margin * slo_s`` — the gap is the hysteresis that keeps the
    #: controller from surrendering capacity it just acquired.
    slo_margin: float = 0.5

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ServingError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ServingError(
                f"max_replicas ({self.max_replicas}) must be >="
                f" min_replicas ({self.min_replicas})"
            )
        if self.initial_replicas is not None and not (
            self.min_replicas <= self.initial_replicas <= self.max_replicas
        ):
            raise ServingError(
                f"initial_replicas ({self.initial_replicas}) must lie in"
                f" [{self.min_replicas}, {self.max_replicas}]"
            )
        for knob, value in (
            ("interval_s", self.interval_s),
            ("provision_delay_s", self.provision_delay_s),
        ):
            if value <= 0.0:
                raise ServingError(f"{knob} must be positive, got {value}")
        if self.cooldown_s < 0.0:
            raise ServingError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        for knob, value in (
            ("target_utilization", self.target_utilization),
            ("up_threshold", self.up_threshold),
            ("down_threshold", self.down_threshold),
        ):
            if not 0.0 < value <= 1.0:
                raise ServingError(
                    f"{knob} must be in (0, 1], got {value}"
                )
        if self.deadband < 0.0:
            raise ServingError(f"deadband must be >= 0, got {self.deadband}")
        if self.down_threshold >= self.up_threshold:
            raise ServingError(
                f"down_threshold ({self.down_threshold}) must be below"
                f" up_threshold ({self.up_threshold})"
            )
        if self.slo_s is not None and self.slo_s <= 0.0:
            raise ServingError(f"slo_s must be positive, got {self.slo_s}")
        if not 0.0 < self.slo_margin <= 1.0:
            raise ServingError(
                f"slo_margin must be in (0, 1], got {self.slo_margin}"
            )

    @property
    def start_replicas(self) -> int:
        """Replicas online at t=0 (``initial_replicas`` or the floor)."""
        if self.initial_replicas is not None:
            return self.initial_replicas
        return self.min_replicas


class AutoscaleObservation(NamedTuple):
    """One evaluation window of fleet telemetry, as the controller sees it.

    ``busy_s`` is the bottleneck-device busy time folded from dispatches
    that *completed* inside the window; ``latencies_s`` are end-to-end
    request latencies (completion minus trace arrival) in completion
    order.  ``queue_depth`` is the total backlog across serving replicas
    at evaluation time.
    """

    start_s: float
    end_s: float
    #: replicas online and not draining at evaluation time (crashed-but-
    #: provisioned replicas still count: the controller manages capacity
    #: it pays for, fault windows are the injector's business).
    active_replicas: int
    arrivals: int
    arrival_steps: int
    completions: int
    latencies_s: tuple[float, ...]
    busy_s: float
    queue_depth: int
    #: batch-1 latency of the fleet's reference replica — the time scale
    #: controllers can use to normalize backlog into seconds.
    unit_latency_s: float

    @property
    def interval_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def utilization(self) -> float:
        """Mean busy fraction per active replica over the window."""
        window = self.interval_s * self.active_replicas
        if window <= 0.0:
            return 0.0
        return self.busy_s / window

    @property
    def p99_s(self) -> float:
        """Windowed nearest-rank p99 of the completed-request latencies."""
        if not self.latencies_s:
            return 0.0
        return nearest_rank(sorted(self.latencies_s), 0.99)


class Autoscaler:
    """Base class: map one observation window to a desired replica count.

    Like schedulers and policies, controllers may hold state between
    evaluations (an error integrator, a trend estimate), so
    :func:`get_autoscaler` returns a fresh instance per call and the
    router calls :meth:`reset` before every run.  The return value of
    :meth:`desired_replicas` is clamped to the configured bounds by the
    router — controllers express intent, the router enforces limits.
    """

    #: registry name; subclasses must override.
    name = ""
    description = ""

    def reset(self, config: AutoscaleConfig) -> None:
        """Bind the run's config and drop instance state."""
        self._config = config

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        raise NotImplementedError


class TargetUtilizationAutoscaler(Autoscaler):
    """Proportional control toward a busy-fraction set-point.

    Desired capacity is ``active * utilization / target`` (rounded up) —
    the fleet size at which the observed work would sit exactly on the
    set-point.  A deadband around the target absorbs measurement ripple
    so steady load does not flap the fleet.
    """

    name = "target-utilization"
    description = "proportional control toward a busy-fraction set-point"

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        config = self._config
        utilization = obs.utilization
        if abs(utilization - config.target_utilization) <= config.deadband:
            return obs.active_replicas
        return math.ceil(
            obs.active_replicas * utilization / config.target_utilization
        )


class GoodputAutoscaler(Autoscaler):
    """SLO feedback: track the windowed p99 against the latency deadline.

    Above the SLO the controller adds capacity proportional to the
    overshoot (at least one replica); when nothing completes at all but
    work is queued — the saturated-cold-start regime where utilization
    controllers see 0% busy — it still steps up.  It surrenders a replica
    only when the p99 sits below ``slo_margin * slo_s`` *and* the backlog
    is no deeper than the fleet, so the scale-down hysteresis is wide.
    """

    name = "goodput"
    description = "scale on windowed p99 vs. the latency SLO (deadline)"

    def reset(self, config: AutoscaleConfig) -> None:
        super().reset(config)
        if config.slo_s is None:
            raise ServingError(
                "the goodput autoscaler needs an SLO: set autoscale slo_s"
                " or the cluster deadline_s"
            )

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        config = self._config
        slo = config.slo_s
        if obs.completions == 0:
            if obs.queue_depth > 0:
                return obs.active_replicas + 1
            return obs.active_replicas
        p99 = obs.p99_s
        if p99 > slo:
            overshoot = min(p99 / slo - 1.0, 1.0)
            step = math.ceil(obs.active_replicas * overshoot)
            return obs.active_replicas + max(1, step)
        if (
            p99 <= config.slo_margin * slo
            and obs.queue_depth <= obs.active_replicas
        ):
            return obs.active_replicas - 1
        return obs.active_replicas


class StepAutoscaler(Autoscaler):
    """One-replica steps with utilization hysteresis.

    The simplest production pattern: above ``up_threshold`` add one
    replica, below ``down_threshold`` remove one, hold in between.  The
    gap between the thresholds is the hysteresis that prevents limit
    cycles; the config validator enforces it is positive.
    """

    name = "step"
    description = "one replica up/down across utilization thresholds"

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        config = self._config
        utilization = obs.utilization
        if utilization > config.up_threshold:
            return obs.active_replicas + 1
        if utilization < config.down_threshold:
            return obs.active_replicas - 1
        return obs.active_replicas


_AUTOSCALERS: dict[str, type[Autoscaler]] = {}


def register_autoscaler(
    autoscaler_cls: type[Autoscaler], replace: bool = False
) -> type[Autoscaler]:
    """Register an autoscaler class under its ``name``.

    Usable as a decorator on custom controllers, exactly like
    :func:`~repro.serving.cluster.register_policy`.
    """
    key = autoscaler_cls.name.lower()
    if not key:
        raise ServingError(
            f"autoscaler {autoscaler_cls.__name__} declares no name"
        )
    if key in _AUTOSCALERS and not replace:
        raise ServingError(f"autoscaler {autoscaler_cls.name!r} already registered")
    _AUTOSCALERS[key] = autoscaler_cls
    return autoscaler_cls


for _cls in (TargetUtilizationAutoscaler, GoodputAutoscaler, StepAutoscaler):
    register_autoscaler(_cls)


def get_autoscaler(name: str) -> Autoscaler:
    """Instantiate a controller by name — a fresh instance per call."""
    try:
        autoscaler_cls = _AUTOSCALERS[name.lower()]
    except KeyError:
        raise ServingError(
            f"unknown autoscaler {name!r}; known: {list_autoscalers()}"
        ) from None
    return autoscaler_cls()


def list_autoscalers() -> list[str]:
    """Canonical names of all registered autoscalers."""
    return sorted(_AUTOSCALERS)


def autoscaler_entries() -> list[tuple[str, str]]:
    """(name, description) rows for discovery surfaces (CLI, docs)."""
    return [(name, _AUTOSCALERS[name].description) for name in list_autoscalers()]
