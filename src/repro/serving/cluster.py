"""Fault-tolerant multi-replica serving: a router over N engine replicas.

A :class:`ClusterRouter` places N :class:`~repro.serving.engine.ServingEngine`
replicas — possibly on different registered platforms — behind a pluggable
admission policy, and serves a request trace through them under injected
faults (see :mod:`repro.serving.faults`).  All replicas share one
``PlanCache``/:class:`~repro.serving.cost.BatchCostModel` resolver, so a
homogeneous fleet lowers each batch size exactly once.

Robustness mechanisms, all deterministic:

* **timeout retries** — every primary copy arms a per-request timeout; when
  it fires and the copy is lost (replica crashed) or still queued, the
  request is re-admitted on a different alive replica with a capped
  exponentially backed-off timeout, up to ``max_retries`` re-admissions.
  Copies already in service on a live replica are left to finish (the timer
  re-arms so a *later* crash is still detected).
* **hedged dispatch** — optionally, a duplicate copy is admitted to a second
  replica once the primary has been outstanding for ``hedge_after_s``.  The
  first completion wins; the loser is withdrawn at the next batch boundary
  via :meth:`~repro.serving.scheduler.BatchScheduler.cancel` (a loser
  already inside a running dispatch finishes and is ignored).
* **graceful degradation** — with ``shed_queue_s`` set, an arrival whose
  chosen replica's estimated queue delay exceeds the threshold is rejected
  up front (status ``shed``) instead of blowing the tail for everyone.

The equivalence safety rail: a single-replica cluster with the ``none``
fault profile and no timeout/hedge/shed knobs reproduces the plain
:class:`~repro.serving.engine.ServingEngine` **bit-identically** (same
records, same float accumulations) for every registered scheduler — the
event loop mirrors the engine's launch arithmetic operation for operation,
and per-dispatch accounting folds at completion in launch order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ServingError
from repro.hardware.device import DeviceKind
from repro.hardware.platform import get_platform
from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleObservation,
    get_autoscaler,
)
from repro.serving.cost import BatchCostModel
from repro.serving.engine import ServingConfig, ServingEngine, resolve_serving_target
from repro.serving.faults import CRASH, FaultInjector
from repro.serving.metrics import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_SHED,
    ClusterRequestRecord,
    ClusterResult,
    RequestRecord,
    ScaleEvent,
    ServingResult,
    apply_static_lifecycle,
    cap_cluster_result,
)
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_S,
    BatchScheduler,
    Dispatch,
    get_scheduler,
)
from repro.serving.trace import Request, RequestTrace
from repro.sweep.cache import PlanCache

_PENDING = "pending"

#: event-heap priorities: canonical processing order at equal times.
_PRIO_FAULT = 0
_PRIO_COMPLETE = 1
_PRIO_ARRIVE = 2
_PRIO_RETRY = 3
_PRIO_HEDGE = 4
#: controller evaluations run after every same-instant arrival/completion
#: so the observation window includes its own boundary.  Replica-online
#: transitions ride _PRIO_FAULT like the fault windows they compose with.
_PRIO_SCALE = 5


# -- admission policies -------------------------------------------------------


class AdmissionPolicy:
    """Base class: pick which alive replica admits the next request.

    ``choose`` receives the alive candidates in replica-index order and the
    router's seeded generator (used only by randomized policies, so
    deterministic policies never perturb the stream).  Policies are stateful
    (round-robin holds a cursor), so — like schedulers — :func:`get_policy`
    returns a fresh instance per call.
    """

    #: registry name; subclasses must override.
    name = ""
    description = ""

    #: does ``choose`` read ``est_delay_s`` from its candidates?  The
    #: columnar faulted rail advances candidate machines before probing
    #: policies so load estimates reflect every launch decided so far;
    #: policies that pick by index or coin flip declare False and skip
    #: that work.  Conservative default: True.
    probes_load = True

    def reset(self, num_replicas: int) -> None:
        """Drop instance state before a fresh run."""

    def choose(
        self,
        now: float,
        candidates: "list[_Replica]",
        rng: np.random.Generator,
    ) -> "_Replica":
        raise NotImplementedError


class RoundRobinPolicy(AdmissionPolicy):
    """Rotate through replicas in index order, skipping dead ones."""

    name = "round-robin"
    description = "rotate through alive replicas in index order"
    probes_load = False

    def reset(self, num_replicas: int) -> None:
        self._cursor = 0

    def choose(self, now, candidates, rng):
        chosen = None
        for replica in candidates:
            if replica.index >= self._cursor:
                chosen = replica
                break
        if chosen is None:
            chosen = candidates[0]
        self._cursor = chosen.index + 1
        return chosen


class LeastLoadedPolicy(AdmissionPolicy):
    """Admit to the replica with the smallest estimated queue delay.

    The estimate is in *seconds* (device-busy horizon plus queued decode
    steps at the replica's current batch-1 latency), so heterogeneous
    fleets route by actual speed, not just queue length.
    """

    name = "least-loaded"
    description = "smallest estimated queue delay (seconds; ties to lowest index)"

    def choose(self, now, candidates, rng):
        return min(candidates, key=lambda r: (r.est_delay_s(now), r.index))


class PowerOfTwoPolicy(AdmissionPolicy):
    """Sample two distinct alive replicas, admit to the less loaded one.

    The classic load-balancing result: two random choices get most of the
    benefit of full load knowledge at a fraction of the probe cost.  Draws
    come from the router's seeded generator, so runs replay exactly.
    """

    name = "power-of-two-choices"
    description = "pick 2 random alive replicas, admit to the less loaded"

    def choose(self, now, candidates, rng):
        if len(candidates) == 1:
            return candidates[0]
        i, j = sorted(
            int(x) for x in rng.choice(len(candidates), size=2, replace=False)
        )
        first, second = candidates[i], candidates[j]
        if second.est_delay_s(now) < first.est_delay_s(now):
            return second
        return first


_POLICIES: dict[str, type[AdmissionPolicy]] = {}


def register_policy(
    policy_cls: type[AdmissionPolicy], replace: bool = False
) -> type[AdmissionPolicy]:
    """Register an admission policy class under its ``name``.

    Usable as a decorator on custom policies, exactly like
    :func:`repro.serving.scheduler.register_scheduler`; registered policies
    are immediately available to ``nongemm-bench cluster`` and the sweep
    ``policy`` axis.
    """
    key = policy_cls.name.lower()
    if not key:
        raise ServingError(f"policy {policy_cls.__name__} declares no name")
    if key in _POLICIES and not replace:
        raise ServingError(f"policy {policy_cls.name!r} already registered")
    _POLICIES[key] = policy_cls
    return policy_cls


for _cls in (RoundRobinPolicy, LeastLoadedPolicy, PowerOfTwoPolicy):
    register_policy(_cls)


def get_policy(name: str) -> AdmissionPolicy:
    """Instantiate a policy by name — a fresh instance per call."""
    try:
        policy_cls = _POLICIES[name.lower()]
    except KeyError:
        raise ServingError(
            f"unknown policy {name!r}; known: {list_policies()}"
        ) from None
    return policy_cls()


def list_policies() -> list[str]:
    """Canonical names of all registered admission policies."""
    return sorted(_POLICIES)


def policy_entries() -> list[tuple[str, str]]:
    """(name, description) rows for discovery surfaces (CLI, docs)."""
    return [(name, _POLICIES[name].description) for name in list_policies()]


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster scenario: fleet shape, policy, faults, robustness knobs."""

    model: str
    flow: str = "pytorch"
    #: one platform id per replica (repeat an id for a homogeneous fleet).
    platforms: tuple[str, ...] = ("A", "A")
    device: str = "gpu"
    scheduler: str = "dynamic"
    policy: str = "round-robin"
    max_batch: int = DEFAULT_MAX_BATCH
    max_wait_s: float = DEFAULT_MAX_WAIT_S
    seq_len: int | None = None
    fault_profile: str = "none"
    fault_seed: int = 0
    #: seeds the router generator randomized policies draw from.
    policy_seed: int = 0
    #: per-request timeout before a queued/lost copy is re-routed; doubles
    #: per retry up to ``timeout_cap_s``.  Required when the fault profile
    #: produces crash windows (lost work is only ever detected by timeout).
    timeout_s: float | None = None
    max_retries: int = 3
    timeout_cap_s: float | None = None
    #: hedge delay: duplicate the request to a second replica once the
    #: primary has been outstanding this long.  ``None`` disables hedging.
    hedge_after_s: float | None = None
    #: admission-control threshold on estimated queue delay; ``None``
    #: disables shedding.
    shed_queue_s: float | None = None
    #: goodput deadline recorded on the result (``None``: any completion).
    deadline_s: float | None = None
    #: ``"fast"`` advances arrivals in chunks over the trace columns (no
    #: per-arrival heap events, no ``Request`` list); ``"reference"`` pushes
    #: every arrival through the event heap.  Results are bit-identical —
    #: arrivals are the only priority-2 events, so a cursor merged against
    #: the heap head preserves the exact event order.
    backend: str = "fast"
    #: cap on materialized records (cluster-level and per-replica); ``None``
    #: keeps full record lists.  See :attr:`ServingConfig.record_requests`.
    record_requests: int | None = None
    #: elastic fleet control (see :mod:`repro.serving.autoscale`); ``None``
    #: keeps every provisioned replica online for the whole run.  The
    #: controller's ``max_replicas`` must equal ``len(platforms)`` — the
    #: platforms tuple is the hardware ceiling the controller scales within.
    autoscale: AutoscaleConfig | None = None

    def __post_init__(self) -> None:
        if not self.platforms:
            raise ServingError("cluster needs at least one replica platform")
        if self.autoscale is not None:
            if self.autoscale.max_replicas != len(self.platforms):
                raise ServingError(
                    f"autoscale max_replicas ({self.autoscale.max_replicas})"
                    f" must equal the provisioned fleet size"
                    f" ({len(self.platforms)} platforms)"
                )
        if self.backend not in ("fast", "reference"):
            raise ServingError(
                f"unknown cluster backend {self.backend!r};"
                " expected 'fast' or 'reference'"
            )
        if self.record_requests is not None and self.record_requests < 1:
            raise ServingError(
                f"record_requests must be >= 1, got {self.record_requests}"
            )
        if self.max_retries < 0:
            raise ServingError(f"max_retries must be >= 0, got {self.max_retries}")
        for knob, value in (
            ("timeout_s", self.timeout_s),
            ("timeout_cap_s", self.timeout_cap_s),
            ("hedge_after_s", self.hedge_after_s),
            ("shed_queue_s", self.shed_queue_s),
            ("deadline_s", self.deadline_s),
        ):
            if value is not None and value <= 0.0:
                raise ServingError(f"{knob} must be positive, got {value}")


# -- internal state -----------------------------------------------------------


class _Copy:
    """One admission of a request onto one replica."""

    __slots__ = ("replica", "admitted_s", "started", "lost")

    def __init__(self, replica: int, admitted_s: float):
        self.replica = replica
        self.admitted_s = admitted_s
        #: has this copy appeared in a launched dispatch's members?
        self.started = False
        #: did the holding replica crash while this copy was incomplete?
        self.lost = False


class _Tracked:
    """Router-side lifecycle of one trace request."""

    __slots__ = (
        "request",
        "status",
        "attempts",
        "timeout_s",
        "completion_s",
        "winner_replica",
        "hedged",
        "hedge_won",
        "primary",
        "hedge",
    )

    def __init__(self, request: Request, timeout_s: float | None):
        self.request = request
        self.status = _PENDING
        self.attempts = 0
        self.timeout_s = timeout_s
        self.completion_s: float | None = None
        self.winner_replica = -1
        self.hedged = False
        self.hedge_won = False
        self.primary: _Copy | None = None
        self.hedge: _Copy | None = None


class _InFlight:
    """One launched dispatch whose accounting folds at completion."""

    __slots__ = (
        "end_s",
        "members",
        "completes",
        "size",
        "iterations",
        "busy",
        "energy",
        "gemm",
        "non_gemm",
        "weighted",
        "cancelled",
    )

    def __init__(self, end_s, members, completes, size, iterations, busy, energy, gemm, non_gemm):
        self.end_s = end_s
        self.members = members
        self.completes = completes
        self.size = size
        self.iterations = iterations
        self.busy = busy
        self.energy = energy
        self.gemm = gemm
        self.non_gemm = non_gemm
        self.weighted = size * iterations
        self.cancelled = False


class _Replica:
    """Mutable per-run state of one replica, wrapping its engine."""

    __slots__ = (
        "index",
        "engine",
        "scheduler",
        "costs",
        "down",
        "accel_down",
        "online",
        "draining",
        "provisioning",
        "cost_spans",
        "active_spans",
        "host_free",
        "accel_free",
        "ready_s",
        "wake_s",
        "starts",
        "completions",
        "admitted",
        "busy",
        "energy",
        "gemm_busy",
        "non_gemm_busy",
        "depth_samples",
        "dispatches",
        "iterations_run",
        "weighted_size",
        "inflight",
        "completion_ends",
        "_fallback_costs",
        "_cache",
    )

    def __init__(self, index: int, engine: ServingEngine, scheduler: BatchScheduler, cache: PlanCache | None):
        self.index = index
        self.engine = engine
        self.scheduler = scheduler
        self.costs = engine.costs
        self._fallback_costs: BatchCostModel | None = None
        self._cache = cache
        self.down = False
        self.accel_down = False
        #: elastic lifecycle (autoscaled runs flip these; fixed fleets
        #: keep every replica online and never draining).
        self.online = True
        self.draining = False
        self.provisioning = False
        #: paid spans [decision, offline) and active spans [online,
        #: offline), closed at drain completion or end of run.
        self.cost_spans: list[list[float]] = []
        self.active_spans: list[list[float]] = []
        self.host_free = 0.0
        self.accel_free: dict[DeviceKind, float] = {}
        self.ready_s = 0.0
        self.wake_s: float | None = None
        self.starts: dict[int, float] = {}
        self.completions: dict[int, tuple[float, int]] = {}
        #: request id -> (arrival of the copy this replica last admitted, steps).
        self.admitted: dict[int, tuple[float, int]] = {}
        self.busy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.energy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.gemm_busy = 0.0
        self.non_gemm_busy = 0.0
        self.depth_samples: list[tuple[float, int]] = []
        self.dispatches = 0
        self.iterations_run = 0
        self.weighted_size = 0
        self.inflight: list[_InFlight] = []
        #: dispatch end times in fold order — the recovery metric's clock.
        self.completion_ends: list[float] = []

    def fallback_costs(self) -> BatchCostModel:
        """Host-CPU cost model for accelerator-loss windows (built lazily,
        through the same shared cache)."""
        if self.engine.target is DeviceKind.CPU:
            return self.engine.costs
        if self._fallback_costs is None:
            platform, target = resolve_serving_target(
                get_platform(self.engine.config.platform), DeviceKind.CPU
            )
            self._fallback_costs = BatchCostModel(
                model=self.engine.config.model,
                flow=self.engine.flow,
                platform=platform,
                target=target,
                seq_len=self.engine.config.seq_len,
                cache=self._cache,
            )
        return self._fallback_costs

    def unit_latency_s(self) -> float:
        """Batch-1 latency under the replica's *current* cost model."""
        return self.costs.cost(1).total_s

    def est_delay_s(self, now: float) -> float:
        """Estimated queueing delay for a request admitted at ``now``:
        device-busy horizon plus queued decode steps at batch-1 latency."""
        horizon = self.host_free
        for t in self.accel_free.values():
            if t > horizon:
                horizon = t
        backlog = self.scheduler.pending_work_steps * self.unit_latency_s()
        delay = horizon - now
        if delay < 0.0:
            delay = 0.0
        return delay + backlog

    @property
    def serving(self) -> bool:
        """Provisioned to admit work: online and not draining.  Crash
        state is tracked separately in ``down`` — a crashed serving
        replica rejoins admission when its fault window clears."""
        return self.online and not self.draining


def _clipped_span_sum(
    spans: "list[list[float]]", start: float, end: float
) -> float:
    """Sum of span widths intersected with ``[start, end]``, accumulated
    in span order (deterministic float fold)."""
    total = 0.0
    for lo, hi in spans:
        width = min(hi, end) - max(lo, start)
        if width > 0.0:
            total += width
    return total


# -- the router ---------------------------------------------------------------


class ClusterRouter:
    """Deterministic discrete-event simulation of a replicated fleet."""

    def __init__(self, config: ClusterConfig, cache: PlanCache | None = None):
        self.config = config
        self.cache = cache
        get_policy(config.policy)  # fail fast on unknown names
        if config.autoscale is not None:
            get_autoscaler(config.autoscale.controller)
        self.engines = [
            ServingEngine(
                ServingConfig(
                    model=config.model,
                    flow=config.flow,
                    platform=platform_id,
                    device=config.device,
                    scheduler=config.scheduler,
                    max_batch=config.max_batch,
                    max_wait_s=config.max_wait_s,
                    seq_len=config.seq_len,
                ),
                cache=cache,
            )
            for platform_id in config.platforms
        ]

    def fleet_capacity_rps(self) -> float:
        """Aggregate single-stream capacity: sum of 1 / batch-1 latency."""
        return sum(1.0 / engine.base_latency_s() for engine in self.engines)

    def run(
        self, trace: RequestTrace, offered_rate_rps: float | None = None
    ) -> ClusterResult:
        """Serve ``trace`` through the fleet under the configured faults."""
        config = self.config
        result = ClusterResult(
            model=config.model,
            flow=self.engines[0].flow.name,
            device=config.device,
            scheduler=config.scheduler,
            policy=config.policy,
            trace=trace.name,
            fault_profile=config.fault_profile,
            platform_ids=config.platforms,
            offered_rate_rps=(
                trace.offered_rate_rps if offered_rate_rps is None else offered_rate_rps
            ),
            deadline_s=config.deadline_s,
        )
        if trace.num_requests == 0:
            result.backend_used = "reference"
            if config.backend == "fast":
                result.fast_path_fallback_reason = "empty trace"
            return apply_static_lifecycle(result)
        arrival_times = trace.arrival_column().tolist()
        request_ids = trace.id_column().tolist()
        decode_counts = trace.decode_column().tolist()

        replicas = [
            _Replica(
                index,
                engine,
                get_scheduler(
                    config.scheduler,
                    max_batch=config.max_batch,
                    max_wait_s=config.max_wait_s,
                ),
                self.cache,
            )
            for index, engine in enumerate(self.engines)
        ]
        horizon_s = arrival_times[-1] + 4.0 * self.engines[0].base_latency_s()
        injector = FaultInjector(
            config.fault_profile,
            len(replicas),
            horizon_s,
            seed=config.fault_seed,
        )
        if config.timeout_s is None and any(
            w.kind == CRASH for w in injector.schedule.windows
        ):
            raise ServingError(
                f"fault profile {config.fault_profile!r} produces crash windows;"
                " set timeout_s so lost requests can be re-routed"
            )
        policy = get_policy(config.policy)
        policy.reset(len(replicas))
        policy_rng = np.random.default_rng(config.policy_seed)

        auto = config.autoscale
        autoscaler = None
        if auto is not None:
            if auto.slo_s is None and config.deadline_s is not None:
                auto = replace(auto, slo_s=config.deadline_s)
            autoscaler = get_autoscaler(auto.controller)
            autoscaler.reset(auto)
            for replica in replicas[auto.start_replicas :]:
                replica.online = False
            for replica in replicas[: auto.start_replicas]:
                replica.cost_spans.append([0.0, math.inf])
                replica.active_spans.append([0.0, math.inf])

        fallback_reason = None
        if config.backend == "fast":
            from repro.serving.columnar_cluster import (
                fast_path_fallback_reason,
                needs_faulted_path,
                run_fast_cluster,
                run_fast_faulted,
            )

            fallback_reason = fast_path_fallback_reason(
                config, policy, replicas[0].scheduler
            )
            if fallback_reason is None:
                if needs_faulted_path(config, injector):
                    return run_fast_faulted(
                        self, trace, result, policy, policy_rng, injector
                    )
                return run_fast_cluster(self, trace, result, policy, policy_rng)

        total = trace.num_requests
        tracked: dict[int, _Tracked] = {}
        assignment: dict[tuple[int, int], _Copy] = {}
        heap: list[tuple[float, int, int, str, object]] = []
        seq = itertools.count()

        def push(time_s: float, prio: int, kind: str, payload: object) -> None:
            heapq.heappush(heap, (time_s, prio, next(seq), kind, payload))

        # the fast backend keeps arrivals in their trace columns and merges a
        # cursor against the heap head in the drain loop; the reference
        # backend materializes every arrival as a heap event up front.
        chunked_arrivals = config.backend == "fast"
        arrive_index = 0
        if not chunked_arrivals:
            for request in trace.requests:
                push(request.arrival_s, _PRIO_ARRIVE, "arrive", request)
        for t in injector.transitions():
            push(t, _PRIO_FAULT, "fault", None)

        # -- autoscale run state (inert when no controller is configured) -----

        #: one observation window of telemetry, reset at each evaluation.
        window_start_s = arrival_times[0]
        window_arrivals = 0
        window_steps = 0
        window_busy = 0.0
        window_latencies: list[float] = []
        last_action_s = -math.inf
        scale_log: list[ScaleEvent] = []
        timeline: list[tuple[float, int]] = []
        if autoscaler is not None:
            timeline.append((0.0, auto.start_replicas))
            push(arrival_times[0] + auto.interval_s, _PRIO_SCALE, "scale-eval", None)

        arrivals_left = total
        counters = {
            "terminal": 0,
            "shed": 0,
            "failed": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
        }

        # -- inner helpers (close over run state) -----------------------------

        def arrivals_pending() -> bool:
            return arrivals_left > 0

        def stall(detail: str) -> ServingError:
            depths = [r.scheduler.queue_depth for r in replicas]
            return ServingError(
                f"cluster made no progress at t={now:.6f}s ({detail}):"
                f" scheduler {config.scheduler!r}, policy {config.policy!r},"
                f" queue depths {depths},"
                f" {total - counters['terminal']}/{total} requests unresolved"
            )

        def finish(entry_tracked: _Tracked, status: str) -> None:
            entry_tracked.status = status
            counters["terminal"] += 1

        def shed(entry_tracked: _Tracked) -> None:
            finish(entry_tracked, REQUEST_SHED)
            counters["shed"] += 1

        def cancel_copy(copy: _Copy | None) -> None:
            if copy is None or copy.lost:
                return
            holder = replicas[copy.replica]
            if not holder.down:
                holder.scheduler.cancel(copy_request_ids[id(copy)])
                maybe_finish_drain(holder, now)

        # cancel_copy needs the request id of a copy; keep a side table to
        # avoid widening _Copy for one consumer.
        copy_request_ids: dict[int, int] = {}

        def admit_copy(
            entry_tracked: _Tracked, replica: _Replica, when: float, is_hedge: bool
        ) -> None:
            request = entry_tracked.request
            copy = _Copy(replica.index, when)
            copy_request_ids[id(copy)] = request.request_id
            replica.scheduler.admit(
                Request(
                    request_id=request.request_id,
                    arrival_s=when,
                    decode_steps=request.decode_steps,
                )
            )
            replica.admitted[request.request_id] = (when, request.decode_steps)
            replica.depth_samples.append((when, replica.scheduler.queue_depth))
            assignment[(replica.index, request.request_id)] = copy
            if is_hedge:
                entry_tracked.hedge = copy
                entry_tracked.hedged = True
                counters["hedges"] += 1
            else:
                entry_tracked.primary = copy
                entry_tracked.attempts += 1
                if entry_tracked.timeout_s is not None:
                    push(
                        when + entry_tracked.timeout_s,
                        _PRIO_RETRY,
                        "retry",
                        request.request_id,
                    )
                if (
                    config.hedge_after_s is not None
                    and not entry_tracked.hedged
                    and entry_tracked.attempts == 1
                ):
                    push(
                        when + config.hedge_after_s,
                        _PRIO_HEDGE,
                        "hedge",
                        request.request_id,
                    )

        def route_primary(entry_tracked: _Tracked, when: float) -> None:
            """(Re-)admit the primary copy, or fail/defer when impossible."""
            if entry_tracked.attempts >= 1 + config.max_retries:
                # retry budget exhausted: 1 first admission + max_retries.
                finish(entry_tracked, REQUEST_FAILED)
                counters["failed"] += 1
                cancel_copy(entry_tracked.hedge)
                return
            alive = [r for r in replicas if not r.down and r.serving]
            previous = (
                entry_tracked.primary.replica
                if entry_tracked.primary is not None
                else None
            )
            candidates = [r for r in alive if r.index != previous] or alive
            if not candidates:
                if entry_tracked.timeout_s is None:
                    raise stall("no alive replica and no timeout to wait on")
                push(
                    when + entry_tracked.timeout_s,
                    _PRIO_RETRY,
                    "retry",
                    entry_tracked.request.request_id,
                )
                return
            if entry_tracked.attempts >= 1:
                counters["retries"] += 1
                backoff = entry_tracked.timeout_s * 2.0
                if config.timeout_cap_s is not None:
                    backoff = min(backoff, config.timeout_cap_s)
                entry_tracked.timeout_s = backoff
            chosen = policy.choose(when, candidates, policy_rng)
            admit_copy(entry_tracked, chosen, when, is_hedge=False)

        def on_arrival(request: Request, when: float) -> None:
            nonlocal window_arrivals, window_steps
            entry_tracked = _Tracked(request, config.timeout_s)
            tracked[request.request_id] = entry_tracked
            if autoscaler is not None:
                window_arrivals += 1
                window_steps += request.decode_steps
            alive = [r for r in replicas if not r.down and r.serving]
            if not alive:
                if config.shed_queue_s is not None:
                    shed(entry_tracked)
                    return
                route_primary(entry_tracked, when)  # defers on the timeout
                return
            chosen = policy.choose(when, alive, policy_rng)
            if (
                config.shed_queue_s is not None
                and chosen.est_delay_s(when) > config.shed_queue_s
            ):
                shed(entry_tracked)
                return
            admit_copy(entry_tracked, chosen, when, is_hedge=False)

        def on_complete(replica: _Replica, entry: _InFlight) -> None:
            nonlocal window_busy
            replica.inflight.remove(entry)
            if autoscaler is not None:
                window_busy += max(entry.busy.values(), default=0.0)
            for kind, delta in entry.busy.items():
                replica.busy[kind] += delta
            for kind, delta in entry.energy.items():
                replica.energy[kind] += delta
            replica.gemm_busy += entry.gemm
            replica.non_gemm_busy += entry.non_gemm
            replica.dispatches += 1
            replica.iterations_run += entry.iterations
            replica.weighted_size += entry.weighted
            replica.completion_ends.append(entry.end_s)
            for request_id in entry.completes:
                replica.completions[request_id] = (entry.end_s, entry.size)
                entry_tracked = tracked[request_id]
                if entry_tracked.status != _PENDING:
                    continue  # a hedge loser or stale copy finishing
                copy = assignment.get((replica.index, request_id))
                finish(entry_tracked, REQUEST_OK)
                entry_tracked.completion_s = entry.end_s
                entry_tracked.winner_replica = replica.index
                if autoscaler is not None:
                    window_latencies.append(
                        entry.end_s - entry_tracked.request.arrival_s
                    )
                won_by_hedge = (
                    entry_tracked.hedge is not None and copy is entry_tracked.hedge
                )
                if won_by_hedge:
                    entry_tracked.hedge_won = True
                    counters["hedge_wins"] += 1
                    cancel_copy(entry_tracked.primary)
                else:
                    cancel_copy(entry_tracked.hedge)
            maybe_finish_drain(replica, entry.end_s)

        def on_retry(request_id: int, when: float) -> None:
            entry_tracked = tracked[request_id]
            if entry_tracked.status != _PENDING:
                return
            copy = entry_tracked.primary
            if copy is None:
                route_primary(entry_tracked, when)
                return
            holder = replicas[copy.replica]
            if copy.lost or holder.down:
                route_primary(entry_tracked, when)
                return
            if not copy.started and holder.scheduler.cancel(request_id):
                maybe_finish_drain(holder, when)
                route_primary(entry_tracked, when)
                return
            # in service on a live replica: let it finish, but keep watching
            # so a later crash of that replica is still detected.
            if entry_tracked.timeout_s is not None:
                push(when + entry_tracked.timeout_s, _PRIO_RETRY, "retry", request_id)

        def on_hedge(request_id: int, when: float) -> None:
            entry_tracked = tracked[request_id]
            if entry_tracked.status != _PENDING or entry_tracked.hedged:
                return
            primary = entry_tracked.primary
            exclude = primary.replica if primary is not None else None
            candidates = [
                r for r in replicas
                if not r.down and r.serving and r.index != exclude
            ]
            if not candidates:
                return
            chosen = policy.choose(when, candidates, policy_rng)
            admit_copy(entry_tracked, chosen, when, is_hedge=True)

        def crash(replica: _Replica, when: float) -> None:
            replica.down = True
            replica.wake_s = None
            for entry in replica.inflight:
                entry.cancelled = True
            replica.inflight.clear()
            for (holder_index, request_id), copy in assignment.items():
                if holder_index != replica.index:
                    continue
                entry_tracked = tracked[request_id]
                if entry_tracked.status == _PENDING and (
                    copy is entry_tracked.primary or copy is entry_tracked.hedge
                ):
                    copy.lost = True
            replica.scheduler.reset()
            replica.host_free = 0.0
            replica.accel_free.clear()
            replica.ready_s = when
            if replica.draining:
                # the crash wiped the backlog the drain was waiting on.
                finish_drain(replica, when)

        def on_fault(when: float) -> None:
            for replica in replicas:
                crashed = injector.is_crashed(replica.index, when)
                if crashed and not replica.down:
                    crash(replica, when)
                elif not crashed and replica.down:
                    replica.down = False
                lost = injector.accel_lost(replica.index, when)
                if lost != replica.accel_down:
                    replica.accel_down = lost
                    replica.costs = (
                        replica.fallback_costs() if lost else replica.engine.costs
                    )

        # -- elastic lifecycle (autoscaled runs only) -------------------------

        def serving_count() -> int:
            return sum(1 for r in replicas if r.serving)

        def finish_drain(replica: _Replica, when: float) -> None:
            """Backlog done: take the replica offline and close its spans."""
            replica.draining = False
            replica.online = False
            for spans in (replica.cost_spans, replica.active_spans):
                if spans and spans[-1][1] == math.inf:
                    spans[-1][1] = when
            scale_log.append(
                ScaleEvent(when, "drained", replica.index, serving_count(), "backlog finished")
            )
            replica.scheduler.reset()
            replica.host_free = 0.0
            replica.accel_free.clear()
            replica.ready_s = when
            replica.wake_s = None

        def maybe_finish_drain(replica: _Replica, when: float) -> None:
            if (
                replica.draining
                and not replica.inflight
                and not replica.scheduler.has_pending
            ):
                finish_drain(replica, when)

        def begin_drain(replica: _Replica, when: float, reason: str) -> None:
            """Stop admitting; the replica finishes its backlog, then leaves."""
            replica.draining = True
            scale_log.append(
                ScaleEvent(when, "down", replica.index, serving_count(), reason)
            )
            timeline.append((when, serving_count()))
            maybe_finish_drain(replica, when)

        def on_scale_online(replica: _Replica, when: float) -> None:
            """Provision delay elapsed: the replica admits work, cold."""
            replica.provisioning = False
            replica.online = True
            replica.active_spans.append([when, math.inf])
            # cold start: empty queue, fresh clocks (the reset a crash uses).
            replica.scheduler.reset()
            replica.host_free = 0.0
            replica.accel_free.clear()
            replica.ready_s = when
            replica.wake_s = None
            scale_log.append(
                ScaleEvent(
                    when,
                    "online",
                    replica.index,
                    serving_count(),
                    f"provisioned after {auto.provision_delay_s:g}s",
                )
            )
            timeline.append((when, serving_count()))

        def on_scale_eval(when: float) -> None:
            nonlocal window_start_s, window_arrivals, window_steps
            nonlocal window_busy, last_action_s
            active = [r for r in replicas if r.serving]
            observation = AutoscaleObservation(
                start_s=window_start_s,
                end_s=when,
                active_replicas=len(active),
                arrivals=window_arrivals,
                arrival_steps=window_steps,
                completions=len(window_latencies),
                latencies_s=tuple(window_latencies),
                busy_s=window_busy,
                queue_depth=sum(r.scheduler.queue_depth for r in active),
                unit_latency_s=replicas[0].unit_latency_s(),
            )
            desired = autoscaler.desired_replicas(observation)
            desired = min(max(desired, auto.min_replicas), auto.max_replicas)
            window_start_s = when
            window_arrivals = 0
            window_steps = 0
            window_busy = 0.0
            window_latencies.clear()
            # self-limiting: exactly one future evaluation per evaluation.
            # a stale event left in the heap when the run completes is
            # never popped (the loop breaks on terminal count, not heap).
            push(when + auto.interval_s, _PRIO_SCALE, "scale-eval", None)
            if auto.cooldown_s > 0.0 and when - last_action_s < auto.cooldown_s:
                return
            reason = f"{autoscaler.name}: desired {desired}"
            #: capacity already committed: serving plus still-provisioning.
            committed = len(active) + sum(1 for r in replicas if r.provisioning)
            if desired > committed:
                pool = [r for r in replicas if not r.online and not r.provisioning]
                chosen = pool[: desired - committed]
                for replica in chosen:
                    replica.provisioning = True
                    replica.cost_spans.append([when, math.inf])
                    push(
                        when + auto.provision_delay_s,
                        _PRIO_FAULT,
                        "scale-online",
                        replica,
                    )
                    scale_log.append(
                        ScaleEvent(when, "up", replica.index, serving_count(), reason)
                    )
                if chosen:
                    last_action_s = when
            elif desired < len(active):
                # drain the highest-index serving replicas first, so a
                # rebound re-provisions the replicas that left most recently.
                for replica in reversed(active[desired:]):
                    begin_drain(replica, when, reason)
                last_action_s = when

        def launch(replica: _Replica, verdict: Dispatch, when: float) -> None:
            cost = replica.costs.cost(verdict.size)
            multiplier = injector.dispatch_multiplier(replica.index)
            # multiplying by 1.0 is bit-exact, so the no-straggler path stays
            # identical to the single-engine arithmetic.
            host_s = cost.host_s * multiplier
            accel_s = cost.accel_s * multiplier
            total_s = cost.total_s * multiplier
            start = max(when, replica.host_free)
            cursor = start
            for _ in range(verdict.iterations):
                host_end = cursor + host_s
                if cost.has_accel:
                    accel_start = max(
                        host_end, replica.accel_free.get(cost.target, 0.0)
                    )
                    if accel_start == host_end:
                        end = cursor + total_s
                    else:
                        end = accel_start + accel_s
                    replica.accel_free[cost.target] = end
                else:
                    end = cursor + total_s
                    host_end = end
                replica.host_free = host_end
                cursor = end
            entry = _InFlight(
                end_s=cursor,
                members=verdict.members,
                completes=verdict.completes,
                size=verdict.size,
                iterations=verdict.iterations,
                busy={
                    kind: seconds * multiplier * verdict.iterations
                    for kind, seconds in cost.busy_s.items()
                },
                energy={
                    kind: joules * multiplier * verdict.iterations
                    for kind, joules in cost.energy_j.items()
                },
                gemm=cost.gemm_s * multiplier * verdict.iterations,
                non_gemm=cost.non_gemm_s * multiplier * verdict.iterations,
            )
            replica.inflight.append(entry)
            push(cursor, _PRIO_COMPLETE, "complete", (replica, entry))
            for request_id in verdict.members:
                replica.starts.setdefault(request_id, start)
                copy = assignment.get((replica.index, request_id))
                if copy is not None:
                    copy.started = True
            replica.depth_samples.append((start, replica.scheduler.queue_depth))
            replica.ready_s = (
                cursor if verdict.barrier else max(when, replica.host_free)
            )

        # -- the event loop ---------------------------------------------------

        # the clock starts below any event time so the first arrival (possibly
        # at t=0) strictly advances it.
        now = float("-inf")
        # generous: every turn launches work, folds a completion, or strictly
        # advances the clock; retries and hedges multiply the request count.
        max_turns = 64 + 32 * (2 + config.max_retries) * (
            total + trace.total_decode_steps()
        ) + 8 * len(injector.transitions())
        turns = 0

        def decide(replica: _Replica) -> None:
            nonlocal turns
            if replica.down or not replica.online:
                return
            while replica.ready_s <= now:
                turns += 1
                if turns > max_turns:
                    raise stall(f"no progress after {max_turns} decision turns")
                verdict = replica.scheduler.next_dispatch(now, arrivals_pending())
                if isinstance(verdict, Dispatch):
                    replica.wake_s = None
                    launch(replica, verdict, now)
                    continue
                if verdict is None:
                    replica.wake_s = None
                    return
                wake = float(verdict)
                if wake <= now:
                    raise ServingError(
                        f"scheduler {config.scheduler!r} on replica"
                        f" {replica.index} requested a wake-up at {wake} that"
                        f" does not advance the clock ({now}) with queue depth"
                        f" {replica.scheduler.queue_depth}"
                    )
                replica.wake_s = wake
                return

        while True:
            for replica in replicas:
                decide(replica)
            if counters["terminal"] == total and not any(
                replica.inflight for replica in replicas
            ):
                break
            candidates: list[float] = []
            if heap:
                candidates.append(heap[0][0])
            if chunked_arrivals and arrive_index < total:
                candidates.append(arrival_times[arrive_index])
            for replica in replicas:
                if replica.down or not replica.online:
                    continue
                if replica.wake_s is not None:
                    candidates.append(replica.wake_s)
                if replica.ready_s > now and replica.scheduler.has_pending:
                    candidates.append(replica.ready_s)
            if not candidates:
                raise stall("no scheduled work, wake-ups, or pending events")
            advance_to = min(candidates)
            if advance_to <= now:
                raise stall(f"next event at {advance_to} does not advance the clock")
            now = advance_to
            while True:
                # merge the arrival cursor against the heap head: arrivals
                # are the only _PRIO_ARRIVE events, so comparing (time, prio)
                # reproduces the reference heap's exact processing order
                # (equal-time arrivals fire in trace order, like heap seq).
                if chunked_arrivals and arrive_index < total:
                    arrival_s = arrival_times[arrive_index]
                    if arrival_s <= now and (
                        not heap
                        or (arrival_s, _PRIO_ARRIVE) < (heap[0][0], heap[0][1])
                    ):
                        turns += 1
                        if turns > max_turns:
                            raise stall(
                                f"no progress after {max_turns} event turns"
                            )
                        request = Request(
                            request_id=request_ids[arrive_index],
                            arrival_s=arrival_s,
                            decode_steps=decode_counts[arrive_index],
                        )
                        arrive_index += 1
                        arrivals_left -= 1
                        on_arrival(request, now)
                        continue
                if not heap or heap[0][0] > now:
                    break
                _, _, _, kind, payload = heapq.heappop(heap)
                if kind == "scale-eval":
                    # controller turns strictly advance time (one future
                    # evaluation per evaluation), so they stay outside the
                    # stall budget — an overloaded run's evaluation count
                    # is unbounded by the request count.
                    on_scale_eval(now)
                    continue
                if kind == "scale-online":
                    on_scale_online(payload, now)
                    continue
                turns += 1
                if turns > max_turns:
                    raise stall(f"no progress after {max_turns} event turns")
                if kind == "fault":
                    on_fault(now)
                elif kind == "complete":
                    replica, entry = payload
                    if not entry.cancelled:
                        on_complete(replica, entry)
                elif kind == "arrive":
                    arrivals_left -= 1
                    on_arrival(payload, now)
                elif kind == "retry":
                    on_retry(payload, now)
                else:  # hedge
                    on_hedge(payload, now)
            for replica in replicas:
                if replica.wake_s is not None and replica.wake_s <= now:
                    replica.wake_s = None

        # -- aggregate --------------------------------------------------------

        for replica in replicas:
            records = []
            for request_id in sorted(
                replica.completions,
                key=lambda rid: (replica.admitted[rid][0], rid),
            ):
                admitted_s, decode_steps = replica.admitted[request_id]
                end_s, size = replica.completions[request_id]
                records.append(
                    RequestRecord(
                        request_id=request_id,
                        arrival_s=admitted_s,
                        start_s=replica.starts[request_id],
                        completion_s=end_s,
                        decode_steps=decode_steps,
                        batch_size=size,
                    )
                )
            makespan = 0.0
            if records:
                makespan = max(r.completion_s for r in records) - min(
                    r.arrival_s for r in records
                )
            result.replicas.append(
                ServingResult(
                    model=config.model,
                    flow=replica.engine.flow.name,
                    platform_id=config.platforms[replica.index],
                    device=replica.engine.target.value,
                    scheduler=replica.scheduler.name,
                    trace=trace.name,
                    offered_rate_rps=result.offered_rate_rps,
                    records=records,
                    makespan_s=makespan,
                    num_dispatches=replica.dispatches,
                    num_iterations=replica.iterations_run,
                    mean_batch_size=(
                        replica.weighted_size / replica.iterations_run
                        if replica.iterations_run
                        else 0.0
                    ),
                    busy_s=replica.busy,
                    energy_j=replica.energy,
                    gemm_busy_s=replica.gemm_busy,
                    non_gemm_busy_s=replica.non_gemm_busy,
                    queue_depth_timeline=tuple(replica.depth_samples),
                )
            )

        result.records = [
            ClusterRequestRecord(
                request_id=request_id,
                arrival_s=arrival_s,
                completion_s=tracked[request_id].completion_s,
                status=tracked[request_id].status,
                replica=tracked[request_id].winner_replica,
                attempts=tracked[request_id].attempts,
                hedged=tracked[request_id].hedged,
                hedge_won=tracked[request_id].hedge_won,
            )
            for request_id, arrival_s in zip(request_ids, arrival_times)
        ]
        completions = [r.completion_s for r in result.records if r.completion_s is not None]
        if completions:
            result.makespan_s = max(completions) - arrival_times[0]
        result.num_shed = counters["shed"]
        result.num_failed = counters["failed"]
        result.num_retries = counters["retries"]
        result.num_hedges = counters["hedges"]
        result.num_hedge_wins = counters["hedge_wins"]
        recovery = 0.0
        for window in injector.schedule.windows:
            ends = sorted(replicas[window.replica].completion_ends)
            after = next((e for e in ends if e >= window.end_s), None)
            if after is not None:
                recovery = max(recovery, after - window.end_s)
        result.time_to_recovery_s = recovery
        if autoscaler is None or (
            not scale_log and auto.start_replicas == len(replicas)
        ):
            # a whole-fleet controller that never acted (min == max)
            # reports the same lifecycle arithmetic as a fixed fleet, so
            # its result stays bit-identical to the plain router's.  A
            # controller that held a *partial* fleet still accounts below.
            apply_static_lifecycle(result)
        else:
            run_start = arrival_times[0]
            run_end = run_start + result.makespan_s
            for replica in replicas:
                for spans in (replica.cost_spans, replica.active_spans):
                    if spans and spans[-1][1] == math.inf:
                        spans[-1][1] = run_end
            result.replica_seconds = math.fsum(
                _clipped_span_sum(r.cost_spans, run_start, run_end)
                for r in replicas
            )
            result.replica_active_s = tuple(
                _clipped_span_sum(r.active_spans, run_start, run_end)
                for r in replicas
            )
            result.replica_timeline = tuple(timeline)
            result.scale_events = tuple(scale_log)
        if config.record_requests is not None:
            result = cap_cluster_result(result, config.record_requests)
        result.backend_used = "reference"
        result.fast_path_fallback_reason = fallback_reason
        return result


def simulate_cluster(
    config: ClusterConfig,
    trace: RequestTrace,
    offered_rate_rps: float | None = None,
    cache: PlanCache | None = None,
) -> ClusterResult:
    """Convenience wrapper: build a router for ``config`` and serve ``trace``."""
    return ClusterRouter(config, cache=cache).run(trace, offered_rate_rps)


def serve_cluster_point(point) -> ClusterResult:
    """Serve one cluster sweep point (``load`` × ``policy`` × ``fault``).

    The ``load`` axis generalizes from the single engine: it is a fraction
    of *fleet* capacity (the sum of every replica's single-stream rate), so
    ``load=1.0`` saturates the whole homogeneous fleet just like it
    saturates one serial engine in :func:`~repro.serving.engine.serve_point`.
    """
    from repro.serving.trace import make_trace

    if point.load is None or point.load <= 0.0:
        raise ServingError(f"cluster sweep point has no positive load: {point.load!r}")
    if point.policy is None:
        raise ServingError("cluster sweep point has no admission policy")
    autoscale = None
    if getattr(point, "autoscaler", None) is not None:
        autoscale = AutoscaleConfig(
            controller=point.autoscaler,
            min_replicas=point.autoscale_min_replicas,
            max_replicas=point.num_replicas,
            interval_s=point.autoscale_interval_s,
            cooldown_s=point.autoscale_cooldown_s,
            provision_delay_s=point.autoscale_provision_s,
            target_utilization=point.autoscale_target,
            slo_s=point.autoscale_slo_s,
        )
    router = ClusterRouter(
        ClusterConfig(
            model=point.model,
            flow=point.flow,
            platforms=(point.platform,) * point.num_replicas,
            device=point.device,
            scheduler=point.scheduler,
            policy=point.policy,
            max_batch=point.max_batch,
            max_wait_s=point.max_wait_s,
            seq_len=point.seq_len,
            fault_profile=point.fault_profile or "none",
            fault_seed=point.fault_seed,
            timeout_s=point.timeout_s,
            timeout_cap_s=point.timeout_cap_s,
            hedge_after_s=point.hedge_after_s,
            shed_queue_s=point.shed_queue_s,
            deadline_s=point.deadline_s,
            backend=getattr(point, "backend", "fast"),
            record_requests=getattr(point, "record_requests", None),
            autoscale=autoscale,
        )
    )
    rate_rps = point.load * router.fleet_capacity_rps()
    trace = make_trace(
        point.trace,
        rate_rps,
        point.num_requests,
        rng=np.random.default_rng(point.seed),
        decode_steps=point.decode_steps,
    )
    return router.run(trace, offered_rate_rps=rate_rps)
