"""Synthetic request-arrival traces for the serving simulator.

A :class:`RequestTrace` is a *static, replayable* record: an ordered tuple of
:class:`Request`\\ s with absolute arrival times and (for autoregressive
models) a per-request decode-step count.  Traces are generated once from an
explicit seeded :class:`numpy.random.Generator` and then replayed verbatim by
the engine, so every serving simulation is deterministic end to end — the
same seed yields byte-identical metrics, and a trace saved with
:meth:`RequestTrace.to_rows` replays exactly via :meth:`RequestTrace.from_rows`.

Three arrival processes ship built in, behind a registry mirroring
``register_flow()``:

* ``poisson``     — memoryless open-loop arrivals at a target rate (the
  standard serving-benchmark load model).
* ``bursty``      — the same aggregate rate delivered in tight bursts
  (request spikes; stresses batching and queue depth).
* ``closed-loop`` — a fixed client population where each client issues its
  next request one think-time cycle after its previous one.  Replayable
  traces are static, so the cycle length uses the configured rate rather
  than engine feedback; the approximation is documented, not hidden.

All generators share one signature — ``fn(rate_rps, num_requests, rng,
decode_steps)`` — so the sweep ``load`` axis and the CLI can name any of
them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ServingError


@dataclass(frozen=True)
class Request:
    """One inference request entering the serving system."""

    request_id: int
    arrival_s: float
    #: autoregressive decode iterations this request needs; 1 for any
    #: single-shot model (classification, detection, prefill-only).
    decode_steps: int = 1


@dataclass(frozen=True)
class RequestTrace:
    """An ordered, replayable arrival record (the serving workload input)."""

    name: str
    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        previous = 0.0
        for request in self.requests:
            if request.arrival_s < previous:
                raise ServingError(
                    f"trace {self.name!r} is not sorted by arrival time"
                    f" (request {request.request_id} at {request.arrival_s})"
                )
            if request.decode_steps < 1:
                raise ServingError(
                    f"trace {self.name!r} request {request.request_id}"
                    f" has decode_steps={request.decode_steps} (must be >= 1)"
                )
            previous = request.arrival_s

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def duration_s(self) -> float:
        """Time span between the first and last arrival."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_s - self.requests[0].arrival_s

    @property
    def offered_rate_rps(self) -> float:
        """Average arrival rate over the trace (requests per second)."""
        if len(self.requests) < 2 or self.duration_s <= 0.0:
            return 0.0
        return (len(self.requests) - 1) / self.duration_s

    def total_decode_steps(self) -> int:
        return sum(request.decode_steps for request in self.requests)

    # -- replayable record format -------------------------------------------

    def to_rows(self) -> list[dict]:
        """Plain dict rows (CSV/JSON-friendly) that replay bit-exactly:
        arrival times are serialized via ``repr`` round-tripping floats."""
        return [
            {
                "request_id": request.request_id,
                "arrival_s": repr(request.arrival_s),
                "decode_steps": request.decode_steps,
            }
            for request in self.requests
        ]

    @classmethod
    def from_rows(cls, name: str, rows: Iterable[dict]) -> "RequestTrace":
        return cls(
            name=name,
            requests=tuple(
                Request(
                    request_id=int(row["request_id"]),
                    arrival_s=float(row["arrival_s"]),
                    decode_steps=int(row.get("decode_steps", 1)),
                )
                for row in rows
            ),
        )


def _decode_step_counts(
    decode_steps: "int | tuple[int, int]", count: int, rng: np.random.Generator
) -> Sequence[int]:
    """Per-request decode iterations: a constant, or seeded uniform draws
    from an inclusive ``(lo, hi)`` range."""
    if isinstance(decode_steps, int):
        if decode_steps < 1:
            raise ServingError(f"decode_steps must be >= 1, got {decode_steps}")
        return [decode_steps] * count
    lo, hi = decode_steps
    if lo < 1 or hi < lo:
        raise ServingError(f"invalid decode_steps range {decode_steps!r}")
    return [int(v) for v in rng.integers(lo, hi + 1, size=count)]


def _build(name: str, arrivals: Sequence[float], steps: Sequence[int]) -> RequestTrace:
    return RequestTrace(
        name=name,
        requests=tuple(
            Request(request_id=i, arrival_s=float(t), decode_steps=steps[i])
            for i, t in enumerate(arrivals)
        ),
    )


def poisson_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
) -> RequestTrace:
    """Open-loop Poisson arrivals: i.i.d. exponential gaps at ``rate_rps``.

    The first request arrives at t=0 so a single-request trace exercises an
    idle engine (the equivalence battery relies on this).
    """
    _check_rate(rate_rps, num_requests)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    arrivals = np.cumsum(gaps) - gaps[0]
    return _build("poisson", arrivals, _decode_step_counts(decode_steps, num_requests, rng))


def bursty_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
    burst_size: int = 4,
) -> RequestTrace:
    """The same aggregate rate delivered in tight bursts of ``burst_size``.

    Burst starts are spaced ``burst_size / rate_rps`` apart (preserving the
    offered rate); members of a burst land within a jitter window two orders
    of magnitude tighter than the burst interval.
    """
    _check_rate(rate_rps, num_requests)
    if burst_size < 1:
        raise ServingError(f"burst_size must be >= 1, got {burst_size}")
    interval = burst_size / rate_rps
    arrivals = []
    for i in range(num_requests):
        burst = i // burst_size
        jitter = float(rng.exponential(interval / 100.0)) if i % burst_size else 0.0
        arrivals.append(burst * interval + jitter)
    arrivals.sort()
    return _build("bursty", arrivals, _decode_step_counts(decode_steps, num_requests, rng))


#: default client population of the closed-loop generator.
CLOSED_LOOP_CLIENTS = 4


def closed_loop_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
    num_clients: int = CLOSED_LOOP_CLIENTS,
) -> RequestTrace:
    """A fixed client population, each issuing one request per cycle.

    Each of ``num_clients`` clients contributes requests at a per-client
    cycle of ``num_clients / rate_rps`` (aggregate rate ``rate_rps``), with a
    seeded jitter on each think time.  Because traces are static records the
    cycle uses the configured rate, not engine completion feedback — the
    standard replayable approximation of a closed loop.  Client start
    offsets stagger uniformly across one cycle; client 0 starts at t=0.
    """
    _check_rate(rate_rps, num_requests)
    if num_clients < 1:
        raise ServingError(f"num_clients must be >= 1, got {num_clients}")
    cycle = num_clients / rate_rps
    arrivals = []
    for i in range(num_requests):
        client = i % num_clients
        round_index = i // num_clients
        jitter = float(rng.exponential(cycle / 20.0)) if round_index else 0.0
        arrivals.append(client * cycle / num_clients + round_index * cycle + jitter)
    arrivals.sort()
    return _build(
        "closed-loop", arrivals, _decode_step_counts(decode_steps, num_requests, rng)
    )


def _check_rate(rate_rps: float, num_requests: int) -> None:
    if rate_rps <= 0.0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ServingError(f"num_requests must be >= 1, got {num_requests}")


TraceGenerator = Callable[..., RequestTrace]

_TRACES: dict[str, TraceGenerator] = {}


def register_trace(name: str, fn: TraceGenerator, replace: bool = False) -> TraceGenerator:
    """Register an arrival-process generator for :func:`make_trace` lookup."""
    key = name.lower()
    if key in _TRACES and not replace:
        raise ServingError(f"trace generator {name!r} already registered")
    _TRACES[key] = fn
    return fn


for _name, _fn in (
    ("poisson", poisson_trace),
    ("bursty", bursty_trace),
    ("closed-loop", closed_loop_trace),
):
    register_trace(_name, _fn)


def list_traces() -> list[str]:
    """Canonical names of all registered arrival processes."""
    return sorted(_TRACES)


def make_trace(
    kind: str,
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
) -> RequestTrace:
    """Generate a trace by registered process name (``poisson``, ``bursty``,
    ``closed-loop``, or anything passed to :func:`register_trace`)."""
    try:
        fn = _TRACES[kind.lower()]
    except KeyError:
        raise ServingError(
            f"unknown trace kind {kind!r}; known: {list_traces()}"
        ) from None
    return fn(rate_rps, num_requests, rng, decode_steps)
