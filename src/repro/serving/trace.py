"""Synthetic request-arrival traces for the serving simulator.

A :class:`RequestTrace` is a *static, replayable* record: an ordered arrival
sequence with absolute arrival times and (for autoregressive models) a
per-request decode-step count.  Traces are generated once from an explicit
seeded :class:`numpy.random.Generator` and then replayed verbatim by the
engine, so every serving simulation is deterministic end to end — the same
seed yields byte-identical metrics, and a trace saved with
:meth:`RequestTrace.to_rows` replays exactly via :meth:`RequestTrace.from_rows`.

Traces are **column-backed**: arrival times, decode steps, and request ids
live in immutable numpy arrays (the representation the columnar fast backend
in :mod:`repro.serving.columnar` consumes directly), while the classic
``requests`` tuple of :class:`Request` objects is materialized lazily on
first access — a million-request trace costs ~40 bytes per request until
something actually asks for Python objects.

Generation is vectorized: every built-in process draws its randomness in
**one batched call per trace**.  A ``numpy`` Generator produces the same
stream for one size-``k`` ``exponential`` call as for ``k`` scalar calls, so
the batched draws are bit-identical to the historical per-request loops
(pinned by the trace-identity tests).

Three arrival processes ship built in, behind a registry mirroring
``register_flow()``:

* ``poisson``     — memoryless open-loop arrivals at a target rate (the
  standard serving-benchmark load model).
* ``bursty``      — the same aggregate rate delivered in tight bursts
  (request spikes; stresses batching and queue depth).
* ``closed-loop`` — a fixed client population where each client issues its
  next request one think-time cycle after its previous one.  Replayable
  traces are static, so the cycle length uses the configured rate rather
  than engine feedback; the approximation is documented, not hidden.

All generators share one signature — ``fn(rate_rps, num_requests, rng,
decode_steps)`` — so the sweep ``load`` axis and the CLI can name any of
them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import ServingError


@dataclass(frozen=True)
class Request:
    """One inference request entering the serving system."""

    request_id: int
    arrival_s: float
    #: autoregressive decode iterations this request needs; 1 for any
    #: single-shot model (classification, detection, prefill-only).
    decode_steps: int = 1


class RequestTrace:
    """An ordered, replayable arrival record (the serving workload input).

    Construct either from ``requests`` (the classic tuple of
    :class:`Request`) or from columns (``arrival_s`` + ``decode_steps``
    arrays, with ids defaulting to ``0..n-1``).  Both forms expose both
    views; the column arrays are defensively copied and frozen, so a trace
    stays immutable like the frozen dataclass it replaces.
    """

    __slots__ = ("name", "_arrival_s", "_decode_steps", "_request_ids", "_requests")

    def __init__(
        self,
        name: str,
        requests: "Iterable[Request] | None" = None,
        *,
        arrival_s: "np.ndarray | None" = None,
        decode_steps: "np.ndarray | None" = None,
        request_ids: "np.ndarray | None" = None,
    ):
        self.name = name
        if requests is not None:
            if arrival_s is not None or decode_steps is not None or request_ids is not None:
                raise ServingError(
                    f"trace {name!r}: pass either requests or columns, not both"
                )
            requests = tuple(requests)
            n = len(requests)
            self._requests = requests
            self._request_ids = np.fromiter(
                (r.request_id for r in requests), dtype=np.int64, count=n
            )
            self._arrival_s = np.fromiter(
                (r.arrival_s for r in requests), dtype=np.float64, count=n
            )
            self._decode_steps = np.fromiter(
                (r.decode_steps for r in requests), dtype=np.int64, count=n
            )
        else:
            if arrival_s is None or decode_steps is None:
                raise ServingError(
                    f"trace {name!r}: column construction needs both arrival_s"
                    " and decode_steps"
                )
            self._requests = None
            self._arrival_s = np.array(arrival_s, dtype=np.float64, ndmin=1)
            self._decode_steps = np.array(decode_steps, dtype=np.int64, ndmin=1)
            n = self._arrival_s.shape[0]
            if request_ids is None:
                self._request_ids = np.arange(n, dtype=np.int64)
            else:
                self._request_ids = np.array(request_ids, dtype=np.int64, ndmin=1)
            if self._decode_steps.shape[0] != n or self._request_ids.shape[0] != n:
                raise ServingError(
                    f"trace {name!r}: column lengths disagree"
                    f" ({n} arrivals, {self._decode_steps.shape[0]} decode"
                    f" counts, {self._request_ids.shape[0]} ids)"
                )
        for column in (self._arrival_s, self._decode_steps, self._request_ids):
            column.flags.writeable = False
        self._validate()

    def _validate(self) -> None:
        arrivals = self._arrival_s
        n = arrivals.shape[0]
        if n == 0:
            return
        previous = np.empty_like(arrivals)
        previous[0] = 0.0
        previous[1:] = arrivals[:-1]
        unsorted = arrivals < previous
        if bool(unsorted.any()):
            index = int(np.argmax(unsorted))
            raise ServingError(
                f"trace {self.name!r} is not sorted by arrival time"
                f" (request {int(self._request_ids[index])} at"
                f" {float(arrivals[index])})"
            )
        bad_steps = self._decode_steps < 1
        if bool(bad_steps.any()):
            index = int(np.argmax(bad_steps))
            raise ServingError(
                f"trace {self.name!r} request {int(self._request_ids[index])}"
                f" has decode_steps={int(self._decode_steps[index])} (must be >= 1)"
            )

    # -- the two views -------------------------------------------------------

    @property
    def requests(self) -> tuple[Request, ...]:
        """The Python-object view, materialized on first access."""
        if self._requests is None:
            self._requests = tuple(
                Request(request_id=rid, arrival_s=t, decode_steps=steps)
                for rid, t, steps in zip(
                    self._request_ids.tolist(),
                    self._arrival_s.tolist(),
                    self._decode_steps.tolist(),
                )
            )
        return self._requests

    def arrival_column(self) -> np.ndarray:
        """Arrival times as a frozen float64 column (seconds)."""
        return self._arrival_s

    def decode_column(self) -> np.ndarray:
        """Per-request decode-step counts as a frozen int64 column."""
        return self._decode_steps

    def id_column(self) -> np.ndarray:
        """Request ids as a frozen int64 column (trace order)."""
        return self._request_ids

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestTrace):
            return NotImplemented
        return (
            self.name == other.name
            and np.array_equal(self._request_ids, other._request_ids)
            and np.array_equal(self._arrival_s, other._arrival_s)
            and np.array_equal(self._decode_steps, other._decode_steps)
        )

    __hash__ = None  # mutable-array backed; compare by value, don't hash

    def __repr__(self) -> str:
        return (
            f"RequestTrace(name={self.name!r}, num_requests={self.num_requests},"
            f" duration_s={self.duration_s!r})"
        )

    # -- aggregate views -----------------------------------------------------

    @property
    def num_requests(self) -> int:
        return int(self._arrival_s.shape[0])

    @property
    def duration_s(self) -> float:
        """Time span between the first and last arrival."""
        if not self.num_requests:
            return 0.0
        return float(self._arrival_s[-1]) - float(self._arrival_s[0])

    @property
    def offered_rate_rps(self) -> float:
        """Average arrival rate over the trace (requests per second)."""
        if self.num_requests < 2 or self.duration_s <= 0.0:
            return 0.0
        return (self.num_requests - 1) / self.duration_s

    def total_decode_steps(self) -> int:
        return int(self._decode_steps.sum())

    # -- replayable record format -------------------------------------------

    def to_rows(self) -> list[dict]:
        """Plain dict rows (CSV/JSON-friendly) that replay bit-exactly:
        arrival times are serialized via ``repr`` round-tripping floats."""
        return [
            {
                "request_id": rid,
                "arrival_s": repr(t),
                "decode_steps": steps,
            }
            for rid, t, steps in zip(
                self._request_ids.tolist(),
                self._arrival_s.tolist(),
                self._decode_steps.tolist(),
            )
        ]

    @classmethod
    def from_rows(cls, name: str, rows: Iterable[dict]) -> "RequestTrace":
        rows = list(rows)
        return cls(
            name=name,
            arrival_s=np.array([float(row["arrival_s"]) for row in rows], dtype=np.float64),
            decode_steps=np.array(
                [int(row.get("decode_steps", 1)) for row in rows], dtype=np.int64
            ),
            request_ids=np.array([int(row["request_id"]) for row in rows], dtype=np.int64),
        )


def _decode_step_counts(
    decode_steps: "int | tuple[int, int]", count: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-request decode iterations: a constant, or seeded uniform draws
    from an inclusive ``(lo, hi)`` range — one batched call."""
    if isinstance(decode_steps, int):
        if decode_steps < 1:
            raise ServingError(f"decode_steps must be >= 1, got {decode_steps}")
        return np.full(count, decode_steps, dtype=np.int64)
    lo, hi = decode_steps
    if lo < 1 or hi < lo:
        raise ServingError(f"invalid decode_steps range {decode_steps!r}")
    return rng.integers(lo, hi + 1, size=count).astype(np.int64, copy=False)


def _build(name: str, arrivals: np.ndarray, steps: np.ndarray) -> RequestTrace:
    return RequestTrace(
        name=name,
        arrival_s=np.asarray(arrivals, dtype=np.float64),
        decode_steps=np.asarray(steps, dtype=np.int64),
    )


def poisson_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
) -> RequestTrace:
    """Open-loop Poisson arrivals: i.i.d. exponential gaps at ``rate_rps``.

    The first request arrives at t=0 so a single-request trace exercises an
    idle engine (the equivalence battery relies on this).
    """
    _check_rate(rate_rps, num_requests)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    arrivals = np.cumsum(gaps) - gaps[0]
    return _build("poisson", arrivals, _decode_step_counts(decode_steps, num_requests, rng))


def bursty_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
    burst_size: int = 4,
) -> RequestTrace:
    """The same aggregate rate delivered in tight bursts of ``burst_size``.

    Burst starts are spaced ``burst_size / rate_rps`` apart (preserving the
    offered rate); members of a burst land within a jitter window two orders
    of magnitude tighter than the burst interval.  Jitter is drawn in one
    batched call for the non-leading burst members — the same generator
    stream, and so the same floats, as one scalar draw per member.
    """
    _check_rate(rate_rps, num_requests)
    if burst_size < 1:
        raise ServingError(f"burst_size must be >= 1, got {burst_size}")
    interval = burst_size / rate_rps
    index = np.arange(num_requests, dtype=np.int64)
    jitter = np.zeros(num_requests, dtype=np.float64)
    jittered = index % burst_size != 0
    draws = int(np.count_nonzero(jittered))
    if draws:
        jitter[jittered] = rng.exponential(interval / 100.0, size=draws)
    arrivals = (index // burst_size) * interval + jitter
    arrivals.sort()
    return _build("bursty", arrivals, _decode_step_counts(decode_steps, num_requests, rng))


#: default client population of the closed-loop generator.
CLOSED_LOOP_CLIENTS = 4


def closed_loop_trace(
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
    num_clients: int = CLOSED_LOOP_CLIENTS,
) -> RequestTrace:
    """A fixed client population, each issuing one request per cycle.

    Each of ``num_clients`` clients contributes requests at a per-client
    cycle of ``num_clients / rate_rps`` (aggregate rate ``rate_rps``), with a
    seeded jitter on each think time (one batched draw for every
    round-index-above-zero request).  Because traces are static records the
    cycle uses the configured rate, not engine completion feedback — the
    standard replayable approximation of a closed loop.  Client start
    offsets stagger uniformly across one cycle; client 0 starts at t=0.
    """
    _check_rate(rate_rps, num_requests)
    if num_clients < 1:
        raise ServingError(f"num_clients must be >= 1, got {num_clients}")
    cycle = num_clients / rate_rps
    index = np.arange(num_requests, dtype=np.int64)
    client = index % num_clients
    round_index = index // num_clients
    jitter = np.zeros(num_requests, dtype=np.float64)
    jittered = round_index > 0
    draws = int(np.count_nonzero(jittered))
    if draws:
        jitter[jittered] = rng.exponential(cycle / 20.0, size=draws)
    arrivals = client * cycle / num_clients + round_index * cycle + jitter
    arrivals.sort()
    return _build(
        "closed-loop", arrivals, _decode_step_counts(decode_steps, num_requests, rng)
    )


def _check_rate(rate_rps: float, num_requests: int) -> None:
    if rate_rps <= 0.0:
        raise ServingError(f"arrival rate must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ServingError(f"num_requests must be >= 1, got {num_requests}")


TraceGenerator = Callable[..., RequestTrace]

_TRACES: dict[str, TraceGenerator] = {}


def register_trace(name: str, fn: TraceGenerator, replace: bool = False) -> TraceGenerator:
    """Register an arrival-process generator for :func:`make_trace` lookup."""
    key = name.lower()
    if key in _TRACES and not replace:
        raise ServingError(f"trace generator {name!r} already registered")
    _TRACES[key] = fn
    return fn


for _name, _fn in (
    ("poisson", poisson_trace),
    ("bursty", bursty_trace),
    ("closed-loop", closed_loop_trace),
):
    register_trace(_name, _fn)


def list_traces() -> list[str]:
    """Canonical names of all registered arrival processes."""
    return sorted(_TRACES)


def trace_entries() -> list[tuple[str, str]]:
    """(name, one-line description) rows for discovery surfaces (CLI,
    docs), mirroring ``fault_profile_entries``: the description is the
    first line of the generator's docstring."""
    entries = []
    for name in list_traces():
        doc = _TRACES[name].__doc__ or ""
        entries.append((name, doc.strip().splitlines()[0] if doc.strip() else ""))
    return entries


def make_trace(
    kind: str,
    rate_rps: float,
    num_requests: int,
    rng: np.random.Generator,
    decode_steps: "int | tuple[int, int]" = 1,
) -> RequestTrace:
    """Generate a trace by registered process name (``poisson``, ``bursty``,
    ``closed-loop``, or anything passed to :func:`register_trace`)."""
    try:
        fn = _TRACES[kind.lower()]
    except KeyError:
        raise ServingError(
            f"unknown trace kind {kind!r}; known: {list_traces()}"
        ) from None
    return fn(rate_rps, num_requests, rng, decode_steps)
