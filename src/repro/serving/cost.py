"""Per-batch serving costs, pulled from the vectorized simulator once each.

The engine prices every dispatch with a :class:`BatchCost`: the full
simulated latency of one model iteration at a given graph batch size, plus
the decompositions the event loop and the metrics need (host vs accelerator
portions, per-device busy time and energy, GEMM vs non-GEMM split).

Costs are resolved through the sweep engine's two-tier
:class:`~repro.sweep.cache.PlanCache`: a batch size is lowered **once** per
(model, flow, target) — whatever mix of schedulers, loads, and platforms
replays it — and the resulting :class:`BatchCost` is itself a persisted
artifact (kind ``"serving"``), so a warm store serves a whole serving sweep
without building a graph or running the simulator at all.

Decomposition invariants (the equivalence battery leans on these):

* ``total_s`` is exactly ``Simulation.total_latency_s`` — the same
  left-to-right cumsum the simulator produces.
* ``host_s`` accumulates the CPU kernels' latencies in the same record
  order (an all-CPU plan therefore has ``host_s == total_s`` bit-exactly,
  and an accelerator-only plan has ``host_s == 0.0``).
* ``accel_s`` is ``total_s - host_s``; the engine only uses it when a batch
  actually waits on a busy accelerator — an uncontended dispatch completes
  at ``start + total_s`` directly, preserving bit-identity with the serial
  simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.base import DeploymentFlow
from repro.hardware.device import DeviceKind
from repro.hardware.platform import Platform
from repro.runtime.simulator import (
    _KIND_INDEX,
    SimulationResult,
    plan_arrays,
    simulate,
)
from repro.sweep.cache import PLAN_CACHE, PlanCache


@dataclass(frozen=True)
class BatchCost:
    """Simulated cost of one model iteration at one graph batch size."""

    batch_size: int
    #: end-to-end serial latency — exactly ``Simulation.total_latency_s``.
    total_s: float
    #: CPU-kernel portion (dispatch + fallback work the host thread runs).
    host_s: float
    #: accelerator-side remainder (``total_s - host_s``).
    accel_s: float
    #: the device kind accelerator work queues on (the plan's target).
    target: DeviceKind
    #: whether any kernel runs off the host CPU.
    has_accel: bool
    #: per-device busy seconds for one iteration (utilization accounting).
    busy_s: dict[DeviceKind, float]
    #: per-device joules for one iteration (idle + dynamic over ``total_s``).
    energy_j: dict[DeviceKind, float]
    #: GEMM / non-GEMM split of the iteration's busy time.
    gemm_s: float
    non_gemm_s: float
    num_kernels: int


def _ordered_sum(values: np.ndarray) -> float:
    """Left-to-right accumulation, matching the simulator's cumsum idiom."""
    return float(np.cumsum(values)[-1]) if len(values) else 0.0


def batch_cost_from_simulation(sim: SimulationResult, batch_size: int) -> BatchCost:
    """Decompose one :func:`~repro.runtime.simulator.simulate` result."""
    plan = sim.plan
    arrays = plan_arrays(plan)
    latencies = sim.latencies
    host_mask = arrays.device_idx == _KIND_INDEX[DeviceKind.CPU]
    host_s = _ordered_sum(np.where(host_mask, latencies, 0.0))
    total_s = sim.total_latency_s
    busy_s = {
        spec.kind: _ordered_sum(
            np.where(arrays.device_idx == _KIND_INDEX[spec.kind], latencies, 0.0)
        )
        for spec in sim.platform.devices
    }
    return BatchCost(
        batch_size=batch_size,
        total_s=total_s,
        host_s=host_s,
        accel_s=total_s - host_s,
        target=plan.target,
        has_accel=bool(np.any(~host_mask)),
        busy_s=busy_s,
        energy_j=dict(sim.energy_j),
        gemm_s=_ordered_sum(np.where(arrays.is_gemm, latencies, 0.0)),
        non_gemm_s=_ordered_sum(np.where(arrays.is_gemm, 0.0, latencies)),
        num_kernels=plan.num_kernels,
    )


class BatchCostModel:
    """Memoized (batch size -> :class:`BatchCost`) resolver for one serving
    configuration.

    The per-run dict makes every engine run self-sufficient (a disabled
    global cache still lowers each batch size once per run); the
    :class:`~repro.sweep.cache.PlanCache` behind it shares lowered plans and
    stored costs across runs, schedulers, and processes.
    """

    def __init__(
        self,
        model: str,
        flow: DeploymentFlow,
        platform: Platform,
        target: DeviceKind,
        seq_len: int | None = None,
        cache: PlanCache | None = None,
    ):
        self.model = model
        self.flow = flow
        self.platform = platform
        self.target = target
        self.seq_len = seq_len
        self.cache = cache if cache is not None else PLAN_CACHE
        self._costs: dict[int, BatchCost] = {}

    def cost(self, batch_size: int) -> BatchCost:
        cached = self._costs.get(batch_size)
        if cached is None:
            overrides = {} if self.seq_len is None else {"seq_len": self.seq_len}
            graph = self.cache.graph_ref(self.model, batch_size, **overrides)
            cached = self.cache.serving_cost(
                self.flow,
                graph,
                self.target,
                self.platform,
                lambda plan: batch_cost_from_simulation(
                    simulate(plan, self.platform), batch_size
                ),
            )
            self._costs[batch_size] = cached
        return cached
