"""Per-batch serving costs, pulled from the vectorized simulator once each.

The engine prices every dispatch with a :class:`BatchCost`: the full
simulated latency of one model iteration at a given graph batch size, plus
the decompositions the event loop and the metrics need (host vs accelerator
portions, per-device busy time and energy, GEMM vs non-GEMM split).

Costs are resolved through the sweep engine's two-tier
:class:`~repro.sweep.cache.PlanCache`: a batch size is lowered **once** per
(model, flow, target) — whatever mix of schedulers, loads, and platforms
replays it — and the resulting :class:`BatchCost` is itself a persisted
artifact (kind ``"serving"``), so a warm store serves a whole serving sweep
without building a graph or running the simulator at all.

Decomposition invariants (the equivalence battery leans on these):

* ``total_s`` is exactly ``Simulation.total_latency_s`` — the same
  left-to-right cumsum the simulator produces.
* ``host_s`` accumulates the CPU kernels' latencies in the same record
  order (an all-CPU plan therefore has ``host_s == total_s`` bit-exactly,
  and an accelerator-only plan has ``host_s == 0.0``).
* ``accel_s`` is ``total_s - host_s``; the engine only uses it when a batch
  actually waits on a busy accelerator — an uncontended dispatch completes
  at ``start + total_s`` directly, preserving bit-identity with the serial
  simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.base import DeploymentFlow
from repro.hardware.device import DeviceKind
from repro.hardware.platform import Platform
from repro.runtime.simulator import (
    _KIND_INDEX,
    SimulationResult,
    plan_arrays,
    simulate,
)
from repro.sweep.cache import PLAN_CACHE, PlanCache


@dataclass(frozen=True)
class BatchCost:
    """Simulated cost of one model iteration at one graph batch size."""

    batch_size: int
    #: end-to-end serial latency — exactly ``Simulation.total_latency_s``.
    total_s: float
    #: CPU-kernel portion (dispatch + fallback work the host thread runs).
    host_s: float
    #: accelerator-side remainder (``total_s - host_s``).
    accel_s: float
    #: the device kind accelerator work queues on (the plan's target).
    target: DeviceKind
    #: whether any kernel runs off the host CPU.
    has_accel: bool
    #: per-device busy seconds for one iteration (utilization accounting).
    busy_s: dict[DeviceKind, float]
    #: per-device joules for one iteration (idle + dynamic over ``total_s``).
    energy_j: dict[DeviceKind, float]
    #: GEMM / non-GEMM split of the iteration's busy time.
    gemm_s: float
    non_gemm_s: float
    num_kernels: int


def _ordered_sum(values: np.ndarray) -> float:
    """Left-to-right accumulation, matching the simulator's cumsum idiom."""
    return float(np.cumsum(values)[-1]) if len(values) else 0.0


def batch_cost_from_simulation(sim: SimulationResult, batch_size: int) -> BatchCost:
    """Decompose one :func:`~repro.runtime.simulator.simulate` result."""
    plan = sim.plan
    arrays = plan_arrays(plan)
    latencies = sim.latencies
    host_mask = arrays.device_idx == _KIND_INDEX[DeviceKind.CPU]
    host_s = _ordered_sum(np.where(host_mask, latencies, 0.0))
    total_s = sim.total_latency_s
    busy_s = {
        spec.kind: _ordered_sum(
            np.where(arrays.device_idx == _KIND_INDEX[spec.kind], latencies, 0.0)
        )
        for spec in sim.platform.devices
    }
    return BatchCost(
        batch_size=batch_size,
        total_s=total_s,
        host_s=host_s,
        accel_s=total_s - host_s,
        target=plan.target,
        has_accel=bool(np.any(~host_mask)),
        busy_s=busy_s,
        energy_j=dict(sim.energy_j),
        gemm_s=_ordered_sum(np.where(arrays.is_gemm, latencies, 0.0)),
        non_gemm_s=_ordered_sum(np.where(arrays.is_gemm, 0.0, latencies)),
        num_kernels=plan.num_kernels,
    )


class BatchCostTable:
    """Dense per-batch-size cost columns for one :class:`BatchCostModel`.

    One float64 column per decomposition field, indexed by batch size (row 0
    is unused), plus — when ``decode_steps`` is given — *iteration planes*:
    ``plane[size, k]`` holds the per-dispatch accounting contribution
    ``column[size] * k``, the exact float product the reference loop computes
    as ``seconds * iterations``, so a vectorized ``cumsum`` over plane
    lookups reproduces the scalar accumulators bit for bit.

    Rows fill lazily through :meth:`BatchCostModel.cost`, so the table
    shares :class:`BatchCost` objects (and the PlanCache behind them) with
    every other consumer and never lowers a plan the run would not have
    lowered anyway.  ``row()`` is the inner-loop replacement for the
    model's dict lookup: a list index plus a ``None`` check.
    """

    __slots__ = (
        "model",
        "max_batch",
        "decode_steps",
        "rows",
        "total_s",
        "host_s",
        "accel_s",
        "gemm_s",
        "non_gemm_s",
        "busy_s",
        "energy_j",
        "gemm_k",
        "non_gemm_k",
        "busy_k",
        "energy_k",
    )

    def __init__(self, model: "BatchCostModel", max_batch: int, decode_steps: int | None = None):
        self.model = model
        self.max_batch = max_batch
        self.decode_steps = decode_steps
        n = max_batch + 1
        self.rows: list[BatchCost | None] = [None] * n
        self.total_s = np.zeros(n)
        self.host_s = np.zeros(n)
        self.accel_s = np.zeros(n)
        self.gemm_s = np.zeros(n)
        self.non_gemm_s = np.zeros(n)
        kinds = tuple(spec.kind for spec in model.platform.devices)
        self.busy_s = {kind: np.zeros(n) for kind in kinds}
        self.energy_j = {kind: np.zeros(n) for kind in kinds}
        if decode_steps is None:
            self.gemm_k = None
            self.non_gemm_k = None
            self.busy_k = None
            self.energy_k = None
        else:
            shape = (n, decode_steps + 1)
            self.gemm_k = np.zeros(shape)
            self.non_gemm_k = np.zeros(shape)
            self.busy_k = {kind: np.zeros(shape) for kind in kinds}
            self.energy_k = {kind: np.zeros(shape) for kind in kinds}

    def row(self, batch_size: int) -> BatchCost:
        """The :class:`BatchCost` for ``batch_size``, filling the columns on
        first touch.  Out-of-range sizes resolve through the model directly
        (defensive: built-in schedulers never exceed ``max_batch``)."""
        if batch_size > self.max_batch:
            return self.model.cost(batch_size)
        cached = self.rows[batch_size]
        if cached is None:
            cached = self._fill(batch_size)
        return cached

    def _fill(self, batch_size: int) -> BatchCost:
        cost = self.model.cost(batch_size)
        self.rows[batch_size] = cost
        self.total_s[batch_size] = cost.total_s
        self.host_s[batch_size] = cost.host_s
        self.accel_s[batch_size] = cost.accel_s
        self.gemm_s[batch_size] = cost.gemm_s
        self.non_gemm_s[batch_size] = cost.non_gemm_s
        for kind, seconds in cost.busy_s.items():
            self.busy_s[kind][batch_size] = seconds
        for kind, joules in cost.energy_j.items():
            self.energy_j[kind][batch_size] = joules
        if self.decode_steps is not None:
            # plane[size, k] = column[size] * k — a single float64 multiply
            # per cell, the reference's ``seconds * iterations`` exactly.
            ks = np.arange(self.decode_steps + 1, dtype=np.float64)
            self.gemm_k[batch_size] = cost.gemm_s * ks
            self.non_gemm_k[batch_size] = cost.non_gemm_s * ks
            for kind, seconds in cost.busy_s.items():
                self.busy_k[kind][batch_size] = seconds * ks
            for kind, joules in cost.energy_j.items():
                self.energy_k[kind][batch_size] = joules * ks
        return cost


class BatchCostModel:
    """Memoized (batch size -> :class:`BatchCost`) resolver for one serving
    configuration.

    The per-run dict makes every engine run self-sufficient (a disabled
    global cache still lowers each batch size once per run); the
    :class:`~repro.sweep.cache.PlanCache` behind it shares lowered plans and
    stored costs across runs, schedulers, and processes.  Hot loops resolve
    through :meth:`cost_table` instead — a dense, shared
    :class:`BatchCostTable` whose ``row()`` avoids dict hashing entirely and
    whose columns feed the columnar kernels' vectorized accounting.
    """

    def __init__(
        self,
        model: str,
        flow: DeploymentFlow,
        platform: Platform,
        target: DeviceKind,
        seq_len: int | None = None,
        cache: PlanCache | None = None,
    ):
        self.model = model
        self.flow = flow
        self.platform = platform
        self.target = target
        self.seq_len = seq_len
        self.cache = cache if cache is not None else PLAN_CACHE
        self._costs: dict[int, BatchCost] = {}
        self._tables: dict[tuple[int, int | None], BatchCostTable] = {}

    def cost_table(
        self, max_batch: int, decode_steps: int | None = None
    ) -> BatchCostTable:
        """The memoized dense table for ``max_batch`` (and optionally a
        ``decode_steps`` bound enabling the iteration planes).  Shared by the
        reference loops and every columnar kernel of this model."""
        key = (max_batch, decode_steps)
        table = self._tables.get(key)
        if table is None:
            table = self._tables[key] = BatchCostTable(self, max_batch, decode_steps)
        return table

    def cost(self, batch_size: int) -> BatchCost:
        cached = self._costs.get(batch_size)
        if cached is None:
            overrides = {} if self.seq_len is None else {"seq_len": self.seq_len}
            graph = self.cache.graph_ref(self.model, batch_size, **overrides)
            cached = self.cache.serving_cost(
                self.flow,
                graph,
                self.target,
                self.platform,
                lambda plan: batch_cost_from_simulation(
                    simulate(plan, self.platform), batch_size
                ),
            )
            self._costs[batch_size] = cached
        return cached
