"""Columnar fast backend for the discrete-event serving engine.

``backend="fast"`` (the default) replaces the reference loop in
:meth:`repro.serving.engine.ServingEngine.run` with *columnar kernels*:
specialized replays of each built-in scheduler's decision sequence that

* advance arrivals in chunks over the trace's arrival **column** instead of
  one admission per decision turn (and never materialize ``Request``
  objects at all),
* keep per-device occupancy in scalar registers and write per-request
  starts/completions/batch sizes into preallocated numpy arrays,
* fold per-dispatch accounting either with ``np.cumsum`` (a sequential
  running fold, so bit-identical to the reference loop's repeated ``+=``)
  or with the reference's own scalar adds in dispatch order.

Bit-identity is the contract, not an aspiration: every float in a fast
result — starts, completions, busy/energy accumulators, the queue-depth
timeline — is produced by the same IEEE operations in the same order as the
reference loop, and the fast-vs-reference battery asserts full dataclass
equality over every scheduler × platform × load.  Two facts carry most of
the weight:

* for **barrier** schedulers (fifo, continuous) the accelerator never waits:
  the clock advances to each dispatch's end, so ``accel_free <= start`` and
  every iteration completes at ``cursor + total_s`` exactly;
* ``np.cumsum``/batched elementwise products reproduce sequential scalar
  accumulation, while pairwise ``np.sum`` would not.

A scheduler opts into a kernel by *declaring*
:attr:`~repro.serving.scheduler.BatchScheduler.columnar_kernel` in its own
class body.  Custom schedulers (and subclasses that don't redeclare it) fall
back to the reference loop — still correct, just not columnar — and the
``record_requests`` capping applies either way, so streaming results look
the same regardless of which path served them.

With a ``record_requests`` cap the kernels skip the per-event timeline and
full record list entirely: queue-depth samples fold into count/sum/max
accumulators, latencies into the fixed-grid streaming quantile estimator,
and only the seeded reservoir sample of records is materialized — a
million-request trace costs the five per-request columns (~40 B/request)
and nothing else.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.errors import ServingError
from repro.serving.metrics import (
    RequestRecord,
    ServingResult,
    sample_record_indices,
    streaming_stats,
)
from repro.serving.trace import RequestTrace


def _running_total(values: np.ndarray) -> float:
    """Sequential left fold of per-dispatch contributions (see module doc)."""
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


class _Run:
    """Per-run columnar state shared by every kernel."""

    def __init__(self, engine, trace: RequestTrace, scheduler):
        self.engine = engine
        self.trace = trace
        self.scheduler = scheduler
        self.n = trace.num_requests
        self.arrival = trace.arrival_column()
        self.steps = trace.decode_column()
        self.max_steps = int(self.steps.max()) if self.n else 0
        #: dense (plan, platform) cost columns shared with the reference
        #: loop; the iteration planes bound k by the trace's longest decode.
        self.table = engine.costs.cost_table(scheduler.max_batch, self.max_steps)
        # per-request output columns (trace order); every kernel assigns all
        # three before finalize() reads them.
        self.start: np.ndarray = None
        self.completion: np.ndarray = None
        self.batch: np.ndarray = None
        self.cap = engine.config.record_requests
        self.full = self.cap is None
        #: (time, depth) samples in reference order — built only uncapped.
        self.timeline: list[tuple[float, int]] = []
        self.depth_count = 0
        self.depth_sum = 0
        self.depth_max = 0
        self.busy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.energy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.gemm = 0.0
        self.non_gemm = 0.0
        self.dispatches = 0
        self.iterations = 0
        self.weighted = 0

    def cost(self, size: int):
        return self.table.row(size)

    def account_columns(self, sizes: np.ndarray, iters: np.ndarray) -> None:
        """The reference loop's sequential per-dispatch accounting, folded
        with ``cumsum`` over iteration-plane lookups (bit-identical: each
        plane cell is the reference's ``seconds * iterations`` product, and
        ``cumsum`` is a running left fold)."""
        table = self.table
        for kind in self.busy:
            self.busy[kind] = _running_total(table.busy_k[kind][sizes, iters])
        for kind in self.energy:
            self.energy[kind] = _running_total(table.energy_k[kind][sizes, iters])
        self.gemm = _running_total(table.gemm_k[sizes, iters])
        self.non_gemm = _running_total(table.non_gemm_k[sizes, iters])
        self.dispatches = int(sizes.size)
        self.iterations = int(iters.sum())
        self.weighted = int((sizes * iters).sum())

    def depth_columns(
        self,
        admit_key: np.ndarray,
        admit_depth: np.ndarray,
        sample_time: np.ndarray,
        sample_depth: np.ndarray,
    ) -> None:
        """Rebuild the queue-depth timeline (or its streaming accumulators)
        from per-admission and per-dispatch columns.

        ``admit_key`` is the index of the dispatch each admission precedes;
        interleaving uses the stable-sort key trick (``2*admit_key`` vs
        ``2*d + 1``) so admissions for a dispatch precede its sample and
        equal-key admissions stay in arrival order — the reference's exact
        append order."""
        if self.full:
            times = np.concatenate([self.arrival, sample_time])
            depths = np.concatenate([admit_depth, sample_depth])
            keys = np.concatenate(
                [2 * admit_key, 2 * np.arange(sample_time.size, dtype=np.int64) + 1]
            )
            order = np.argsort(keys, kind="stable")
            self.timeline = list(zip(times[order].tolist(), depths[order].tolist()))
        else:
            self.depth_count = int(admit_depth.size + sample_depth.size)
            self.depth_sum = int(admit_depth.sum() + sample_depth.sum())
            self.depth_max = int(
                max(admit_depth.max(initial=0), sample_depth.max(initial=0))
            )

    # -- per-dispatch bookkeeping (scalar kernels) --------------------------

    def note_depth(self, time_s: float, depth: int) -> None:
        if self.full:
            self.timeline.append((time_s, depth))
        else:
            self.depth_count += 1
            self.depth_sum += depth
            if depth > self.depth_max:
                self.depth_max = depth

    def account_dispatch(self, cost, size: int, iterations: int) -> None:
        """The reference loop's per-dispatch accounting, verbatim."""
        for kind, seconds in cost.busy_s.items():
            self.busy[kind] += seconds * iterations
        for kind, joules in cost.energy_j.items():
            self.energy[kind] += joules * iterations
        self.gemm += cost.gemm_s * iterations
        self.non_gemm += cost.non_gemm_s * iterations
        self.dispatches += 1
        self.iterations += iterations
        self.weighted += size * iterations

    # -- result assembly ----------------------------------------------------

    def finalize(self, offered_rate_rps: "float | None") -> ServingResult:
        engine = self.engine
        config = engine.config
        result = ServingResult(
            model=config.model,
            flow=engine.flow.name,
            platform_id=config.platform,
            device=engine.target.value,
            scheduler=self.scheduler.name,
            trace=self.trace.name,
            offered_rate_rps=(
                self.trace.offered_rate_rps
                if offered_rate_rps is None
                else offered_rate_rps
            ),
        )
        result.makespan_s = float(self.completion.max()) - float(self.arrival[0])
        result.num_dispatches = self.dispatches
        result.num_iterations = self.iterations
        result.mean_batch_size = (
            self.weighted / self.iterations if self.iterations else 0.0
        )
        result.busy_s = self.busy
        result.energy_j = self.energy
        result.gemm_busy_s = self.gemm
        result.non_gemm_busy_s = self.non_gemm
        if self.full:
            result.records = self._records(np.arange(self.n))
            result.queue_depth_timeline = tuple(self.timeline)
        else:
            # identical arithmetic to metrics.cap_serving_result, fed from
            # columns instead of record objects — elementwise float64
            # subtraction matches the per-record python subtraction.
            result.stats = streaming_stats(
                self.completion - self.arrival,
                self.start - self.arrival,
                depth_samples=self.depth_count,
                depth_sum=self.depth_sum,
                depth_max=self.depth_max,
            )
            result.num_served = self.n
            result.record_cap = self.cap
            result.records = self._records(sample_record_indices(self.n, self.cap))
        return result

    def _records(self, indices: np.ndarray) -> list[RequestRecord]:
        ids = self.trace.id_column()[indices].tolist()
        arrivals = self.arrival[indices].tolist()
        starts = self.start[indices].tolist()
        completions = self.completion[indices].tolist()
        steps = self.steps[indices].tolist()
        batches = self.batch[indices].tolist()
        return [
            RequestRecord(rid, a, s, c, d, b)
            for rid, a, s, c, d, b in zip(
                ids, arrivals, starts, completions, steps, batches
            )
        ]


# -- kernels ------------------------------------------------------------------


def _run_fifo(run: _Run, more_until: float = float("-inf")) -> None:
    """FIFO: one barrier dispatch per request, in arrival order.

    Closed form (proven against the reference loop): ``start_i =
    max(completion_{i-1}, arrival_i)`` and the completion is ``decode_steps``
    sequential ``+= total_s`` adds — a barrier dispatch's accelerator phase
    never waits, so every iteration takes the uncontended ``total_s`` path.
    The decision-time bookkeeping (admission/dispatch queue depths) is
    reconstructed vectorially from the start column afterwards.
    """
    cost = run.cost(1)
    total_s = cost.total_s
    arrivals = run.arrival.tolist()
    step_counts = run.steps.tolist()
    starts: list[float] = []
    completions: list[float] = []
    push_start = starts.append
    push_end = completions.append
    end = 0.0
    for arrival, iterations in zip(arrivals, step_counts):
        begin = end if end > arrival else arrival
        cursor = begin
        for _ in range(iterations):
            cursor += total_s
        push_start(begin)
        push_end(cursor)
        end = cursor
    run.start = np.array(starts, dtype=np.float64)
    run.completion = np.array(completions, dtype=np.float64)
    run.batch = np.ones(run.n, dtype=np.int64)

    # accounting: one dispatch per request with k_i iterations; cumsum of the
    # per-dispatch contributions is the reference's sequential accumulation.
    iteration_counts = run.steps
    run.dispatches = run.n
    run.iterations = int(iteration_counts.sum())
    run.weighted = run.iterations  # size 1 per dispatch
    for kind, seconds in cost.busy_s.items():
        run.busy[kind] = _running_total(seconds * iteration_counts)
    for kind, joules in cost.energy_j.items():
        run.energy[kind] = _running_total(joules * iteration_counts)
    run.gemm = _running_total(cost.gemm_s * iteration_counts)
    run.non_gemm = _running_total(cost.non_gemm_s * iteration_counts)

    # queue-depth samples: request j is admitted right before dispatch
    # d(j) = first i with start_i >= arrival_j (starts strictly increase, so
    # searchsorted is exact); at that point d(j) requests have been taken.
    order_index = np.arange(run.n, dtype=np.int64)
    admit_before = np.searchsorted(run.start, run.arrival, side="left")
    admit_depth = order_index + 1 - admit_before
    admitted_at = np.searchsorted(admit_before, order_index, side="right")
    dispatch_depth = admitted_at - order_index - 1
    if run.full:
        times = np.concatenate([run.arrival, run.start])
        depths = np.concatenate([admit_depth, dispatch_depth])
        # admissions for a dispatch precede the dispatch sample; the stable
        # sort keeps equal-key admissions in arrival order.
        keys = np.concatenate([2 * admit_before, 2 * order_index + 1])
        order = np.argsort(keys, kind="stable")
        run.timeline = list(zip(times[order].tolist(), depths[order].tolist()))
    else:
        run.depth_count = 2 * run.n
        run.depth_sum = int(admit_depth.sum() + dispatch_depth.sum())
        run.depth_max = int(
            max(admit_depth.max(initial=0), dispatch_depth.max(initial=0))
        )


def _run_batched(
    run: _Run, dynamic: bool, more_until: float = float("-inf")
) -> None:
    """Static/dynamic batching: chunked admissions, scalar occupancy.

    One loop turn per *dispatch* (plus deadline waits for dynamic), with the
    reference's exact iteration arithmetic — including the contended
    accelerator branch these non-barrier schedulers can hit.  The loop only
    records one row per dispatch (decision clock, start, end, size,
    iterations); per-request columns, accounting folds, and the queue-depth
    timeline are all reconstructed vectorially afterwards:

    * admissions advance in chunks via ``bisect_right`` over the arrival
      column — the reference admits every due arrival at the top of each
      turn, so only the *count* matters during the loop;
    * request ``j`` is admitted before dispatch ``d(j)``, the first dispatch
      turn whose decision clock is ``>= arrival_j`` (turn clocks are
      monotone, so one ``searchsorted`` recovers every admission's position
      and therefore its noted queue depth);
    * the post-dispatch depth sample is ``(# arrivals <= clock) - taken``,
      another ``searchsorted``.

    ``more_until`` models the cluster's *global* ``arrivals_pending`` flag:
    a replica's sub-trace may exhaust while other replicas still have
    arrivals due, and the reference scheduler keeps holding a partial batch
    until the whole trace's last arrival (exclusive) has been drained.  The
    solo engine passes the default ``-inf`` (no outside arrivals), which
    reduces to the original ``admitted < n`` predicate.
    """
    scheduler = run.scheduler
    batch_cap = scheduler.max_batch
    max_wait_s = scheduler.max_wait_s
    n = run.n
    arrivals = run.arrival.tolist()
    steps = run.steps.tolist()
    # one row per dispatch, converted to columns once at the end.
    now_l: list[float] = []
    start_l: list[float] = []
    end_l: list[float] = []
    size_l: list[int] = []
    iter_l: list[int] = []

    now = 0.0
    host_free = 0.0
    accel_free = 0.0
    admitted = 0  # arrivals admitted so far (queue tail)
    taken = 0  # requests dispatched so far (queue head)
    while taken < n:
        if admitted < n and arrivals[admitted] <= now:
            admitted = bisect_right(arrivals, now, admitted + 1)
        queued = admitted - taken
        if queued == 0:
            now = arrivals[admitted]
            continue
        if queued < batch_cap and (admitted < n or now < more_until):
            if not dynamic:
                # static: keep accumulating until the batch fills (or, in a
                # cluster, until the global arrival stream dries up).
                now = arrivals[admitted] if admitted < n else more_until
                continue
            deadline = arrivals[taken] + max_wait_s
            if now < deadline:
                next_arrival = arrivals[admitted] if admitted < n else more_until
                now = deadline if deadline < next_arrival else next_arrival
                continue
        size = batch_cap if queued > batch_cap else queued
        iterations = max(steps[taken : taken + size])
        cost = run.cost(size)
        host_s = cost.host_s
        accel_s = cost.accel_s
        total_s = cost.total_s
        has_accel = cost.has_accel
        start = now if now > host_free else host_free
        cursor = start
        for _ in range(iterations):
            host_end = cursor + host_s
            if has_accel:
                if accel_free > host_end:
                    end = accel_free + accel_s
                else:
                    end = cursor + total_s
                accel_free = end
            else:
                end = cursor + total_s
                host_end = end
            host_free = host_end
            cursor = end
        now_l.append(now)
        start_l.append(start)
        end_l.append(cursor)
        size_l.append(size)
        iter_l.append(iterations)
        taken += size
        now = now if now > host_free else host_free

    sizes = np.array(size_l, dtype=np.int64)
    iters = np.array(iter_l, dtype=np.int64)
    start_arr = np.array(start_l, dtype=np.float64)
    end_arr = np.array(end_l, dtype=np.float64)
    now_arr = np.array(now_l, dtype=np.float64)
    run.start = np.repeat(start_arr, sizes)
    run.completion = np.repeat(end_arr, sizes)
    run.batch = np.repeat(sizes, sizes)
    run.account_columns(sizes, iters)

    # queue-depth reconstruction (see docstring): taken_before[d] is the
    # queue head when dispatch d's turn starts — also the head at every wait
    # turn since the previous dispatch, so it prices each admission exactly.
    taken_before = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    admit_dispatch = np.searchsorted(now_arr, run.arrival, side="left")
    admit_depth = (
        np.arange(1, n + 1, dtype=np.int64) - taken_before[admit_dispatch]
    )
    admitted_at = np.searchsorted(run.arrival, now_arr, side="right")
    sample_depth = admitted_at - (taken_before + sizes)
    run.depth_columns(admit_dispatch, admit_depth, start_arr, sample_depth)


def _run_static(run: _Run, more_until: float = float("-inf")) -> None:
    _run_batched(run, dynamic=False, more_until=more_until)


def _run_dynamic(run: _Run, more_until: float = float("-inf")) -> None:
    _run_batched(run, dynamic=True, more_until=more_until)


def _run_continuous(run: _Run, more_until: float = float("-inf")) -> None:
    """Continuous (iteration-level) batching: one turn per model iteration.

    Requests join in arrival order and each runs for exactly ``steps[j]``
    consecutive turns, so the in-flight set never needs to be materialized:
    a *leave calendar* (``leaves[t]`` = members whose last iteration is turn
    ``t - 1``, stamped once at join) drives the size recurrence, and the
    loop records one row per turn (decision clock, start, end, size, joined
    head before/after).  Per-request columns fall out afterwards:

    * ``j`` joins at the first turn with ``joined_post > j`` (one
      ``searchsorted`` over the monotone joined-head column) — its start is
      that turn's start;
    * it completes at turn ``join + steps_j - 1`` — its completion/batch
      are that turn's end/size;
    * queue depths replay exactly as in :func:`_run_batched` (turn clocks
      are strictly increasing: every dispatch is a barrier).

    Every dispatch is a barrier, so the accelerator is always uncontended
    and each iteration ends at ``start + total_s`` exactly.
    """
    scheduler = run.scheduler
    batch_cap = scheduler.max_batch
    n = run.n
    arrivals = run.arrival.tolist()
    step_counts = run.steps.tolist()
    # one row per turn, converted to columns once at the end.
    now_l: list[float] = []
    start_l: list[float] = []
    end_l: list[float] = []
    size_l: list[int] = []
    joined_pre_l: list[int] = []
    joined_post_l: list[int] = []
    # every turn retires at least one member step, so the turn count is
    # bounded by the total step count; +2 pads the final lookahead.
    leaves = [0] * (int(run.steps.sum()) + run.max_steps + 2)

    now = 0.0
    host_free = 0.0
    admitted = 0
    joined = 0  # queue head: requests moved into the in-flight set
    size = 0  # in-flight set cardinality
    completed = 0
    turn = 0
    while completed < n:
        if admitted < n and arrivals[admitted] <= now:
            admitted = bisect_right(arrivals, now, admitted + 1)
        free = batch_cap - size
        take = 0
        if free > 0 and admitted > joined:
            backlog = admitted - joined
            take = free if free < backlog else backlog
        if size == 0 and take == 0:
            if admitted < n:
                now = arrivals[admitted]
                continue
            raise ServingError(
                f"continuous kernel stalled with {n - completed} requests"
                f" outstanding at t={now:.6f}s"
            )
        joined_pre_l.append(joined)
        if take:
            for position in range(joined, joined + take):
                leaves[turn + step_counts[position]] += 1
            joined += take
            size += take
        joined_post_l.append(joined)
        cost = run.cost(size)
        start = now if now > host_free else host_free
        end = start + cost.total_s
        host_free = start + cost.host_s if cost.has_accel else end
        now_l.append(now)
        start_l.append(start)
        end_l.append(end)
        size_l.append(size)
        turn += 1
        leavers = leaves[turn]
        completed += leavers
        size -= leavers
        now = end  # barrier

    turns = len(size_l)
    sizes = np.array(size_l, dtype=np.int64)
    start_arr = np.array(start_l, dtype=np.float64)
    end_arr = np.array(end_l, dtype=np.float64)
    now_arr = np.array(now_l, dtype=np.float64)
    joined_pre = np.array(joined_pre_l, dtype=np.int64)
    joined_post = np.array(joined_post_l, dtype=np.int64)

    positions = np.arange(n, dtype=np.int64)
    join_turn = np.searchsorted(joined_post, positions, side="right")
    final_turn = join_turn + run.steps - 1
    run.start = start_arr[join_turn]
    run.completion = end_arr[final_turn]
    run.batch = sizes[final_turn]
    run.account_columns(sizes, np.ones(turns, dtype=np.int64))

    admit_turn = np.searchsorted(now_arr, run.arrival, side="left")
    admit_depth = positions + 1 - joined_pre[admit_turn]
    admitted_at = np.searchsorted(run.arrival, now_arr, side="right")
    sample_depth = admitted_at - joined_post
    run.depth_columns(admit_turn, admit_depth, start_arr, sample_depth)


_KERNELS = {
    "fifo": _run_fifo,
    "static": _run_static,
    "dynamic": _run_dynamic,
    "continuous": _run_continuous,
}


def kernel_for(scheduler) -> "object | None":
    """The columnar kernel a scheduler instance *declared*, or ``None``.

    Only a ``columnar_kernel`` set in the instance's own class body counts
    (inherited declarations are ignored — see the scheduler docstring), and
    the name must resolve to a registered kernel.
    """
    name = type(scheduler).__dict__.get("columnar_kernel")
    if name is None:
        return None
    return _KERNELS.get(name)


def run_fast(
    engine, trace: RequestTrace, offered_rate_rps: "float | None" = None
) -> ServingResult:
    """Serve ``trace`` on the columnar backend.

    Dispatches to the scheduler's declared kernel; schedulers without one
    fall back to the engine's reference loop (``record_requests`` capping
    still applies, in :meth:`ServingEngine.run`).  Returns a result
    bit-identical to ``backend="reference"``.
    """
    from repro.serving.scheduler import get_scheduler

    config = engine.config
    scheduler = get_scheduler(
        config.scheduler, max_batch=config.max_batch, max_wait_s=config.max_wait_s
    )
    kernel = kernel_for(scheduler)
    if kernel is None or trace.num_requests == 0:
        result = engine._run_reference(trace, offered_rate_rps)
        result.backend_used = "reference"
        result.fast_path_fallback_reason = (
            f"scheduler {scheduler.name!r} declares no columnar kernel"
            if kernel is None
            else "empty trace"
        )
        return result
    run = _Run(engine, trace, scheduler)
    kernel(run)
    result = run.finalize(offered_rate_rps)
    result.backend_used = "columnar"
    return result
