"""Columnar fast backend for the discrete-event serving engine.

``backend="fast"`` (the default) replaces the reference loop in
:meth:`repro.serving.engine.ServingEngine.run` with *columnar kernels*:
specialized replays of each built-in scheduler's decision sequence that

* advance arrivals in chunks over the trace's arrival **column** instead of
  one admission per decision turn (and never materialize ``Request``
  objects at all),
* keep per-device occupancy in scalar registers and write per-request
  starts/completions/batch sizes into preallocated numpy arrays,
* fold per-dispatch accounting either with ``np.cumsum`` (a sequential
  running fold, so bit-identical to the reference loop's repeated ``+=``)
  or with the reference's own scalar adds in dispatch order.

Bit-identity is the contract, not an aspiration: every float in a fast
result — starts, completions, busy/energy accumulators, the queue-depth
timeline — is produced by the same IEEE operations in the same order as the
reference loop, and the fast-vs-reference battery asserts full dataclass
equality over every scheduler × platform × load.  Two facts carry most of
the weight:

* for **barrier** schedulers (fifo, continuous) the accelerator never waits:
  the clock advances to each dispatch's end, so ``accel_free <= start`` and
  every iteration completes at ``cursor + total_s`` exactly;
* ``np.cumsum``/batched elementwise products reproduce sequential scalar
  accumulation, while pairwise ``np.sum`` would not.

A scheduler opts into a kernel by *declaring*
:attr:`~repro.serving.scheduler.BatchScheduler.columnar_kernel` in its own
class body.  Custom schedulers (and subclasses that don't redeclare it) fall
back to the reference loop — still correct, just not columnar — and the
``record_requests`` capping applies either way, so streaming results look
the same regardless of which path served them.

With a ``record_requests`` cap the kernels skip the per-event timeline and
full record list entirely: queue-depth samples fold into count/sum/max
accumulators, latencies into the fixed-grid streaming quantile estimator,
and only the seeded reservoir sample of records is materialized — a
million-request trace costs the five per-request columns (~40 B/request)
and nothing else.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError
from repro.serving.metrics import (
    RequestRecord,
    ServingResult,
    sample_record_indices,
    streaming_stats,
)
from repro.serving.trace import RequestTrace


def _running_total(values: np.ndarray) -> float:
    """Sequential left fold of per-dispatch contributions (see module doc)."""
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


class _Run:
    """Per-run columnar state shared by every kernel."""

    def __init__(self, engine, trace: RequestTrace, scheduler):
        self.engine = engine
        self.trace = trace
        self.scheduler = scheduler
        self.n = trace.num_requests
        self.arrival = trace.arrival_column()
        self.steps = trace.decode_column()
        # per-request output columns (trace order); every kernel assigns all
        # three before finalize() reads them.
        self.start: np.ndarray = None
        self.completion: np.ndarray = None
        self.batch: np.ndarray = None
        self.cap = engine.config.record_requests
        self.full = self.cap is None
        #: (time, depth) samples in reference order — built only uncapped.
        self.timeline: list[tuple[float, int]] = []
        self.depth_count = 0
        self.depth_sum = 0
        self.depth_max = 0
        self.busy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.energy = {spec.kind: 0.0 for spec in engine.platform.devices}
        self.gemm = 0.0
        self.non_gemm = 0.0
        self.dispatches = 0
        self.iterations = 0
        self.weighted = 0
        self._costs: dict[int, object] = {}

    def cost(self, size: int):
        cached = self._costs.get(size)
        if cached is None:
            cached = self._costs[size] = self.engine.costs.cost(size)
        return cached

    # -- per-dispatch bookkeeping (scalar kernels) --------------------------

    def note_depth(self, time_s: float, depth: int) -> None:
        if self.full:
            self.timeline.append((time_s, depth))
        else:
            self.depth_count += 1
            self.depth_sum += depth
            if depth > self.depth_max:
                self.depth_max = depth

    def account_dispatch(self, cost, size: int, iterations: int) -> None:
        """The reference loop's per-dispatch accounting, verbatim."""
        for kind, seconds in cost.busy_s.items():
            self.busy[kind] += seconds * iterations
        for kind, joules in cost.energy_j.items():
            self.energy[kind] += joules * iterations
        self.gemm += cost.gemm_s * iterations
        self.non_gemm += cost.non_gemm_s * iterations
        self.dispatches += 1
        self.iterations += iterations
        self.weighted += size * iterations

    # -- result assembly ----------------------------------------------------

    def finalize(self, offered_rate_rps: "float | None") -> ServingResult:
        engine = self.engine
        config = engine.config
        result = ServingResult(
            model=config.model,
            flow=engine.flow.name,
            platform_id=config.platform,
            device=engine.target.value,
            scheduler=self.scheduler.name,
            trace=self.trace.name,
            offered_rate_rps=(
                self.trace.offered_rate_rps
                if offered_rate_rps is None
                else offered_rate_rps
            ),
        )
        result.makespan_s = float(self.completion.max()) - float(self.arrival[0])
        result.num_dispatches = self.dispatches
        result.num_iterations = self.iterations
        result.mean_batch_size = (
            self.weighted / self.iterations if self.iterations else 0.0
        )
        result.busy_s = self.busy
        result.energy_j = self.energy
        result.gemm_busy_s = self.gemm
        result.non_gemm_busy_s = self.non_gemm
        if self.full:
            result.records = self._records(np.arange(self.n))
            result.queue_depth_timeline = tuple(self.timeline)
        else:
            # identical arithmetic to metrics.cap_serving_result, fed from
            # columns instead of record objects — elementwise float64
            # subtraction matches the per-record python subtraction.
            result.stats = streaming_stats(
                self.completion - self.arrival,
                self.start - self.arrival,
                depth_samples=self.depth_count,
                depth_sum=self.depth_sum,
                depth_max=self.depth_max,
            )
            result.num_served = self.n
            result.record_cap = self.cap
            result.records = self._records(sample_record_indices(self.n, self.cap))
        return result

    def _records(self, indices: np.ndarray) -> list[RequestRecord]:
        ids = self.trace.id_column()[indices].tolist()
        arrivals = self.arrival[indices].tolist()
        starts = self.start[indices].tolist()
        completions = self.completion[indices].tolist()
        steps = self.steps[indices].tolist()
        batches = self.batch[indices].tolist()
        return [
            RequestRecord(rid, a, s, c, d, b)
            for rid, a, s, c, d, b in zip(
                ids, arrivals, starts, completions, steps, batches
            )
        ]


# -- kernels ------------------------------------------------------------------


def _run_fifo(run: _Run, more_until: float = float("-inf")) -> None:
    """FIFO: one barrier dispatch per request, in arrival order.

    Closed form (proven against the reference loop): ``start_i =
    max(completion_{i-1}, arrival_i)`` and the completion is ``decode_steps``
    sequential ``+= total_s`` adds — a barrier dispatch's accelerator phase
    never waits, so every iteration takes the uncontended ``total_s`` path.
    The decision-time bookkeeping (admission/dispatch queue depths) is
    reconstructed vectorially from the start column afterwards.
    """
    cost = run.cost(1)
    total_s = cost.total_s
    arrivals = run.arrival.tolist()
    step_counts = run.steps.tolist()
    starts: list[float] = []
    completions: list[float] = []
    push_start = starts.append
    push_end = completions.append
    end = 0.0
    for arrival, iterations in zip(arrivals, step_counts):
        begin = end if end > arrival else arrival
        cursor = begin
        for _ in range(iterations):
            cursor += total_s
        push_start(begin)
        push_end(cursor)
        end = cursor
    run.start = np.array(starts, dtype=np.float64)
    run.completion = np.array(completions, dtype=np.float64)
    run.batch = np.ones(run.n, dtype=np.int64)

    # accounting: one dispatch per request with k_i iterations; cumsum of the
    # per-dispatch contributions is the reference's sequential accumulation.
    iteration_counts = run.steps
    run.dispatches = run.n
    run.iterations = int(iteration_counts.sum())
    run.weighted = run.iterations  # size 1 per dispatch
    for kind, seconds in cost.busy_s.items():
        run.busy[kind] = _running_total(seconds * iteration_counts)
    for kind, joules in cost.energy_j.items():
        run.energy[kind] = _running_total(joules * iteration_counts)
    run.gemm = _running_total(cost.gemm_s * iteration_counts)
    run.non_gemm = _running_total(cost.non_gemm_s * iteration_counts)

    # queue-depth samples: request j is admitted right before dispatch
    # d(j) = first i with start_i >= arrival_j (starts strictly increase, so
    # searchsorted is exact); at that point d(j) requests have been taken.
    order_index = np.arange(run.n, dtype=np.int64)
    admit_before = np.searchsorted(run.start, run.arrival, side="left")
    admit_depth = order_index + 1 - admit_before
    admitted_at = np.searchsorted(admit_before, order_index, side="right")
    dispatch_depth = admitted_at - order_index - 1
    if run.full:
        times = np.concatenate([run.arrival, run.start])
        depths = np.concatenate([admit_depth, dispatch_depth])
        # admissions for a dispatch precede the dispatch sample; the stable
        # sort keeps equal-key admissions in arrival order.
        keys = np.concatenate([2 * admit_before, 2 * order_index + 1])
        order = np.argsort(keys, kind="stable")
        run.timeline = list(zip(times[order].tolist(), depths[order].tolist()))
    else:
        run.depth_count = 2 * run.n
        run.depth_sum = int(admit_depth.sum() + dispatch_depth.sum())
        run.depth_max = int(
            max(admit_depth.max(initial=0), dispatch_depth.max(initial=0))
        )


def _run_batched(
    run: _Run, dynamic: bool, more_until: float = float("-inf")
) -> None:
    """Static/dynamic batching: chunked admissions, scalar occupancy.

    One loop turn per *dispatch* (plus deadline waits for dynamic), with the
    reference's exact iteration arithmetic — including the contended
    accelerator branch these non-barrier schedulers can hit.

    ``more_until`` models the cluster's *global* ``arrivals_pending`` flag:
    a replica's sub-trace may exhaust while other replicas still have
    arrivals due, and the reference scheduler keeps holding a partial batch
    until the whole trace's last arrival (exclusive) has been drained.  The
    solo engine passes the default ``-inf`` (no outside arrivals), which
    reduces to the original ``admitted < n`` predicate.
    """
    scheduler = run.scheduler
    batch_cap = scheduler.max_batch
    max_wait_s = scheduler.max_wait_s
    n = run.n
    arrivals = run.arrival.tolist()
    steps = run.steps.tolist()
    # per-request outputs accumulate in plain lists (appending size scalars
    # per dispatch beats numpy slice-assignment at serving batch sizes) and
    # convert to columns once at the end.
    starts: list[float] = []
    completions: list[float] = []
    batches: list[int] = []
    note_depth = run.note_depth

    now = 0.0
    host_free = 0.0
    accel_free = 0.0
    admitted = 0  # arrivals admitted so far (queue tail)
    taken = 0  # requests dispatched so far (queue head)
    while taken < n:
        while admitted < n and arrivals[admitted] <= now:
            note_depth(arrivals[admitted], admitted + 1 - taken)
            admitted += 1
        queued = admitted - taken
        if queued == 0:
            now = arrivals[admitted]
            continue
        if queued < batch_cap and (admitted < n or now < more_until):
            if not dynamic:
                # static: keep accumulating until the batch fills (or, in a
                # cluster, until the global arrival stream dries up).
                now = arrivals[admitted] if admitted < n else more_until
                continue
            deadline = arrivals[taken] + max_wait_s
            if now < deadline:
                next_arrival = arrivals[admitted] if admitted < n else more_until
                now = deadline if deadline < next_arrival else next_arrival
                continue
        size = batch_cap if queued > batch_cap else queued
        iterations = max(steps[taken : taken + size])
        cost = run.cost(size)
        host_s = cost.host_s
        accel_s = cost.accel_s
        total_s = cost.total_s
        has_accel = cost.has_accel
        start = now if now > host_free else host_free
        cursor = start
        for _ in range(iterations):
            host_end = cursor + host_s
            if has_accel:
                if accel_free > host_end:
                    end = accel_free + accel_s
                else:
                    end = cursor + total_s
                accel_free = end
            else:
                end = cursor + total_s
                host_end = end
            host_free = host_end
            cursor = end
        starts.extend([start] * size)
        completions.extend([cursor] * size)
        batches.extend([size] * size)
        run.account_dispatch(cost, size, iterations)
        taken += size
        note_depth(start, admitted - taken)
        now = now if now > host_free else host_free
    run.start = np.array(starts, dtype=np.float64)
    run.completion = np.array(completions, dtype=np.float64)
    run.batch = np.array(batches, dtype=np.int64)


def _run_static(run: _Run, more_until: float = float("-inf")) -> None:
    _run_batched(run, dynamic=False, more_until=more_until)


def _run_dynamic(run: _Run, more_until: float = float("-inf")) -> None:
    _run_batched(run, dynamic=True, more_until=more_until)


def _run_continuous(run: _Run, more_until: float = float("-inf")) -> None:
    """Continuous (iteration-level) batching: one turn per model iteration.

    Membership lives in insertion-ordered parallel position/remaining lists
    (the kernel's stand-in for the scheduler's ``_in_flight`` dict).  Every
    dispatch is a barrier, so the accelerator is always uncontended and each
    iteration ends at ``start + total_s`` exactly.
    """
    scheduler = run.scheduler
    batch_cap = scheduler.max_batch
    n = run.n
    arrivals = run.arrival.tolist()
    step_counts = run.steps.tolist()
    # scattered per-position writes land in plain lists (cheaper than numpy
    # scalar assignment), converted to columns once at the end.
    start_list = [0.0] * n
    completion_list = [0.0] * n
    batch_list = [0] * n
    note_depth = run.note_depth

    now = 0.0
    host_free = 0.0
    admitted = 0
    joined = 0  # queue head: requests moved into the in-flight set
    flight_pos: list[int] = []
    flight_rem: list[int] = []
    completed = 0
    while completed < n:
        while admitted < n and arrivals[admitted] <= now:
            note_depth(arrivals[admitted], admitted + 1 - joined)
            admitted += 1
        free = batch_cap - len(flight_pos)
        fresh: range = range(0)
        if free > 0 and admitted > joined:
            take = free if free < admitted - joined else admitted - joined
            fresh = range(joined, joined + take)
            joined += take
        if not flight_pos and not fresh:
            if admitted < n:
                now = arrivals[admitted]
                continue
            raise ServingError(
                f"continuous kernel stalled with {n - completed} requests"
                f" outstanding at t={now:.6f}s"
            )
        for position in fresh:
            flight_pos.append(position)
            flight_rem.append(step_counts[position])
        size = len(flight_pos)
        cost = run.cost(size)
        start = now if now > host_free else host_free
        end = start + cost.total_s
        host_free = start + cost.host_s if cost.has_accel else end
        for position in fresh:
            start_list[position] = start
        surviving_pos: list[int] = []
        surviving_rem: list[int] = []
        for position, remaining in zip(flight_pos, flight_rem):
            remaining -= 1
            if remaining == 0:
                completion_list[position] = end
                batch_list[position] = size
                completed += 1
            else:
                surviving_pos.append(position)
                surviving_rem.append(remaining)
        flight_pos = surviving_pos
        flight_rem = surviving_rem
        run.account_dispatch(cost, size, 1)
        note_depth(start, admitted - joined)
        now = end  # barrier
    run.start = np.array(start_list, dtype=np.float64)
    run.completion = np.array(completion_list, dtype=np.float64)
    run.batch = np.array(batch_list, dtype=np.int64)


_KERNELS = {
    "fifo": _run_fifo,
    "static": _run_static,
    "dynamic": _run_dynamic,
    "continuous": _run_continuous,
}


def kernel_for(scheduler) -> "object | None":
    """The columnar kernel a scheduler instance *declared*, or ``None``.

    Only a ``columnar_kernel`` set in the instance's own class body counts
    (inherited declarations are ignored — see the scheduler docstring), and
    the name must resolve to a registered kernel.
    """
    name = type(scheduler).__dict__.get("columnar_kernel")
    if name is None:
        return None
    return _KERNELS.get(name)


def run_fast(
    engine, trace: RequestTrace, offered_rate_rps: "float | None" = None
) -> ServingResult:
    """Serve ``trace`` on the columnar backend.

    Dispatches to the scheduler's declared kernel; schedulers without one
    fall back to the engine's reference loop (``record_requests`` capping
    still applies, in :meth:`ServingEngine.run`).  Returns a result
    bit-identical to ``backend="reference"``.
    """
    from repro.serving.scheduler import get_scheduler

    config = engine.config
    scheduler = get_scheduler(
        config.scheduler, max_batch=config.max_batch, max_wait_s=config.max_wait_s
    )
    kernel = kernel_for(scheduler)
    if kernel is None or trace.num_requests == 0:
        return engine._run_reference(trace, offered_rate_rps)
    run = _Run(engine, trace, scheduler)
    kernel(run)
    return run.finalize(offered_rate_rps)
