"""Serving metrics: tail latency, throughput, occupancy, queue depth.

:class:`ServingResult` is the engine's output: plain scalars, dicts, and
per-request :class:`RequestRecord` tuples — no plan, graph, or platform
backrefs — so results ship over process-pool IPC and pickle lean without a
``detach()`` step (the serving analogue of ``ProfileResult.detach``).

Percentiles use the deterministic nearest-rank definition (the
``ceil(q * n)``-th smallest sample), so reported tails are actual observed
latencies and byte-stable across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.hardware.device import DeviceKind


class RequestRecord(NamedTuple):
    """Timeline of one served request."""

    request_id: int
    arrival_s: float
    #: when the request's first dispatch began (queueing ends here).
    start_s: float
    completion_s: float
    decode_steps: int
    #: graph batch size of the dispatch that completed the request.
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        return self.start_s - self.arrival_s


def nearest_rank(sorted_values: list[float], quantile: float) -> float:
    """The nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(quantile * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


@dataclass
class ServingResult:
    """Aggregate outcome of one serving simulation."""

    model: str
    flow: str
    platform_id: str
    device: str
    scheduler: str
    trace: str
    offered_rate_rps: float
    records: list[RequestRecord] = field(default_factory=list)
    #: first arrival to last completion.
    makespan_s: float = 0.0
    num_dispatches: int = 0
    #: model iterations executed (>= num_dispatches for decode workloads).
    num_iterations: int = 0
    mean_batch_size: float = 0.0
    #: per-device busy seconds / energy, summed over every iteration.
    busy_s: dict[DeviceKind, float] = field(default_factory=dict)
    energy_j: dict[DeviceKind, float] = field(default_factory=dict)
    gemm_busy_s: float = 0.0
    non_gemm_busy_s: float = 0.0
    #: queue depth sampled at every admission and dispatch (time, depth).
    queue_depth_timeline: tuple[tuple[float, int], ...] = ()

    # -- latency -----------------------------------------------------------

    def latencies_s(self) -> list[float]:
        return sorted(record.latency_s for record in self.records)

    @property
    def p50_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.50)

    @property
    def p95_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.95)

    @property
    def p99_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.latency_s for record in self.records) / len(self.records)

    @property
    def max_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return max(record.latency_s for record in self.records)

    @property
    def mean_queue_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.queue_s for record in self.records) / len(self.records)

    # -- throughput & occupancy -------------------------------------------

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return len(self.records) / self.makespan_s

    def utilization(self) -> dict[DeviceKind, float]:
        """Busy fraction of the makespan per device."""
        if self.makespan_s <= 0.0:
            return {kind: 0.0 for kind in self.busy_s}
        return {kind: busy / self.makespan_s for kind, busy in self.busy_s.items()}

    @property
    def non_gemm_busy_share(self) -> float:
        """Non-GEMM fraction of all simulated kernel time under load."""
        total = self.gemm_busy_s + self.non_gemm_busy_s
        if total <= 0.0:
            return 0.0
        return self.non_gemm_busy_s / total

    @property
    def max_queue_depth(self) -> int:
        if not self.queue_depth_timeline:
            return 0
        return max(depth for _, depth in self.queue_depth_timeline)

    @property
    def mean_queue_depth(self) -> float:
        """Mean of the queue-depth samples (taken at every transition)."""
        if not self.queue_depth_timeline:
            return 0.0
        return sum(depth for _, depth in self.queue_depth_timeline) / len(
            self.queue_depth_timeline
        )

    def describe(self) -> str:
        return (
            f"{self.model} [{self.flow}, platform {self.platform_id}, {self.device},"
            f" {self.scheduler}] {self.offered_rate_rps:.1f} rps offered:"
            f" {self.throughput_rps:.1f} rps served, p50 {self.p50_s * 1e3:.2f} ms,"
            f" p99 {self.p99_s * 1e3:.2f} ms, mean batch {self.mean_batch_size:.2f},"
            f" non-GEMM busy {self.non_gemm_busy_share:.1%}"
        )
