"""Serving metrics: tail latency, throughput, occupancy, queue depth.

:class:`ServingResult` is the engine's output: plain scalars, dicts, and
per-request :class:`RequestRecord` tuples — no plan, graph, or platform
backrefs — so results ship over process-pool IPC and pickle lean without a
``detach()`` step (the serving analogue of ``ProfileResult.detach``).

Percentiles use the deterministic nearest-rank definition (the
``ceil(q * n)``-th smallest sample), so reported tails are actual observed
latencies and byte-stable across runs and platforms.

Million-request runs don't keep every sample: with a ``record_requests``
cap on the serving config, results carry a uniform reservoir sample of the
records plus a :class:`StreamingStats` block — O(1)-memory aggregates with
percentiles from a fixed log-grid estimator (:class:`StreamingQuantile`,
relative error below one grid step ≈ 0.9%).  Capping is a deterministic
pure function of the full run (:func:`cap_serving_result`), so the fast and
reference backends produce identical capped results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.hardware.device import DeviceKind


class RequestRecord(NamedTuple):
    """Timeline of one served request."""

    request_id: int
    arrival_s: float
    #: when the request's first dispatch began (queueing ends here).
    start_s: float
    completion_s: float
    decode_steps: int
    #: graph batch size of the dispatch that completed the request.
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        return self.start_s - self.arrival_s


def nearest_rank(sorted_values: list[float], quantile: float) -> float:
    """The nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(quantile * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


# -- streaming (O(1)-memory) aggregation -------------------------------------


def _ordered_sum(values: np.ndarray) -> float:
    """Sequential left-to-right accumulation: ``np.cumsum`` is a running
    fold, so this matches repeated scalar ``+=`` bit for bit (pairwise
    ``np.sum`` does not)."""
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


#: bounds and resolution of the streaming quantile grid (seconds).
QUANTILE_GRID_LO = 1e-7
QUANTILE_GRID_HI = 1e4
QUANTILE_BINS_PER_DECADE = 256

_GRID_DECADES = 11  # 1e-7 .. 1e4
_GRID_EDGES = np.geomspace(
    QUANTILE_GRID_LO, QUANTILE_GRID_HI, _GRID_DECADES * QUANTILE_BINS_PER_DECADE + 1
)


class StreamingQuantile:
    """Fixed log-grid quantile estimator with O(1) memory.

    Samples are binned into :data:`QUANTILE_BINS_PER_DECADE` log-spaced
    counters per decade spanning ``[1e-7, 1e4]`` seconds (~22 KB of int64
    counts).  ``quantile(q)`` locates the bin holding the nearest-rank
    sample and reports its **upper edge**, clamped into the observed
    ``[min, max]``:

    * the estimate never undershoots the exact nearest-rank value and
      overshoots by less than one grid step (``10**(1/256) - 1`` < 0.91%
      relative) — pinned by the adversarial-sample accuracy tests;
    * constant samples are exact (the max clamp);
    * samples outside the grid clamp to its ends, where the min/max clamp
      keeps the reported value an actually-observed one.

    Unlike P²-style estimators, accuracy is unconditional — bimodal and
    heavy-tailed samples cannot push the error beyond the grid step.
    """

    __slots__ = ("_counts", "_count", "_min", "_max")

    def __init__(self) -> None:
        self._counts = np.zeros(_GRID_EDGES.size, dtype=np.int64)
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    def add(self, values: np.ndarray) -> None:
        """Fold a batch of samples (seconds) into the grid."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self._count += int(values.size)
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        bins = np.searchsorted(_GRID_EDGES, values, side="left")
        np.minimum(bins, _GRID_EDGES.size - 1, out=bins)
        self._counts += np.bincount(bins, minlength=_GRID_EDGES.size)

    def quantile(self, q: float) -> float:
        """The nearest-rank quantile estimate (upper grid edge, clamped to
        the observed extrema)."""
        if self._count == 0:
            return 0.0
        rank = max(math.ceil(q * self._count), 1)
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        if index == 0:
            # underflow bin: every sample here is below the grid's lowest
            # edge, so the smallest observed value is the tightest estimate.
            return self._min
        if index == _GRID_EDGES.size - 1:
            # top bin (which also absorbs overflow): the largest observed
            # value both bounds the bin's samples and covers overflow.
            return self._max
        estimate = float(_GRID_EDGES[index])
        return min(max(estimate, self._min), self._max)


@dataclass(frozen=True)
class StreamingStats:
    """O(1)-size aggregates of a capped (``record_requests``) run.

    Percentiles come from :class:`StreamingQuantile` (upper-grid-edge
    estimates, < 0.91% relative error); means are sequential-order float
    folds, so both backends produce identical blocks.
    """

    num_requests: int
    mean_latency_s: float
    max_latency_s: float
    mean_queue_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    #: queue-depth samples (one per admission and per dispatch): the
    #: streaming replacement for ``queue_depth_timeline``.
    depth_samples: int = 0
    depth_sum: int = 0
    depth_max: int = 0


def streaming_stats(
    latencies: np.ndarray,
    queue_delays: "np.ndarray | None" = None,
    depth_samples: int = 0,
    depth_sum: int = 0,
    depth_max: int = 0,
) -> StreamingStats:
    """Fold latency (and optional queueing-delay) columns into a
    :class:`StreamingStats` block.  Deterministic and order-sensitive —
    callers must pass columns in the canonical (trace/record) order so both
    backends agree bit for bit."""
    latencies = np.asarray(latencies, dtype=np.float64)
    count = int(latencies.size)
    estimator = StreamingQuantile()
    estimator.add(latencies)
    if queue_delays is None:
        queue_delays = np.zeros(0)
    else:
        queue_delays = np.asarray(queue_delays, dtype=np.float64)
    return StreamingStats(
        num_requests=count,
        mean_latency_s=_ordered_sum(latencies) / count if count else 0.0,
        max_latency_s=float(latencies.max()) if count else 0.0,
        mean_queue_s=(
            _ordered_sum(queue_delays) / int(queue_delays.size)
            if queue_delays.size
            else 0.0
        ),
        p50_s=estimator.quantile(0.50),
        p95_s=estimator.quantile(0.95),
        p99_s=estimator.quantile(0.99),
        depth_samples=depth_samples,
        depth_sum=depth_sum,
        depth_max=depth_max,
    )


def sample_record_indices(total: int, cap: int) -> np.ndarray:
    """A sorted uniform random size-``cap`` subset of ``range(total)`` — the
    reservoir-sample distribution, drawn in one vectorized call from a
    generator seeded by ``(total, cap)`` so repeat runs and both backends
    keep identical record samples."""
    if cap >= total:
        return np.arange(total, dtype=np.int64)
    rng = np.random.default_rng((total, cap))
    picks = rng.choice(total, size=cap, replace=False)
    picks.sort()
    return picks.astype(np.int64, copy=False)


@dataclass
class ServingResult:
    """Aggregate outcome of one serving simulation."""

    model: str
    flow: str
    platform_id: str
    device: str
    scheduler: str
    trace: str
    offered_rate_rps: float
    records: list[RequestRecord] = field(default_factory=list)
    #: first arrival to last completion.
    makespan_s: float = 0.0
    num_dispatches: int = 0
    #: model iterations executed (>= num_dispatches for decode workloads).
    num_iterations: int = 0
    mean_batch_size: float = 0.0
    #: per-device busy seconds / energy, summed over every iteration.
    busy_s: dict[DeviceKind, float] = field(default_factory=dict)
    energy_j: dict[DeviceKind, float] = field(default_factory=dict)
    gemm_busy_s: float = 0.0
    non_gemm_busy_s: float = 0.0
    #: queue depth sampled at every admission and dispatch (time, depth);
    #: empty in capped runs (``stats`` carries the depth accumulators).
    queue_depth_timeline: tuple[tuple[float, int], ...] = ()
    #: requests actually served when ``records`` is a capped sample;
    #: ``None`` means records are complete.
    num_served: int | None = None
    #: the ``record_requests`` cap that produced the sample (``None``: none).
    record_cap: int | None = None
    #: O(1) streaming aggregates; present exactly when records are capped.
    stats: StreamingStats | None = None
    #: which backend actually served the run ("columnar" / "reference");
    #: diagnostic only, excluded from equality so fast-vs-reference
    #: crosschecks still compare every physical field.
    backend_used: str | None = field(default=None, compare=False)
    #: why ``backend="fast"`` fell back to the reference loop (``None``
    #: when the fast path ran or was never requested).
    fast_path_fallback_reason: str | None = field(default=None, compare=False)

    # -- latency -----------------------------------------------------------

    def latencies_s(self) -> list[float]:
        return sorted(record.latency_s for record in self.records)

    @property
    def p50_s(self) -> float:
        if self.stats is not None:
            return self.stats.p50_s
        return nearest_rank(self.latencies_s(), 0.50)

    @property
    def p95_s(self) -> float:
        if self.stats is not None:
            return self.stats.p95_s
        return nearest_rank(self.latencies_s(), 0.95)

    @property
    def p99_s(self) -> float:
        if self.stats is not None:
            return self.stats.p99_s
        return nearest_rank(self.latencies_s(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        if self.stats is not None:
            return self.stats.mean_latency_s
        if not self.records:
            return 0.0
        return sum(record.latency_s for record in self.records) / len(self.records)

    @property
    def max_latency_s(self) -> float:
        if self.stats is not None:
            return self.stats.max_latency_s
        if not self.records:
            return 0.0
        return max(record.latency_s for record in self.records)

    @property
    def mean_queue_s(self) -> float:
        if self.stats is not None:
            return self.stats.mean_queue_s
        if not self.records:
            return 0.0
        return sum(record.queue_s for record in self.records) / len(self.records)

    # -- throughput & occupancy -------------------------------------------

    @property
    def num_requests_served(self) -> int:
        """Requests served, whether or not records are capped."""
        if self.num_served is not None:
            return self.num_served
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return self.num_requests_served / self.makespan_s

    def utilization(self) -> dict[DeviceKind, float]:
        """Busy fraction of the makespan per device."""
        if self.makespan_s <= 0.0:
            return {kind: 0.0 for kind in self.busy_s}
        return {kind: busy / self.makespan_s for kind, busy in self.busy_s.items()}

    @property
    def non_gemm_busy_share(self) -> float:
        """Non-GEMM fraction of all simulated kernel time under load."""
        total = self.gemm_busy_s + self.non_gemm_busy_s
        if total <= 0.0:
            return 0.0
        return self.non_gemm_busy_s / total

    @property
    def max_queue_depth(self) -> int:
        if self.stats is not None:
            return self.stats.depth_max
        if not self.queue_depth_timeline:
            return 0
        return max(depth for _, depth in self.queue_depth_timeline)

    @property
    def mean_queue_depth(self) -> float:
        """Mean of the queue-depth samples (taken at every transition)."""
        if self.stats is not None:
            if not self.stats.depth_samples:
                return 0.0
            return self.stats.depth_sum / self.stats.depth_samples
        if not self.queue_depth_timeline:
            return 0.0
        return sum(depth for _, depth in self.queue_depth_timeline) / len(
            self.queue_depth_timeline
        )

    def describe(self) -> str:
        return (
            f"{self.model} [{self.flow}, platform {self.platform_id}, {self.device},"
            f" {self.scheduler}] {self.offered_rate_rps:.1f} rps offered:"
            f" {self.throughput_rps:.1f} rps served, p50 {self.p50_s * 1e3:.2f} ms,"
            f" p99 {self.p99_s * 1e3:.2f} ms, mean batch {self.mean_batch_size:.2f},"
            f" non-GEMM busy {self.non_gemm_busy_share:.1%}"
        )


def cap_serving_result(result: ServingResult, cap: int) -> ServingResult:
    """Convert a fully-recorded result into its capped/streaming form.

    A deterministic pure function of the full run: streaming aggregates are
    folded from the record columns in record order, the kept records are the
    seeded uniform sample of :func:`sample_record_indices`, and the
    queue-depth timeline collapses into count/sum/max accumulators.  The
    columnar fast backend produces this same form directly (without ever
    building the full lists); applying this to a reference run must —
    and the equivalence battery checks it does — yield identical bytes.
    """
    records = result.records
    latencies = np.array(
        [record.completion_s - record.arrival_s for record in records], dtype=np.float64
    )
    queue_delays = np.array(
        [record.start_s - record.arrival_s for record in records], dtype=np.float64
    )
    depths = [depth for _, depth in result.queue_depth_timeline]
    result.stats = streaming_stats(
        latencies,
        queue_delays,
        depth_samples=len(depths),
        depth_sum=sum(depths),
        depth_max=max(depths) if depths else 0,
    )
    result.num_served = len(records)
    result.record_cap = cap
    keep = sample_record_indices(len(records), cap)
    result.records = [records[index] for index in keep.tolist()]
    result.queue_depth_timeline = ()
    return result


# -- cluster-level aggregation ----------------------------------------------

#: terminal states of a cluster request.
REQUEST_OK = "ok"
REQUEST_SHED = "shed"
REQUEST_FAILED = "failed"


class ClusterRequestRecord(NamedTuple):
    """Outcome of one request routed through a :class:`ClusterRouter`.

    ``completion_s`` is ``None`` for shed and failed requests.  ``replica``
    is the replica whose dispatch completed the request (the hedge winner
    when hedged), or ``-1`` if it never completed.  ``attempts`` counts
    admissions: 1 for a first-try completion, +1 per timeout retry.
    """

    request_id: int
    arrival_s: float
    completion_s: float | None
    status: str
    replica: int
    attempts: int
    hedged: bool
    hedge_won: bool

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.arrival_s


class ScaleEvent(NamedTuple):
    """One entry of the autoscaling audit log.

    ``action`` is ``"up"`` (provisioning decided), ``"online"`` (the
    provision delay elapsed, the replica admits work), ``"down"`` (drain
    decided, the replica stops admitting), or ``"drained"`` (backlog
    finished, the replica went offline).  ``serving`` is the number of
    replicas online-and-not-draining once the event takes effect.
    """

    time_s: float
    action: str
    replica: int
    serving: int
    reason: str


@dataclass
class ClusterResult:
    """Aggregate outcome of one multi-replica cluster simulation.

    Per-replica detail lives in ``replicas`` — one plan-free
    :class:`ServingResult` each (the single-replica no-fault cluster's
    ``replicas[0]`` is bit-identical to a plain engine run; the equivalence
    battery pins this).  Cluster-level records track what each *request*
    experienced across retries, hedges, and shedding.
    """

    model: str
    flow: str
    device: str
    scheduler: str
    policy: str
    trace: str
    fault_profile: str
    platform_ids: tuple[str, ...]
    offered_rate_rps: float
    #: goodput deadline; ``None`` counts every completion as good.
    deadline_s: float | None = None
    records: list[ClusterRequestRecord] = field(default_factory=list)
    replicas: list[ServingResult] = field(default_factory=list)
    #: first arrival to last completion.
    makespan_s: float = 0.0
    num_shed: int = 0
    num_failed: int = 0
    #: timeout-driven re-admissions (not counting each request's first).
    num_retries: int = 0
    #: hedge copies launched / hedge copies that finished first.
    num_hedges: int = 0
    num_hedge_wins: int = 0
    #: worst time from a fault window clearing to the afflicted replica's
    #: first dispatch completion afterwards (0 when no fault or no work).
    time_to_recovery_s: float = 0.0
    #: serving-replica count over time: ``(time_s, count)`` steps, starting
    #: at t=0.  A fixed fleet (or an autoscaled run whose controller never
    #: acted) has the single entry ``(0.0, num_replicas)``.
    replica_timeline: tuple[tuple[float, int], ...] = ()
    #: autoscaling audit log (empty for fixed fleets).
    scale_events: tuple[ScaleEvent, ...] = ()
    #: provisioned capacity paid for, in replica-seconds: each replica's
    #: held span (scale-up decision through drain completion, provisioning
    #: delay included) clipped to the run's [first arrival, last
    #: completion] window.  ``num_replicas * makespan_s`` for fixed fleets.
    replica_seconds: float = 0.0
    #: per-replica *active window* (online span within the run window, in
    #: seconds) — the denominator :meth:`active_utilization` normalizes
    #: by.  Every entry equals ``makespan_s`` for fixed fleets.
    replica_active_s: tuple[float, ...] = ()
    #: trace size / completions / within-deadline completions when
    #: ``records`` is a capped sample; ``None`` means records are complete.
    num_requests_total: int | None = None
    num_completed: int | None = None
    num_good: int | None = None
    #: the ``record_requests`` cap that produced the sample (``None``: none).
    record_cap: int | None = None
    #: streaming aggregates over admitted-completed latencies; present
    #: exactly when records are capped.
    stats: StreamingStats | None = None
    #: which backend actually served the run ("columnar" for the no-fault
    #: closed forms, "columnar-faulted" for the fault-capable replay,
    #: "reference" for the event loop); diagnostic only, excluded from
    #: equality so fast-vs-reference crosschecks compare physical fields.
    backend_used: str | None = field(default=None, compare=False)
    #: why ``backend="fast"`` fell back to the reference loop (``None``
    #: when a fast path ran or was never requested).
    fast_path_fallback_reason: str | None = field(default=None, compare=False)

    @property
    def num_replicas(self) -> int:
        return len(self.platform_ids)

    def completed(self) -> list[ClusterRequestRecord]:
        return [r for r in self.records if r.status == REQUEST_OK]

    def latencies_s(self) -> list[float]:
        """Ascending latencies of *admitted, completed* requests."""
        return sorted(r.latency_s for r in self.completed())

    @property
    def p50_s(self) -> float:
        if self.stats is not None:
            return self.stats.p50_s
        return nearest_rank(self.latencies_s(), 0.50)

    @property
    def p95_s(self) -> float:
        if self.stats is not None:
            return self.stats.p95_s
        return nearest_rank(self.latencies_s(), 0.95)

    @property
    def p99_s(self) -> float:
        if self.stats is not None:
            return self.stats.p99_s
        return nearest_rank(self.latencies_s(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        if self.stats is not None:
            return self.stats.mean_latency_s
        latencies = self.latencies_s()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def goodput(self) -> float:
        """Completed-within-deadline fraction of *all* trace requests.

        Shed and failed requests count against goodput — degrading
        gracefully means the good fraction stays high even though some
        requests are turned away.
        """
        if self.num_good is not None:
            if not self.num_requests_total:
                return 0.0
            return self.num_good / self.num_requests_total
        if not self.records:
            return 0.0
        good = sum(
            1
            for r in self.completed()
            if self.deadline_s is None or r.latency_s <= self.deadline_s
        )
        return good / len(self.records)

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        completed = (
            self.num_completed if self.num_completed is not None else len(self.completed())
        )
        return completed / self.makespan_s

    def utilization(self) -> list[dict[DeviceKind, float]]:
        """Per-replica busy fraction of the *cluster* makespan."""
        if self.makespan_s <= 0.0:
            return [{kind: 0.0 for kind in r.busy_s} for r in self.replicas]
        return [
            {kind: busy / self.makespan_s for kind, busy in r.busy_s.items()}
            for r in self.replicas
        ]

    def active_utilization(self) -> list[dict[DeviceKind, float]]:
        """Per-replica busy fraction of that replica's *active window*.

        Normalizing by the cluster makespan understates replicas that
        joined late or drained early; this divides each replica's busy
        time by its own online span (``replica_active_s``), so an
        autoscaled replica that served hard for a short life reads as
        busy, not idle.  Falls back to the makespan when lifecycle fields
        are absent (a result predating them), matching :meth:`utilization`.
        """
        out = []
        for index, replica in enumerate(self.replicas):
            window = (
                self.replica_active_s[index]
                if index < len(self.replica_active_s)
                else self.makespan_s
            )
            if window <= 0.0:
                out.append({kind: 0.0 for kind in replica.busy_s})
            else:
                out.append(
                    {kind: busy / window for kind, busy in replica.busy_s.items()}
                )
        return out

    @property
    def mean_replicas(self) -> float:
        """Time-averaged paid fleet size (replica-seconds over makespan)."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.replica_seconds / self.makespan_s

    @property
    def total_energy_j(self) -> float:
        return sum(sum(r.energy_j.values()) for r in self.replicas)

    @property
    def non_gemm_busy_share(self) -> float:
        gemm = sum(r.gemm_busy_s for r in self.replicas)
        non_gemm = sum(r.non_gemm_busy_s for r in self.replicas)
        total = gemm + non_gemm
        if total <= 0.0:
            return 0.0
        return non_gemm / total

    def describe(self) -> str:
        return (
            f"{self.model} [{self.flow}, {self.num_replicas}x"
            f" {'/'.join(self.platform_ids)}, {self.scheduler}, {self.policy},"
            f" faults={self.fault_profile}] {self.offered_rate_rps:.1f} rps offered:"
            f" {self.throughput_rps:.1f} rps served, goodput {self.goodput:.1%},"
            f" p99 {self.p99_s * 1e3:.2f} ms, shed {self.num_shed},"
            f" retries {self.num_retries}, hedge wins {self.num_hedge_wins}"
        )


def apply_static_lifecycle(result: ClusterResult) -> ClusterResult:
    """Fill the lifecycle fields of a fixed-fleet run.

    Every replica is online for the whole run, so the timeline is one
    step, the paid cost is ``replicas * makespan`` (a single multiply —
    the arithmetic an autoscaled run with zero scale events must also
    use, so a pinned ``min == max`` controller stays bit-identical to the
    plain router on every rail).
    """
    count = result.num_replicas
    span = result.makespan_s
    result.replica_timeline = ((0.0, count),)
    result.scale_events = ()
    result.replica_seconds = count * span
    result.replica_active_s = (span,) * count
    return result


def cap_cluster_result(result: ClusterResult, cap: int) -> ClusterResult:
    """Convert a fully-recorded cluster result into its capped form.

    Goodput/throughput counters and streaming latency aggregates are folded
    from the full record list (in trace order, completed requests only for
    latencies), then cluster records are reservoir-sampled and each replica
    result is capped via :func:`cap_serving_result`.  Deterministic, so both
    router backends produce identical capped results.
    """
    completed = [r for r in result.records if r.status == REQUEST_OK]
    latencies = np.array(
        [r.completion_s - r.arrival_s for r in completed], dtype=np.float64
    )
    result.stats = streaming_stats(latencies)
    result.num_requests_total = len(result.records)
    result.num_completed = len(completed)
    result.num_good = sum(
        1
        for r in completed
        if result.deadline_s is None
        or (r.completion_s - r.arrival_s) <= result.deadline_s
    )
    result.record_cap = cap
    keep = sample_record_indices(len(result.records), cap)
    result.records = [result.records[index] for index in keep.tolist()]
    result.replicas = [
        replica if replica.record_cap is not None else cap_serving_result(replica, cap)
        for replica in result.replicas
    ]
    return result
