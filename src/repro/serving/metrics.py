"""Serving metrics: tail latency, throughput, occupancy, queue depth.

:class:`ServingResult` is the engine's output: plain scalars, dicts, and
per-request :class:`RequestRecord` tuples — no plan, graph, or platform
backrefs — so results ship over process-pool IPC and pickle lean without a
``detach()`` step (the serving analogue of ``ProfileResult.detach``).

Percentiles use the deterministic nearest-rank definition (the
``ceil(q * n)``-th smallest sample), so reported tails are actual observed
latencies and byte-stable across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.hardware.device import DeviceKind


class RequestRecord(NamedTuple):
    """Timeline of one served request."""

    request_id: int
    arrival_s: float
    #: when the request's first dispatch began (queueing ends here).
    start_s: float
    completion_s: float
    decode_steps: int
    #: graph batch size of the dispatch that completed the request.
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        return self.start_s - self.arrival_s


def nearest_rank(sorted_values: list[float], quantile: float) -> float:
    """The nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(quantile * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


@dataclass
class ServingResult:
    """Aggregate outcome of one serving simulation."""

    model: str
    flow: str
    platform_id: str
    device: str
    scheduler: str
    trace: str
    offered_rate_rps: float
    records: list[RequestRecord] = field(default_factory=list)
    #: first arrival to last completion.
    makespan_s: float = 0.0
    num_dispatches: int = 0
    #: model iterations executed (>= num_dispatches for decode workloads).
    num_iterations: int = 0
    mean_batch_size: float = 0.0
    #: per-device busy seconds / energy, summed over every iteration.
    busy_s: dict[DeviceKind, float] = field(default_factory=dict)
    energy_j: dict[DeviceKind, float] = field(default_factory=dict)
    gemm_busy_s: float = 0.0
    non_gemm_busy_s: float = 0.0
    #: queue depth sampled at every admission and dispatch (time, depth).
    queue_depth_timeline: tuple[tuple[float, int], ...] = ()

    # -- latency -----------------------------------------------------------

    def latencies_s(self) -> list[float]:
        return sorted(record.latency_s for record in self.records)

    @property
    def p50_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.50)

    @property
    def p95_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.95)

    @property
    def p99_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.latency_s for record in self.records) / len(self.records)

    @property
    def max_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return max(record.latency_s for record in self.records)

    @property
    def mean_queue_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.queue_s for record in self.records) / len(self.records)

    # -- throughput & occupancy -------------------------------------------

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return len(self.records) / self.makespan_s

    def utilization(self) -> dict[DeviceKind, float]:
        """Busy fraction of the makespan per device."""
        if self.makespan_s <= 0.0:
            return {kind: 0.0 for kind in self.busy_s}
        return {kind: busy / self.makespan_s for kind, busy in self.busy_s.items()}

    @property
    def non_gemm_busy_share(self) -> float:
        """Non-GEMM fraction of all simulated kernel time under load."""
        total = self.gemm_busy_s + self.non_gemm_busy_s
        if total <= 0.0:
            return 0.0
        return self.non_gemm_busy_s / total

    @property
    def max_queue_depth(self) -> int:
        if not self.queue_depth_timeline:
            return 0
        return max(depth for _, depth in self.queue_depth_timeline)

    @property
    def mean_queue_depth(self) -> float:
        """Mean of the queue-depth samples (taken at every transition)."""
        if not self.queue_depth_timeline:
            return 0.0
        return sum(depth for _, depth in self.queue_depth_timeline) / len(
            self.queue_depth_timeline
        )

    def describe(self) -> str:
        return (
            f"{self.model} [{self.flow}, platform {self.platform_id}, {self.device},"
            f" {self.scheduler}] {self.offered_rate_rps:.1f} rps offered:"
            f" {self.throughput_rps:.1f} rps served, p50 {self.p50_s * 1e3:.2f} ms,"
            f" p99 {self.p99_s * 1e3:.2f} ms, mean batch {self.mean_batch_size:.2f},"
            f" non-GEMM busy {self.non_gemm_busy_share:.1%}"
        )


# -- cluster-level aggregation ----------------------------------------------

#: terminal states of a cluster request.
REQUEST_OK = "ok"
REQUEST_SHED = "shed"
REQUEST_FAILED = "failed"


class ClusterRequestRecord(NamedTuple):
    """Outcome of one request routed through a :class:`ClusterRouter`.

    ``completion_s`` is ``None`` for shed and failed requests.  ``replica``
    is the replica whose dispatch completed the request (the hedge winner
    when hedged), or ``-1`` if it never completed.  ``attempts`` counts
    admissions: 1 for a first-try completion, +1 per timeout retry.
    """

    request_id: int
    arrival_s: float
    completion_s: float | None
    status: str
    replica: int
    attempts: int
    hedged: bool
    hedge_won: bool

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.arrival_s


@dataclass
class ClusterResult:
    """Aggregate outcome of one multi-replica cluster simulation.

    Per-replica detail lives in ``replicas`` — one plan-free
    :class:`ServingResult` each (the single-replica no-fault cluster's
    ``replicas[0]`` is bit-identical to a plain engine run; the equivalence
    battery pins this).  Cluster-level records track what each *request*
    experienced across retries, hedges, and shedding.
    """

    model: str
    flow: str
    device: str
    scheduler: str
    policy: str
    trace: str
    fault_profile: str
    platform_ids: tuple[str, ...]
    offered_rate_rps: float
    #: goodput deadline; ``None`` counts every completion as good.
    deadline_s: float | None = None
    records: list[ClusterRequestRecord] = field(default_factory=list)
    replicas: list[ServingResult] = field(default_factory=list)
    #: first arrival to last completion.
    makespan_s: float = 0.0
    num_shed: int = 0
    num_failed: int = 0
    #: timeout-driven re-admissions (not counting each request's first).
    num_retries: int = 0
    #: hedge copies launched / hedge copies that finished first.
    num_hedges: int = 0
    num_hedge_wins: int = 0
    #: worst time from a fault window clearing to the afflicted replica's
    #: first dispatch completion afterwards (0 when no fault or no work).
    time_to_recovery_s: float = 0.0

    @property
    def num_replicas(self) -> int:
        return len(self.platform_ids)

    def completed(self) -> list[ClusterRequestRecord]:
        return [r for r in self.records if r.status == REQUEST_OK]

    def latencies_s(self) -> list[float]:
        """Ascending latencies of *admitted, completed* requests."""
        return sorted(r.latency_s for r in self.completed())

    @property
    def p50_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.50)

    @property
    def p95_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.95)

    @property
    def p99_s(self) -> float:
        return nearest_rank(self.latencies_s(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        latencies = self.latencies_s()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def goodput(self) -> float:
        """Completed-within-deadline fraction of *all* trace requests.

        Shed and failed requests count against goodput — degrading
        gracefully means the good fraction stays high even though some
        requests are turned away.
        """
        if not self.records:
            return 0.0
        good = sum(
            1
            for r in self.completed()
            if self.deadline_s is None or r.latency_s <= self.deadline_s
        )
        return good / len(self.records)

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return len(self.completed()) / self.makespan_s

    def utilization(self) -> list[dict[DeviceKind, float]]:
        """Per-replica busy fraction of the *cluster* makespan."""
        if self.makespan_s <= 0.0:
            return [{kind: 0.0 for kind in r.busy_s} for r in self.replicas]
        return [
            {kind: busy / self.makespan_s for kind, busy in r.busy_s.items()}
            for r in self.replicas
        ]

    @property
    def total_energy_j(self) -> float:
        return sum(sum(r.energy_j.values()) for r in self.replicas)

    @property
    def non_gemm_busy_share(self) -> float:
        gemm = sum(r.gemm_busy_s for r in self.replicas)
        non_gemm = sum(r.non_gemm_busy_s for r in self.replicas)
        total = gemm + non_gemm
        if total <= 0.0:
            return 0.0
        return non_gemm / total

    def describe(self) -> str:
        return (
            f"{self.model} [{self.flow}, {self.num_replicas}x"
            f" {'/'.join(self.platform_ids)}, {self.scheduler}, {self.policy},"
            f" faults={self.fault_profile}] {self.offered_rate_rps:.1f} rps offered:"
            f" {self.throughput_rps:.1f} rps served, goodput {self.goodput:.1%},"
            f" p99 {self.p99_s * 1e3:.2f} ms, shed {self.num_shed},"
            f" retries {self.num_retries}, hedge wins {self.num_hedge_wins}"
        )
