"""The deterministic discrete-event serving loop.

One :class:`ServingEngine` models one model replica serving a request trace
on one platform: a batching scheduler (see :mod:`repro.serving.scheduler`)
decides what to launch, a :class:`~repro.serving.cost.BatchCostModel` prices
each dispatch with the vectorized simulator (plans lowered once per batch
size via the PlanCache/ArtifactStore), and the event loop tracks per-device
occupancy on the N-device :class:`~repro.hardware.platform.Platform`.

Timing semantics (documented here because the equivalence battery pins them):

* Every dispatch runs ``iterations`` sequential model iterations.  An
  iteration has a host phase (``BatchCost.host_s``: CPU kernels — fallback
  work and synchronous dispatch) followed by an accelerator phase
  (``BatchCost.accel_s`` on the plan's target device).
* The host phase starts when both the batch and the host thread are ready;
  the accelerator phase starts when the host phase ends *and* the target
  device is free.  An iteration that never waits on the device completes at
  ``start + BatchCost.total_s`` — bit-identical to
  :func:`repro.runtime.simulator.simulate` — so a single request on an idle
  engine reproduces the per-inference simulator exactly.
* Devices with ``async_dispatch`` overlap naturally: the host frees at the
  end of its phase and can form/dispatch the next batch while the
  accelerator drains its queue (the ``accel_free`` horizon).  CPU-target
  plans have ``host_s == total_s``, so execution is fully serial.
* ``barrier`` dispatches (continuous batching) advance the scheduling clock
  to the iteration's end before the next decision, so membership changes
  happen exactly at iteration boundaries.

Everything is deterministic: arrivals come from a seeded trace, the
scheduler and the event loop use no randomness, and all float accumulation
is fixed-order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError
from repro.flows import get_flow
from repro.hardware.device import DeviceKind, as_device_kind
from repro.hardware.platform import Platform, get_platform
from repro.serving.cost import BatchCostModel
from repro.serving.metrics import RequestRecord, ServingResult, cap_serving_result
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_S,
    Dispatch,
    get_scheduler,
)
from repro.serving.trace import RequestTrace
from repro.sweep.cache import PlanCache


@dataclass(frozen=True)
class ServingConfig:
    """One serving scenario: what serves, where, and how it batches."""

    model: str
    flow: str = "pytorch"
    platform: str = "A"
    #: placement target mode (``cpu``/``gpu``/``npu``); targets the platform
    #: lacks fall back to the host CPU, exactly like ``profile_graph``.
    device: str = "gpu"
    scheduler: str = "dynamic"
    max_batch: int = DEFAULT_MAX_BATCH
    max_wait_s: float = DEFAULT_MAX_WAIT_S
    seq_len: int | None = None
    #: ``"fast"`` runs the columnar kernels (bit-identical, see
    #: :mod:`repro.serving.columnar`); ``"reference"`` forces the scalar loop.
    backend: str = "fast"
    #: cap on materialized :class:`RequestRecord` samples; ``None`` keeps the
    #: full per-request record list and queue-depth timeline.  With a cap the
    #: result carries streaming aggregates plus a seeded reservoir sample —
    #: O(cap) memory regardless of trace length, on either backend.
    record_requests: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("fast", "reference"):
            raise ServingError(
                f"unknown serving backend {self.backend!r};"
                " expected 'fast' or 'reference'"
            )
        if self.record_requests is not None and self.record_requests < 1:
            raise ServingError(
                f"record_requests must be >= 1, got {self.record_requests}"
            )


def resolve_serving_target(
    platform: Platform, device: "bool | str | DeviceKind"
) -> tuple[Platform, DeviceKind]:
    """The effective (platform, target) pair for a serving scenario.

    Mirrors :func:`~repro.profiler.profiler.profile_graph`: a target the
    platform lacks falls back to the host CPU, and CPU targets run on the
    platform's accelerator-free :meth:`~repro.hardware.platform.Platform.cpu_only`
    derivation (the paper's CPU-only bars).
    """
    target = as_device_kind(device)
    if target is not DeviceKind.CPU and not platform.has_device(target):
        target = DeviceKind.CPU
    if target is DeviceKind.CPU:
        platform = platform.cpu_only()
    return platform, target


class ServingEngine:
    """Discrete-event serving simulation of one configuration."""

    def __init__(self, config: ServingConfig, cache: PlanCache | None = None):
        self.config = config
        platform, target = resolve_serving_target(
            get_platform(config.platform), config.device
        )
        self.platform = platform
        self.target = target
        self.flow = get_flow(config.flow)
        self.costs = BatchCostModel(
            model=config.model,
            flow=self.flow,
            platform=platform,
            target=target,
            seq_len=config.seq_len,
            cache=cache,
        )

    def base_latency_s(self) -> float:
        """Single-stream (batch-1) latency — the load axis' capacity unit."""
        return self.costs.cost(1).total_s

    def run(
        self, trace: RequestTrace, offered_rate_rps: float | None = None
    ) -> ServingResult:
        """Serve ``trace`` to completion and aggregate the metrics.

        Dispatches to the columnar fast backend or the scalar reference loop
        per ``config.backend`` (results are bit-identical), then applies the
        ``record_requests`` streaming cap if one is configured.
        """
        if self.config.backend == "fast":
            from repro.serving.columnar import run_fast

            result = run_fast(self, trace, offered_rate_rps)
        else:
            result = self._run_reference(trace, offered_rate_rps)
            result.backend_used = "reference"
        cap = self.config.record_requests
        if cap is not None and result.record_cap is None:
            capped = cap_serving_result(result, cap)
            capped.backend_used = result.backend_used
            capped.fast_path_fallback_reason = result.fast_path_fallback_reason
            result = capped
        return result

    def _run_reference(
        self, trace: RequestTrace, offered_rate_rps: float | None = None
    ) -> ServingResult:
        """The scalar reference event loop (drives the scheduler object)."""
        config = self.config
        scheduler = get_scheduler(
            config.scheduler, max_batch=config.max_batch, max_wait_s=config.max_wait_s
        )
        requests = trace.requests
        # dense cost rows (shared with the columnar kernels): list index +
        # None check instead of a dict hash per dispatch.
        cost_table = self.costs.cost_table(scheduler.max_batch)
        result = ServingResult(
            model=config.model,
            flow=self.flow.name,
            platform_id=config.platform,
            device=self.target.value,
            scheduler=scheduler.name,
            trace=trace.name,
            offered_rate_rps=(
                trace.offered_rate_rps if offered_rate_rps is None else offered_rate_rps
            ),
        )
        if not requests:
            return result

        total = len(requests)
        next_index = 0
        now = 0.0
        host_free = 0.0
        accel_free: dict[DeviceKind, float] = {}
        starts: dict[int, float] = {}
        completions: dict[int, tuple[float, int]] = {}
        busy: dict[DeviceKind, float] = {spec.kind: 0.0 for spec in self.platform.devices}
        energy: dict[DeviceKind, float] = {spec.kind: 0.0 for spec in self.platform.devices}
        gemm_busy = 0.0
        non_gemm_busy = 0.0
        depth_samples: list[tuple[float, int]] = []
        dispatches = 0
        iterations_run = 0
        weighted_size = 0

        # every loop turn either launches work or strictly advances the
        # clock, so this bound is generous; hitting it means a (custom)
        # scheduler is stalling or spinning.
        max_turns = 8 * (total + trace.total_decode_steps()) + 64
        turns = 0
        while len(completions) < total:
            turns += 1
            if turns > max_turns:
                raise ServingError(
                    f"scheduler {scheduler.name!r} made no progress after"
                    f" {max_turns} decision turns ({len(completions)}/{total} done,"
                    f" queue depth {scheduler.queue_depth}, clock t={now:.6f}s)"
                )
            while next_index < total and requests[next_index].arrival_s <= now:
                scheduler.admit(requests[next_index])
                depth_samples.append(
                    (requests[next_index].arrival_s, scheduler.queue_depth)
                )
                next_index += 1
            arrivals_pending = next_index < total

            verdict = scheduler.next_dispatch(now, arrivals_pending)
            if isinstance(verdict, Dispatch):
                cost = cost_table.row(verdict.size)
                start = max(now, host_free)
                cursor = start
                for _ in range(verdict.iterations):
                    host_end = cursor + cost.host_s
                    if cost.has_accel:
                        accel_start = max(host_end, accel_free.get(cost.target, 0.0))
                        if accel_start == host_end:
                            # uncontended: serial semantics, bit-identical to
                            # the per-inference simulator's total.
                            end = cursor + cost.total_s
                        else:
                            end = accel_start + cost.accel_s
                        accel_free[cost.target] = end
                    else:
                        end = cursor + cost.total_s
                        host_end = end
                    host_free = host_end
                    cursor = end
                for kind, seconds in cost.busy_s.items():
                    busy[kind] += seconds * verdict.iterations
                for kind, joules in cost.energy_j.items():
                    energy[kind] += joules * verdict.iterations
                gemm_busy += cost.gemm_s * verdict.iterations
                non_gemm_busy += cost.non_gemm_s * verdict.iterations
                dispatches += 1
                iterations_run += verdict.iterations
                weighted_size += verdict.size * verdict.iterations
                for request_id in verdict.members:
                    starts.setdefault(request_id, start)
                for request_id in verdict.completes:
                    completions[request_id] = (cursor, verdict.size)
                depth_samples.append((start, scheduler.queue_depth))
                now = cursor if verdict.barrier else max(now, host_free)
                continue

            if verdict is None:
                if arrivals_pending:
                    now = requests[next_index].arrival_s
                    continue
                raise ServingError(
                    f"scheduler {scheduler.name!r} returned no work with"
                    f" {total - len(completions)} requests outstanding, the"
                    f" trace exhausted, queue depth {scheduler.queue_depth},"
                    f" and clock t={now:.6f}s"
                )

            # float deadline: advance to it (or to an earlier arrival).
            wake = float(verdict)
            if arrivals_pending:
                wake = min(wake, requests[next_index].arrival_s)
            if wake <= now:
                raise ServingError(
                    f"scheduler {scheduler.name!r} requested a wake-up at"
                    f" {wake} that does not advance the clock (t={now:.6f}s,"
                    f" queue depth {scheduler.queue_depth})"
                )
            now = wake

        first_arrival = requests[0].arrival_s
        last_completion = max(end for end, _ in completions.values())
        result.records = [
            RequestRecord(
                request_id=request.request_id,
                arrival_s=request.arrival_s,
                start_s=starts[request.request_id],
                completion_s=completions[request.request_id][0],
                decode_steps=request.decode_steps,
                batch_size=completions[request.request_id][1],
            )
            for request in requests
        ]
        result.makespan_s = last_completion - first_arrival
        result.num_dispatches = dispatches
        result.num_iterations = iterations_run
        result.mean_batch_size = (
            weighted_size / iterations_run if iterations_run else 0.0
        )
        result.busy_s = busy
        result.energy_j = energy
        result.gemm_busy_s = gemm_busy
        result.non_gemm_busy_s = non_gemm_busy
        result.queue_depth_timeline = tuple(depth_samples)
        return result


def simulate_serving(
    config: ServingConfig,
    trace: RequestTrace,
    offered_rate_rps: float | None = None,
    cache: PlanCache | None = None,
) -> ServingResult:
    """Convenience wrapper: build an engine for ``config`` and serve ``trace``."""
    return ServingEngine(config, cache=cache).run(trace, offered_rate_rps)


def serve_point(point) -> ServingResult:
    """Serve one sweep point (``point.load`` names the offered load).

    The ``load`` axis is a fraction of single-stream capacity: an offered
    arrival rate of ``load / batch-1 latency``.  Loads above 1 oversubscribe
    a serial server — batching capacity is what absorbs them.  All
    randomness (arrival gaps, decode-step draws) flows through one
    ``numpy.random.Generator`` seeded from the spec's ``seed``; because the
    generator is consumed identically across loads, load sweeps share
    common random numbers.
    """
    import numpy as np

    from repro.serving.trace import make_trace

    if point.load is None or point.load <= 0.0:
        raise ServingError(f"sweep point has no positive load: {point.load!r}")
    engine = ServingEngine(
        ServingConfig(
            model=point.model,
            flow=point.flow,
            platform=point.platform,
            device=point.device,
            scheduler=point.scheduler,
            max_batch=point.max_batch,
            max_wait_s=point.max_wait_s,
            seq_len=point.seq_len,
            backend=getattr(point, "backend", "fast"),
            record_requests=getattr(point, "record_requests", None),
        )
    )
    rate_rps = point.load / engine.base_latency_s()
    trace = make_trace(
        point.trace,
        rate_rps,
        point.num_requests,
        rng=np.random.default_rng(point.seed),
        decode_steps=point.decode_steps,
    )
    return engine.run(trace, offered_rate_rps=rate_rps)
