"""Columnar fast path for the multi-replica cluster router.

``backend="fast"`` on a :class:`~repro.serving.cluster.ClusterConfig` already
advances arrivals in chunks; this module removes the per-event Python heap
entirely on the **no-fault / no-retry / no-hedge rail**:

1. **Routing pass** — admission decisions are computed in columns.
   Round-robin without shedding is closed form (``i mod R``: the cursor
   advances once per arrival, shed or not).  Least-loaded, power-of-two, and
   any shedding configuration replay the scalar router's
   :meth:`~repro.serving.cluster._Replica.est_delay_s` against per-replica
   *virtual clock machines*: tiny recurrences over (host_free, accel_free,
   pending decode steps) that replay each scheduler's launch times without
   scheduler objects, ``Request`` objects, or heap events.
2. **Serving pass** — each replica's admitted sub-stream is a column slice
   of the trace, fed through the existing per-scheduler columnar kernels of
   :mod:`repro.serving.columnar`.  The only cluster-specific wrinkle is the
   *global* ``arrivals_pending`` flag: static/dynamic batching hold a
   partial final batch until the whole trace's last arrival has been
   drained, which the kernels model with their ``more_until`` horizon.
3. **Assembly** — per-replica results and cluster records are rebuilt in
   the reference router's exact orders (records by ``(admitted_s, id)``,
   accounting folded in launch order), so the result is **bit-identical**
   to ``backend="reference"``: same ``ClusterResult``, same float
   accumulations, same capped/streaming blocks.

Two rails share the module.  The closed forms above serve the
**no-fault / no-retry** case; fault schedules that actually perturb the run
(crash / accel-loss / straggler windows) and timeout retries ride the
**fault-capable replay** (:func:`run_fast_faulted`): a minimal event heap
holding only fault transitions and retry timers, per-replica
:class:`_SimReplica` machines that launch lazily, and lazily-resolved
completions, with all accounting folded vectorized at assembly.
:func:`fast_path_fallback_reason` names the only remaining fallback
conditions — hedged dispatch and custom registered policies/schedulers —
and :meth:`~repro.serving.cluster.ClusterRouter.run` falls back to the
reference event loop automatically (silently, with the reason recorded on
the result).

Why launch times are a recurrence: the reference loop runs one decision
pass per distinct event time, *after* draining that time's arrivals, and a
replica launches at most one dispatch per pass (every dispatch pushes its
``ready_s`` strictly past the clock).  So a replica's next launch time is a
pure function of its queue and occupancy registers — ``max(ready, head
admit)`` for fifo/continuous, ``max(host_free, cap-th admit)`` for a full
batch, ``max(host_free, head admit + max_wait)`` for a dynamic flush — and
admissions at time T strictly precede launches at T (the machines advance
with a strict ``< T`` bound before every admission and delay probe).
During routing the global arrival stream is never exhausted, so static
batching never flushes a partial batch inside the machines.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

import numpy as np

from repro.errors import ServingError
from repro.hardware.device import DeviceKind
from repro.hardware.platform import get_platform
from repro.serving.columnar import _Run, _running_total, kernel_for
from repro.serving.cost import BatchCostModel
from repro.serving.engine import resolve_serving_target
from repro.serving.metrics import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_SHED,
    ClusterRequestRecord,
    ClusterResult,
    RequestRecord,
    ServingResult,
    apply_static_lifecycle,
    sample_record_indices,
    streaming_stats,
)
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    DynamicBatchScheduler,
    FIFOScheduler,
    StaticBatchScheduler,
    get_scheduler,
)
from repro.serving.trace import RequestTrace

_BUILTIN_SCHEDULERS = (
    FIFOScheduler,
    StaticBatchScheduler,
    DynamicBatchScheduler,
    ContinuousBatchScheduler,
)


def fast_path_fallback_reason(config, policy, scheduler) -> "str | None":
    """Why this cluster run must take the reference event loop, or ``None``.

    Everything here mirrors a documented fallback condition: the README's
    "rail conditions" list and the fallback test battery enumerate exactly
    these knobs.  Fault windows, stragglers, and timeout retries are *not*
    fallback conditions anymore — they ride the fault-capable replay
    (:func:`run_fast_faulted`); only hedging and custom registered
    policies/schedulers still route to the reference loop.  The returned
    string is surfaced as ``ClusterResult.fast_path_fallback_reason`` so a
    silent fallback is diagnosable from the CLI.
    """
    from repro.serving.cluster import (
        LeastLoadedPolicy,
        PowerOfTwoPolicy,
        RoundRobinPolicy,
    )

    if config.backend != "fast":
        return "backend='reference' requested"
    if config.autoscale is not None:
        return "autoscale set (elastic lifecycle runs in the event loop)"
    if config.hedge_after_s is not None:
        return "hedge_after_s set (hedged dispatch is not replayed in columns)"
    if type(policy) not in (RoundRobinPolicy, LeastLoadedPolicy, PowerOfTwoPolicy):
        return f"custom policy {type(policy).__name__} ({policy.name!r})"
    if type(scheduler) not in _BUILTIN_SCHEDULERS:
        return f"custom scheduler {type(scheduler).__name__} ({scheduler.name!r})"
    if kernel_for(scheduler) is None:
        return f"scheduler {scheduler.name!r} declares no columnar kernel"
    return None


def supports_fast_path(config, injector, policy, scheduler) -> bool:
    """Does *some* columnar rail serve this cluster run?

    ``injector`` is accepted for signature stability but no longer matters:
    fault schedules (windows, stragglers) and timeout retries run on the
    fault-capable replay rather than falling back.
    """
    del injector
    return fast_path_fallback_reason(config, policy, scheduler) is None


def needs_faulted_path(config, injector) -> bool:
    """Does this run need the event-replaying faulted rail (vs the closed
    forms)?  True when the drawn schedule perturbs anything or timeouts can
    re-route work; the check is semantic, so a fault profile that yields no
    windows and no stragglers still takes the cheaper no-fault rail.
    """
    return config.timeout_s is not None or injector.schedule.perturbs


# -- routing pass -------------------------------------------------------------


class _Machine:
    """Virtual clock of one replica: replays launch times and queue-delay
    estimates without a scheduler object or heap events.

    State is exactly what :meth:`_Replica.est_delay_s` reads — ``host_free``,
    the per-device ``accel_free`` horizon, and the scheduler's pending decode
    steps — plus the admitted queue (admit time, steps) and, for continuous
    batching, the in-flight remaining-step list.  ``advance(T)`` executes
    every launch decided strictly before ``T`` with the reference launch
    arithmetic verbatim, so a delay probe at an arrival time sees the same
    registers as the scalar router's policy does.
    """

    __slots__ = (
        "index",
        "kind",
        "max_batch",
        "max_wait_s",
        "_cost",
        "unit_total_s",
        "host_free",
        "ready_s",
        "accel_free",
        "pending_steps",
        "q_admit",
        "q_steps",
        "head",
        "flight",
    )

    def __init__(self, index: int, engine, kind: str, max_batch: int, max_wait_s: float):
        self.index = index
        self.kind = kind
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        table = engine.costs.cost_table(max_batch)
        self._cost = table.row  # dense column lookup, shared with the kernels
        self.unit_total_s = table.row(1).total_s
        self.host_free = 0.0
        self.ready_s = 0.0
        self.accel_free: dict = {}
        self.pending_steps = 0
        self.q_admit: list[float] = []
        self.q_steps: list[int] = []
        self.head = 0
        self.flight: list[int] = []

    def est_delay_s(self, now: float) -> float:
        """Verbatim :meth:`_Replica.est_delay_s` over the machine registers."""
        horizon = self.host_free
        for t in self.accel_free.values():
            if t > horizon:
                horizon = t
        backlog = self.pending_steps * self.unit_total_s
        delay = horizon - now
        if delay < 0.0:
            delay = 0.0
        return delay + backlog

    def admit(self, when: float, steps: int) -> None:
        self.advance(when)
        self.q_admit.append(when)
        self.q_steps.append(steps)
        self.pending_steps += steps

    def advance(self, until: float) -> None:
        """Execute every launch decided strictly before ``until``."""
        while True:
            t = self._next_launch()
            if t is None or t >= until:
                return
            self._launch(t)

    def _next_launch(self) -> "float | None":
        kind = self.kind
        if kind == "continuous":
            if self.flight:
                return self.ready_s
            if self.head < len(self.q_admit):
                a = self.q_admit[self.head]
                return a if a > self.ready_s else self.ready_s
            return None
        qlen = len(self.q_admit) - self.head
        if qlen == 0:
            return None
        if kind == "fifo":
            a = self.q_admit[self.head]
            return a if a > self.ready_s else self.ready_s
        if qlen >= self.max_batch:
            a = self.q_admit[self.head + self.max_batch - 1]
            return a if a > self.host_free else self.host_free
        if kind == "dynamic":
            d = self.q_admit[self.head] + self.max_wait_s
            return d if d > self.host_free else self.host_free
        # static partial batches flush only once the *global* arrival stream
        # is exhausted — which never happens while requests are still routing.
        return None

    def _launch(self, t: float) -> None:
        kind = self.kind
        if kind == "continuous":
            flight = self.flight
            free = self.max_batch - len(flight)
            if free > 0:
                qlen = len(self.q_admit) - self.head
                take = free if free < qlen else qlen
                if take:
                    stop = self.head + take
                    flight.extend(self.q_steps[self.head : stop])
                    self.head = stop
            size = len(flight)
            end = self._iterate(self._cost(size), t, 1)
            self.flight = [rem - 1 for rem in flight if rem != 1]
            self.pending_steps -= size
            self.ready_s = end  # barrier
        elif kind == "fifo":
            steps = self.q_steps[self.head]
            self.head += 1
            end = self._iterate(self._cost(1), t, steps)
            self.pending_steps -= steps
            self.ready_s = end  # barrier
        else:  # static / dynamic full-or-flush batch
            qlen = len(self.q_admit) - self.head
            size = qlen if qlen < self.max_batch else self.max_batch
            stop = self.head + size
            members = self.q_steps[self.head : stop]
            self.head = stop
            self._iterate(self._cost(size), t, max(members))
            self.pending_steps -= sum(members)
            # non-barrier: ready is max(when, host_free), and host_free has
            # just advanced past the dispatch start.
            self.ready_s = t if t > self.host_free else self.host_free
        if self.head >= 8192:  # amortized queue compaction
            del self.q_admit[: self.head]
            del self.q_steps[: self.head]
            self.head = 0

    def _iterate(self, cost, when: float, iterations: int) -> float:
        """The reference ``launch()`` occupancy arithmetic, verbatim
        (straggler multiplier omitted: it is exactly 1.0 on this rail)."""
        start = when if when > self.host_free else self.host_free
        cursor = start
        if cost.has_accel:
            host_s = cost.host_s
            accel_s = cost.accel_s
            total_s = cost.total_s
            target = cost.target
            accel_free = self.accel_free
            for _ in range(iterations):
                host_end = cursor + host_s
                accel_start = accel_free.get(target, 0.0)
                if accel_start < host_end:
                    accel_start = host_end
                if accel_start == host_end:
                    end = cursor + total_s
                else:
                    end = accel_start + accel_s
                accel_free[target] = end
                self.host_free = host_end
                cursor = end
        else:
            total_s = cost.total_s
            for _ in range(iterations):
                cursor += total_s
            self.host_free = cursor
        return cursor


def _route(config, engines, trace: RequestTrace, policy, rng) -> np.ndarray:
    """Assign every arrival to a replica index (``-1``: shed).

    Sequential in trace order — exactly the drain order of the reference
    loop — with the policy's own state transitions: the round-robin cursor
    advances even on shed arrivals (``choose`` runs before the shed check),
    and power-of-two draws from the seeded generator once per arrival.
    """
    from repro.serving.cluster import LeastLoadedPolicy, RoundRobinPolicy

    n = trace.num_requests
    num_replicas = len(engines)
    shed_s = config.shed_queue_s
    round_robin = type(policy) is RoundRobinPolicy
    if round_robin and shed_s is None:
        return np.arange(n, dtype=np.int64) % num_replicas

    kind = type(get_scheduler(config.scheduler)).__dict__["columnar_kernel"]
    machines = [
        _Machine(index, engine, kind, config.max_batch, config.max_wait_s)
        for index, engine in enumerate(engines)
    ]
    arrivals = trace.arrival_column().tolist()
    steps = trace.decode_column().tolist()
    assigned = np.empty(n, dtype=np.int64)
    if round_robin:
        for i in range(n):
            when = arrivals[i]
            chosen = machines[i % num_replicas]
            chosen.advance(when)
            if chosen.est_delay_s(when) > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    elif type(policy) is LeastLoadedPolicy:
        for i in range(n):
            when = arrivals[i]
            chosen = None
            chosen_delay = 0.0
            # min(key=(delay, index)) in index order: strict < keeps the
            # lowest-index replica on ties, like the reference min().
            for machine in machines:
                machine.advance(when)
                delay = machine.est_delay_s(when)
                if chosen is None or delay < chosen_delay:
                    chosen = machine
                    chosen_delay = delay
            if shed_s is not None and chosen_delay > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    else:  # power-of-two-choices
        for i in range(n):
            when = arrivals[i]
            if num_replicas == 1:
                chosen = machines[0]
                chosen.advance(when)
            else:
                first_i, second_i = sorted(
                    int(x) for x in rng.choice(num_replicas, size=2, replace=False)
                )
                first = machines[first_i]
                second = machines[second_i]
                first.advance(when)
                second.advance(when)
                if second.est_delay_s(when) < first.est_delay_s(when):
                    chosen = second
                else:
                    chosen = first
            if shed_s is not None and chosen.est_delay_s(when) > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    return assigned


# -- serving pass -------------------------------------------------------------


def _empty_replica_result(
    engine, scheduler_name: str, config, platform_id: str, trace_name: str, rate: float
) -> ServingResult:
    """A replica that admitted nothing, in the reference's exact shape."""
    result = ServingResult(
        model=config.model,
        flow=engine.flow.name,
        platform_id=platform_id,
        device=engine.target.value,
        scheduler=scheduler_name,
        trace=trace_name,
        offered_rate_rps=rate,
        busy_s={spec.kind: 0.0 for spec in engine.platform.devices},
        energy_j={spec.kind: 0.0 for spec in engine.platform.devices},
    )
    if config.record_requests is not None:
        empty = np.zeros(0, dtype=np.float64)
        result.stats = streaming_stats(empty, empty)
        result.num_served = 0
        result.record_cap = config.record_requests
    return result


def _serve_replica(
    engine, config, trace: RequestTrace, indices: np.ndarray, more_until: float, rate: float
) -> "tuple[ServingResult, np.ndarray]":
    """Run one replica's admitted sub-stream through its columnar kernel.

    Returns the per-replica :class:`ServingResult` (in the reference
    router's record order and capping shape) and the completion column in
    sub-stream (trace) order for cluster-level scatter.
    """
    sub = RequestTrace(
        trace.name,
        arrival_s=trace.arrival_column()[indices],
        decode_steps=trace.decode_column()[indices],
        request_ids=trace.id_column()[indices],
    )
    scheduler = get_scheduler(
        config.scheduler, max_batch=config.max_batch, max_wait_s=config.max_wait_s
    )
    run = _Run(engine, sub, scheduler)
    run.cap = config.record_requests
    run.full = run.cap is None
    kernel_for(scheduler)(run, more_until=more_until)

    # the reference router lists a replica's records by (admitted_s, id) —
    # identical to sub-stream order except when equal-time arrivals carry
    # out-of-order ids, so order stats and records through the permutation.
    perm = np.lexsort((sub.id_column(), run.arrival))
    result = ServingResult(
        model=config.model,
        flow=engine.flow.name,
        platform_id=engine.config.platform,
        device=engine.target.value,
        scheduler=scheduler.name,
        trace=trace.name,
        offered_rate_rps=rate,
    )
    result.makespan_s = float(run.completion.max()) - float(run.arrival[0])
    result.num_dispatches = run.dispatches
    result.num_iterations = run.iterations
    result.mean_batch_size = run.weighted / run.iterations if run.iterations else 0.0
    result.busy_s = run.busy
    result.energy_j = run.energy
    result.gemm_busy_s = run.gemm
    result.non_gemm_busy_s = run.non_gemm
    if run.full:
        result.records = run._records(perm)
        result.queue_depth_timeline = tuple(run.timeline)
    else:
        # metrics.cap_serving_result's arithmetic, fed from columns in the
        # reference's record order.
        result.stats = streaming_stats(
            run.completion[perm] - run.arrival[perm],
            run.start[perm] - run.arrival[perm],
            depth_samples=run.depth_count,
            depth_sum=run.depth_sum,
            depth_max=run.depth_max,
        )
        result.num_served = run.n
        result.record_cap = run.cap
        result.records = run._records(perm[sample_record_indices(run.n, run.cap)])
    return result, run.completion


# -- entry point --------------------------------------------------------------


def run_fast_cluster(
    router, trace: RequestTrace, result: ClusterResult, policy, policy_rng
) -> ClusterResult:
    """Serve ``trace`` through the fleet on the columnar rail.

    ``result`` is the pre-populated :class:`ClusterResult` shell from
    :meth:`ClusterRouter.run`; the caller has already verified
    :func:`supports_fast_path`.  Bit-identical to the reference event loop.
    """
    config = router.config
    engines = router.engines
    n = trace.num_requests
    arrivals = trace.arrival_column()
    rate = result.offered_rate_rps
    result.backend_used = "columnar"

    assigned = _route(config, engines, trace, policy, policy_rng)
    more_until = float(arrivals[-1])

    scheduler_name = get_scheduler(config.scheduler).name
    completion_all = np.empty(n, dtype=np.float64)
    for index, engine in enumerate(engines):
        indices = np.nonzero(assigned == index)[0]
        if indices.size == 0:
            result.replicas.append(
                _empty_replica_result(
                    engine, scheduler_name, config, config.platforms[index],
                    trace.name, rate,
                )
            )
            continue
        replica_result, completions = _serve_replica(
            engine, config, trace, indices, more_until, rate
        )
        result.replicas.append(replica_result)
        completion_all[indices] = completions

    ok_mask = assigned >= 0
    num_ok = int(ok_mask.sum())
    result.num_shed = n - num_ok
    if num_ok:
        result.makespan_s = float(completion_all[ok_mask].max()) - float(arrivals[0])

    cap = config.record_requests
    if cap is None:
        keep = np.arange(n, dtype=np.int64)
    else:
        # metrics.cap_cluster_result's counters and streaming block, fed
        # from columns (trace order, completed requests only) — the full
        # record list is never materialized.
        latencies = completion_all[ok_mask] - arrivals[ok_mask]
        result.stats = streaming_stats(latencies)
        result.num_requests_total = n
        result.num_completed = num_ok
        if config.deadline_s is None:
            result.num_good = num_ok
        else:
            result.num_good = int((latencies <= config.deadline_s).sum())
        result.record_cap = cap
        keep = sample_record_indices(n, cap)

    ids_kept = trace.id_column()[keep].tolist()
    arrivals_kept = arrivals[keep].tolist()
    replicas_kept = assigned[keep].tolist()
    completions_kept = completion_all[keep].tolist()
    records = []
    for request_id, arrival_s, replica, completion_s in zip(
        ids_kept, arrivals_kept, replicas_kept, completions_kept
    ):
        if replica < 0:
            records.append(
                ClusterRequestRecord(
                    request_id, arrival_s, None, REQUEST_SHED, -1, 0, False, False
                )
            )
        else:
            records.append(
                ClusterRequestRecord(
                    request_id, arrival_s, completion_s, REQUEST_OK, replica,
                    1, False, False,
                )
            )
    result.records = records
    # the columnar rails only serve fixed fleets (autoscale falls back),
    # so the lifecycle fields are the static single-step form.
    return apply_static_lifecycle(result)


# -- fault-capable replay (Route B) -------------------------------------------
#
# Crash / accelerator-loss / straggler windows and timeout retries re-route
# work at event times the closed forms above cannot see, so this rail keeps a
# tiny event heap — but only for the *rare* events (fault transitions, retry
# timers, the arrival cursor).  Completions are resolved lazily (no heap
# events), dispatches launch lazily inside the per-replica machines, and all
# accounting folds vectorized at assembly in the reference's completion-pop
# order.  Every float is produced by the same IEEE operations in the same
# order as the reference loop, so results stay bit-identical.

#: event priorities, mirroring the reference heap's canonical order at equal
#: times (completions, priority 1, are resolved lazily and never enqueued).
_PRIO_FAULT = 0
_PRIO_ARRIVE = 2
_PRIO_RETRY = 3

_PENDING = 0
_ST_OK = 1
_ST_SHED = 2
_ST_FAILED = 3
_STATUS_NAMES = {_ST_OK: REQUEST_OK, _ST_SHED: REQUEST_SHED, _ST_FAILED: REQUEST_FAILED}


class _SimReplica:
    """Virtual replica for the faulted rail: the routing machines of
    :class:`_Machine` extended with everything faults and retries touch —
    straggler multipliers, the accel-loss cost-table swap, crash resets,
    queued-copy cancellation, the post-drain flush rule, and per-request
    bookkeeping (admit times, first starts, depth samples, dispatch log).

    The dispatch log is columnar (parallel ``log_*`` lists, one entry per
    launch) holding only the fold *inputs* — end time, size, iterations,
    straggler multiplier, which cost table priced it, and which trace
    positions complete; the per-device second/joule deltas are
    reconstructed in columns at assembly, in completion order.

    ``started``, ``live_end``, ``status``, ``completion``, and ``winner``
    are arrays shared with the router closures: one live copy exists per
    request (no hedging on this rail), so a request's launch state and
    completion live in per-request slots rather than per-copy objects.
    Machines the schedule never crashes resolve their completions at
    materialization time (a launched dispatch there is final); machines
    with crash windows leave resolution to the router's lazy checks, since
    a later crash can still cancel an apparently-complete dispatch.
    """

    __slots__ = (
        "index",
        "kind",
        "max_batch",
        "max_wait_s",
        "engine",
        "cache",
        "injector",
        "table",
        "fallback_table",
        "active",
        "_unit_s",
        "down",
        "accel_down",
        "has_crash",
        "host_free",
        "ready_s",
        "accel_free",
        "pending_steps",
        "q_admit",
        "q_steps",
        "q_pos",
        "head",
        "flight_pos",
        "flight_rem",
        "flush_at",
        "starts",
        "admitted",
        "depth_samples",
        "log_end",
        "log_size",
        "log_iter",
        "log_mult",
        "log_fb",
        "log_completes",
        "log_cancelled",
        "open",
        "started",
        "live_end",
        "status",
        "completion",
        "winner",
    )

    def __init__(
        self, index, engine, kind, max_batch, max_wait_s, injector, cache,
        has_crash, started, live_end, status, completion, winner,
    ):
        self.index = index
        self.kind = kind
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.engine = engine
        self.cache = cache
        self.injector = injector
        self.table = engine.costs.cost_table(max_batch)
        self.fallback_table = None
        self.active = self.table
        self._unit_s: "float | None" = None
        self.down = False
        self.accel_down = False
        #: does the schedule ever crash this replica?  Gates the open-record
        #: list so fault-free replicas pay nothing for crash bookkeeping.
        self.has_crash = has_crash
        self.host_free = 0.0
        self.ready_s = 0.0
        self.accel_free: dict = {}
        self.pending_steps = 0
        self.q_admit: list[float] = []
        self.q_steps: list[int] = []
        self.q_pos: list[int] = []
        self.head = 0
        self.flight_pos: list[int] = []
        self.flight_rem: list[int] = []
        #: set to the last arrival time once the trace drains: static/dynamic
        #: partial batches flush from then on (the reference's
        #: ``arrivals_pending`` turning false).
        self.flush_at: "float | None" = None
        self.starts: dict[int, float] = {}
        self.admitted: dict[int, float] = {}
        self.depth_samples: list[tuple[float, int]] = []
        #: columnar dispatch log, one entry per launch.
        self.log_end: list[float] = []
        self.log_size: list[int] = []
        self.log_iter: list[int] = []
        self.log_mult: list[float] = []
        self.log_fb: list[bool] = []
        self.log_completes: list = []
        #: per-launch cancellation flags (crash machines only; empty means
        #: every logged dispatch is live).
        self.log_cancelled: list[bool] = []
        #: log indices a future crash could still cancel.
        self.open: list[int] = []
        self.started = started
        self.live_end = live_end
        self.status = status
        self.completion = completion
        self.winner = winner

    # -- probes (verbatim _Replica arithmetic) ----------------------------

    def est_delay_s(self, now: float) -> float:
        horizon = self.host_free
        for t in self.accel_free.values():
            if t > horizon:
                horizon = t
        # row(1) on the *active* table: lazily priced exactly when the
        # reference's unit_latency_s() would first price it, then cached
        # until the active table swaps (probing policies call this for
        # every candidate on every arrival).
        unit = self._unit_s
        if unit is None:
            unit = self._unit_s = self.active.row(1).total_s
        backlog = self.pending_steps * unit
        delay = horizon - now
        if delay < 0.0:
            delay = 0.0
        return delay + backlog

    # -- admission / cancellation -----------------------------------------

    def admit(self, when: float, steps: int, pos: int) -> None:
        self.advance(when)
        self.q_admit.append(when)
        self.q_steps.append(steps)
        self.q_pos.append(pos)
        self.pending_steps += steps
        self.admitted[pos] = when
        self.depth_samples.append((when, len(self.q_admit) - self.head))

    def cancel_queued(self, pos: int) -> None:
        """Withdraw an un-started copy (the reference's scheduler.cancel,
        which always succeeds for queued work)."""
        i = self.q_pos.index(pos, self.head)
        self.pending_steps -= self.q_steps[i]
        del self.q_admit[i]
        del self.q_steps[i]
        del self.q_pos[i]

    # -- fault transitions -------------------------------------------------

    def set_accel_down(self, flag: bool) -> None:
        self.accel_down = flag
        self._unit_s = None
        if not flag:
            self.active = self.table
            return
        if self.fallback_table is None:
            engine = self.engine
            if engine.target is DeviceKind.CPU:
                self.fallback_table = self.table
            else:
                platform, target = resolve_serving_target(
                    get_platform(engine.config.platform), DeviceKind.CPU
                )
                self.fallback_table = BatchCostModel(
                    model=engine.config.model,
                    flow=engine.flow,
                    platform=platform,
                    target=target,
                    seq_len=engine.config.seq_len,
                    cache=self.cache,
                ).cost_table(self.max_batch)
        self.active = self.fallback_table

    def crash(self, when: float) -> list[int]:
        """Drop all queued and running work; returns the positions whose
        live copy may now be lost (the router applies the liveness check)."""
        self.down = True
        cancelled_members: list[int] = []
        if self.open:
            log_end = self.log_end
            log_cancelled = self.log_cancelled
            for i in self.open:
                if log_end[i] >= when:
                    log_cancelled[i] = True
                    cancelled_members.extend(self.log_completes[i])
            self.open.clear()
        lost_now = self.q_pos[self.head :] + self.flight_pos + cancelled_members
        self.q_admit.clear()
        self.q_steps.clear()
        self.q_pos.clear()
        self.head = 0
        self.flight_pos = []
        self.flight_rem = []
        self.pending_steps = 0
        self.host_free = 0.0
        self.accel_free.clear()
        self.ready_s = when
        return lost_now

    # -- the launch recurrence ---------------------------------------------

    def advance(self, until: float) -> None:
        """Execute every launch decided strictly before ``until``."""
        if self.head == len(self.q_admit) and not self.flight_pos:
            return  # nothing queued or in flight: no launch can be pending
        while True:
            t = self._next_launch()
            if t is None or t >= until:
                return
            self._launch(t)

    def _next_launch(self) -> "float | None":
        kind = self.kind
        if kind == "continuous":
            if self.flight_pos:
                return self.ready_s
            if self.head < len(self.q_admit):
                a = self.q_admit[self.head]
                return a if a > self.ready_s else self.ready_s
            return None
        qlen = len(self.q_admit) - self.head
        if qlen == 0:
            return None
        if kind == "fifo":
            a = self.q_admit[self.head]
            return a if a > self.ready_s else self.ready_s
        if qlen >= self.max_batch:
            a = self.q_admit[self.head + self.max_batch - 1]
            return a if a > self.host_free else self.host_free
        flush_at = self.flush_at
        if flush_at is not None:
            # arrivals drained: partial batches dispatch at the first decide
            # pass, for static and dynamic alike (the deadline rule is gone).
            t = self.q_admit[self.head]
            if flush_at > t:
                t = flush_at
            return t if t > self.host_free else self.host_free
        if kind == "dynamic":
            d = self.q_admit[self.head] + self.max_wait_s
            return d if d > self.host_free else self.host_free
        return None

    def _launch(self, t: float) -> None:
        kind = self.kind
        multiplier = self.injector.dispatch_multiplier(self.index)
        start = t if t > self.host_free else self.host_free
        if kind == "continuous":
            free = self.max_batch - len(self.flight_pos)
            if free > 0:
                qlen = len(self.q_admit) - self.head
                take = free if free < qlen else qlen
                if take:
                    stop = self.head + take
                    self.flight_pos.extend(self.q_pos[self.head : stop])
                    self.flight_rem.extend(self.q_steps[self.head : stop])
                    self.head = stop
            members = self.flight_pos
            size = len(members)
            iterations = 1
            end = self._iterate(self.active.row(size), start, 1, multiplier)
            completes: list[int] = []
            keep_pos: list[int] = []
            keep_rem: list[int] = []
            for pos, rem in zip(members, self.flight_rem):
                if rem == 1:
                    completes.append(pos)
                else:
                    keep_pos.append(pos)
                    keep_rem.append(rem - 1)
            self.flight_pos = keep_pos
            self.flight_rem = keep_rem
            self.pending_steps -= size
            self.ready_s = end  # barrier
        elif kind == "fifo":
            pos = self.q_pos[self.head]
            iterations = self.q_steps[self.head]
            self.head += 1
            size = 1
            members = completes = (pos,)
            end = self._iterate(self.active.row(1), start, iterations, multiplier)
            self.pending_steps -= iterations
            self.ready_s = end  # barrier
        else:  # static / dynamic
            qlen = len(self.q_admit) - self.head
            size = qlen if qlen < self.max_batch else self.max_batch
            stop = self.head + size
            members = completes = self.q_pos[self.head : stop]
            steps = self.q_steps[self.head : stop]
            self.head = stop
            iterations = max(steps)
            end = self._iterate(self.active.row(size), start, iterations, multiplier)
            self.pending_steps -= sum(steps)
            self.ready_s = t if t > self.host_free else self.host_free
        self.log_end.append(end)
        self.log_size.append(size)
        self.log_iter.append(iterations)
        self.log_mult.append(multiplier)
        self.log_fb.append(self.accel_down)
        self.log_completes.append(completes)
        starts = self.starts
        started = self.started
        for pos in members:
            if pos not in starts:
                starts[pos] = start
            started[pos] = True
        if self.has_crash:
            self.open.append(len(self.log_cancelled))
            self.log_cancelled.append(False)
            live_end = self.live_end
            for pos in completes:
                live_end[pos] = end
        else:
            # this machine never crashes, so a materialized dispatch is
            # final: resolve its completions now.  The outcome is the same
            # one the lazy path (or the reference's completion pop) would
            # produce; later retry timers for these requests exit at the
            # status check.
            status = self.status
            completion = self.completion
            winner = self.winner
            index = self.index
            for pos in completes:
                status[pos] = _ST_OK
                completion[pos] = end
                winner[pos] = index
        self.depth_samples.append((start, len(self.q_admit) - self.head))
        if self.head >= 8192:  # amortized queue compaction
            del self.q_admit[: self.head]
            del self.q_steps[: self.head]
            del self.q_pos[: self.head]
            self.head = 0

    def _iterate(self, cost, start: float, iterations: int, multiplier: float) -> float:
        """The reference ``launch()`` occupancy arithmetic, verbatim,
        straggler multiplier included (1.0 stays bit-exact)."""
        host_s = cost.host_s * multiplier
        accel_s = cost.accel_s * multiplier
        total_s = cost.total_s * multiplier
        cursor = start
        if cost.has_accel:
            target = cost.target
            # one dict read/write per dispatch, not per iteration: only this
            # target's free time and the host cursor evolve inside the loop.
            accel_start = self.accel_free.get(target, 0.0)
            host_end = cursor
            for _ in range(iterations):
                host_end = cursor + host_s
                if accel_start < host_end:
                    accel_start = host_end
                if accel_start == host_end:
                    end = cursor + total_s
                else:
                    end = accel_start + accel_s
                accel_start = end
                cursor = end
            self.accel_free[target] = accel_start
            self.host_free = host_end
        else:
            for _ in range(iterations):
                cursor = cursor + total_s
            self.host_free = cursor
        return cursor


def run_fast_faulted(
    router, trace: RequestTrace, result: ClusterResult, policy, policy_rng, injector
) -> ClusterResult:
    """Serve ``trace`` through the fleet with faults/retries on the columnar
    rail.

    ``result`` is the pre-populated shell from :meth:`ClusterRouter.run` and
    ``injector`` the run's already-built fault injector.  The event heap
    holds only fault transitions and retry timers; arrivals stay a cursor
    over the trace columns, launches replay inside :class:`_SimReplica`
    machines, and completions are resolved lazily — a request's fate is
    decided by its live dispatch record the first time an event (or the
    final sweep) looks at it, exactly as the reference's completion events
    would have decided it.  Bit-identical to ``backend="reference"``.
    """
    config = router.config
    n = trace.num_requests
    arrival_times = trace.arrival_column().tolist()
    decode_counts = trace.decode_column().tolist()
    kind = type(get_scheduler(config.scheduler)).__dict__["columnar_kernel"]

    started = [False] * n
    live_end: list = [None] * n
    status = [_PENDING] * n
    attempts = [0] * n
    timeouts: list = [config.timeout_s] * n
    live_replica: list = [None] * n
    lost = [False] * n
    completion: list = [None] * n
    winner = [-1] * n
    crash_replicas = injector.schedule.crash_replicas()
    machines = [
        _SimReplica(
            index, engine, kind, config.max_batch, config.max_wait_s,
            injector, router.cache, index in crash_replicas, started, live_end,
            status, completion, winner,
        )
        for index, engine in enumerate(router.engines)
    ]
    counters = {"shed": 0, "failed": 0, "retries": 0}

    heap: list = []
    #: retry timers whose fire times arrive in nondecreasing order (the
    #: common case: every first admission arms ``arrival + timeout_s``).
    #: Kept out of the heap — the event loop merges deque, heap, and the
    #: arrival cursor by the same (time, prio, seq) tuples a single heap
    #: would order, so processing order is unchanged.
    timer_q: deque = deque()
    seq = itertools.count()

    def push(time_s: float, prio: int, pos: int) -> None:
        heapq.heappush(heap, (time_s, prio, next(seq), pos))

    for t in injector.transitions():
        push(t, _PRIO_FAULT, -1)

    # generous, mirroring the reference loop's stall guard: every event
    # admits, re-routes, resolves, or toggles a fault window.
    max_events = 64 + 32 * (2 + config.max_retries) * (
        n + trace.total_decode_steps()
    ) + 8 * len(injector.transitions())
    events = 0

    def stall(when: float, detail: str) -> ServingError:
        unresolved = sum(1 for s in status if s == _PENDING)
        return ServingError(
            f"cluster made no progress at t={when:.6f}s ({detail}):"
            f" scheduler {config.scheduler!r}, policy {config.policy!r},"
            f" {unresolved}/{n} requests unresolved"
        )

    def resolve(pos: int, when: float) -> bool:
        """Materialize completion if the live copy's dispatch has ended —
        the reference's completion event would have popped by ``when``.
        A cancelled dispatch always marked its live copy lost (it ended at
        or after the crash instant), so ``lost`` doubles as the
        cancellation check."""
        end = live_end[pos]
        if end is not None and end <= when and not lost[pos]:
            status[pos] = _ST_OK
            completion[pos] = end
            winner[pos] = live_replica[pos]
            return True
        return False

    def admit_copy(pos: int, machine: _SimReplica, when: float) -> None:
        live_replica[pos] = machine.index
        started[pos] = False
        lost[pos] = False
        live_end[pos] = None
        machine.admit(when, decode_counts[pos], pos)
        attempts[pos] += 1
        if timeouts[pos] is not None:
            t = when + timeouts[pos]
            if not timer_q or t >= timer_q[-1][0]:
                timer_q.append((t, _PRIO_RETRY, next(seq), pos))
            else:
                push(t, _PRIO_RETRY, pos)

    # advancing a machine is observable only through est_delay_s probes
    # (launch outcomes are pure functions of machine state), so policies
    # that never probe skip the pre-choose advancement entirely — the
    # chosen machine still advances inside admit().
    probes_load = getattr(type(policy), "probes_load", True)
    #: replicas not currently crashed; rebuilt only on fault transitions.
    alive = list(machines)

    def route_primary(pos: int, when: float) -> None:
        if attempts[pos] >= 1 + config.max_retries:
            status[pos] = _ST_FAILED
            counters["failed"] += 1
            return
        previous = live_replica[pos]
        candidates = [m for m in alive if m.index != previous] or alive
        if not candidates:
            if timeouts[pos] is None:
                raise stall(when, "no alive replica and no timeout to wait on")
            push(when + timeouts[pos], _PRIO_RETRY, pos)
            return
        if attempts[pos] >= 1:
            counters["retries"] += 1
            backoff = timeouts[pos] * 2.0
            if config.timeout_cap_s is not None:
                backoff = min(backoff, config.timeout_cap_s)
            timeouts[pos] = backoff
        if probes_load:
            for machine in candidates:
                machine.advance(when)
        chosen = policy.choose(when, candidates, policy_rng)
        admit_copy(pos, chosen, when)

    def on_arrival(pos: int, when: float) -> None:
        if not alive:
            if config.shed_queue_s is not None:
                status[pos] = _ST_SHED
                counters["shed"] += 1
                return
            route_primary(pos, when)  # defers on the timeout
            return
        if probes_load:
            for machine in alive:
                machine.advance(when)
        chosen = policy.choose(when, alive, policy_rng)
        if config.shed_queue_s is not None:
            chosen.advance(when)  # the shed check probes est_delay_s
            if chosen.est_delay_s(when) > config.shed_queue_s:
                status[pos] = _ST_SHED
                counters["shed"] += 1
                return
        admit_copy(pos, chosen, when)

    def on_retry(pos: int, when: float) -> None:
        if status[pos] != _PENDING:
            return
        holder_index = live_replica[pos]
        holder = machines[holder_index] if holder_index is not None else None
        if holder is not None and not holder.down:
            # launches decided strictly before the timer may have started or
            # completed this copy; materialize them before judging it.
            holder.advance(when)
        if resolve(pos, when):
            return
        if holder is None or lost[pos] or holder.down:
            route_primary(pos, when)
            return
        if not started[pos]:
            holder.cancel_queued(pos)
            route_primary(pos, when)
            return
        # in service on a live replica: let it finish, but keep watching so
        # a later crash of that replica is still detected.  A replica the
        # schedule never crashes cannot lose started work, so the watch
        # chain (pure re-arms in the reference, never a re-route) is
        # dropped and the copy resolves lazily.
        if timeouts[pos] is not None and holder.has_crash:
            push(when + timeouts[pos], _PRIO_RETRY, pos)

    def on_fault(when: float) -> None:
        nonlocal alive
        for machine in machines:
            crashed = injector.is_crashed(machine.index, when)
            if crashed and not machine.down:
                machine.advance(when)
                for pos in machine.crash(when):
                    if live_replica[pos] != machine.index or status[pos] != _PENDING:
                        continue
                    end = live_end[pos]
                    if end is not None and end < when:
                        # resolved before the crash, just lazily.  end == when
                        # means the dispatch was cancelled by this crash
                        # (crash() cancels end_s >= when), so it is lost.
                        continue
                    lost[pos] = True
            elif not crashed and machine.down:
                machine.down = False
            accel = injector.accel_lost(machine.index, when)
            if accel != machine.accel_down:
                machine.advance(when)
                machine.set_accel_down(accel)
        alive = [m for m in machines if not m.down]

    # -- the event loop ----------------------------------------------------

    arrive_index = 0
    while True:
        # the next non-arrival event: smallest (time, prio, seq) across the
        # monotone timer deque and the heap.
        head = timer_q[0] if timer_q else None
        from_heap = head is None or (heap and heap[0] < head)
        if from_heap:
            head = heap[0] if heap else None
        if arrive_index < n:
            arrival_s = arrival_times[arrive_index]
            # merge the arrival cursor against the event head: comparing
            # (time, prio) reproduces the reference heap's processing order.
            if head is None or (arrival_s, _PRIO_ARRIVE) < (head[0], head[1]):
                events += 1
                if events > max_events:
                    raise stall(arrival_s, f"no progress after {max_events} events")
                pos = arrive_index
                arrive_index += 1
                on_arrival(pos, arrival_s)
                if arrive_index == n:
                    # arrivals drained: partial batches flush from now on.
                    # Materialize every launch decided under the pre-drain
                    # rules first — flush_at changes what _next_launch
                    # returns, so advancing lazily across the transition
                    # would re-decide those launches under the wrong rule.
                    for machine in machines:
                        machine.advance(arrival_s)
                        machine.flush_at = arrival_s
                continue
        if head is None:
            break
        if from_heap:
            when, prio, _, pos = heapq.heappop(heap)
        else:
            when, prio, _, pos = timer_q.popleft()
        events += 1
        if events > max_events:
            raise stall(when, f"no progress after {max_events} events")
        if prio == _PRIO_FAULT:
            on_fault(when)
        else:
            on_retry(pos, when)

    for machine in machines:
        machine.advance(float("inf"))
    for pos in range(n):
        if status[pos] != _PENDING:
            continue
        end = live_end[pos]
        if end is None or lost[pos]:
            raise stall(
                float("inf"), f"request at trace position {pos} never completed"
            )
        status[pos] = _ST_OK
        completion[pos] = end
        winner[pos] = live_replica[pos]

    # -- assembly (reference aggregate orders, vectorized folds) -----------

    ids_list = trace.id_column().tolist()
    cap = config.record_requests
    for machine in machines:
        ends = np.asarray(machine.log_end, dtype=np.float64)
        sizes = np.asarray(machine.log_size, dtype=np.int64)
        iters = np.asarray(machine.log_iter, dtype=np.int64)
        mults = np.asarray(machine.log_mult, dtype=np.float64)
        log_completes = machine.log_completes
        if machine.log_cancelled:
            # only crash-capable machines maintain the cancellation column;
            # everywhere else the whole log is live.
            keep = ~np.asarray(machine.log_cancelled, dtype=bool)
            ends = ends[keep]
            sizes = sizes[keep]
            iters = iters[keep]
            mults = mults[keep]
            log_completes = [
                c for c, k in zip(log_completes, keep.tolist()) if k
            ]
        # per-replica accounting folds at completion-pop order: stable sort
        # by end time over the launch-ordered log.
        order = np.argsort(ends, kind="stable")
        fallback_table = machine.fallback_table
        use_fb = fallback_table is not None and fallback_table is not machine.table
        if use_fb:
            fb = np.asarray(machine.log_fb, dtype=bool)
            if machine.log_cancelled:
                fb = fb[keep]
            use_fb = bool(fb.any())

        def fold(base_col, fb_col) -> float:
            vals = base_col[sizes]
            if use_fb:
                # device kinds the cpu-only fallback platform lacks
                # contribute exact 0.0 terms — bit-neutral in the fold.
                alt = np.zeros(sizes.size) if fb_col is None else fb_col[sizes]
                vals = np.where(fb, alt, vals)
            return _running_total(((vals * mults) * iters)[order])

        table = machine.table
        busy = {
            dev_kind: fold(
                col, fallback_table.busy_s.get(dev_kind) if use_fb else None
            )
            for dev_kind, col in table.busy_s.items()
        }
        energy = {
            dev_kind: fold(
                col, fallback_table.energy_j.get(dev_kind) if use_fb else None
            )
            for dev_kind, col in table.energy_j.items()
        }
        gemm = fold(table.gemm_s, fallback_table.gemm_s if use_fb else None)
        non_gemm = fold(table.non_gemm_s, fallback_table.non_gemm_s if use_fb else None)

        completions: dict[int, tuple[float, int]] = {}
        ends_list = ends.tolist()
        sizes_list = sizes.tolist()
        for i in order.tolist():
            entry = (ends_list[i], sizes_list[i])
            for pos in log_completes[i]:
                completions[pos] = entry
        admitted = machine.admitted
        # the reference router lists a replica's records by (admitted, id).
        order_pos = sorted(completions, key=lambda p: (admitted[p], ids_list[p]))

        def record_for(pos: int) -> RequestRecord:
            return RequestRecord(
                request_id=ids_list[pos],
                arrival_s=admitted[pos],
                start_s=machine.starts[pos],
                completion_s=completions[pos][0],
                decode_steps=decode_counts[pos],
                batch_size=completions[pos][1],
            )

        makespan = 0.0
        if order_pos:
            makespan = max(completions[p][0] for p in order_pos) - min(
                admitted[p] for p in order_pos
            )
        engine = machine.engine
        replica_result = ServingResult(
            model=config.model,
            flow=engine.flow.name,
            platform_id=config.platforms[machine.index],
            device=engine.target.value,
            scheduler=get_scheduler(config.scheduler).name,
            trace=trace.name,
            offered_rate_rps=result.offered_rate_rps,
            makespan_s=makespan,
            num_dispatches=int(ends.size),
            num_iterations=int(iters.sum()),
            mean_batch_size=(
                int((sizes * iters).sum()) / int(iters.sum())
                if ends.size
                else 0.0
            ),
            busy_s=busy,
            energy_j=energy,
            gemm_busy_s=gemm,
            non_gemm_busy_s=non_gemm,
        )
        if cap is None:
            replica_result.records = [record_for(pos) for pos in order_pos]
            replica_result.queue_depth_timeline = tuple(machine.depth_samples)
        else:
            # metrics.cap_serving_result's arithmetic fed from columns in
            # record order — the full record list is never materialized.
            arr_col = np.array(
                [admitted[p] for p in order_pos], dtype=np.float64
            )
            comp_col = np.array(
                [completions[p][0] for p in order_pos], dtype=np.float64
            )
            start_col = np.array(
                [machine.starts[p] for p in order_pos], dtype=np.float64
            )
            depths = [depth for _, depth in machine.depth_samples]
            replica_result.stats = streaming_stats(
                comp_col - arr_col,
                start_col - arr_col,
                depth_samples=len(depths),
                depth_sum=sum(depths),
                depth_max=max(depths) if depths else 0,
            )
            replica_result.num_served = len(order_pos)
            replica_result.record_cap = cap
            sampled = sample_record_indices(len(order_pos), cap)
            replica_result.records = [
                record_for(order_pos[i]) for i in sampled.tolist()
            ]
        result.replicas.append(replica_result)

    def cluster_record(pos: int) -> ClusterRequestRecord:
        return ClusterRequestRecord(
            request_id=ids_list[pos],
            arrival_s=arrival_times[pos],
            completion_s=completion[pos],
            status=_STATUS_NAMES[status[pos]],
            replica=winner[pos],
            attempts=attempts[pos],
            hedged=False,
            hedge_won=False,
        )

    if cap is None:
        result.records = [cluster_record(pos) for pos in range(n)]
    else:
        # metrics.cap_cluster_result's counters and streaming block, fed
        # from columns (trace order, completed requests only).
        latencies = np.array(
            [
                completion[pos] - arrival_times[pos]
                for pos in range(n)
                if status[pos] == _ST_OK
            ],
            dtype=np.float64,
        )
        result.stats = streaming_stats(latencies)
        result.num_requests_total = n
        result.num_completed = int(latencies.size)
        if config.deadline_s is None:
            result.num_good = int(latencies.size)
        else:
            result.num_good = int((latencies <= config.deadline_s).sum())
        result.record_cap = cap
        result.records = [
            cluster_record(pos)
            for pos in sample_record_indices(n, cap).tolist()
        ]
    completed = [c for c in completion if c is not None]
    if completed:
        result.makespan_s = max(completed) - arrival_times[0]
    result.num_shed = counters["shed"]
    result.num_failed = counters["failed"]
    result.num_retries = counters["retries"]
    recovery = 0.0
    for window in injector.schedule.windows:
        victim = machines[window.replica]
        if victim.log_cancelled:
            ends = sorted(
                e
                for e, cancelled in zip(victim.log_end, victim.log_cancelled)
                if not cancelled
            )
        else:
            ends = sorted(victim.log_end)
        after = next((e for e in ends if e >= window.end_s), None)
        if after is not None:
            recovery = max(recovery, after - window.end_s)
    result.time_to_recovery_s = recovery
    result.backend_used = "columnar-faulted"
    return apply_static_lifecycle(result)
