"""Columnar fast path for the multi-replica cluster router.

``backend="fast"`` on a :class:`~repro.serving.cluster.ClusterConfig` already
advances arrivals in chunks; this module removes the per-event Python heap
entirely on the **no-fault / no-retry / no-hedge rail**:

1. **Routing pass** — admission decisions are computed in columns.
   Round-robin without shedding is closed form (``i mod R``: the cursor
   advances once per arrival, shed or not).  Least-loaded, power-of-two, and
   any shedding configuration replay the scalar router's
   :meth:`~repro.serving.cluster._Replica.est_delay_s` against per-replica
   *virtual clock machines*: tiny recurrences over (host_free, accel_free,
   pending decode steps) that replay each scheduler's launch times without
   scheduler objects, ``Request`` objects, or heap events.
2. **Serving pass** — each replica's admitted sub-stream is a column slice
   of the trace, fed through the existing per-scheduler columnar kernels of
   :mod:`repro.serving.columnar`.  The only cluster-specific wrinkle is the
   *global* ``arrivals_pending`` flag: static/dynamic batching hold a
   partial final batch until the whole trace's last arrival has been
   drained, which the kernels model with their ``more_until`` horizon.
3. **Assembly** — per-replica results and cluster records are rebuilt in
   the reference router's exact orders (records by ``(admitted_s, id)``,
   accounting folded in launch order), so the result is **bit-identical**
   to ``backend="reference"``: same ``ClusterResult``, same float
   accumulations, same capped/streaming blocks.

The rail is checked by :func:`supports_fast_path`; any unsupported knob —
a fault profile that produces windows or stragglers, timeout retries,
hedging, a custom admission policy, or a custom/subclassed scheduler —
falls back to the reference event loop in
:meth:`~repro.serving.cluster.ClusterRouter.run` automatically.

Why launch times are a recurrence: the reference loop runs one decision
pass per distinct event time, *after* draining that time's arrivals, and a
replica launches at most one dispatch per pass (every dispatch pushes its
``ready_s`` strictly past the clock).  So a replica's next launch time is a
pure function of its queue and occupancy registers — ``max(ready, head
admit)`` for fifo/continuous, ``max(host_free, cap-th admit)`` for a full
batch, ``max(host_free, head admit + max_wait)`` for a dynamic flush — and
admissions at time T strictly precede launches at T (the machines advance
with a strict ``< T`` bound before every admission and delay probe).
During routing the global arrival stream is never exhausted, so static
batching never flushes a partial batch inside the machines.
"""

from __future__ import annotations

import numpy as np

from repro.serving.columnar import _Run, kernel_for
from repro.serving.metrics import (
    REQUEST_OK,
    REQUEST_SHED,
    ClusterRequestRecord,
    ClusterResult,
    ServingResult,
    sample_record_indices,
    streaming_stats,
)
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    DynamicBatchScheduler,
    FIFOScheduler,
    StaticBatchScheduler,
    get_scheduler,
)
from repro.serving.trace import RequestTrace

_BUILTIN_SCHEDULERS = (
    FIFOScheduler,
    StaticBatchScheduler,
    DynamicBatchScheduler,
    ContinuousBatchScheduler,
)


def supports_fast_path(config, injector, policy, scheduler) -> bool:
    """Is this cluster run on the columnar rail?

    Everything here mirrors a documented fallback condition: the README's
    "rail conditions" list and the fallback test battery enumerate exactly
    these knobs.  ``injector`` is the run's already-built
    :class:`~repro.serving.faults.FaultInjector` — the check is semantic
    (does the drawn schedule actually perturb anything), so a custom
    profile that yields no windows and no stragglers still qualifies.
    """
    from repro.serving.cluster import (
        LeastLoadedPolicy,
        PowerOfTwoPolicy,
        RoundRobinPolicy,
    )

    if config.backend != "fast":
        return False
    if config.timeout_s is not None or config.hedge_after_s is not None:
        return False
    schedule = injector.schedule
    if schedule.windows or schedule.straggler_prob > 0.0:
        return False
    if type(policy) not in (RoundRobinPolicy, LeastLoadedPolicy, PowerOfTwoPolicy):
        return False
    if type(scheduler) not in _BUILTIN_SCHEDULERS:
        return False
    return kernel_for(scheduler) is not None


# -- routing pass -------------------------------------------------------------


class _Machine:
    """Virtual clock of one replica: replays launch times and queue-delay
    estimates without a scheduler object or heap events.

    State is exactly what :meth:`_Replica.est_delay_s` reads — ``host_free``,
    the per-device ``accel_free`` horizon, and the scheduler's pending decode
    steps — plus the admitted queue (admit time, steps) and, for continuous
    batching, the in-flight remaining-step list.  ``advance(T)`` executes
    every launch decided strictly before ``T`` with the reference launch
    arithmetic verbatim, so a delay probe at an arrival time sees the same
    registers as the scalar router's policy does.
    """

    __slots__ = (
        "index",
        "kind",
        "max_batch",
        "max_wait_s",
        "_cost",
        "unit_total_s",
        "host_free",
        "ready_s",
        "accel_free",
        "pending_steps",
        "q_admit",
        "q_steps",
        "head",
        "flight",
    )

    def __init__(self, index: int, engine, kind: str, max_batch: int, max_wait_s: float):
        self.index = index
        self.kind = kind
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._cost = engine.costs.cost  # memoized per batch size
        self.unit_total_s = engine.costs.cost(1).total_s
        self.host_free = 0.0
        self.ready_s = 0.0
        self.accel_free: dict = {}
        self.pending_steps = 0
        self.q_admit: list[float] = []
        self.q_steps: list[int] = []
        self.head = 0
        self.flight: list[int] = []

    def est_delay_s(self, now: float) -> float:
        """Verbatim :meth:`_Replica.est_delay_s` over the machine registers."""
        horizon = self.host_free
        for t in self.accel_free.values():
            if t > horizon:
                horizon = t
        backlog = self.pending_steps * self.unit_total_s
        delay = horizon - now
        if delay < 0.0:
            delay = 0.0
        return delay + backlog

    def admit(self, when: float, steps: int) -> None:
        self.advance(when)
        self.q_admit.append(when)
        self.q_steps.append(steps)
        self.pending_steps += steps

    def advance(self, until: float) -> None:
        """Execute every launch decided strictly before ``until``."""
        while True:
            t = self._next_launch()
            if t is None or t >= until:
                return
            self._launch(t)

    def _next_launch(self) -> "float | None":
        kind = self.kind
        if kind == "continuous":
            if self.flight:
                return self.ready_s
            if self.head < len(self.q_admit):
                a = self.q_admit[self.head]
                return a if a > self.ready_s else self.ready_s
            return None
        qlen = len(self.q_admit) - self.head
        if qlen == 0:
            return None
        if kind == "fifo":
            a = self.q_admit[self.head]
            return a if a > self.ready_s else self.ready_s
        if qlen >= self.max_batch:
            a = self.q_admit[self.head + self.max_batch - 1]
            return a if a > self.host_free else self.host_free
        if kind == "dynamic":
            d = self.q_admit[self.head] + self.max_wait_s
            return d if d > self.host_free else self.host_free
        # static partial batches flush only once the *global* arrival stream
        # is exhausted — which never happens while requests are still routing.
        return None

    def _launch(self, t: float) -> None:
        kind = self.kind
        if kind == "continuous":
            flight = self.flight
            free = self.max_batch - len(flight)
            if free > 0:
                qlen = len(self.q_admit) - self.head
                take = free if free < qlen else qlen
                if take:
                    stop = self.head + take
                    flight.extend(self.q_steps[self.head : stop])
                    self.head = stop
            size = len(flight)
            end = self._iterate(self._cost(size), t, 1)
            self.flight = [rem - 1 for rem in flight if rem != 1]
            self.pending_steps -= size
            self.ready_s = end  # barrier
        elif kind == "fifo":
            steps = self.q_steps[self.head]
            self.head += 1
            end = self._iterate(self._cost(1), t, steps)
            self.pending_steps -= steps
            self.ready_s = end  # barrier
        else:  # static / dynamic full-or-flush batch
            qlen = len(self.q_admit) - self.head
            size = qlen if qlen < self.max_batch else self.max_batch
            stop = self.head + size
            members = self.q_steps[self.head : stop]
            self.head = stop
            self._iterate(self._cost(size), t, max(members))
            self.pending_steps -= sum(members)
            # non-barrier: ready is max(when, host_free), and host_free has
            # just advanced past the dispatch start.
            self.ready_s = t if t > self.host_free else self.host_free
        if self.head >= 8192:  # amortized queue compaction
            del self.q_admit[: self.head]
            del self.q_steps[: self.head]
            self.head = 0

    def _iterate(self, cost, when: float, iterations: int) -> float:
        """The reference ``launch()`` occupancy arithmetic, verbatim
        (straggler multiplier omitted: it is exactly 1.0 on this rail)."""
        start = when if when > self.host_free else self.host_free
        cursor = start
        if cost.has_accel:
            host_s = cost.host_s
            accel_s = cost.accel_s
            total_s = cost.total_s
            target = cost.target
            accel_free = self.accel_free
            for _ in range(iterations):
                host_end = cursor + host_s
                accel_start = accel_free.get(target, 0.0)
                if accel_start < host_end:
                    accel_start = host_end
                if accel_start == host_end:
                    end = cursor + total_s
                else:
                    end = accel_start + accel_s
                accel_free[target] = end
                self.host_free = host_end
                cursor = end
        else:
            total_s = cost.total_s
            for _ in range(iterations):
                cursor += total_s
            self.host_free = cursor
        return cursor


def _route(config, engines, trace: RequestTrace, policy, rng) -> np.ndarray:
    """Assign every arrival to a replica index (``-1``: shed).

    Sequential in trace order — exactly the drain order of the reference
    loop — with the policy's own state transitions: the round-robin cursor
    advances even on shed arrivals (``choose`` runs before the shed check),
    and power-of-two draws from the seeded generator once per arrival.
    """
    from repro.serving.cluster import LeastLoadedPolicy, RoundRobinPolicy

    n = trace.num_requests
    num_replicas = len(engines)
    shed_s = config.shed_queue_s
    round_robin = type(policy) is RoundRobinPolicy
    if round_robin and shed_s is None:
        return np.arange(n, dtype=np.int64) % num_replicas

    kind = type(get_scheduler(config.scheduler)).__dict__["columnar_kernel"]
    machines = [
        _Machine(index, engine, kind, config.max_batch, config.max_wait_s)
        for index, engine in enumerate(engines)
    ]
    arrivals = trace.arrival_column().tolist()
    steps = trace.decode_column().tolist()
    assigned = np.empty(n, dtype=np.int64)
    if round_robin:
        for i in range(n):
            when = arrivals[i]
            chosen = machines[i % num_replicas]
            chosen.advance(when)
            if chosen.est_delay_s(when) > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    elif type(policy) is LeastLoadedPolicy:
        for i in range(n):
            when = arrivals[i]
            chosen = None
            chosen_delay = 0.0
            # min(key=(delay, index)) in index order: strict < keeps the
            # lowest-index replica on ties, like the reference min().
            for machine in machines:
                machine.advance(when)
                delay = machine.est_delay_s(when)
                if chosen is None or delay < chosen_delay:
                    chosen = machine
                    chosen_delay = delay
            if shed_s is not None and chosen_delay > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    else:  # power-of-two-choices
        for i in range(n):
            when = arrivals[i]
            if num_replicas == 1:
                chosen = machines[0]
                chosen.advance(when)
            else:
                first_i, second_i = sorted(
                    int(x) for x in rng.choice(num_replicas, size=2, replace=False)
                )
                first = machines[first_i]
                second = machines[second_i]
                first.advance(when)
                second.advance(when)
                if second.est_delay_s(when) < first.est_delay_s(when):
                    chosen = second
                else:
                    chosen = first
            if shed_s is not None and chosen.est_delay_s(when) > shed_s:
                assigned[i] = -1
                continue
            chosen.admit(when, steps[i])
            assigned[i] = chosen.index
    return assigned


# -- serving pass -------------------------------------------------------------


def _empty_replica_result(
    engine, scheduler_name: str, config, platform_id: str, trace_name: str, rate: float
) -> ServingResult:
    """A replica that admitted nothing, in the reference's exact shape."""
    result = ServingResult(
        model=config.model,
        flow=engine.flow.name,
        platform_id=platform_id,
        device=engine.target.value,
        scheduler=scheduler_name,
        trace=trace_name,
        offered_rate_rps=rate,
        busy_s={spec.kind: 0.0 for spec in engine.platform.devices},
        energy_j={spec.kind: 0.0 for spec in engine.platform.devices},
    )
    if config.record_requests is not None:
        empty = np.zeros(0, dtype=np.float64)
        result.stats = streaming_stats(empty, empty)
        result.num_served = 0
        result.record_cap = config.record_requests
    return result


def _serve_replica(
    engine, config, trace: RequestTrace, indices: np.ndarray, more_until: float, rate: float
) -> "tuple[ServingResult, np.ndarray]":
    """Run one replica's admitted sub-stream through its columnar kernel.

    Returns the per-replica :class:`ServingResult` (in the reference
    router's record order and capping shape) and the completion column in
    sub-stream (trace) order for cluster-level scatter.
    """
    sub = RequestTrace(
        trace.name,
        arrival_s=trace.arrival_column()[indices],
        decode_steps=trace.decode_column()[indices],
        request_ids=trace.id_column()[indices],
    )
    scheduler = get_scheduler(
        config.scheduler, max_batch=config.max_batch, max_wait_s=config.max_wait_s
    )
    run = _Run(engine, sub, scheduler)
    run.cap = config.record_requests
    run.full = run.cap is None
    kernel_for(scheduler)(run, more_until=more_until)

    # the reference router lists a replica's records by (admitted_s, id) —
    # identical to sub-stream order except when equal-time arrivals carry
    # out-of-order ids, so order stats and records through the permutation.
    perm = np.lexsort((sub.id_column(), run.arrival))
    result = ServingResult(
        model=config.model,
        flow=engine.flow.name,
        platform_id=engine.config.platform,
        device=engine.target.value,
        scheduler=scheduler.name,
        trace=trace.name,
        offered_rate_rps=rate,
    )
    result.makespan_s = float(run.completion.max()) - float(run.arrival[0])
    result.num_dispatches = run.dispatches
    result.num_iterations = run.iterations
    result.mean_batch_size = run.weighted / run.iterations if run.iterations else 0.0
    result.busy_s = run.busy
    result.energy_j = run.energy
    result.gemm_busy_s = run.gemm
    result.non_gemm_busy_s = run.non_gemm
    if run.full:
        result.records = run._records(perm)
        result.queue_depth_timeline = tuple(run.timeline)
    else:
        # metrics.cap_serving_result's arithmetic, fed from columns in the
        # reference's record order.
        result.stats = streaming_stats(
            run.completion[perm] - run.arrival[perm],
            run.start[perm] - run.arrival[perm],
            depth_samples=run.depth_count,
            depth_sum=run.depth_sum,
            depth_max=run.depth_max,
        )
        result.num_served = run.n
        result.record_cap = run.cap
        result.records = run._records(perm[sample_record_indices(run.n, run.cap)])
    return result, run.completion


# -- entry point --------------------------------------------------------------


def run_fast_cluster(
    router, trace: RequestTrace, result: ClusterResult, policy, policy_rng
) -> ClusterResult:
    """Serve ``trace`` through the fleet on the columnar rail.

    ``result`` is the pre-populated :class:`ClusterResult` shell from
    :meth:`ClusterRouter.run`; the caller has already verified
    :func:`supports_fast_path`.  Bit-identical to the reference event loop.
    """
    config = router.config
    engines = router.engines
    n = trace.num_requests
    arrivals = trace.arrival_column()
    rate = result.offered_rate_rps

    assigned = _route(config, engines, trace, policy, policy_rng)
    more_until = float(arrivals[-1])

    scheduler_name = get_scheduler(config.scheduler).name
    completion_all = np.empty(n, dtype=np.float64)
    for index, engine in enumerate(engines):
        indices = np.nonzero(assigned == index)[0]
        if indices.size == 0:
            result.replicas.append(
                _empty_replica_result(
                    engine, scheduler_name, config, config.platforms[index],
                    trace.name, rate,
                )
            )
            continue
        replica_result, completions = _serve_replica(
            engine, config, trace, indices, more_until, rate
        )
        result.replicas.append(replica_result)
        completion_all[indices] = completions

    ok_mask = assigned >= 0
    num_ok = int(ok_mask.sum())
    result.num_shed = n - num_ok
    if num_ok:
        result.makespan_s = float(completion_all[ok_mask].max()) - float(arrivals[0])

    cap = config.record_requests
    if cap is None:
        keep = np.arange(n, dtype=np.int64)
    else:
        # metrics.cap_cluster_result's counters and streaming block, fed
        # from columns (trace order, completed requests only) — the full
        # record list is never materialized.
        latencies = completion_all[ok_mask] - arrivals[ok_mask]
        result.stats = streaming_stats(latencies)
        result.num_requests_total = n
        result.num_completed = num_ok
        if config.deadline_s is None:
            result.num_good = num_ok
        else:
            result.num_good = int((latencies <= config.deadline_s).sum())
        result.record_cap = cap
        keep = sample_record_indices(n, cap)

    ids_kept = trace.id_column()[keep].tolist()
    arrivals_kept = arrivals[keep].tolist()
    replicas_kept = assigned[keep].tolist()
    completions_kept = completion_all[keep].tolist()
    records = []
    for request_id, arrival_s, replica, completion_s in zip(
        ids_kept, arrivals_kept, replicas_kept, completions_kept
    ):
        if replica < 0:
            records.append(
                ClusterRequestRecord(
                    request_id, arrival_s, None, REQUEST_SHED, -1, 0, False, False
                )
            )
        else:
            records.append(
                ClusterRequestRecord(
                    request_id, arrival_s, completion_s, REQUEST_OK, replica,
                    1, False, False,
                )
            )
    result.records = records
    return result
