"""Deterministic fault injection for the multi-replica cluster simulator.

Real deployments fail in three characteristic ways, and each one produces
tail latency through a different mechanism:

* **replica crashes** — a whole replica disappears for a window: queued and
  in-flight work is lost and must be re-routed (detected via per-request
  timeouts, see :mod:`repro.serving.cluster`);
* **transient accelerator loss** — the replica stays up but its accelerator
  drops out (driver reset, thermal trip, preempted MIG slice): new
  dispatches fall back to the host CPU — the same missing-accelerator
  fallback path :func:`~repro.serving.engine.resolve_serving_target` takes
  for platforms that never had the device;
* **stragglers** — individual dispatches run a multiplier slower than the
  cost model predicts (contended SMs, page faults, clock throttling).

A :class:`FaultInjector` is built from a *fault profile* — a registered
generator function mirroring ``register_trace`` — and is deterministic end
to end: every draw flows through explicit :class:`numpy.random.Generator`\\ s
seeded from the injector's seed, and the per-replica straggler streams are
seeded by ``(seed, replica)`` so the multiplier sequence a replica sees
depends only on its own launch order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ServingError

#: fault window kinds.
CRASH = "crash"
ACCEL_LOSS = "accel-loss"
_WINDOW_KINDS = (CRASH, ACCEL_LOSS)


@dataclass(frozen=True)
class FaultWindow:
    """One contiguous fault on one replica: ``[start_s, end_s)``."""

    replica: int
    kind: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.kind not in _WINDOW_KINDS:
            raise ServingError(
                f"unknown fault window kind {self.kind!r}; known: {_WINDOW_KINDS}"
            )
        if self.replica < 0:
            raise ServingError(f"fault window names replica {self.replica}")
        if not (0.0 <= self.start_s < self.end_s):
            raise ServingError(
                f"fault window [{self.start_s}, {self.end_s}) is not a"
                " positive-length interval"
            )

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class FaultSchedule:
    """What a fault profile produces: windows plus straggler parameters.

    ``straggler_prob`` is the per-dispatch probability that a launch is
    afflicted; afflicted launches draw a slowdown multiplier uniformly from
    ``straggler_range`` (inclusive low, exclusive high, both >= 1).
    """

    windows: tuple[FaultWindow, ...] = ()
    straggler_prob: float = 0.0
    straggler_range: tuple[float, float] = (2.0, 4.0)

    def __post_init__(self) -> None:
        if not (0.0 <= self.straggler_prob <= 1.0):
            raise ServingError(
                f"straggler_prob must be in [0, 1], got {self.straggler_prob}"
            )
        lo, hi = self.straggler_range
        if lo < 1.0 or hi < lo:
            raise ServingError(f"invalid straggler_range {self.straggler_range!r}")

    @property
    def perturbs(self) -> bool:
        """Does this drawn schedule actually perturb a run?  A profile that
        yields no windows and no straggler probability is equivalent to
        ``none`` — rail selection keys off this, not the profile name."""
        return bool(self.windows) or self.straggler_prob > 0.0

    def crash_replicas(self) -> frozenset[int]:
        """Indices of replicas the schedule ever crashes (these pay for
        open-dispatch bookkeeping on the columnar faulted rail)."""
        return frozenset(w.replica for w in self.windows if w.kind == CRASH)


#: a fault profile maps (num_replicas, horizon_s, rng) -> FaultSchedule.
FaultProfile = Callable[[int, float, np.random.Generator], FaultSchedule]

_FAULT_PROFILES: dict[str, FaultProfile] = {}


def register_fault_profile(
    name: str, fn: FaultProfile, replace: bool = False
) -> FaultProfile:
    """Register a fault profile under ``name`` (mirrors ``register_trace``)."""
    key = name.lower()
    if key in _FAULT_PROFILES and not replace:
        raise ServingError(f"fault profile {name!r} already registered")
    _FAULT_PROFILES[key] = fn
    return fn


def list_fault_profiles() -> list[str]:
    """Canonical names of all registered fault profiles."""
    return sorted(_FAULT_PROFILES)


def none_profile(
    num_replicas: int, horizon_s: float, rng: np.random.Generator
) -> FaultSchedule:
    """No faults: the cluster equivalence rail runs through this."""
    return FaultSchedule()


def crash_profile(
    num_replicas: int, horizon_s: float, rng: np.random.Generator
) -> FaultSchedule:
    """One replica crashes mid-run and recovers.

    The victim is drawn uniformly; the outage starts between 20% and 40% of
    the horizon and lasts 20-35% of it — long enough that queued work must
    be re-routed, short enough that time-to-recovery is observable.
    """
    victim = int(rng.integers(num_replicas))
    start = float(rng.uniform(0.20, 0.40)) * horizon_s
    length = float(rng.uniform(0.20, 0.35)) * horizon_s
    return FaultSchedule(windows=(FaultWindow(victim, CRASH, start, start + length),))


def accel_loss_profile(
    num_replicas: int, horizon_s: float, rng: np.random.Generator
) -> FaultSchedule:
    """One replica loses its accelerator mid-run and runs host-only.

    Same window shape as :func:`crash_profile`, but the replica keeps
    serving — every dispatch inside the window is priced with the host-CPU
    fallback cost model, so the fleet degrades instead of shrinking.
    """
    victim = int(rng.integers(num_replicas))
    start = float(rng.uniform(0.20, 0.40)) * horizon_s
    length = float(rng.uniform(0.25, 0.40)) * horizon_s
    return FaultSchedule(
        windows=(FaultWindow(victim, ACCEL_LOSS, start, start + length),)
    )


def straggler_profile(
    num_replicas: int, horizon_s: float, rng: np.random.Generator
) -> FaultSchedule:
    """No outages, but ~15% of dispatches run 2-6x slower than priced."""
    return FaultSchedule(straggler_prob=0.15, straggler_range=(2.0, 6.0))


for _name, _fn in (
    ("none", none_profile),
    ("crash", crash_profile),
    ("accel-loss", accel_loss_profile),
    ("straggler", straggler_profile),
):
    register_fault_profile(_name, _fn)


#: (name, one-line description) rows for discovery surfaces (CLI, docs).
def fault_profile_entries() -> list[tuple[str, str]]:
    return [
        (name, (_FAULT_PROFILES[name].__doc__ or "").strip().splitlines()[0])
        for name in list_fault_profiles()
    ]


class FaultInjector:
    """Seeded, replayable fault source for one cluster run.

    The schedule (outage windows, straggler parameters) is drawn once at
    construction from ``numpy.random.default_rng(seed)``; per-dispatch
    straggler multipliers come from per-replica generators seeded by
    ``(seed, replica)``, consumed once per launch in launch order — so two
    runs of the same configuration see bit-identical faults, and a replica's
    multiplier stream never depends on what *other* replicas do.
    """

    def __init__(
        self,
        profile: str,
        num_replicas: int,
        horizon_s: float,
        seed: int = 0,
    ):
        key = profile.lower()
        try:
            fn = _FAULT_PROFILES[key]
        except KeyError:
            raise ServingError(
                f"unknown fault profile {profile!r}; known: {list_fault_profiles()}"
            ) from None
        if num_replicas < 1:
            raise ServingError(f"num_replicas must be >= 1, got {num_replicas}")
        if not (horizon_s > 0.0) or not math.isfinite(horizon_s):
            raise ServingError(f"fault horizon must be positive, got {horizon_s}")
        self.profile = key
        self.num_replicas = num_replicas
        self.horizon_s = horizon_s
        self.seed = seed
        self.schedule = fn(num_replicas, horizon_s, np.random.default_rng(seed))
        for window in self.schedule.windows:
            if window.replica >= num_replicas:
                raise ServingError(
                    f"fault profile {key!r} produced a window for replica"
                    f" {window.replica} of a {num_replicas}-replica cluster"
                )
        self._straggler_rngs = [
            np.random.default_rng([seed, replica])
            for replica in range(num_replicas)
        ]

    # -- outage queries ------------------------------------------------------

    def windows_for(self, replica: int, kind: str | None = None) -> tuple[FaultWindow, ...]:
        return tuple(
            w
            for w in self.schedule.windows
            if w.replica == replica and (kind is None or w.kind == kind)
        )

    def is_crashed(self, replica: int, t: float) -> bool:
        return any(w.covers(t) for w in self.windows_for(replica, CRASH))

    def accel_lost(self, replica: int, t: float) -> bool:
        return any(w.covers(t) for w in self.windows_for(replica, ACCEL_LOSS))

    def transitions(self) -> tuple[float, ...]:
        """Every window start/end, ascending — the event loop's fault clock."""
        times = sorted(
            {w.start_s for w in self.schedule.windows}
            | {w.end_s for w in self.schedule.windows}
        )
        return tuple(times)

    # -- stragglers ----------------------------------------------------------

    @property
    def has_stragglers(self) -> bool:
        return self.schedule.straggler_prob > 0.0

    def dispatch_multiplier(self, replica: int) -> float:
        """The slowdown multiplier for ``replica``'s next launch (>= 1.0).

        Consumes the replica's straggler stream: call exactly once per
        dispatch launch.  Profiles without stragglers return 1.0 without
        touching any generator, so the no-fault path stays bit-identical to
        a single :class:`~repro.serving.engine.ServingEngine`.
        """
        if not self.has_stragglers:
            return 1.0
        rng = self._straggler_rngs[replica]
        if float(rng.random()) >= self.schedule.straggler_prob:
            return 1.0
        lo, hi = self.schedule.straggler_range
        return float(rng.uniform(lo, hi))
