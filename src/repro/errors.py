"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """An operator received inputs whose shapes are incompatible."""


class GraphError(ReproError):
    """The operator graph is malformed (cycles, dangling refs, bad ports)."""


class ExecutionError(ReproError):
    """Concrete (numpy) execution of a graph failed."""


class PlanError(ReproError):
    """A deployment flow produced or received an invalid execution plan."""


class RegistryError(ReproError):
    """Lookup of a model, operator, or platform failed."""


class ConfigError(ReproError):
    """A benchmark or model configuration is invalid."""


class ServingError(ReproError):
    """The serving simulator was misconfigured or a scheduler stalled."""
