"""Logit-computation operators: Softmax and LogSoftmax.

Softmax is the paper's canonical "single operand + non-linear + dynamic +
reduction" non-GEMM operator (Table I); it sits on the critical path of every
attention block.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ir.tensor import TensorSpec, normalize_axis
from repro.ops.base import OpCategory, OpCost, Operator


class Softmax(Operator):
    """Numerically-stable softmax over ``dim``."""

    kind = "softmax"
    category = OpCategory.LOGIT
    FLOPS_PER_ELEMENT = 10  # max-subtract, exp, sum, divide

    def __init__(self, dim: int = -1):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        normalize_axis(self.dim, x.rank)  # validates
        return (x,)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        shifted = x - np.max(x, axis=self.dim, keepdims=True)
        exp = np.exp(shifted)
        return ((exp / np.sum(exp, axis=self.dim, keepdims=True)).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        numel = inputs[0].numel
        return OpCost(
            flops=numel * self.FLOPS_PER_ELEMENT,
            # read once for max, once for exp-sum pass (two-pass kernels)
            bytes_read=2 * inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"softmax(dim={self.dim})"


class LogSoftmax(Softmax):
    """``log(softmax(x))`` — classification heads and losses."""

    kind = "log_softmax"

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        shifted = x - np.max(x, axis=self.dim, keepdims=True)
        log_z = np.log(np.sum(np.exp(shifted), axis=self.dim, keepdims=True))
        return ((shifted - log_z).astype(x.dtype, copy=False),)
