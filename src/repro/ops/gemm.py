"""GEMM-based operators: Linear, Conv2d, GPT-2 Conv1D, BMM, MatMul.

These are the operators whose inner loop is a perfectly-nested
multiply-and-accumulate; the paper's GEMM/non-GEMM split puts exactly this
family on the GEMM side.  FLOP counts follow the 1 MAC = 2 FLOPs convention.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator, WeightSpec


class Linear(Operator):
    """Fully-connected layer: ``y = x @ W.T + b`` over the last dimension."""

    kind = "linear"
    category = OpCategory.GEMM

    def __init__(self, in_features: int, out_features: int, bias: bool = True, dtype: DType = DType.F32):
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.bias = bias
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank < 1 or x.shape[-1] != self.in_features:
            raise ShapeError(
                f"linear expects last dim {self.in_features}, got shape {x.shape}"
            )
        return (x.with_shape(x.shape[:-1] + (self.out_features,)),)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        specs = [WeightSpec("weight", (self.out_features, self.in_features), self.dtype)]
        if self.bias:
            specs.append(WeightSpec("bias", (self.out_features,), self.dtype))
        return tuple(specs)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        y = x @ weights["weight"].T
        if self.bias:
            y = y + weights["bias"]
        return (y.astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        rows = inputs[0].numel // self.in_features
        flops = 2 * rows * self.in_features * self.out_features
        if self.bias:
            flops += rows * self.out_features
        return OpCost(
            flops=flops,
            bytes_read=inputs[0].nbytes + self.weight_bytes(),
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"linear({self.in_features}->{self.out_features}{', bias' if self.bias else ''})"


class Conv1DGPT(Linear):
    """GPT-2's ``Conv1D``: a Linear with transposed weight storage.

    HuggingFace GPT-2 uses this op for attention/MLP projections; it appears
    in profiles under its own name, so it keeps a distinct ``kind``.
    """

    kind = "conv1d"

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        specs = [WeightSpec("weight", (self.in_features, self.out_features), self.dtype)]
        if self.bias:
            specs.append(WeightSpec("bias", (self.out_features,), self.dtype))
        return tuple(specs)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        y = x @ weights["weight"]
        if self.bias:
            y = y + weights["bias"]
        return (y.astype(x.dtype, copy=False),)


class Conv2d(Operator):
    """2D convolution over NCHW tensors, with stride/padding/groups."""

    kind = "conv2d"
    category = OpCategory.GEMM

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        groups: int = 1,
        bias: bool = True,
        dtype: DType = DType.F32,
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = groups
        self.bias = bias
        self.dtype = dtype
        if in_channels % groups or out_channels % groups:
            raise ShapeError("conv2d channels must be divisible by groups")

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(f"conv2d expects NCHW with C={self.in_channels}, got {x.shape}")
        n, _, h, w = x.shape
        ho = _conv_out(h, self.kernel_size[0], self.stride[0], self.padding[0])
        wo = _conv_out(w, self.kernel_size[1], self.stride[1], self.padding[1])
        if ho <= 0 or wo <= 0:
            raise ShapeError(f"conv2d output collapses to {ho}x{wo} for input {x.shape}")
        return (x.with_shape((n, self.out_channels, ho, wo)),)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        kh, kw = self.kernel_size
        specs = [
            WeightSpec(
                "weight",
                (self.out_channels, self.in_channels // self.groups, kh, kw),
                self.dtype,
            )
        ]
        if self.bias:
            specs.append(WeightSpec("bias", (self.out_channels,), self.dtype))
        return tuple(specs)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        weight = weights["weight"]
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        ho = _conv_out(h, kh, self.stride[0], self.padding[0])
        wo = _conv_out(w, kw, self.stride[1], self.padding[1])
        cols = _im2col(x, kh, kw, self.stride, self.padding, ho, wo)
        group_in = c // self.groups
        group_out = self.out_channels // self.groups
        out = np.empty((n, self.out_channels, ho * wo), dtype=x.dtype)
        for g in range(self.groups):
            w_g = weight[g * group_out : (g + 1) * group_out].reshape(group_out, -1)
            cols_g = cols[:, g * group_in * kh * kw : (g + 1) * group_in * kh * kw, :]
            out[:, g * group_out : (g + 1) * group_out, :] = np.einsum(
                "ok,nkp->nop", w_g, cols_g, optimize=True
            )
        y = out.reshape(n, self.out_channels, ho, wo)
        if self.bias:
            y = y + weights["bias"][None, :, None, None]
        return (y.astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        n, _, ho, wo = outputs[0].shape
        kh, kw = self.kernel_size
        macs = n * self.out_channels * ho * wo * (self.in_channels // self.groups) * kh * kw
        flops = 2 * macs + (n * self.out_channels * ho * wo if self.bias else 0)
        return OpCost(
            flops=flops,
            bytes_read=inputs[0].nbytes + self.weight_bytes(),
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        kh, kw = self.kernel_size
        return (
            f"conv2d({self.in_channels}->{self.out_channels}, k={kh}x{kw},"
            f" s={self.stride[0]}, p={self.padding[0]}, g={self.groups})"
        )


class BMM(Operator):
    """Batched matrix multiply: ``[B, M, K] x [B, K, N] -> [B, M, N]``.

    Batch dimensions broadcast numpy-style, which covers the attention
    ``QK^T`` and ``PV`` products with a leading (batch, heads) pair.
    """

    kind = "bmm"
    category = OpCategory.GEMM

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        a, b = inputs
        if a.rank < 2 or b.rank < 2:
            raise ShapeError(f"bmm expects rank>=2 inputs, got {a.shape} x {b.shape}")
        if a.shape[-1] != b.shape[-2]:
            raise ShapeError(f"bmm inner dims disagree: {a.shape} x {b.shape}")
        try:
            batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
        except ValueError as exc:
            raise ShapeError(f"bmm batch dims do not broadcast: {a.shape} x {b.shape}") from exc
        return (a.with_shape(tuple(batch) + (a.shape[-2], b.shape[-1])),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        a, b = inputs
        return (np.matmul(a, b),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        out = outputs[0]
        k = inputs[0].shape[-1]
        flops = 2 * out.numel * k
        return OpCost(
            flops=flops,
            bytes_read=inputs[0].nbytes + inputs[1].nbytes,
            bytes_written=out.nbytes,
        )


class MatMul(BMM):
    """Alias of BMM under the name deployment flows report for ``@``."""

    kind = "matmul"


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2:
        raise ShapeError(f"expected int or pair, got {value!r}")
    return pair  # type: ignore[return-value]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    ho: int,
    wo: int,
) -> np.ndarray:
    """Unfold NCHW input into (N, C*kh*kw, ho*wo) patch columns."""
    n, c = x.shape[:2]
    ph, pw = padding
    sh, sw = stride
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, ho, wo), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = x[:, :, i : i + sh * ho : sh, j : j + sw * wo : sw]
    return cols.reshape(n, c * kh * kw, ho * wo)


def conv_gemm_dims(op: Conv2d, out_spec: TensorSpec) -> tuple[int, int, int]:
    """The (M, N, K) of the implicit GEMM a conv lowers to (im2col view)."""
    n, c_out, ho, wo = out_spec.shape
    kh, kw = op.kernel_size
    m = n * ho * wo
    k = (op.in_channels // op.groups) * kh * kw
    return m, c_out, k


def gemm_flops(cost: OpCost) -> int:
    """Convenience accessor kept for symmetry with non-GEMM helpers."""
    return cost.flops


GEMM_KINDS = frozenset({Linear.kind, Conv1DGPT.kind, Conv2d.kind, BMM.kind, MatMul.kind})


def is_gemm_kind(kind: str) -> bool:
    return kind in GEMM_KINDS or kind.startswith("int8_")
