"""Activation operators (non-GEMM): ReLU, GELU, SiLU, Sigmoid, Tanh.

All are elementwise and memory-bound; they differ in per-element arithmetic
(``FLOPS_PER_ELEMENT``), which matters on CPUs where transcendental functions
(GELU's erf, SiLU's sigmoid) are genuinely expensive.
"""

from __future__ import annotations

import math
from typing import ClassVar, Sequence

import numpy as np

from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator


class _UnaryActivation(Operator):
    """Shared implementation for unary elementwise activations."""

    category = OpCategory.ACTIVATION
    FLOPS_PER_ELEMENT: ClassVar[int] = 1

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0],)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (self._apply(x).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        numel = inputs[0].numel
        return OpCost(
            flops=numel * self.FLOPS_PER_ELEMENT,
            bytes_read=inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def _apply(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ReLU(_UnaryActivation):
    """Rectified linear unit: ``max(0, x)``."""

    kind = "relu"
    FLOPS_PER_ELEMENT = 1

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)


class GELU(_UnaryActivation):
    """Gaussian error linear unit, ``x * Phi(x)`` (tanh approximation).

    The dominant activation of transformer models (ViT, Swin, GPT-2, BERT).
    ``composite=True`` models HuggingFace's ``NewGELUActivation`` — a Python
    expression of pow/tanh/mul/add that launches ~7 separate kernels in eager
    mode, which is why GELU is the single most expensive non-GEMM operator of
    the GPT-2 family in the paper (Table IV).
    """

    kind = "gelu"
    FLOPS_PER_ELEMENT = 10

    def __init__(self, composite: bool = False):
        self.composite = composite
        # pow, mul, add, mul, tanh, add, mul, mul — the NewGELU expression
        self.eager_kernels = 8 if composite else 1

    def describe(self) -> str:
        return "gelu(composite)" if self.composite else "gelu"

    def _apply(self, x: np.ndarray) -> np.ndarray:
        x64 = x.astype(np.float64, copy=False)
        inner = math.sqrt(2.0 / math.pi) * (x64 + 0.044715 * x64**3)
        return (0.5 * x64 * (1.0 + np.tanh(inner))).astype(x.dtype, copy=False)


class SiLU(_UnaryActivation):
    """Sigmoid linear unit ``x * sigmoid(x)`` (Llama's activation)."""

    kind = "silu"
    FLOPS_PER_ELEMENT = 6

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return x / (1.0 + np.exp(-x))


class Sigmoid(_UnaryActivation):
    """Logistic sigmoid ``1 / (1 + exp(-x))``."""

    kind = "sigmoid"
    FLOPS_PER_ELEMENT = 5

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))


class Tanh(_UnaryActivation):
    """Hyperbolic tangent."""

    kind = "tanh"
    FLOPS_PER_ELEMENT = 6

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)


class HardSwish(_UnaryActivation):
    """``x * relu6(x + 3) / 6`` — used by mobile CNNs; kept for extensibility."""

    kind = "hardswish"
    FLOPS_PER_ELEMENT = 4

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0
