"""Miscellaneous operators: masking, selection, casting, and MoE routing.

These land in the paper's "Misc" group.  ``TopK``/``Gather`` are the routing
primitives of Mixtral's mixture-of-experts blocks; ``MaskedFill``/``Tril``
build causal attention masks; ``Cast`` appears around mixed-precision and
quantized regions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec, broadcast_shapes, normalize_axis
from repro.ops.base import OpCategory, OpCost, Operator


class Constant(Operator):
    """A learned constant tensor: cls tokens, position embeddings, masks.

    Takes no inputs and yields its single weight; no kernel is launched (the
    tensor is already resident), so it is metadata-only like an input.
    """

    kind = "constant"
    category = OpCategory.MISC
    is_metadata_only = True

    def __init__(self, shape: tuple[int, ...], dtype: DType = DType.F32, name: str = "value"):
        self.shape = tuple(shape)
        self.dtype = dtype
        self.weight_name = name

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        if inputs:
            raise ShapeError("constant takes no inputs")
        return (TensorSpec(self.shape, self.dtype),)

    def weight_specs(self):
        from repro.ops.base import WeightSpec

        return (WeightSpec(self.weight_name, self.shape, self.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (weights[self.weight_name],)

    def describe(self) -> str:
        return f"constant({self.shape}, {self.dtype.value})"


class Nonzero(Operator):
    """Indices of nonzero elements, padded to a static bound.

    torch ``nonzero`` forces a device->host synchronization (the output size
    is data-dependent); MoE routing calls it per expert, which is part of why
    Mixtral's profile is memory/overhead dominated.  The synchronization is
    modelled by the flows as a host round-trip.
    """

    kind = "nonzero"
    category = OpCategory.MEMORY
    forces_sync = True

    def __init__(self, max_outputs: int):
        if max_outputs <= 0:
            raise ShapeError("nonzero max_outputs must be positive")
        self.max_outputs = max_outputs

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        return (TensorSpec((self.max_outputs, x.rank), DType.I64),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        idx = np.argwhere(x)
        out = np.zeros((self.max_outputs, x.ndim), dtype=np.int64)
        count = min(len(idx), self.max_outputs)
        out[:count] = idx[:count]
        return (out,)

    def describe(self) -> str:
        return f"nonzero(max={self.max_outputs})"


class Where(Operator):
    """Elementwise select: ``cond ? a : b`` with broadcasting."""

    kind = "where"
    category = OpCategory.MISC

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 3, self.kind)
        cond, a, b = inputs
        shape = broadcast_shapes(broadcast_shapes(cond.shape, a.shape), b.shape)
        return (TensorSpec(shape, a.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        cond, a, b = inputs
        return (np.where(cond, a, b).astype(a.dtype, copy=False),)


class MaskedFill(Operator):
    """Write ``value`` wherever the boolean mask is set (causal attention)."""

    kind = "masked_fill"
    category = OpCategory.MISC

    def __init__(self, value: float = float("-inf")):
        self.value = value

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        x, mask = inputs
        broadcast_shapes(x.shape, mask.shape)  # validates compatibility
        return (x,)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        x, mask = inputs
        fill = np.array(self.value, dtype=x.dtype) if np.isfinite(self.value) else np.array(
            np.finfo(x.dtype).min if np.issubdtype(x.dtype, np.floating) else self.value,
            dtype=x.dtype,
        )
        return (np.where(np.broadcast_to(mask, x.shape), fill, x),)

    def describe(self) -> str:
        return f"masked_fill({self.value:g})"


class Tril(Operator):
    """Lower-triangular mask of the trailing two dims."""

    kind = "tril"
    category = OpCategory.MISC

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank < 2:
            raise ShapeError(f"tril expects rank>=2, got {x.shape}")
        return (x,)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.tril(inputs[0]),)


class Gather(Operator):
    """Index rows along ``dim`` by an integer index tensor (torch ``index_select``).

    Pure data movement — profiles under the Memory operator group, like the
    MoE token-routing gathers that dominate Mixtral's non-GEMM latency.
    """

    kind = "gather"
    category = OpCategory.MEMORY

    def __init__(self, dim: int):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        x, index = inputs
        if not index.dtype.is_integer:
            raise ShapeError(f"gather index must be integer, got {index.dtype}")
        if index.rank != 1:
            raise ShapeError(f"gather index must be rank-1, got {index.shape}")
        axis = normalize_axis(self.dim, x.rank)
        shape = x.shape[:axis] + (index.shape[0],) + x.shape[axis + 1 :]
        return (x.with_shape(shape),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        x, index = inputs
        return (np.take(x, np.clip(index, 0, x.shape[self.dim] - 1), axis=self.dim),)

    def describe(self) -> str:
        return f"gather(dim={self.dim})"


class IndexAdd(Operator):
    """Scatter-add rows of ``values`` into ``base`` at ``index`` (torch ``index_add_``).

    The accumulation step of HF's mixture-of-experts loop; data movement, so
    it reports under the Memory group.
    """

    kind = "index_add"
    category = OpCategory.MEMORY

    def __init__(self, dim: int = 0):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 3, self.kind)
        base, index, values = inputs
        if not index.dtype.is_integer or index.rank != 1:
            raise ShapeError(f"index_add index must be integer rank-1, got {index}")
        axis = normalize_axis(self.dim, base.rank)
        if values.shape[axis] != index.shape[0]:
            raise ShapeError(
                f"index_add values dim {axis} ({values.shape}) must match index {index.shape}"
            )
        return (base,)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        base, index, values = inputs
        out = base.copy()
        idx = np.clip(index, 0, base.shape[self.dim] - 1)
        np.add.at(out, tuple([idx if d == self.dim else slice(None) for d in range(base.ndim)][:1]), values)
        return (out,)

    def describe(self) -> str:
        return f"index_add(dim={self.dim})"


class TopK(Operator):
    """Top-``k`` values and indices along the last dim (MoE expert routing)."""

    kind = "topk"
    category = OpCategory.MISC

    def __init__(self, k: int):
        if k <= 0:
            raise ShapeError("topk k must be positive")
        self.k = k

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank < 1 or x.shape[-1] < self.k:
            raise ShapeError(f"topk k={self.k} exceeds last dim of {x.shape}")
        shape = x.shape[:-1] + (self.k,)
        return (x.with_shape(shape), TensorSpec(shape, DType.I64))

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        idx = np.argsort(-x, axis=-1, kind="stable")[..., : self.k]
        values = np.take_along_axis(x, idx, axis=-1)
        return (values, idx.astype(np.int64))

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        n = inputs[0].shape[-1]
        rows = inputs[0].numel // max(n, 1)
        return OpCost(
            flops=rows * n * max(1, int(np.log2(max(n, 2)))),
            bytes_read=inputs[0].nbytes,
            bytes_written=sum(s.nbytes for s in outputs),
        )

    def describe(self) -> str:
        return f"topk({self.k})"


class Cast(Operator):
    """Elementwise dtype conversion (mixed precision / quantized boundaries)."""

    kind = "cast"
    category = OpCategory.MISC

    def __init__(self, dtype: DType):
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0].with_dtype(self.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (inputs[0].astype(self.dtype.to_numpy()),)

    def describe(self) -> str:
        return f"cast({self.dtype.value})"
