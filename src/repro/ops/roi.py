"""Region-of-interest operators: Non-Maximum Suppression and RoIAlign.

These are the operators that make R-CNN-family detectors structurally unlike
classification networks: data-dependent control flow (NMS keeps a variable
number of boxes) and gather-heavy sampling (RoIAlign).  Because graph shapes
must be static, NMS reports a padded output of ``max_outputs`` boxes plus a
count tensor, matching how deployment flows compile it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator


class NMS(Operator):
    """Greedy IoU-based non-maximum suppression.

    Inputs: ``boxes [N, 4]`` (x1, y1, x2, y2) and ``scores [N]``.
    Outputs: ``kept_boxes [max_outputs, 4]`` zero-padded, and
    ``kept_count []`` (i64 scalar) — the dynamic size surfaced as data.
    """

    kind = "nms"
    category = OpCategory.ROI

    def __init__(self, iou_threshold: float = 0.5, score_threshold: float = 0.05, max_outputs: int = 100):
        if not 0.0 <= iou_threshold <= 1.0:
            raise ShapeError(f"iou_threshold must be in [0,1], got {iou_threshold}")
        self.iou_threshold = iou_threshold
        self.score_threshold = score_threshold
        self.max_outputs = max_outputs

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        boxes, scores = inputs
        if boxes.rank != 2 or boxes.shape[1] != 4:
            raise ShapeError(f"nms boxes must be [N,4], got {boxes.shape}")
        if scores.shape != (boxes.shape[0],):
            raise ShapeError(f"nms scores {scores.shape} must match boxes {boxes.shape}")
        return (
            TensorSpec((self.max_outputs, 4), boxes.dtype),
            TensorSpec((), DType.I64),
        )

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        boxes, scores = inputs
        keep_mask = scores >= self.score_threshold
        candidates = np.flatnonzero(keep_mask)
        order = candidates[np.argsort(-scores[candidates], kind="stable")]
        kept: list[int] = []
        while order.size and len(kept) < self.max_outputs:
            best = order[0]
            kept.append(int(best))
            if order.size == 1:
                break
            ious = _iou_one_to_many(boxes[best], boxes[order[1:]])
            order = order[1:][ious <= self.iou_threshold]
        out = np.zeros((self.max_outputs, 4), dtype=boxes.dtype)
        if kept:
            out[: len(kept)] = boxes[kept]
        return (out, np.asarray(len(kept), dtype=np.int64))

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        n = inputs[0].shape[0]
        # sort (n log n compares) + worst-case pairwise IoU (~12 flops each).
        sort_flops = int(n * max(1, np.log2(max(n, 2))))
        iou_flops = 12 * n * min(n, self.max_outputs) // 2
        return OpCost(
            flops=sort_flops + iou_flops,
            bytes_read=sum(s.nbytes for s in inputs) * 2,  # revisits survivors
            bytes_written=sum(s.nbytes for s in outputs),
        )

    def describe(self) -> str:
        return f"nms(iou={self.iou_threshold}, score={self.score_threshold}, max={self.max_outputs})"


class RoIAlign(Operator):
    """Bilinear RoI feature pooling (Mask R-CNN's alignment operator).

    Inputs: ``features [N, C, H, W]`` and ``rois [R, 5]`` where each row is
    (batch_index, x1, y1, x2, y2) in input-image coordinates.
    Output: ``[R, C, output_size, output_size]``.
    """

    kind = "roi_align"
    category = OpCategory.ROI

    def __init__(self, output_size: int = 7, spatial_scale: float = 1.0, sampling_ratio: int = 2):
        self.output_size = output_size
        self.spatial_scale = spatial_scale
        self.sampling_ratio = sampling_ratio

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        feats, rois = inputs
        if feats.rank != 4:
            raise ShapeError(f"roi_align features must be NCHW, got {feats.shape}")
        if rois.rank != 2 or rois.shape[1] != 5:
            raise ShapeError(f"roi_align rois must be [R,5], got {rois.shape}")
        r = rois.shape[0]
        c = feats.shape[1]
        return (TensorSpec((r, c, self.output_size, self.output_size), feats.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        feats, rois = inputs
        _, c, h, w = feats.shape
        r = rois.shape[0]
        size = self.output_size
        out = np.zeros((r, c, size, size), dtype=feats.dtype)
        for ri in range(r):
            batch = int(rois[ri, 0])
            x1, y1, x2, y2 = rois[ri, 1:] * self.spatial_scale
            bin_w = max(x2 - x1, 1e-6) / size
            bin_h = max(y2 - y1, 1e-6) / size
            for py in range(size):
                for px in range(size):
                    # one bilinear sample at the bin centre (sampling_ratio=1
                    # semantics; sufficient as a reference implementation)
                    cy = np.clip(y1 + (py + 0.5) * bin_h, 0, h - 1)
                    cx = np.clip(x1 + (px + 0.5) * bin_w, 0, w - 1)
                    out[ri, :, py, px] = _bilinear(feats[batch], cy, cx)
        return (out,)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        out = outputs[0]
        samples = out.numel * max(1, self.sampling_ratio) ** 2
        return OpCost(
            flops=samples * 8,  # 4 taps * (1 mul + 1 add)
            # gathers touch 4 feature values per sample
            bytes_read=samples * 4 * inputs[0].dtype.itemsize + inputs[1].nbytes,
            bytes_written=out.nbytes,
        )

    def describe(self) -> str:
        return f"roi_align(out={self.output_size}, scale={self.spatial_scale:g})"


def _iou_one_to_many(box: np.ndarray, boxes: np.ndarray) -> np.ndarray:
    """IoU of one (x1,y1,x2,y2) box against an [M,4] array."""
    x1 = np.maximum(box[0], boxes[:, 0])
    y1 = np.maximum(box[1], boxes[:, 1])
    x2 = np.minimum(box[2], boxes[:, 2])
    y2 = np.minimum(box[3], boxes[:, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area_a = (box[2] - box[0]) * (box[3] - box[1])
    area_b = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    union = area_a + area_b - inter
    return np.where(union > 0, inter / np.maximum(union, 1e-9), 0.0)


def _bilinear(feat: np.ndarray, y: float, x: float) -> np.ndarray:
    """Bilinear sample of a CHW feature map at a fractional (y, x)."""
    _, h, w = feat.shape
    y0, x0 = int(np.floor(y)), int(np.floor(x))
    y1, x1 = min(y0 + 1, h - 1), min(x0 + 1, w - 1)
    dy, dx = y - y0, x - x0
    top = feat[:, y0, x0] * (1 - dx) + feat[:, y0, x1] * dx
    bottom = feat[:, y1, x0] * (1 - dx) + feat[:, y1, x1] * dx
    return top * (1 - dy) + bottom * dy
