"""Element-wise arithmetic operators (binary with broadcasting, unary, scalar).

The paper's "Element-wise Arithmetic" group: residual adds, attention scaling
divisions, rotary-embedding negation/multiplication, and — after LLM.int8()
quantization — the dequant/requant scaling math that dominates Fig. 9.
"""

from __future__ import annotations

from typing import Callable, ClassVar, Sequence

import numpy as np

from repro.ir.tensor import TensorSpec, broadcast_shapes
from repro.ops.base import OpCategory, OpCost, Operator


class _BinaryElementwise(Operator):
    """Binary op with numpy broadcasting; subclasses set ``kind`` and ``_fn``."""

    category = OpCategory.ELEMENTWISE
    FLOPS_PER_ELEMENT: ClassVar[int] = 1
    _fn: ClassVar[Callable[[np.ndarray, np.ndarray], np.ndarray]]

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        a, b = inputs
        shape = broadcast_shapes(a.shape, b.shape)
        return (TensorSpec(shape, a.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        a, b = inputs
        return (type(self)._fn(a, b).astype(a.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        out = outputs[0]
        return OpCost(
            flops=out.numel * self.FLOPS_PER_ELEMENT,
            bytes_read=sum(s.nbytes for s in inputs),
            bytes_written=out.nbytes,
        )


class Add(_BinaryElementwise):
    kind = "add"
    _fn = staticmethod(np.add)


class Sub(_BinaryElementwise):
    kind = "sub"
    _fn = staticmethod(np.subtract)


class Mul(_BinaryElementwise):
    kind = "mul"
    _fn = staticmethod(np.multiply)


class Div(_BinaryElementwise):
    """True division — the attention-logit scaling op ("TrueDiv" in Table I)."""

    kind = "div"
    FLOPS_PER_ELEMENT = 4
    _fn = staticmethod(np.divide)


class Maximum(_BinaryElementwise):
    kind = "maximum"
    _fn = staticmethod(np.maximum)


class _UnaryElementwise(Operator):
    category = OpCategory.ELEMENTWISE
    FLOPS_PER_ELEMENT: ClassVar[int] = 1
    _fn: ClassVar[Callable[[np.ndarray], np.ndarray]]

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0],)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (type(self)._fn(x).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel * self.FLOPS_PER_ELEMENT,
            bytes_read=inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )


class Neg(_UnaryElementwise):
    """Negation (rotary position embedding uses this on half the head dims)."""

    kind = "neg"
    _fn = staticmethod(np.negative)


class Abs(_UnaryElementwise):
    kind = "abs"
    _fn = staticmethod(np.abs)


class Sqrt(_UnaryElementwise):
    kind = "sqrt"
    FLOPS_PER_ELEMENT = 4
    _fn = staticmethod(np.sqrt)


class Rsqrt(_UnaryElementwise):
    kind = "rsqrt"
    FLOPS_PER_ELEMENT = 5
    _fn = staticmethod(lambda x: 1.0 / np.sqrt(x))


class Exp(_UnaryElementwise):
    kind = "exp"
    FLOPS_PER_ELEMENT = 6
    _fn = staticmethod(np.exp)


class _ScalarElementwise(Operator):
    """Unary op against a python scalar (e.g. ``x / sqrt(d)``)."""

    category = OpCategory.ELEMENTWISE
    FLOPS_PER_ELEMENT: ClassVar[int] = 1

    def __init__(self, scalar: float):
        self.scalar = float(scalar)

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0],)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (self._apply(x).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel * self.FLOPS_PER_ELEMENT,
            bytes_read=inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def _apply(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}({self.scalar:g})"


class AddScalar(_ScalarElementwise):
    kind = "add_scalar"

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return x + self.scalar


class MulScalar(_ScalarElementwise):
    kind = "mul_scalar"

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return x * self.scalar


class DivScalar(_ScalarElementwise):
    """The "TrueDiv by sqrt(d_k)" attention scaling op."""

    kind = "div_scalar"
    FLOPS_PER_ELEMENT = 4

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return x / self.scalar


class PowScalar(_ScalarElementwise):
    kind = "pow_scalar"
    FLOPS_PER_ELEMENT = 8

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return np.power(x, self.scalar)
