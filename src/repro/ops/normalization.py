"""Normalization operators: LayerNorm, BatchNorm2d, FrozenBatchNorm2d,
RMSNorm, GroupNorm.

Inference-time semantics only: BatchNorm variants use stored running
statistics.  ``FrozenBatchNorm2d`` mirrors torchvision's detection models —
a *custom* (non-cuDNN) kernel, which is exactly why DETR's normalization
latency is launch-overhead dominated in the paper; the eager flow therefore
treats it as its own kernel with a custom-kernel efficiency penalty.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator, WeightSpec


class _NormBase(Operator):
    category = OpCategory.NORMALIZATION
    #: flops per element: subtract/scale/shift plus reduction amortised.
    FLOPS_PER_ELEMENT = 8

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        numel = inputs[0].numel
        return OpCost(
            flops=numel * self.FLOPS_PER_ELEMENT,
            bytes_read=inputs[0].nbytes + self.weight_bytes(),
            bytes_written=outputs[0].nbytes,
        )


class LayerNorm(_NormBase):
    """Normalize over the trailing ``normalized_shape`` dims with affine params.

    PyTorch's native layer norm issues two device kernels (statistics pass +
    normalization pass) for typical activation sizes, which is what makes
    LayerNorm the dominant non-GEMM cost of ViT/BERT-class models in the
    paper's Table IV.
    """

    kind = "layer_norm"
    eager_kernels = 2

    def __init__(self, normalized_shape: int | tuple[int, ...], eps: float = 1e-5, dtype: DType = DType.F32):
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        nd = len(self.normalized_shape)
        if x.shape[-nd:] != self.normalized_shape:
            raise ShapeError(
                f"layer_norm normalized_shape {self.normalized_shape} does not match"
                f" input {x.shape}"
            )
        return (x,)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        return (
            WeightSpec("weight", self.normalized_shape, self.dtype),
            WeightSpec("bias", self.normalized_shape, self.dtype),
        )

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        y = (x - mean) / np.sqrt(var + self.eps)
        y = y * weights["weight"] + weights["bias"]
        return (y.astype(x.dtype, copy=False),)

    def describe(self) -> str:
        return f"layer_norm({self.normalized_shape})"


class RMSNorm(_NormBase):
    """Root-mean-square norm (Llama family): no mean subtraction, no bias."""

    kind = "rms_norm"
    FLOPS_PER_ELEMENT = 5
    #: HuggingFace's LlamaRMSNorm is a Python composite: an fp32 upcast, pow,
    #: mean, add-eps, rsqrt, two muls and a downcast — eight eager kernels
    #: (four of them full-tensor passes), the paper's Llama-2 norm bottleneck.
    eager_kernels = 8
    eager_traffic_passes = 4
    is_custom_kernel = True

    def __init__(self, dim: int, eps: float = 1e-6, dtype: DType = DType.F32):
        self.dim = dim
        self.eps = eps
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.shape[-1] != self.dim:
            raise ShapeError(f"rms_norm dim {self.dim} does not match input {x.shape}")
        return (x,)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        return (WeightSpec("weight", (self.dim,), self.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        ms = np.mean(np.square(x), axis=-1, keepdims=True)
        y = x / np.sqrt(ms + self.eps) * weights["weight"]
        return (y.astype(x.dtype, copy=False),)

    def describe(self) -> str:
        return f"rms_norm({self.dim})"


class BatchNorm2d(_NormBase):
    """Inference-mode batch norm over NCHW channels using running stats."""

    kind = "batch_norm2d"
    FLOPS_PER_ELEMENT = 4

    def __init__(self, num_features: int, eps: float = 1e-5, dtype: DType = DType.F32):
        self.num_features = num_features
        self.eps = eps
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4 or x.shape[1] != self.num_features:
            raise ShapeError(f"batch_norm2d expects NCHW with C={self.num_features}, got {x.shape}")
        return (x,)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        c = (self.num_features,)
        return (
            WeightSpec("weight", c, self.dtype),
            WeightSpec("bias", c, self.dtype),
            WeightSpec("running_mean", c, self.dtype),
            WeightSpec("running_var", c, self.dtype),
        )

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        mean = weights["running_mean"][None, :, None, None]
        var = weights["running_var"][None, :, None, None]
        scale = weights["weight"][None, :, None, None]
        shift = weights["bias"][None, :, None, None]
        y = (x - mean) / np.sqrt(np.abs(var) + self.eps) * scale + shift
        return (y.astype(x.dtype, copy=False),)

    def describe(self) -> str:
        return f"batch_norm2d({self.num_features})"


class FrozenBatchNorm2d(BatchNorm2d):
    """Frozen BN: statistics and affine parameters are inference-time constants.

    Two real-world variants, selected by ``precomputed``:

    * ``precomputed=True`` (torchvision detection models): scale and bias are
      folded once at load, so the forward is ``x * scale + bias`` — two
      full-tensor kernels.
    * ``precomputed=False`` (HuggingFace DETR's custom class): scale/bias are
      recomputed from running stats on *every* forward — seven kernel
      launches, five of them on tiny channel vectors.  This is the "custom
      normalization identified as independent kernels" the paper blames for
      DETR's normalization bottleneck, and what TensorRT's CONV+BN+ReLU
      fusion eliminates (13.5x non-GEMM speedup, Table V).
    """

    kind = "frozen_batch_norm2d"
    FLOPS_PER_ELEMENT = 2
    eager_traffic_passes = 2

    def __init__(self, num_features: int, eps: float = 1e-5, dtype: DType = DType.F32,
                 precomputed: bool = True):
        super().__init__(num_features, eps=eps, dtype=dtype)
        self.precomputed = precomputed
        self.eager_kernels = 2 if precomputed else 7
        # the per-forward variant is a hand-written kernel chain; the folded
        # one is plain vendor mul/add kernels at full elementwise efficiency.
        self.is_custom_kernel = not precomputed

    def describe(self) -> str:
        style = "precomputed" if self.precomputed else "per-forward"
        return f"frozen_batch_norm2d({self.num_features}, {style})"


class GroupNorm(_NormBase):
    """Group normalization over NCHW channels (used by detection heads)."""

    kind = "group_norm"

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5, dtype: DType = DType.F32):
        if num_channels % num_groups:
            raise ShapeError("group_norm channels must divide into groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4 or x.shape[1] != self.num_channels:
            raise ShapeError(f"group_norm expects NCHW with C={self.num_channels}, got {x.shape}")
        return (x,)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        c = (self.num_channels,)
        return (WeightSpec("weight", c, self.dtype), WeightSpec("bias", c, self.dtype))

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        y = ((grouped - mean) / np.sqrt(var + self.eps)).reshape(n, c, h, w)
        y = y * weights["weight"][None, :, None, None] + weights["bias"][None, :, None, None]
        return (y.astype(x.dtype, copy=False),)

    def describe(self) -> str:
        return f"group_norm(g={self.num_groups}, c={self.num_channels})"
