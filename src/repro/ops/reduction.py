"""Reduction operators: Mean, Sum, Max, ArgMax along an axis."""

from __future__ import annotations

from typing import Callable, ClassVar, Sequence

import numpy as np

from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec, normalize_axis
from repro.ops.base import OpCategory, OpCost, Operator


class _ReduceBase(Operator):
    category = OpCategory.REDUCTION
    _fn: ClassVar[Callable]

    def __init__(self, dim: int, keepdim: bool = False):
        self.dim = dim
        self.keepdim = keepdim

    def _out_shape(self, x: TensorSpec) -> tuple[int, ...]:
        axis = normalize_axis(self.dim, x.rank)
        if self.keepdim:
            return x.shape[:axis] + (1,) + x.shape[axis + 1 :]
        return x.shape[:axis] + x.shape[axis + 1 :]

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        return (x.with_shape(self._out_shape(x)),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (type(self)._fn(x, axis=self.dim, keepdims=self.keepdim).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel,
            bytes_read=inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"{self.kind}(dim={self.dim}{', keepdim' if self.keepdim else ''})"


class Mean(_ReduceBase):
    kind = "mean"
    _fn = staticmethod(np.mean)


class Sum(_ReduceBase):
    kind = "sum"
    _fn = staticmethod(np.sum)


class Max(_ReduceBase):
    kind = "max"
    _fn = staticmethod(np.max)


class ArgMax(_ReduceBase):
    """Index of the maximum along ``dim``; output dtype is i64."""

    kind = "argmax"

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        return (TensorSpec(self._out_shape(x), DType.I64),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        out = np.argmax(x, axis=self.dim)
        if self.keepdim:
            out = np.expand_dims(out, axis=self.dim)
        return (out.astype(np.int64),)
