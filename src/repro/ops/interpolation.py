"""Interpolation operators: spatial resize of NCHW feature maps.

SegFormer's decode head upsamples every pyramid stage to a common resolution
(`Interpolate` rows in Table I); detection models resize inputs and masks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator

_MODES = ("nearest", "bilinear")


class Interpolate(Operator):
    """Resize the trailing two (spatial) dims by ``scale_factor`` or to ``size``."""

    kind = "interpolate"
    category = OpCategory.INTERPOLATION

    def __init__(
        self,
        scale_factor: float | None = None,
        size: tuple[int, int] | None = None,
        mode: str = "bilinear",
    ):
        if (scale_factor is None) == (size is None):
            raise ShapeError("interpolate needs exactly one of scale_factor or size")
        if mode not in _MODES:
            raise ShapeError(f"interpolate mode must be one of {_MODES}, got {mode!r}")
        self.scale_factor = scale_factor
        self.size = tuple(size) if size is not None else None
        self.mode = mode

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4:
            raise ShapeError(f"interpolate expects NCHW, got {x.shape}")
        n, c, h, w = x.shape
        if self.size is not None:
            ho, wo = self.size
        else:
            ho = int(h * self.scale_factor)
            wo = int(w * self.scale_factor)
        if ho <= 0 or wo <= 0:
            raise ShapeError(f"interpolate output collapses to {ho}x{wo}")
        return (x.with_shape((n, c, ho, wo)),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        n, c, h, w = x.shape
        (spec,) = self.infer_spec([TensorSpec(x.shape)])
        ho, wo = spec.shape[2], spec.shape[3]
        if self.mode == "nearest":
            ys = np.minimum((np.arange(ho) * h // ho), h - 1)
            xs = np.minimum((np.arange(wo) * w // wo), w - 1)
            return (x[:, :, ys[:, None], xs[None, :]],)
        # bilinear with align_corners=False convention
        ys = np.clip((np.arange(ho) + 0.5) * h / ho - 0.5, 0, h - 1)
        xs = np.clip((np.arange(wo) + 0.5) * w / wo - 0.5, 0, w - 1)
        y0 = np.floor(ys).astype(int)
        x0 = np.floor(xs).astype(int)
        y1 = np.minimum(y0 + 1, h - 1)
        x1 = np.minimum(x0 + 1, w - 1)
        dy = (ys - y0)[None, None, :, None]
        dx = (xs - x0)[None, None, None, :]
        top = x[:, :, y0[:, None], x0[None, :]] * (1 - dx) + x[:, :, y0[:, None], x1[None, :]] * dx
        bot = x[:, :, y1[:, None], x0[None, :]] * (1 - dx) + x[:, :, y1[:, None], x1[None, :]] * dx
        return ((top * (1 - dy) + bot * dy).astype(x.dtype, copy=False),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        out = outputs[0]
        flops_per = 8 if self.mode == "bilinear" else 1
        taps = 4 if self.mode == "bilinear" else 1
        return OpCost(
            flops=out.numel * flops_per,
            bytes_read=out.numel * taps * inputs[0].dtype.itemsize,
            bytes_written=out.nbytes,
        )

    def describe(self) -> str:
        target = self.size if self.size is not None else f"x{self.scale_factor:g}"
        return f"interpolate({target}, {self.mode})"
