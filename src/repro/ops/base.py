"""Operator abstraction: shape inference, numpy execution, and cost.

Every ML operator in the benchmark implements three independent views:

* ``infer_spec``  — static shape/dtype propagation (used to build graphs for
  arbitrarily large models without allocating data);
* ``run``         — concrete numpy execution (used by tests and examples to
  validate semantics on small configurations);
* ``cost``        — FLOP and byte accounting (used by the hardware model to
  estimate kernel latency).

Operators are classified into the paper's operator groups via
:class:`OpCategory`; the GEMM / non-GEMM split used everywhere in the analysis
derives from it.
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass
from typing import ClassVar, NamedTuple, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec


class OpCategory(enum.Enum):
    """Operator groups used in the paper's latency breakdowns (Fig. 6 legend)."""

    GEMM = "GEMM-based"
    ACTIVATION = "Activation"
    NORMALIZATION = "Normalization"
    MEMORY = "Memory"
    ROI = "ROI Selection"
    INTERPOLATION = "Interpolation"
    ELEMENTWISE = "Element-wise Arithmetic"
    LOGIT = "Logit Computation"
    EMBEDDING = "Embedding"
    QDQ = "Q/DQ"
    POOLING = "Pooling"
    REDUCTION = "Reduction"
    MISC = "Misc"

    @property
    def is_gemm(self) -> bool:
        return self is OpCategory.GEMM


#: Groups reported under "Misc. Operators" in the paper's figures.  Pooling and
#: reductions are real kernels but the paper folds them into Misc.
MISC_LIKE = frozenset({OpCategory.POOLING, OpCategory.REDUCTION, OpCategory.MISC})


class OpCost(NamedTuple):
    """Work performed by one operator application.

    ``flops`` counts multiply-and-accumulate style arithmetic (one MAC = 2
    flops).  ``bytes_read``/``bytes_written`` count off-chip traffic assuming
    no fusion; the simulator adjusts traffic for fused kernels.

    A NamedTuple: one cost is computed per node per structural graph version,
    which makes construction cost part of every lowering's critical path.
    """

    flops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of traffic; infinite for traffic-free metadata ops."""
        if self.total_bytes == 0:
            return math.inf
        return self.flops / self.total_bytes

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.flops + other.flops,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )


@dataclass(frozen=True)
class WeightSpec:
    """A named parameter tensor owned by an operator instance."""

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.F32

    @property
    def numel(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.numel * self.dtype.itemsize


class Operator(abc.ABC):
    """Base class of every ML operator in the benchmark.

    Subclasses set ``kind`` (a stable string id used in reports and fusion
    patterns) and ``category``, and implement the three views.  Instances are
    immutable after construction; a single instance may appear in many nodes
    only if it is stateless (weightless), otherwise each node owns its op.
    """

    kind: ClassVar[str]
    category: ClassVar[OpCategory]
    #: metadata-only ops (views) emit no device kernel at all.
    is_metadata_only: ClassVar[bool] = False
    #: number of device kernels the *eager* implementation launches.  Vendor
    #: ops are 1; Python-composite implementations (HuggingFace's NewGELU,
    #: LlamaRMSNorm, torchvision's FrozenBatchNorm2d) launch one kernel per
    #: tensor expression.  Compiled flows collapse composites to one kernel.
    eager_kernels: int = 1
    #: how many of those kernels stream the full activation tensor (some of a
    #: composite's kernels touch only tiny per-channel vectors).  Defaults to
    #: eager_kernels when left at 0.
    eager_traffic_passes: int = 0

    @property
    def traffic_passes(self) -> int:
        return self.eager_traffic_passes or self.eager_kernels
    #: custom (non vendor-library) kernels take an efficiency penalty and are
    #: prime fusion targets (the paper's DETR FrozenBatchNorm observation).
    is_custom_kernel: bool = False
    #: data-dependent ops (e.g. nonzero) stall the GPU pipeline with a
    #: device->host round trip to learn their output size.
    forces_sync: ClassVar[bool] = False

    @abc.abstractmethod
    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        """Map input specs to output specs; raise :class:`ShapeError` on misuse."""

    @abc.abstractmethod
    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        """Execute the operator on concrete arrays (reference semantics)."""

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        """Default cost model: stream inputs in, outputs out, zero flops.

        Compute-heavy operators override this.  Metadata-only ops report zero
        cost (handled before this is called, but kept consistent here).
        """
        if self.is_metadata_only:
            return OpCost()
        return OpCost(
            flops=0,
            bytes_read=sum(s.nbytes for s in inputs) + self.weight_bytes(),
            bytes_written=sum(s.nbytes for s in outputs),
        )

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        """Parameter tensors of this operator (empty for stateless ops)."""
        return ()

    def cached_weight_specs(self) -> tuple[WeightSpec, ...]:
        """Memoized :meth:`weight_specs` — operators are immutable, and spec
        construction is hot when hashing/profiling billion-parameter graphs."""
        specs = self.__dict__.get("_weight_specs")
        if specs is None:
            specs = self.weight_specs()
            self.__dict__["_weight_specs"] = specs
        return specs

    def param_count(self) -> int:
        count = self.__dict__.get("_param_count")
        if count is None:
            count = sum(w.numel for w in self.cached_weight_specs())
            self.__dict__["_param_count"] = count
        return count

    def weight_bytes(self) -> int:
        nbytes = self.__dict__.get("_weight_bytes")
        if nbytes is None:
            nbytes = sum(w.nbytes for w in self.cached_weight_specs())
            self.__dict__["_weight_bytes"] = nbytes
        return nbytes

    @property
    def is_gemm(self) -> bool:
        return self.category.is_gemm

    def describe(self) -> str:
        """Short human-readable configuration string for reports."""
        return self.kind

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

    # -- helpers shared by subclasses -------------------------------------

    @staticmethod
    def _expect_inputs(inputs: Sequence, count: int, kind: str) -> None:
        if len(inputs) != count:
            raise ShapeError(f"{kind} expects {count} input(s), got {len(inputs)}")


class InputOp(Operator):
    """Sentinel operator marking a graph input (placeholder)."""

    kind = "input"
    category = OpCategory.MISC
    is_metadata_only = True

    def __init__(self, spec: TensorSpec, label: str = "input"):
        self.spec = spec
        self.label = label

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        if inputs:
            raise ShapeError("input placeholder takes no inputs")
        return (self.spec,)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        raise RuntimeError("input placeholders are fed by the executor, not run")

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost()

    def describe(self) -> str:
        return f"input({self.spec})"
