"""Embedding lookup: integer token ids to dense vectors.

Purely bandwidth-bound gathers out of a large table; in LLM profiles they
appear as their own group ("Embedding" in the Fig. 6 legend).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator, WeightSpec


class Embedding(Operator):
    """Row gather from a ``[num_embeddings, dim]`` table by i32/i64 ids."""

    kind = "embedding"
    category = OpCategory.EMBEDDING

    def __init__(self, num_embeddings: int, embedding_dim: int, dtype: DType = DType.F32):
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ShapeError("embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (ids,) = inputs
        if not ids.dtype.is_integer:
            raise ShapeError(f"embedding ids must be integer, got {ids.dtype}")
        return (TensorSpec(ids.shape + (self.embedding_dim,), self.dtype),)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        return (WeightSpec("weight", (self.num_embeddings, self.embedding_dim), self.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (ids,) = inputs
        table = weights["weight"]
        return (table[np.clip(ids, 0, self.num_embeddings - 1)],)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        # reads only the gathered rows, not the whole table
        return OpCost(
            flops=0,
            bytes_read=outputs[0].nbytes + inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"embedding({self.num_embeddings}x{self.embedding_dim})"
