"""Quantization operators for the LLM.int8() study (Fig. 9).

``Quantize``/``Dequantize`` carry the paper's "Q/DQ" operator group; they are
the extra non-GEMM work injected around every quantized Linear.
``Int8Linear`` is the accelerated GEMM itself, including LLM.int8()'s
mixed-precision outlier decomposition (a small fp16 GEMM over outlier
columns whose result is added back after dequantization).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.dtype import DType
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator, WeightSpec


class Quantize(Operator):
    """Rowwise absmax int8 quantization: fp -> (i8 tensor, fp row scales)."""

    kind = "quantize"
    category = OpCategory.QDQ
    FLOPS_PER_ELEMENT = 4  # abs, max-reduce (amortised), scale, round

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if not x.dtype.is_floating:
            raise ShapeError(f"quantize expects floating input, got {x.dtype}")
        scales = TensorSpec(x.shape[:-1] + (1,), x.dtype)
        return (x.with_dtype(DType.I8), scales)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        absmax = np.maximum(np.max(np.abs(x), axis=-1, keepdims=True), 1e-8)
        scale = absmax / 127.0
        q = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
        return (q, scale.astype(x.dtype))

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel * self.FLOPS_PER_ELEMENT,
            bytes_read=inputs[0].nbytes,
            bytes_written=sum(s.nbytes for s in outputs),
        )


class Dequantize(Operator):
    """int32 accumulator (or i8 tensor) back to floating point via scales."""

    kind = "dequantize"
    category = OpCategory.QDQ
    FLOPS_PER_ELEMENT = 2

    def __init__(self, dtype: DType = DType.F16):
        self.dtype = dtype

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 2, self.kind)
        x, scales = inputs
        if not scales.dtype.is_floating:
            raise ShapeError(f"dequantize scales must be floating, got {scales.dtype}")
        return (x.with_dtype(self.dtype),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        x, scales = inputs
        return ((x.astype(np.float32) * scales).astype(self.dtype.to_numpy()),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel * self.FLOPS_PER_ELEMENT,
            bytes_read=sum(s.nbytes for s in inputs),
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"dequantize({self.dtype.value})"


class Int8Linear(Operator):
    """The int8 GEMM of LLM.int8(): i8 activations x i8 weights -> i32.

    Scaling back to floating point is *not* part of this kernel — the
    quantization pass (:mod:`repro.quant.llm_int8`) wires an explicit
    Dequantize + scale chain behind it, because those extra non-GEMM
    operators are precisely what the paper's Fig. 9 measures.
    """

    kind = "int8_linear"
    category = OpCategory.GEMM

    def __init__(self, in_features: int, out_features: int):
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("int8_linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.dtype != DType.I8:
            raise ShapeError(f"int8_linear expects i8 input, got {x.dtype}")
        if x.shape[-1] != self.in_features:
            raise ShapeError(f"int8_linear expects last dim {self.in_features}, got {x.shape}")
        return (TensorSpec(x.shape[:-1] + (self.out_features,), DType.I32),)

    def weight_specs(self) -> tuple[WeightSpec, ...]:
        return (WeightSpec("weight_int8", (self.out_features, self.in_features), DType.I8),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        acc = x.astype(np.int32) @ weights["weight_int8"].astype(np.int32).T
        return (acc.astype(np.int32),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        rows = inputs[0].numel // self.in_features
        flops = 2 * rows * self.in_features * self.out_features
        return OpCost(
            flops=flops,
            bytes_read=inputs[0].nbytes + self.weight_bytes(),
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"int8_linear({self.in_features}->{self.out_features})"
