"""The benchmark's operator library.

Every operator implements shape inference (graph building), numpy execution
(reference semantics), and FLOP/byte cost (latency modelling).  See
:mod:`repro.ops.base` for the contract.
"""

from repro.ops.activation import GELU, HardSwish, ReLU, Sigmoid, SiLU, Tanh
from repro.ops.base import (
    MISC_LIKE,
    InputOp,
    OpCategory,
    OpCost,
    Operator,
    WeightSpec,
)
from repro.ops.elementwise import (
    Abs,
    Add,
    AddScalar,
    Div,
    DivScalar,
    Exp,
    Maximum,
    Mul,
    MulScalar,
    Neg,
    PowScalar,
    Rsqrt,
    Sqrt,
    Sub,
)
from repro.ops.embedding import Embedding
from repro.ops.gemm import BMM, Conv1DGPT, Conv2d, Linear, MatMul, is_gemm_kind
from repro.ops.interpolation import Interpolate
from repro.ops.logits import LogSoftmax, Softmax
from repro.ops.memory import (
    Concat,
    Contiguous,
    Expand,
    Pad,
    Permute,
    Reshape,
    Roll,
    Slice,
    Split,
    Squeeze,
    Transpose,
    Unsqueeze,
    View,
)
from repro.ops.misc import (
    Cast,
    Constant,
    Gather,
    IndexAdd,
    MaskedFill,
    Nonzero,
    TopK,
    Tril,
    Where,
)
from repro.ops.normalization import (
    BatchNorm2d,
    FrozenBatchNorm2d,
    GroupNorm,
    LayerNorm,
    RMSNorm,
)
from repro.ops.pooling import AdaptiveAvgPool2d, AvgPool2d, MaxPool2d
from repro.ops.quantized import Dequantize, Int8Linear, Quantize
from repro.ops.reduction import ArgMax, Max, Mean, Sum
from repro.ops.roi import NMS, RoIAlign

__all__ = [
    "MISC_LIKE",
    "InputOp",
    "OpCategory",
    "OpCost",
    "Operator",
    "WeightSpec",
    # gemm
    "BMM",
    "Conv1DGPT",
    "Conv2d",
    "Linear",
    "MatMul",
    "is_gemm_kind",
    # activation
    "GELU",
    "HardSwish",
    "ReLU",
    "SiLU",
    "Sigmoid",
    "Tanh",
    # normalization
    "BatchNorm2d",
    "FrozenBatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "RMSNorm",
    # memory
    "Concat",
    "Contiguous",
    "Expand",
    "Pad",
    "Permute",
    "Reshape",
    "Roll",
    "Slice",
    "Split",
    "Squeeze",
    "Transpose",
    "Unsqueeze",
    "View",
    # elementwise
    "Abs",
    "Add",
    "AddScalar",
    "Div",
    "DivScalar",
    "Exp",
    "Maximum",
    "Mul",
    "MulScalar",
    "Neg",
    "PowScalar",
    "Rsqrt",
    "Sqrt",
    "Sub",
    # logit
    "LogSoftmax",
    "Softmax",
    # roi / interpolation / pooling
    "NMS",
    "RoIAlign",
    "Interpolate",
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "MaxPool2d",
    # reduction / embedding / misc
    "ArgMax",
    "Max",
    "Mean",
    "Sum",
    "Embedding",
    "Cast",
    "Constant",
    "Gather",
    "IndexAdd",
    "MaskedFill",
    "Nonzero",
    "TopK",
    "Tril",
    "Where",
    # quantized
    "Dequantize",
    "Int8Linear",
    "Quantize",
]
